//! # crow
//!
//! Facade crate for the CROW reproduction (Hassan et al., ISCA 2019):
//! re-exports every subsystem of the workspace under one roof.
//!
//! See the workspace `README.md` for an architecture overview and
//! `DESIGN.md` for the paper-to-module mapping.

pub use crow_baselines as baselines;
pub use crow_circuit as circuit;
pub use crow_core as core;
pub use crow_cpu as cpu;
pub use crow_dram as dram;
pub use crow_energy as energy;
pub use crow_mem as mem;
pub use crow_sim as sim;
pub use crow_workloads as workloads;
