//! Evaluation metrics.

/// Weighted speedup \[104\]: `Σ IPC_shared_i / IPC_alone_i`.
///
/// The paper uses this as its multi-core job-throughput metric (§7,
/// citing \[13\]). Mechanism speedups are ratios of weighted speedups with
/// common alone-run denominators.
///
/// # Panics
///
/// Panics if the slices differ in length or an alone IPC is not
/// positive.
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "core count mismatch");
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            s / a
        })
        .sum()
}

/// Geometric mean of a slice of positive ratios (used to average
/// speedups across workloads, as architecture papers conventionally do).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_basics() {
        let ws = weighted_speedup(&[1.0, 2.0], &[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
        // All cores at alone speed: WS = number of cores.
        let ws = weighted_speedup(&[3.0, 3.0, 3.0, 3.0], &[3.0; 4]);
        assert!((ws - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        let _ = weighted_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
    }
}
