//! Canned experiment runners shared by the per-figure harness binaries.

use crow_workloads::AppProfile;

use crate::config::{Mechanism, SystemConfig};
use crate::report::SimReport;
use crate::system::System;

/// Simulation scale knobs, overridable from the environment:
///
/// * `CROW_INSTS` — instructions per core (default 400 000);
/// * `CROW_WARMUP` — functional warmup instructions (default 50 000);
/// * `CROW_MIXES` — mixes per four-core group (default 3, paper uses 20).
///
/// The paper simulates 200 M instructions per app; the defaults keep a
/// full figure regeneration in the minutes range while preserving the
/// relative behaviour (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Instructions each core must retire.
    pub insts: u64,
    /// Functional warmup instructions per core.
    pub warmup: u64,
    /// Mixes per multi-core group.
    pub mixes_per_group: usize,
    /// Hard cap on simulated CPU cycles.
    pub max_cycles: u64,
}

impl Scale {
    /// The default evaluation scale (env-overridable).
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            insts: get("CROW_INSTS", 400_000),
            warmup: get("CROW_WARMUP", 50_000),
            mixes_per_group: get("CROW_MIXES", 3) as usize,
            max_cycles: get("CROW_MAX_CYCLES", 2_000_000_000),
        }
    }

    /// A tiny scale for integration tests.
    pub fn tiny() -> Self {
        Self {
            insts: 30_000,
            warmup: 5_000,
            mixes_per_group: 1,
            max_cycles: 50_000_000,
        }
    }
}

/// Runs one application alone on the paper platform under `mechanism`.
pub fn run_single(app: &AppProfile, mechanism: Mechanism, scale: Scale) -> SimReport {
    let cfg = SystemConfig::paper_default(mechanism);
    run_with_config(cfg, &[app], scale)
}

/// Runs a four-application mix on the paper platform.
pub fn run_mix(apps: &[&AppProfile], mechanism: Mechanism, scale: Scale) -> SimReport {
    let cfg = SystemConfig::paper_default(mechanism);
    run_with_config(cfg, apps, scale)
}

/// Runs an explicit configuration (density/LLC/prefetcher sweeps).
pub fn run_with_config(mut cfg: SystemConfig, apps: &[&AppProfile], scale: Scale) -> SimReport {
    cfg.cpu.target_insts = scale.insts;
    let mut sys = System::new(cfg, apps);
    if scale.warmup > 0 {
        sys.warm(scale.warmup);
    }
    sys.run(scale.max_cycles)
}

/// Runs independent jobs on worker threads (deterministic per job).
pub fn run_many<J, R, F>(jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let jobs: Vec<std::sync::Mutex<Option<J>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let results: Vec<std::sync::Mutex<Option<R>>> = (0..jobs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job taken once");
                let r = worker(job);
                *results[i].lock().expect("result mutex poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result mutex poisoned"))
        .map(|r| r.expect("worker finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.insts > 0 && s.warmup < s.insts * 10);
    }

    #[test]
    fn run_many_preserves_order() {
        let out = run_many((0..32u64).collect(), |x| x * 2);
        assert_eq!(out, (0..32u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_run_on_tiny_scale() {
        // Uses the full paper platform but a tiny instruction budget.
        let app = AppProfile::by_name("gcc").unwrap();
        let r = run_single(app, Mechanism::Baseline, Scale::tiny());
        assert!(r.finished);
        assert!(r.ipc[0] > 0.0);
    }
}
