//! Canned experiment runners shared by the per-figure harness binaries.

use crow_workloads::AppProfile;

use crate::config::{Mechanism, SystemConfig};
use crate::error::CrowError;
use crate::report::SimReport;
use crate::system::System;

/// Simulation scale knobs, overridable from the environment:
///
/// * `CROW_INSTS` — instructions per core (default 400 000);
/// * `CROW_WARMUP` — functional warmup instructions (default 50 000);
/// * `CROW_MIXES` — mixes per four-core group (default 3, paper uses 20);
/// * `CROW_THREADS` — shard worker threads per simulation (default 1,
///   the serial engine; reports are bit-identical at any value);
/// * `CROW_CHECKPOINTS` — `1`/`true` caches post-warmup architectural
///   state under `results/checkpoints/` (default off);
/// * `CROW_SAMPLE` (+ `CROW_SAMPLE_WINDOW`/`_WARMUP`/`_FF`) — interval
///   sampling with per-window confidence intervals (default off); see
///   [`crate::sampling::SamplePlan::from_env`].
///
/// The paper simulates 200 M instructions per app; the defaults keep a
/// full figure regeneration in the minutes range while preserving the
/// relative behaviour (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Instructions each core must retire.
    pub insts: u64,
    /// Functional warmup instructions per core.
    pub warmup: u64,
    /// Mixes per multi-core group.
    pub mixes_per_group: usize,
    /// Hard cap on simulated CPU cycles.
    pub max_cycles: u64,
    /// Worker threads for the sharded per-channel engine (1 = serial).
    pub threads: u32,
    /// Whether to reuse warm architectural checkpoints.
    pub checkpoints: bool,
    /// Interval-sampling schedule (`None` = full detailed runs); see
    /// [`crate::sampling::SamplePlan`] and the `CROW_SAMPLE*` knobs.
    pub sample: Option<crate::sampling::SamplePlan>,
}

impl Scale {
    /// The default evaluation scale (env-overridable).
    ///
    /// A malformed override (`CROW_INSTS=4OO000`) is a configuration
    /// error, not a silent fallback to the default — quietly running a
    /// figure at the wrong scale is worse than refusing to start.
    pub fn from_env() -> Result<Self, CrowError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`Scale::from_env`] against an arbitrary variable lookup, so the
    /// parsing is testable without mutating process-global state.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, CrowError> {
        let get = |k: &str, d: u64| -> Result<u64, CrowError> {
            match lookup(k) {
                None => Ok(d),
                Some(v) => v.trim().parse().map_err(|_| {
                    CrowError::Config(crow_dram::ConfigError::new(
                        "Scale",
                        format!("{k}={v:?} is not an unsigned integer"),
                    ))
                }),
            }
        };
        let checkpoints = match lookup("CROW_CHECKPOINTS") {
            None => false,
            Some(v) => match v.trim() {
                "0" | "false" => false,
                "1" | "true" => true,
                _ => {
                    return Err(CrowError::Config(crow_dram::ConfigError::new(
                        "Scale",
                        format!("CROW_CHECKPOINTS={v:?} is not 0/1/true/false"),
                    )))
                }
            },
        };
        let scale = Self {
            insts: get("CROW_INSTS", 400_000)?,
            warmup: get("CROW_WARMUP", 50_000)?,
            mixes_per_group: get("CROW_MIXES", 3)? as usize,
            max_cycles: get("CROW_MAX_CYCLES", 2_000_000_000)?,
            threads: u32::try_from(get("CROW_THREADS", 1)?).map_err(|_| {
                CrowError::Config(crow_dram::ConfigError::new(
                    "Scale",
                    "CROW_THREADS does not fit in 32 bits",
                ))
            })?,
            checkpoints,
            sample: crate::sampling::SamplePlan::from_lookup(&lookup)?,
        };
        if scale.insts == 0 {
            return Err(CrowError::Config(crow_dram::ConfigError::new(
                "Scale",
                "CROW_INSTS must be positive",
            )));
        }
        if scale.threads == 0 {
            return Err(CrowError::Config(crow_dram::ConfigError::new(
                "Scale",
                "CROW_THREADS must be positive",
            )));
        }
        Ok(scale)
    }

    /// A tiny scale for integration tests.
    pub fn tiny() -> Self {
        Self {
            insts: 30_000,
            warmup: 5_000,
            mixes_per_group: 1,
            max_cycles: 50_000_000,
            threads: 1,
            checkpoints: false,
            sample: None,
        }
    }

    /// A stable text fingerprint of the scale, embedded in campaign
    /// journal fingerprints so changing the scale invalidates journaled
    /// results instead of silently reusing them. `threads` and
    /// `checkpoints` are deliberately excluded: they change how fast a
    /// result is produced, never what it is. A sampling plan *does*
    /// change what a run reports, so it joins the fingerprint (and full
    /// runs keep their historical fingerprints).
    pub fn fingerprint(&self) -> String {
        let mut fp = format!(
            "i{}w{}m{}c{}",
            self.insts, self.warmup, self.mixes_per_group, self.max_cycles
        );
        if let Some(p) = &self.sample {
            fp.push_str("/s");
            fp.push_str(&p.fingerprint());
        }
        fp
    }
}

/// Runs one application alone on the paper platform under `mechanism`.
pub fn run_single(app: &AppProfile, mechanism: Mechanism, scale: Scale) -> SimReport {
    let cfg = SystemConfig::paper_default(mechanism);
    run_with_config(cfg, &[app], scale)
}

/// Runs a four-application mix on the paper platform.
pub fn run_mix(apps: &[&AppProfile], mechanism: Mechanism, scale: Scale) -> SimReport {
    let cfg = SystemConfig::paper_default(mechanism);
    run_with_config(cfg, apps, scale)
}

/// Runs an explicit configuration (density/LLC/prefetcher sweeps).
pub fn run_with_config(mut cfg: SystemConfig, apps: &[&AppProfile], scale: Scale) -> SimReport {
    cfg.cpu.target_insts = scale.insts;
    cfg.threads = scale.threads;
    cfg.sample = scale.sample;
    let mut sys = System::new(cfg.clone(), apps);
    if scale.warmup > 0 {
        if scale.checkpoints {
            let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
            let outcome = crate::checkpoint::warm_via_cache(
                &mut sys,
                || System::new(cfg, apps),
                &names,
                scale.warmup,
            );
            if let Some(e) = outcome.error {
                eprintln!("warning: {e} (ran a cold warmup instead)");
            }
        } else {
            sys.warm(scale.warmup);
        }
    }
    sys.run(scale.max_cycles)
}

/// Runs independent jobs on worker threads (deterministic per job).
///
/// Panic-safe: a panicking job no longer poisons the pool — the other
/// jobs all run to completion, and the first panic is re-raised on the
/// caller afterwards. Campaigns that must *survive* panics use
/// [`crate::campaign::Campaign`] instead, which turns them into
/// recorded outcomes.
pub fn run_many<J, R, F>(jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::PoisonError;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let jobs: Vec<std::sync::Mutex<Option<J>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let results: Vec<std::sync::Mutex<Option<R>>> = (0..jobs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let panics: std::sync::Mutex<Vec<Box<dyn std::any::Any + Send>>> =
        std::sync::Mutex::new(Vec::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                // Poison is ignored throughout: a mutex here is only
                // poisoned by another job's panic, which says nothing
                // about the (disjoint) slot it guards.
                let job = jobs[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("job taken once");
                match catch_unwind(AssertUnwindSafe(|| worker(job))) {
                    Ok(r) => *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r),
                    Err(payload) => panics
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(payload),
                }
            });
        }
    });
    if let Some(payload) = panics
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .next()
    {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .map(|r| r.expect("worker finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_lookup(|_| None).unwrap();
        assert!(s.insts > 0 && s.warmup < s.insts * 10);
        assert_eq!(s.insts, 400_000);
    }

    #[test]
    fn scale_rejects_malformed_overrides() {
        // The motivating typo: O (letter) for 0 (digit).
        let err = Scale::from_lookup(|k| (k == "CROW_INSTS").then(|| "4OO000".into()))
            .unwrap_err()
            .to_string();
        assert!(err.contains("CROW_INSTS"), "names the variable: {err}");
        assert!(err.contains("4OO000"), "echoes the bad value: {err}");
        assert!(Scale::from_lookup(|k| (k == "CROW_MIXES").then(|| "-1".into())).is_err());
        assert!(Scale::from_lookup(|k| (k == "CROW_INSTS").then(|| "0".into())).is_err());
        let ok = Scale::from_lookup(|k| (k == "CROW_WARMUP").then(|| " 1000 ".into())).unwrap();
        assert_eq!(ok.warmup, 1000, "surrounding whitespace is tolerated");
    }

    #[test]
    fn scale_parses_thread_and_checkpoint_knobs_strictly() {
        let s = Scale::from_lookup(|_| None).unwrap();
        assert_eq!((s.threads, s.checkpoints), (1, false), "defaults");
        let s = Scale::from_lookup(|k| match k {
            "CROW_THREADS" => Some("4".into()),
            "CROW_CHECKPOINTS" => Some("true".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!((s.threads, s.checkpoints), (4, true));
        let s = Scale::from_lookup(|k| (k == "CROW_CHECKPOINTS").then(|| " 0 ".into())).unwrap();
        assert!(!s.checkpoints, "whitespace-tolerant like the integers");
        // Malformed values are configuration errors, never silent
        // fallbacks — the same contract as the integer knobs.
        for (k, v) in [
            ("CROW_THREADS", "fast"),
            ("CROW_THREADS", "0"),
            ("CROW_THREADS", "-2"),
            ("CROW_THREADS", "99999999999"),
            ("CROW_CHECKPOINTS", "yes"),
            ("CROW_CHECKPOINTS", "2"),
        ] {
            let err = Scale::from_lookup(|q| (q == k).then(|| v.into()))
                .expect_err(&format!("{k}={v} must be rejected"))
                .to_string();
            assert!(err.contains(k), "names the variable: {err}");
        }
    }

    #[test]
    fn scale_fingerprint_is_stable_and_distinct() {
        let a = Scale::tiny();
        let mut b = a;
        b.insts += 1;
        assert_eq!(a.fingerprint(), Scale::tiny().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn scale_sampling_knobs_parse_and_join_the_fingerprint() {
        let s = Scale::from_lookup(|_| None).unwrap();
        assert_eq!(s.sample, None, "sampling defaults off");
        let s =
            Scale::from_lookup(|k| (k == "CROW_SAMPLE").then(|| "5000:2500:42500".into())).unwrap();
        let p = s.sample.expect("plan parsed");
        assert_eq!(p.window_insts, 5000);
        // Sampled and full runs must never collide in a journal.
        let mut full = Scale::tiny();
        let mut sampled = Scale::tiny();
        sampled.sample = Some(p);
        assert_ne!(full.fingerprint(), sampled.fingerprint());
        assert!(sampled.fingerprint().ends_with("/sw5000h2500f42500"));
        // Full runs keep their historical fingerprints.
        full.sample = None;
        assert_eq!(full.fingerprint(), "i30000w5000m1c50000000");
        // Malformed sampling knobs are configuration errors here too.
        assert!(Scale::from_lookup(|k| (k == "CROW_SAMPLE").then(|| "nope".into())).is_err());
        assert!(Scale::from_lookup(|k| (k == "CROW_SAMPLE_WINDOW").then(|| "x".into())).is_err());
    }

    #[test]
    fn run_many_preserves_order() {
        let out = run_many((0..32u64).collect(), |x| x * 2);
        assert_eq!(out, (0..32u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_many_finishes_all_jobs_despite_a_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_many((0..16u64).collect(), |x| {
                if x == 5 {
                    panic!("one bad job");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        // The panic still reaches the caller (legacy semantics)...
        assert!(caught.is_err());
        // ...but only after every other job ran to completion.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn single_run_on_tiny_scale() {
        // Uses the full paper platform but a tiny instruction budget.
        let app = AppProfile::by_name("gcc").unwrap();
        let r = run_single(app, Mechanism::Baseline, Scale::tiny());
        assert!(r.finished);
        assert!(r.ipc[0] > 0.0);
    }
}
