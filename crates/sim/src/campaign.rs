//! Supervised experiment campaigns: crash-isolated workers, deadlines,
//! degrade/retry policies, and resumable result journals.
//!
//! Reproducing the paper's evaluation means running hundreds of
//! independent simulations per figure. The bare [`crate::run_many`]
//! thread pool treats every job as infallible: one panicking or wedged
//! job used to take the whole figure — and with it an hours-long `bench
//! all` — down. A [`Campaign`] supervises the same job set instead:
//!
//! * every attempt runs on its own worker thread under
//!   [`std::panic::catch_unwind`], so a panic (or a structured
//!   [`CrowError`], e.g. an [`crate::FaultPolicy::Abort`] fault) becomes
//!   a recorded [`JobOutcome`] instead of a dead pool;
//! * the supervisor loop enforces a per-attempt wall-clock deadline; a
//!   wedged attempt is abandoned (its thread keeps running detached and
//!   its late result is discarded) and the slot is refilled immediately;
//! * failed or timed-out jobs are retried after a short backoff at a
//!   *degraded* [`Scale`] — half the instructions per extra attempt,
//!   floored at [`CampaignPolicy::min_insts`] — so a marginal job
//!   degrades gracefully before the campaign gives up on it;
//! * every terminal outcome is appended to a durable JSONL journal, one
//!   fsynced record per job carrying the job's config fingerprint and a
//!   content hash. On a resumed campaign ([`CampaignPolicy::resume`]),
//!   jobs whose fingerprint matches a journaled record are restored
//!   ([`OutcomeKind::Skipped`]) without re-running, which makes an
//!   interrupted `bench all` resumable after a crash, an OOM kill, or
//!   Ctrl-C. Corrupt or torn trailing records (a crash mid-append) are
//!   quarantined to a `.quarantine` sidecar instead of poisoning the
//!   whole file.
//!
//! Fingerprints embed the requested [`Scale`], so changing `CROW_INSTS`
//! invalidates journaled results instead of silently reusing them.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::error::CrowError;
use crate::experiments::Scale;
use crate::json::Json;

/// How a supervised job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Completed at the requested scale.
    Ok,
    /// Completed, but only at a degraded (reduced-instruction) scale.
    Degraded,
    /// Every attempt panicked or returned a structured error.
    Panicked,
    /// Every attempt overran its wall-clock deadline.
    TimedOut,
    /// Not run this invocation: restored from a journaled record.
    Skipped,
}

impl OutcomeKind {
    /// Stable journal token.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Degraded => "degraded",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::TimedOut => "timed_out",
            OutcomeKind::Skipped => "skipped",
        }
    }

    /// Parses a journal token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => OutcomeKind::Ok,
            "degraded" => OutcomeKind::Degraded,
            "panicked" => OutcomeKind::Panicked,
            "timed_out" => OutcomeKind::TimedOut,
            "skipped" => OutcomeKind::Skipped,
            _ => return None,
        })
    }
}

/// The supervised result of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome<R> {
    /// Full fingerprint the job was journaled under.
    pub fingerprint: String,
    /// How the job ended *this invocation*.
    pub kind: OutcomeKind,
    /// For [`OutcomeKind::Skipped`]: how the journaled run ended.
    pub journaled: Option<OutcomeKind>,
    /// Attempts actually executed (0 for restored jobs).
    pub attempts: u32,
    /// The last panic/error/deadline message for failed jobs.
    pub error: Option<String>,
    /// The job's result, when one exists (fresh or restored).
    pub result: Option<R>,
}

impl<R> JobOutcome<R> {
    /// The job's final disposition: restored jobs report the journaled
    /// kind, so a resumed campaign summarizes identically to the
    /// uninterrupted one.
    pub fn disposition(&self) -> OutcomeKind {
        if self.kind == OutcomeKind::Skipped {
            self.journaled.unwrap_or(OutcomeKind::Skipped)
        } else {
            self.kind
        }
    }
}

/// Per-campaign outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Jobs that completed at the requested scale.
    pub ok: u64,
    /// Jobs that completed at a degraded scale.
    pub degraded: u64,
    /// Jobs that exhausted retries panicking/erroring.
    pub panicked: u64,
    /// Jobs that exhausted retries over deadline.
    pub timed_out: u64,
    /// Jobs restored from the journal without running.
    pub skipped: u64,
    /// Extra attempts beyond the first, across all jobs.
    pub retries: u64,
    /// Attempts abandoned at their deadline: the worker thread was left
    /// behind, still running detached, and its result discarded. Like
    /// `retries` this counts *attempts*, not jobs — a nonzero value
    /// under thread isolation means that many leaked threads lived
    /// until process exit.
    pub abandoned: u64,
}

impl OutcomeCounts {
    fn add(&mut self, kind: OutcomeKind) {
        match kind {
            OutcomeKind::Ok => self.ok += 1,
            OutcomeKind::Degraded => self.degraded += 1,
            OutcomeKind::Panicked => self.panicked += 1,
            OutcomeKind::TimedOut => self.timed_out += 1,
            OutcomeKind::Skipped => self.skipped += 1,
        }
    }

    /// Folds another campaign's counters into this one, for reports
    /// spanning several campaigns.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.panicked += other.panicked;
        self.timed_out += other.timed_out;
        self.skipped += other.skipped;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
    }

    /// Total jobs accounted.
    pub fn total(&self) -> u64 {
        self.ok + self.degraded + self.panicked + self.timed_out + self.skipped
    }

    /// Jobs that produced no usable result.
    pub fn failed(&self) -> u64 {
        self.panicked + self.timed_out
    }

    /// JSON object for figure summaries.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::u64(self.ok)),
            ("degraded".into(), Json::u64(self.degraded)),
            ("panicked".into(), Json::u64(self.panicked)),
            ("timed_out".into(), Json::u64(self.timed_out)),
            ("skipped".into(), Json::u64(self.skipped)),
            ("retries".into(), Json::u64(self.retries)),
            ("abandoned".into(), Json::u64(self.abandoned)),
        ])
    }
}

impl std::fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ok {} | degraded {} | panicked {} | timed-out {} | skipped {} | retries {} | abandoned {}",
            self.ok,
            self.degraded,
            self.panicked,
            self.timed_out,
            self.skipped,
            self.retries,
            self.abandoned
        )
    }
}

/// Supervision knobs for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignPolicy {
    /// Scale attempts start from (retries degrade it).
    pub scale: Scale,
    /// Per-attempt wall-clock deadline (`None`: no deadline).
    pub timeout: Option<Duration>,
    /// Extra attempts after the first before giving up.
    pub max_retries: u32,
    /// Floor of the degrade ladder, instructions per core.
    pub min_insts: u64,
    /// Base retry backoff (attempt `k` waits `k * backoff`).
    pub backoff: Duration,
    /// Worker threads (0: one per available core).
    pub threads: usize,
    /// Restore journaled results instead of re-running them.
    pub resume: bool,
}

impl CampaignPolicy {
    /// Defaults: one degraded retry, no deadline, fresh journal.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            timeout: None,
            max_retries: 1,
            min_insts: 10_000,
            backoff: Duration::from_millis(100),
            threads: 0,
            resume: false,
        }
    }

    /// Reads the supervision knobs from the environment on top of
    /// [`CampaignPolicy::new`]: `CROW_TIMEOUT_SECS` (fractional seconds,
    /// 0 disables), `CROW_RETRIES`, and `CROW_RESUME` (`1`/`true`).
    /// Malformed values are configuration errors, not silent defaults.
    pub fn from_env(scale: Scale) -> Result<Self, CrowError> {
        Self::from_lookup(scale, |k| std::env::var(k).ok())
    }

    /// [`CampaignPolicy::from_env`] against an arbitrary lookup
    /// (testable without mutating process-global state).
    pub fn from_lookup(
        scale: Scale,
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<Self, CrowError> {
        let mut p = Self::new(scale);
        if let Some(v) = lookup("CROW_TIMEOUT_SECS") {
            let secs: f64 = v.trim().parse().map_err(|_| {
                config_err(format!(
                    "CROW_TIMEOUT_SECS={v:?} is not a number of seconds"
                ))
            })?;
            if !(secs >= 0.0 && secs.is_finite()) {
                return Err(config_err(format!(
                    "CROW_TIMEOUT_SECS={v:?} must be a finite non-negative number"
                )));
            }
            p.timeout = (secs > 0.0).then(|| Duration::from_secs_f64(secs));
        }
        if let Some(v) = lookup("CROW_RETRIES") {
            p.max_retries = v
                .trim()
                .parse()
                .map_err(|_| config_err(format!("CROW_RETRIES={v:?} is not an integer")))?;
        }
        if let Some(v) = lookup("CROW_RESUME") {
            p.resume = match v.trim() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                _ => return Err(config_err(format!("CROW_RESUME={v:?} is not a boolean"))),
            };
        }
        Ok(p)
    }

    /// The degrade ladder: attempt 0 runs the requested scale, each
    /// retry halves instructions and warmup (floored at `min_insts`).
    pub fn scale_for_attempt(&self, attempt: u32) -> Scale {
        let mut s = self.scale;
        let shift = attempt.min(32);
        s.insts = (s.insts >> shift).max(self.min_insts.min(self.scale.insts));
        s.warmup >>= shift;
        s
    }

    fn worker_threads(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        if self.threads > 0 { self.threads } else { auto }.min(jobs.max(1))
    }
}

fn config_err(reason: String) -> CrowError {
    CrowError::Config(crow_dram::ConfigError::new("CampaignPolicy", reason))
}

/// A result type that can ride the journal.
pub trait Journaled: Sized {
    /// Encodes the result for the journal payload.
    fn encode(&self) -> Json;
    /// Decodes a journal payload (`None`: shape mismatch, re-run).
    fn decode(v: &Json) -> Option<Self>;
}

impl Journaled for f64 {
    fn encode(&self) -> Json {
        Json::f64(*self)
    }
    fn decode(v: &Json) -> Option<Self> {
        v.as_f64()
    }
}

impl Journaled for u64 {
    fn encode(&self) -> Json {
        Json::u64(*self)
    }
    fn decode(v: &Json) -> Option<Self> {
        v.as_u64()
    }
}

impl Journaled for String {
    fn encode(&self) -> Json {
        Json::str(self.clone())
    }
    fn decode(v: &Json) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

/// Race-safe directory creation for result trees (`results/campaign/`,
/// `results/checkpoints/`): concurrent server jobs, campaign workers,
/// and whole processes may all try to create the same directory on
/// their first write. `std::fs::create_dir_all` walks components with a
/// check-then-create step, so a loser of that race can surface
/// `AlreadyExists` (or a transient `NotFound` on some filesystems when
/// a sibling renames intermediates). This helper treats "somebody else
/// created it first" as success and retries the transient case once.
pub fn ensure_dir(path: &Path) -> std::io::Result<()> {
    for attempt in 0..2 {
        match std::fs::create_dir_all(path) {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(()),
            Err(e) => {
                if path.is_dir() {
                    return Ok(()); // Lost the race to a concurrent creator.
                }
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    unreachable!("loop returns on the second attempt")
}

/// 64-bit FNV-1a (journal content hashing).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise.
/// Journal records are small and verified once at open, so a lookup
/// table buys nothing here. Where FNV-1a is a *content* hash (did this
/// body produce this line?), the CRC detects *storage* damage — bit
/// rot, torn sectors — with guaranteed burst-error coverage.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One durable journal record (a single JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Full job fingerprint (job id + scale).
    pub fingerprint: String,
    /// Terminal outcome of the journaled run.
    pub kind: OutcomeKind,
    /// Attempts the journaled run executed.
    pub attempts: u32,
    /// Failure message, for failed records.
    pub error: Option<String>,
    /// Compact-rendered result payload, for successful records.
    pub payload: Option<String>,
}

impl JournalRecord {
    fn body(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.fingerprint,
            self.kind.as_str(),
            self.attempts,
            self.error.as_deref().unwrap_or("-"),
            self.payload.as_deref().unwrap_or("-"),
        )
    }

    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let payload = match &self.payload {
            // Payload text is a compact rendering produced by `Json`;
            // re-parse so it embeds as a JSON value, not a string.
            Some(text) => Json::parse(text).unwrap_or(Json::Null),
            None => Json::Null,
        };
        let body = self.body();
        Json::Obj(vec![
            ("v".into(), Json::u64(1)),
            (
                "hash".into(),
                Json::str(format!("{:016x}", fnv1a64(body.as_bytes()))),
            ),
            (
                "crc".into(),
                Json::str(format!("{:08x}", crc32(body.as_bytes()))),
            ),
            ("fp".into(), Json::str(self.fingerprint.clone())),
            ("kind".into(), Json::str(self.kind.as_str())),
            ("attempts".into(), Json::u64(u64::from(self.attempts))),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("payload".into(), payload),
        ])
        .render()
    }

    /// Parses and verifies one JSONL line (`None`: corrupt/torn record).
    pub fn from_line(line: &str) -> Option<Self> {
        match classify_line(line) {
            LineVerdict::Ok(rec) => Some(rec),
            LineVerdict::Corrupt | LineVerdict::Malformed => None,
        }
    }
}

/// How one journal line parsed (drives the two quarantine sidecars).
#[derive(Debug, Clone, PartialEq)]
pub enum LineVerdict {
    /// Structurally valid and every checksum matched.
    Ok(JournalRecord),
    /// Structurally valid, but a checksum failed: the record was
    /// written whole and damaged afterwards (bit rot, a torn sector).
    /// Quarantined to the `.corrupt` sidecar.
    Corrupt,
    /// Not a record at all: a torn tail from a crash mid-append, or a
    /// foreign line. Quarantined to the `.quarantine` sidecar.
    Malformed,
}

/// Classifies one journal line (see [`LineVerdict`]). Lines without a
/// `crc` field are legacy (pre-CRC) records and verify on the FNV
/// content hash alone, so old journals keep resuming.
pub fn classify_line(line: &str) -> LineVerdict {
    let Ok(v) = Json::parse(line) else {
        return LineVerdict::Malformed;
    };
    let field = |k: &str| v.get(k);
    let rec = (|| -> Option<JournalRecord> {
        if field("v")?.as_u64()? != 1 {
            return None;
        }
        Some(JournalRecord {
            fingerprint: field("fp")?.as_str()?.to_string(),
            kind: OutcomeKind::parse(field("kind")?.as_str()?)?,
            attempts: u32::try_from(field("attempts")?.as_u64()?).ok()?,
            error: match field("error")? {
                Json::Null => None,
                e => Some(e.as_str()?.to_string()),
            },
            payload: match field("payload")? {
                Json::Null => None,
                p => Some(p.render()),
            },
        })
    })();
    let Some(rec) = rec else {
        return LineVerdict::Malformed;
    };
    let body = rec.body();
    let crc = match v.get("crc") {
        None => None, // Legacy record: FNV-only verification.
        Some(c) => match c.as_str() {
            Some(s) => Some(s),
            None => return LineVerdict::Malformed,
        },
    };
    if let Some(want) = crc {
        if want != format!("{:08x}", crc32(body.as_bytes())) {
            return LineVerdict::Corrupt;
        }
    }
    let Some(want_hash) = v.get("hash").and_then(Json::as_str) else {
        return LineVerdict::Malformed;
    };
    if want_hash != format!("{:016x}", fnv1a64(body.as_bytes())) {
        // With a matching CRC this is contradictory damage; either way
        // the record was structurally complete, so a CRC-bearing line
        // is storage corruption while a legacy line stays malformed
        // (preserving the pre-CRC quarantine behavior).
        return if crc.is_some() {
            LineVerdict::Corrupt
        } else {
            LineVerdict::Malformed
        };
    }
    LineVerdict::Ok(rec)
}

/// The durable per-campaign JSONL journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    records: HashMap<String, JournalRecord>,
    quarantined: usize,
    corrupt: usize,
}

impl Journal {
    /// Opens (resume) or truncates (fresh) the journal at `path`.
    ///
    /// On resume, lines that are not records at all — e.g. a torn
    /// trailing record from a crash mid-append — are moved to
    /// `<path>.quarantine`, while structurally whole records whose CRC
    /// (or content hash) fails are moved to `<path>.corrupt`, and the
    /// journal is rewritten with the surviving records, so one bad line
    /// never invalidates the file or aborts the resume.
    pub fn open(path: &Path, resume: bool) -> Result<Self, CrowError> {
        let io = |e: std::io::Error| CrowError::Journal {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                ensure_dir(parent).map_err(io)?;
            }
        }
        let mut records = HashMap::new();
        let mut quarantined = 0;
        let mut corrupt = 0;
        if resume && path.exists() {
            let text = std::fs::read_to_string(path).map_err(io)?;
            let mut good = Vec::new();
            let mut malformed = Vec::new();
            let mut damaged = Vec::new();
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match classify_line(line) {
                    LineVerdict::Ok(rec) => {
                        records.insert(rec.fingerprint.clone(), rec);
                        good.push(line);
                    }
                    LineVerdict::Malformed => malformed.push(line),
                    LineVerdict::Corrupt => damaged.push(line),
                }
            }
            if !malformed.is_empty() || !damaged.is_empty() {
                quarantined = malformed.len();
                corrupt = damaged.len();
                append_sidecar(path, ".quarantine", &malformed).map_err(io)?;
                append_sidecar(path, ".corrupt", &damaged).map_err(io)?;
                // Rewrite the journal with only the surviving records.
                let mut clean = String::new();
                for line in &good {
                    clean.push_str(line);
                    clean.push('\n');
                }
                std::fs::write(path, clean).map_err(io)?;
            }
        } else if path.exists() {
            std::fs::remove_file(path).map_err(io)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            records,
            quarantined,
            corrupt,
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Malformed (torn/foreign) lines quarantined while opening.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Checksum-failing records moved to the `.corrupt` sidecar while
    /// opening.
    pub fn corrupt(&self) -> usize {
        self.corrupt
    }

    /// Journaled records restored at open.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal restored nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a journaled record by full fingerprint.
    pub fn lookup(&self, fingerprint: &str) -> Option<&JournalRecord> {
        self.records.get(fingerprint)
    }

    /// Durably appends one record (fsynced before returning) and makes
    /// it visible to subsequent [`Journal::lookup`] calls, so a journal
    /// shared by long-running server workers doubles as a result cache.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), CrowError> {
        let io = |e: std::io::Error| CrowError::Journal {
            path: self.path.display().to_string(),
            reason: e.to_string(),
        };
        writeln!(self.file, "{}", rec.to_line()).map_err(io)?;
        self.file.sync_data().map_err(io)?;
        self.records.insert(rec.fingerprint.clone(), rec.clone());
        Ok(())
    }
}

/// Appends `lines` to the `<path><ext>` sidecar (fsynced); a no-op for
/// an empty batch so clean opens never create empty sidecars.
fn append_sidecar(path: &Path, ext: &str, lines: &[&str]) -> std::io::Result<()> {
    if lines.is_empty() {
        return Ok(());
    }
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(ext);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(PathBuf::from(sidecar))?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    f.sync_data()
}

/// What one attempt reported back to the supervisor.
enum AttemptEnd<R> {
    Done(Result<R, CrowError>),
    Panic(String),
}

struct Inflight {
    job: usize,
    attempt: u32,
    deadline: Option<Instant>,
}

/// A supervised job campaign (see the module docs).
#[derive(Debug)]
pub struct Campaign {
    name: String,
    policy: CampaignPolicy,
    journal: Option<Journal>,
    this_run: OutcomeCounts,
    dispositions: OutcomeCounts,
}

impl Campaign {
    /// A journaled campaign under `dir/<name>.jsonl`.
    pub fn at_dir(name: &str, policy: CampaignPolicy, dir: &Path) -> Result<Self, CrowError> {
        let journal = Journal::open(&dir.join(format!("{name}.jsonl")), policy.resume)?;
        Ok(Self {
            name: name.to_string(),
            policy,
            journal: Some(journal),
            this_run: OutcomeCounts::default(),
            dispositions: OutcomeCounts::default(),
        })
    }

    /// A journaled campaign under the default directory:
    /// `$CROW_CAMPAIGN_DIR` or `results/campaign`.
    pub fn new(name: &str, policy: CampaignPolicy) -> Result<Self, CrowError> {
        let dir = std::env::var("CROW_CAMPAIGN_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/campaign"));
        Self::at_dir(name, policy, &dir)
    }

    /// An unjournaled campaign (supervision only; nothing to resume).
    pub fn ephemeral(name: &str, policy: CampaignPolicy) -> Self {
        Self {
            name: name.to_string(),
            policy,
            journal: None,
            this_run: OutcomeCounts::default(),
            dispositions: OutcomeCounts::default(),
        }
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The active policy.
    pub fn policy(&self) -> &CampaignPolicy {
        &self.policy
    }

    /// The journal path, when journaled.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal.as_ref().map(Journal::path)
    }

    /// Journal records quarantined at open (malformed lines).
    pub fn quarantined(&self) -> usize {
        self.journal.as_ref().map_or(0, Journal::quarantined)
    }

    /// Journal records moved to the `.corrupt` sidecar at open
    /// (checksum failures).
    pub fn corrupt(&self) -> usize {
        self.journal.as_ref().map_or(0, Journal::corrupt)
    }

    /// What happened *this invocation* (restored jobs count as skipped).
    pub fn counts(&self) -> OutcomeCounts {
        self.this_run
    }

    /// Final job dispositions: restored jobs count under their journaled
    /// kind, so a resumed campaign reports identically to a clean one.
    pub fn dispositions(&self) -> OutcomeCounts {
        self.dispositions
    }

    /// The full journal fingerprint for a job id under this policy.
    pub fn fingerprint(&self, job_fp: &str) -> String {
        format!("{job_fp}@{}", self.policy.scale.fingerprint())
    }

    /// Runs `jobs` (pairs of job fingerprint and job data) to completion
    /// under supervision, returning outcomes in input order.
    ///
    /// `worker` receives the job and the scale chosen for the current
    /// attempt; it must honour the scale for the degrade ladder to mean
    /// anything. A worker panic or `Err` triggers the retry policy; an
    /// attempt overrunning [`CampaignPolicy::timeout`] is abandoned (the
    /// thread is left behind and its result discarded) and retried the
    /// same way. `run` may be called repeatedly on one campaign — each
    /// call shares the journal and accumulates the counters.
    pub fn run<J, R, F>(&mut self, jobs: Vec<(String, J)>, worker: F) -> Vec<JobOutcome<R>>
    where
        J: Send + Sync + 'static,
        R: Journaled + Send + 'static,
        F: Fn(&J, Scale) -> Result<R, CrowError> + Send + Sync + 'static,
    {
        let n = jobs.len();
        let mut outcomes: Vec<Option<JobOutcome<R>>> = Vec::with_capacity(n);
        let mut pending: VecDeque<(usize, u32, Instant)> = VecDeque::new();
        let now = Instant::now();
        // Restore journaled jobs; queue the rest.
        for (i, (job_fp, _)) in jobs.iter().enumerate() {
            let fp = self.fingerprint(job_fp);
            let restored = self.journal.as_ref().and_then(|j| j.lookup(&fp)).and_then(
                |rec: &JournalRecord| {
                    let result = match &rec.payload {
                        Some(text) => {
                            let v = Json::parse(text).ok()?;
                            Some(R::decode(&v)?)
                        }
                        None => None,
                    };
                    Some((
                        JobOutcome {
                            fingerprint: fp.clone(),
                            kind: OutcomeKind::Skipped,
                            journaled: Some(rec.kind),
                            attempts: 0,
                            error: rec.error.clone(),
                            result,
                        },
                        rec.attempts,
                    ))
                },
            );
            match restored {
                Some((o, journaled_attempts)) => {
                    self.this_run.add(OutcomeKind::Skipped);
                    self.dispositions.add(o.journaled.unwrap_or(o.kind));
                    // Credit the original run's retries too, so a fully
                    // restored campaign reports the same counters as the
                    // uninterrupted one.
                    self.dispositions.retries += u64::from(journaled_attempts.saturating_sub(1));
                    outcomes.push(Some(o));
                }
                None => {
                    outcomes.push(None);
                    pending.push_back((i, 0, now));
                }
            }
        }
        let mut remaining = pending.len();
        if remaining == 0 {
            return outcomes.into_iter().map(|o| o.expect("restored")).collect();
        }

        let jobs = Arc::new(jobs);
        let worker = Arc::new(worker);
        let threads = self.policy.worker_threads(remaining);
        let (tx, rx) = mpsc::channel::<(u64, AttemptEnd<R>)>();
        let mut inflight: HashMap<u64, Inflight> = HashMap::new();
        let mut abandoned: HashSet<u64> = HashSet::new();
        let mut next_id: u64 = 0;

        while remaining > 0 {
            // Fill free slots with attempts whose backoff has elapsed.
            let now = Instant::now();
            let mut deferred: VecDeque<(usize, u32, Instant)> = VecDeque::new();
            while inflight.len() < threads {
                let Some((job, attempt, not_before)) = pending.pop_front() else {
                    break;
                };
                if not_before > now {
                    deferred.push_back((job, attempt, not_before));
                    continue;
                }
                let id = next_id;
                next_id += 1;
                let scale = self.policy.scale_for_attempt(attempt);
                inflight.insert(
                    id,
                    Inflight {
                        job,
                        attempt,
                        deadline: self.policy.timeout.map(|t| Instant::now() + t),
                    },
                );
                let jobs = Arc::clone(&jobs);
                let worker = Arc::clone(&worker);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let end = match catch_unwind(AssertUnwindSafe(|| worker(&jobs[job].1, scale))) {
                        Ok(r) => AttemptEnd::Done(r),
                        Err(payload) => AttemptEnd::Panic(panic_message(payload.as_ref())),
                    };
                    // The supervisor may have abandoned us; a closed
                    // channel is fine.
                    let _ = tx.send((id, end));
                });
            }
            pending.append(&mut deferred);

            // Sleep until the next message, deadline, or backoff expiry.
            let now = Instant::now();
            let mut wake: Option<Instant> = inflight.values().filter_map(|f| f.deadline).min();
            if inflight.len() < threads {
                if let Some(&(_, _, nb)) = pending.iter().min_by_key(|&&(_, _, nb)| nb) {
                    wake = Some(wake.map_or(nb, |w| w.min(nb)));
                }
            }
            let msg = match wake {
                Some(w) => {
                    let dur = w.saturating_duration_since(now);
                    match rx.recv_timeout(dur.max(Duration::from_millis(1))) {
                        Ok(m) => Some(m),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            unreachable!("supervisor holds a sender")
                        }
                    }
                }
                None => Some(rx.recv().expect("supervisor holds a sender")),
            };

            if let Some((id, end)) = msg {
                if abandoned.remove(&id) {
                    continue; // Late result of a timed-out attempt.
                }
                let Some(fl) = inflight.remove(&id) else {
                    continue;
                };
                match end {
                    AttemptEnd::Done(Ok(result)) => {
                        let kind = if self.policy.scale_for_attempt(fl.attempt) == self.policy.scale
                        {
                            OutcomeKind::Ok
                        } else {
                            OutcomeKind::Degraded
                        };
                        self.finish_job(
                            &mut outcomes,
                            &jobs[fl.job].0,
                            fl.job,
                            kind,
                            fl.attempt + 1,
                            None,
                            Some(result),
                        );
                        remaining -= 1;
                    }
                    AttemptEnd::Done(Err(e)) => {
                        remaining -= self.fail_or_retry(
                            &mut outcomes,
                            &mut pending,
                            &jobs[fl.job].0,
                            fl.job,
                            fl.attempt,
                            OutcomeKind::Panicked,
                            format!("error: {e}"),
                        );
                    }
                    AttemptEnd::Panic(msg) => {
                        remaining -= self.fail_or_retry(
                            &mut outcomes,
                            &mut pending,
                            &jobs[fl.job].0,
                            fl.job,
                            fl.attempt,
                            OutcomeKind::Panicked,
                            format!("panic: {msg}"),
                        );
                    }
                }
            } else {
                // Deadline sweep: abandon every overdue attempt.
                let now = Instant::now();
                let overdue: Vec<u64> = inflight
                    .iter()
                    .filter(|(_, f)| f.deadline.is_some_and(|d| d <= now))
                    .map(|(&id, _)| id)
                    .collect();
                for id in overdue {
                    let fl = inflight.remove(&id).expect("listed above");
                    abandoned.insert(id);
                    // A leaked thread is a this-run runtime artifact, not
                    // a job disposition: a resumed run that restores this
                    // job's timed_out record from the journal leaks
                    // nothing, and dispositions must match either way.
                    self.this_run.abandoned += 1;
                    let timeout = self.policy.timeout.unwrap_or_default();
                    remaining -= self.fail_or_retry(
                        &mut outcomes,
                        &mut pending,
                        &jobs[fl.job].0,
                        fl.job,
                        fl.attempt,
                        OutcomeKind::TimedOut,
                        format!("deadline: attempt exceeded {timeout:?}"),
                    );
                }
            }
        }

        outcomes
            .into_iter()
            .map(|o| o.expect("completed"))
            .collect()
    }

    /// Returns 1 when the job reached a terminal outcome, 0 on retry.
    #[allow(clippy::too_many_arguments)]
    fn fail_or_retry<R: Journaled>(
        &mut self,
        outcomes: &mut [Option<JobOutcome<R>>],
        pending: &mut VecDeque<(usize, u32, Instant)>,
        job_fp: &str,
        job: usize,
        attempt: u32,
        kind: OutcomeKind,
        error: String,
    ) -> usize {
        if attempt < self.policy.max_retries {
            self.this_run.retries += 1;
            self.dispositions.retries += 1;
            let backoff = self.policy.backoff * (attempt + 1);
            pending.push_back((job, attempt + 1, Instant::now() + backoff));
            0
        } else {
            self.finish_job(outcomes, job_fp, job, kind, attempt + 1, Some(error), None);
            1
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_job<R: Journaled>(
        &mut self,
        outcomes: &mut [Option<JobOutcome<R>>],
        job_fp: &str,
        job: usize,
        kind: OutcomeKind,
        attempts: u32,
        error: Option<String>,
        result: Option<R>,
    ) {
        let fp = self.fingerprint(job_fp);
        self.this_run.add(kind);
        self.dispositions.add(kind);
        if let Some(journal) = &mut self.journal {
            let rec = JournalRecord {
                fingerprint: fp.clone(),
                kind,
                attempts,
                error: error.clone(),
                payload: result.as_ref().map(|r| r.encode().render()),
            };
            if let Err(e) = journal.append(&rec) {
                // A journal write failure must not kill the campaign;
                // the run simply stops being resumable from here on.
                eprintln!("campaign {}: {e}", self.name);
            }
        }
        outcomes[job] = Some(JobOutcome {
            fingerprint: fp,
            kind,
            journaled: None,
            attempts,
            error,
            result,
        });
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_scale() -> Scale {
        Scale {
            insts: 80_000,
            warmup: 8_000,
            mixes_per_group: 1,
            max_cycles: 1_000_000,
            threads: 1,
            checkpoints: false,
            sample: None,
        }
    }

    fn quick_policy() -> CampaignPolicy {
        let mut p = CampaignPolicy::new(test_scale());
        p.backoff = Duration::from_millis(1);
        p
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "crow-campaign-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn ensure_dir_survives_a_creation_race() {
        let base = temp_dir("race");
        let target = base.join("results").join("campaign").join("nested");
        let barrier = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let target = target.clone();
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        ensure_dir(&target)
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("no panic").expect("every racer succeeds");
            }
        });
        assert!(target.is_dir());
        // Idempotent on an existing directory.
        ensure_dir(&target).unwrap();
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn journal_append_is_visible_to_lookup() {
        let dir = temp_dir("appendvis");
        let mut j = Journal::open(&dir.join("j.jsonl"), false).unwrap();
        assert!(j.lookup("job-x").is_none());
        j.append(&JournalRecord {
            fingerprint: "job-x".into(),
            kind: OutcomeKind::Ok,
            attempts: 1,
            error: None,
            payload: Some(Json::u64(9).render()),
        })
        .unwrap();
        assert_eq!(j.lookup("job-x").unwrap().kind, OutcomeKind::Ok);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degrade_ladder_halves_and_floors() {
        let p = quick_policy();
        assert_eq!(p.scale_for_attempt(0), test_scale());
        assert_eq!(p.scale_for_attempt(1).insts, 40_000);
        assert_eq!(p.scale_for_attempt(1).warmup, 4_000);
        assert_eq!(p.scale_for_attempt(2).insts, 20_000);
        assert_eq!(p.scale_for_attempt(10).insts, 10_000, "floored");
        assert_eq!(p.scale_for_attempt(64).insts, 10_000, "shift clamped");
    }

    #[test]
    fn policy_from_lookup_is_strict() {
        let s = test_scale();
        let ok = CampaignPolicy::from_lookup(s, |k| match k {
            "CROW_TIMEOUT_SECS" => Some("2.5".into()),
            "CROW_RETRIES" => Some("3".into()),
            "CROW_RESUME" => Some("1".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(ok.timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(ok.max_retries, 3);
        assert!(ok.resume);
        let bad = CampaignPolicy::from_lookup(s, |k| {
            (k == "CROW_TIMEOUT_SECS").then(|| "2,5".to_string())
        });
        assert!(bad.unwrap_err().to_string().contains("CROW_TIMEOUT_SECS"));
        let bad = CampaignPolicy::from_lookup(s, |k| (k == "CROW_RETRIES").then(|| "x".into()));
        assert!(bad.is_err());
        assert!(
            CampaignPolicy::from_lookup(s, |k| (k == "CROW_TIMEOUT_SECS").then(|| "0".into()))
                .unwrap()
                .timeout
                .is_none(),
            "0 disables the deadline"
        );
    }

    #[test]
    fn journal_record_roundtrip_and_hash() {
        let rec = JournalRecord {
            fingerprint: "fig8/mcf/CROW-8@insts=400000".into(),
            kind: OutcomeKind::Degraded,
            attempts: 2,
            error: None,
            payload: Some(Json::f64(1.25).render()),
        };
        let line = rec.to_line();
        assert_eq!(JournalRecord::from_line(&line).unwrap(), rec);
        // Any body corruption invalidates the checksums.
        let tampered = line.replace("degraded", "ok");
        assert!(JournalRecord::from_line(&tampered).is_none());
        assert_eq!(classify_line(&tampered), LineVerdict::Corrupt);
        assert!(JournalRecord::from_line("{\"v\":1,\"torn...").is_none());
        assert_eq!(
            classify_line("{\"v\":1,\"torn..."),
            LineVerdict::Malformed,
            "a torn line is malformed, not corrupt"
        );
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn legacy_record_without_crc_still_resumes() {
        // A hand-built pre-CRC line: v, hash, fp, kind, attempts,
        // error, payload — exactly what PR 6 wrote.
        let rec = JournalRecord {
            fingerprint: "legacy-job".into(),
            kind: OutcomeKind::Ok,
            attempts: 1,
            error: None,
            payload: Some(Json::u64(5).render()),
        };
        let legacy = Json::Obj(vec![
            ("v".into(), Json::u64(1)),
            (
                "hash".into(),
                Json::str(format!("{:016x}", fnv1a64(rec.body().as_bytes()))),
            ),
            ("fp".into(), Json::str("legacy-job")),
            ("kind".into(), Json::str("ok")),
            ("attempts".into(), Json::u64(1)),
            ("error".into(), Json::Null),
            ("payload".into(), Json::u64(5)),
        ])
        .render();
        assert_eq!(classify_line(&legacy), LineVerdict::Ok(rec));
        // A tampered legacy line has no CRC to contradict the FNV
        // mismatch: it stays malformed (pre-CRC quarantine behavior).
        let tampered = legacy.replace("\"attempts\":1", "\"attempts\":3");
        assert_eq!(classify_line(&tampered), LineVerdict::Malformed);
        // End-to-end: a legacy journal resumes cleanly.
        let dir = temp_dir("legacy");
        let path = dir.join("camp.jsonl");
        std::fs::write(&path, format!("{legacy}\n")).unwrap();
        let j = Journal::open(&path, true).unwrap();
        assert_eq!((j.len(), j.quarantined(), j.corrupt()), (1, 0, 0));
        assert!(j.lookup("legacy-job").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_failing_record_is_quarantined_to_corrupt_sidecar() {
        let dir = temp_dir("crc");
        let path = dir.join("camp.jsonl");
        let good = JournalRecord {
            fingerprint: "job-good".into(),
            kind: OutcomeKind::Ok,
            attempts: 1,
            error: None,
            payload: Some(Json::u64(7).render()),
        };
        let victim = JournalRecord {
            fingerprint: "job-bitrot".into(),
            kind: OutcomeKind::Ok,
            attempts: 1,
            error: None,
            payload: Some(Json::u64(41).render()),
        };
        // Flip one payload digit after the record was written whole.
        let damaged = victim.to_line().replace("41", "43");
        std::fs::write(&path, format!("{}\n{damaged}\n", good.to_line())).unwrap();
        let j = Journal::open(&path, true).unwrap();
        assert_eq!((j.len(), j.quarantined(), j.corrupt()), (1, 0, 1));
        assert!(j.lookup("job-good").is_some());
        assert!(j.lookup("job-bitrot").is_none(), "damaged record dropped");
        let sidecar = std::fs::read_to_string(dir.join("camp.jsonl.corrupt")).unwrap();
        assert!(sidecar.contains("job-bitrot"));
        assert!(
            !dir.join("camp.jsonl.quarantine").exists(),
            "checksum damage goes to .corrupt, not .quarantine"
        );
        // The rewritten journal now opens cleanly and the job re-runs.
        let again = Journal::open(&path, true).unwrap();
        assert_eq!(
            (again.len(), again.quarantined(), again.corrupt()),
            (1, 0, 0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_quarantines_torn_tail() {
        let dir = temp_dir("torn");
        let path = dir.join("camp.jsonl");
        let good = JournalRecord {
            fingerprint: "job-a".into(),
            kind: OutcomeKind::Ok,
            attempts: 1,
            error: None,
            payload: Some(Json::u64(7).render()),
        };
        std::fs::write(
            &path,
            format!("{}\n{{\"v\":1,\"hash\":\"torn-mid-wri", good.to_line()),
        )
        .unwrap();
        let j = Journal::open(&path, true).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.quarantined(), 1);
        assert!(j.lookup("job-a").is_some());
        let q = std::fs::read_to_string(dir.join("camp.jsonl.quarantine")).unwrap();
        assert!(q.contains("torn-mid-wri"));
        // The rewritten journal now parses cleanly.
        let again = Journal::open(&path, true).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.quarantined(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_job_is_isolated() {
        let mut camp = Campaign::ephemeral("iso", quick_policy());
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let jobs: Vec<(String, u64)> = (0..8).map(|i| (format!("job-{i}"), i)).collect();
        let outs = camp.run(jobs, move |&i, _scale| {
            ran2.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                panic!("deliberate worker panic");
            }
            Ok(i * 2)
        });
        assert_eq!(outs.len(), 8);
        for (i, o) in outs.iter().enumerate() {
            if i == 3 {
                assert_eq!(o.kind, OutcomeKind::Panicked);
                assert!(o.error.as_deref().unwrap().contains("deliberate"));
                assert!(o.result.is_none());
            } else {
                assert_eq!(o.kind, OutcomeKind::Ok);
                assert_eq!(o.result, Some(i as u64 * 2));
            }
        }
        let c = camp.counts();
        assert_eq!((c.ok, c.panicked, c.retries), (7, 1, 1));
        // 8 first attempts + 1 retry of the panicking job.
        assert_eq!(ran.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn structured_error_is_a_failed_job_not_a_dead_campaign() {
        let mut camp = Campaign::ephemeral("err", quick_policy());
        let outs = camp.run(
            vec![("bad".to_string(), 0u64), ("good".to_string(), 1u64)],
            |&i, _| {
                if i == 0 {
                    Err(CrowError::Protocol {
                        violations: 3,
                        first: None,
                    })
                } else {
                    Ok(i)
                }
            },
        );
        assert_eq!(outs[0].kind, OutcomeKind::Panicked);
        assert!(outs[0].error.as_deref().unwrap().contains("violation"));
        assert_eq!(outs[1].kind, OutcomeKind::Ok);
    }

    #[test]
    fn flaky_job_degrades_instead_of_failing() {
        let full = test_scale().insts;
        let mut camp = Campaign::ephemeral("flaky", quick_policy());
        let outs = camp.run(vec![("flaky".to_string(), ())], move |(), scale| {
            if scale.insts == full {
                panic!("only works degraded");
            }
            Ok(scale.insts)
        });
        assert_eq!(outs[0].kind, OutcomeKind::Degraded);
        assert_eq!(outs[0].result, Some(full / 2));
        assert_eq!(outs[0].attempts, 2);
        assert_eq!(camp.dispositions().degraded, 1);
    }

    #[test]
    fn wedged_job_times_out_and_slot_is_refilled() {
        let mut policy = quick_policy();
        policy.timeout = Some(Duration::from_millis(40));
        policy.max_retries = 1;
        policy.threads = 1; // The wedge must not block the other job.
        let mut camp = Campaign::ephemeral("wedge", policy);
        let jobs = vec![("wedge".to_string(), true), ("quick".to_string(), false)];
        let outs = camp.run(jobs, |&wedge, _| {
            if wedge {
                std::thread::sleep(Duration::from_secs(30));
            }
            Ok(1u64)
        });
        assert_eq!(outs[0].kind, OutcomeKind::TimedOut);
        assert!(outs[0].error.as_deref().unwrap().contains("deadline"));
        assert_eq!(outs[1].kind, OutcomeKind::Ok);
        assert_eq!(camp.counts().timed_out, 1);
        // Both attempts of the wedged job were abandoned at their
        // deadline (threads leaked until process exit) — and the leak
        // is now accounted, not silent.
        assert_eq!(camp.counts().abandoned, 2);
        assert_eq!(
            camp.counts().to_json().get("abandoned").unwrap().as_u64(),
            Some(2),
            "abandoned attempts surface in .summary.json outcomes"
        );
    }

    #[test]
    fn journal_resume_skips_completed_jobs() {
        let dir = temp_dir("resume");
        let jobs =
            |n: u64| -> Vec<(String, u64)> { (0..n).map(|i| (format!("job-{i}"), i)).collect() };
        // First invocation completes 3 of 6 jobs, then "crashes".
        let mut first = Campaign::at_dir("camp", quick_policy(), &dir).unwrap();
        let outs = first.run(jobs(3), |&i, _| Ok(i + 100));
        assert!(outs.iter().all(|o| o.kind == OutcomeKind::Ok));
        drop(first);
        // Second invocation resumes: only the 3 missing jobs run.
        let mut policy = quick_policy();
        policy.resume = true;
        let mut second = Campaign::at_dir("camp", policy, &dir).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let outs = second.run(jobs(6), move |&i, _| {
            ran2.fetch_add(1, Ordering::Relaxed);
            Ok(i + 100)
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3, "completed jobs not re-run");
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o.result, Some(i as u64 + 100));
            let expect = if i < 3 {
                OutcomeKind::Skipped
            } else {
                OutcomeKind::Ok
            };
            assert_eq!(o.kind, expect);
            assert_eq!(o.disposition(), OutcomeKind::Ok);
        }
        let c = second.counts();
        assert_eq!((c.ok, c.skipped), (3, 3));
        let d = second.dispositions();
        assert_eq!((d.ok, d.skipped), (6, 0), "dispositions match a clean run");
        // Without resume, the journal is truncated and everything re-runs.
        let mut fresh = Campaign::at_dir("camp", quick_policy(), &dir).unwrap();
        let outs = fresh.run(jobs(2), |&i, _| Ok(i));
        assert!(outs.iter().all(|o| o.kind == OutcomeKind::Ok));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_are_journaled_and_not_rerun() {
        let dir = temp_dir("failjournal");
        let mut policy = quick_policy();
        policy.max_retries = 0;
        let mut first = Campaign::at_dir("camp", policy, &dir).unwrap();
        let outs = first.run(vec![("boom".to_string(), ())], |(), _| -> Result<u64, _> {
            panic!("always")
        });
        assert_eq!(outs[0].kind, OutcomeKind::Panicked);
        drop(first);
        let mut policy = quick_policy();
        policy.resume = true;
        let mut second = Campaign::at_dir("camp", policy, &dir).unwrap();
        let outs = second.run(vec![("boom".to_string(), ())], |(), _| Ok(1u64));
        assert_eq!(outs[0].kind, OutcomeKind::Skipped);
        assert_eq!(outs[0].disposition(), OutcomeKind::Panicked);
        assert!(outs[0].result.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_change_invalidates_journal_entries() {
        let dir = temp_dir("scalefp");
        let mut first = Campaign::at_dir("camp", quick_policy(), &dir).unwrap();
        first.run(vec![("j".to_string(), ())], |(), _| Ok(1u64));
        drop(first);
        let mut policy = quick_policy();
        policy.scale.insts *= 2;
        policy.resume = true;
        let mut second = Campaign::at_dir("camp", policy, &dir).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        second.run(vec![("j".to_string(), ())], move |(), _| {
            ran2.fetch_add(1, Ordering::Relaxed);
            Ok(2u64)
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1, "different scale re-runs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counts_display_and_json() {
        let mut c = OutcomeCounts::default();
        c.add(OutcomeKind::Ok);
        c.add(OutcomeKind::TimedOut);
        c.retries = 2;
        c.abandoned = 3;
        let s = c.to_string();
        assert!(s.contains("ok 1") && s.contains("timed-out 1") && s.contains("retries 2"));
        assert!(s.contains("abandoned 3"));
        assert_eq!(c.total(), 2, "abandoned counts attempts, not jobs");
        assert_eq!(c.failed(), 1);
        let j = c.to_json();
        assert_eq!(j.get("timed_out").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("abandoned").unwrap().as_u64(), Some(3));
        let mut m = OutcomeCounts::default();
        m.merge(&c);
        assert_eq!(m.abandoned, 3);
    }
}
