//! Statistical interval sampling: detailed measured windows separated by
//! functional fast-forward, with per-metric confidence intervals.
//!
//! The event-driven engine only buys ~1.1–1.2× on memory-bound traces
//! because nearly every cycle does real work; the next order of
//! magnitude comes from simulating *less*. A sampled run splits the
//! instruction budget into alternating intervals (SMARTS-style):
//!
//! ```text
//! [detailed warmup][measured window] [FF][warmup][window] [FF][warmup][window] …
//! ```
//!
//! * **Functional fast-forward** drives cores and caches functionally
//!   ([`crow_cpu::CpuCluster::warm`]): trace cursors, page tables and
//!   LLC state advance so architectural state stays warm, but no
//!   per-cycle controller/DRAM simulation runs.
//! * **Detailed warmup** re-engages the full pipeline for a short
//!   stretch so the row buffers, MSHRs and queues the drain emptied
//!   refill before measurement starts.
//! * **Measured windows** run the full detailed pipeline and contribute
//!   one sample per metric (IPC, energy, row-hit rate).
//!
//! Between a measured window and the next fast-forward the driver
//! *drains*: fetch freezes ([`crow_cpu::CpuCluster::set_fetch_frozen`])
//! and the system steps until no in-flight memory state remains
//! ([`crow_cpu::CpuCluster::quiescent`]), so the functional advance
//! never corrupts mid-flight requests. The drain steps through the
//! configured engine — the event engine's skips are provably exact
//! no-ops — so a sampled run is bit-identical for a given
//! `(seed, plan)` across `Engine` and scheduler choices, exactly like a
//! full run.
//!
//! Per-window samples aggregate into [`SampleStats`]: mean and 95%
//! confidence half-width per metric (Student-t for small window counts,
//! 1.96 beyond 30 degrees of freedom).

use crate::config::Engine;
use crate::error::CrowError;
use crate::json::Json;
use crate::system::System;
use crow_dram::ConfigError;

/// An interval-sampling schedule, in instructions per core.
///
/// A plan of `{window, warmup, ff}` measures
/// `total / (window + warmup + ff)` windows (at least one) over a run
/// with per-core target `total`; the first window is preceded by no
/// fast-forward (the regular pre-run warmup covers it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePlan {
    /// Instructions each core retires per measured window (detailed).
    pub window_insts: u64,
    /// Detailed warmup instructions per core before each window.
    pub warmup_insts: u64,
    /// Functionally fast-forwarded instructions per core per interval.
    pub ff_insts: u64,
}

impl SamplePlan {
    /// The default sampling profile: 20 k measured + 10 k warmup per
    /// 200 k-instruction interval (15% detailed). Tuned on the bench
    /// workloads at 2 M instructions/core: shorter warmups bias the
    /// streaming traces (libq reads high by ~8% below 8 k warmup) and
    /// smaller windows both amplify the in-flight window-boundary bias
    /// and leave too few samples for a stable mean. Sampling is meant
    /// for long runs — at 2 M instructions this plan measures 10
    /// windows with every bench case within 2% of its full-run IPC;
    /// stretching `ff` on longer runs (e.g. `20000:10000:370000` at
    /// 4 M) raises the wall-clock win past 5× on memory-bound traces.
    pub fn default_profile() -> Self {
        Self {
            window_insts: 20_000,
            warmup_insts: 10_000,
            ff_insts: 170_000,
        }
    }

    /// Instructions one full interval spans.
    pub fn interval_insts(&self) -> u64 {
        self.window_insts + self.warmup_insts + self.ff_insts
    }

    /// Measured windows a run of `total_insts` per core is split into.
    pub fn windows_for(&self, total_insts: u64) -> u64 {
        (total_insts / self.interval_insts().max(1)).max(1)
    }

    /// Checks the plan is usable.
    ///
    /// # Errors
    ///
    /// Returns [`CrowError::Config`] when the measured window is empty.
    pub fn validate(&self) -> Result<(), CrowError> {
        if self.window_insts == 0 {
            return Err(CrowError::Config(ConfigError::new(
                "SamplePlan",
                "window instructions must be positive",
            )));
        }
        Ok(())
    }

    /// A stable text fingerprint, embedded in campaign/job fingerprints
    /// and checkpoint descriptors so sampled and full runs (or two
    /// different plans) never collide in a journal or cache.
    pub fn fingerprint(&self) -> String {
        format!(
            "w{}h{}f{}",
            self.window_insts, self.warmup_insts, self.ff_insts
        )
    }

    /// Parses a `window:warmup:ff` spec (instructions per core, e.g.
    /// `5000:2500:42500`) or the literal `default`.
    ///
    /// # Errors
    ///
    /// Returns [`CrowError::Config`] on a malformed spec — never a
    /// silent fallback.
    pub fn parse(spec: &str) -> Result<Self, CrowError> {
        let spec = spec.trim();
        if spec == "default" {
            return Ok(Self::default_profile());
        }
        let bad = |reason: String| CrowError::Config(ConfigError::new("SamplePlan", reason));
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(bad(format!(
                "sample spec {spec:?} is not `window:warmup:ff` or `default`"
            )));
        }
        let num = |s: &str, what: &str| -> Result<u64, CrowError> {
            s.trim()
                .parse()
                .map_err(|_| bad(format!("{what} {s:?} is not an unsigned integer")))
        };
        let plan = Self {
            window_insts: num(parts[0], "window instructions")?,
            warmup_insts: num(parts[1], "warmup instructions")?,
            ff_insts: num(parts[2], "fast-forward instructions")?,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Reads the sampling knobs from the environment:
    ///
    /// * `CROW_SAMPLE` — `off`/`0` (no sampling), `default`/`on`/`1`
    ///   (the default profile), or a `window:warmup:ff` spec;
    /// * `CROW_SAMPLE_WINDOW`, `CROW_SAMPLE_WARMUP`, `CROW_SAMPLE_FF` —
    ///   per-field overrides (applied over the default profile when
    ///   `CROW_SAMPLE` is unset).
    ///
    /// Nothing set means no sampling (`Ok(None)`). A malformed value is
    /// a configuration error, never a silent default.
    ///
    /// # Errors
    ///
    /// Returns [`CrowError::Config`] on any malformed knob, and on the
    /// contradiction of `CROW_SAMPLE=off` with field overrides set.
    pub fn from_env() -> Result<Option<Self>, CrowError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`SamplePlan::from_env`] against an arbitrary variable lookup, so
    /// the parsing is testable without mutating process-global state.
    ///
    /// # Errors
    ///
    /// See [`SamplePlan::from_env`].
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Option<Self>, CrowError> {
        let get = |k: &str| -> Result<Option<u64>, CrowError> {
            match lookup(k) {
                None => Ok(None),
                Some(v) => v.trim().parse().map(Some).map_err(|_| {
                    CrowError::Config(ConfigError::new(
                        "SamplePlan",
                        format!("{k}={v:?} is not an unsigned integer"),
                    ))
                }),
            }
        };
        let window = get("CROW_SAMPLE_WINDOW")?;
        let warmup = get("CROW_SAMPLE_WARMUP")?;
        let ff = get("CROW_SAMPLE_FF")?;
        let overridden = window.is_some() || warmup.is_some() || ff.is_some();
        let base = match lookup("CROW_SAMPLE") {
            None if overridden => Some(Self::default_profile()),
            None => None,
            Some(v) => match v.trim() {
                "off" | "0" => {
                    if overridden {
                        return Err(CrowError::Config(ConfigError::new(
                            "SamplePlan",
                            format!("CROW_SAMPLE={v:?} contradicts CROW_SAMPLE_* overrides"),
                        )));
                    }
                    None
                }
                "default" | "on" | "1" => Some(Self::default_profile()),
                spec => Some(Self::parse(spec)?),
            },
        };
        let Some(mut plan) = base else {
            return Ok(None);
        };
        if let Some(w) = window {
            plan.window_insts = w;
        }
        if let Some(h) = warmup {
            plan.warmup_insts = h;
        }
        if let Some(f) = ff {
            plan.ff_insts = f;
        }
        plan.validate()?;
        Ok(Some(plan))
    }
}

/// Mean and 95% confidence half-width over per-window samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStats {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (Student-t with `n−1`
    /// degrees of freedom; 0 when fewer than two samples exist).
    pub ci95: f64,
    /// Number of samples.
    pub n: u64,
}

/// Two-sided 97.5% Student-t quantiles for 1–30 degrees of freedom;
/// beyond that the normal 1.96 is within half a percent.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

impl MetricStats {
    /// Aggregates raw per-window samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Self {
                mean,
                ci95: 0.0,
                n: 1,
            };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
        let t = T95.get(n - 2).copied().unwrap_or(1.96);
        Self {
            mean,
            ci95: t * (var / n as f64).sqrt(),
            n: n as u64,
        }
    }

    fn to_json(self) -> Json {
        Json::Arr(vec![
            Json::f64(self.mean),
            Json::f64(self.ci95),
            Json::u64(self.n),
        ])
    }

    fn decode(v: &Json) -> Option<Self> {
        let a = v.as_arr()?;
        if a.len() != 3 {
            return None;
        }
        let num = |e: &Json| match e {
            Json::Null => Some(f64::NAN),
            other => other.as_f64(),
        };
        Some(Self {
            mean: num(&a[0])?,
            ci95: num(&a[1])?,
            n: a[2].as_u64()?,
        })
    }
}

/// Per-run sampling outcome carried in [`crate::SimReport`] (and through
/// the campaign journal) when the run was sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// The schedule the run used.
    pub plan: SamplePlan,
    /// Measured windows that actually completed.
    pub windows: u64,
    /// Instructions measured in detail, summed over cores and windows.
    pub measured_insts: u64,
    /// Detailed warmup instructions, summed over cores and windows.
    pub warmed_insts: u64,
    /// Functionally fast-forwarded instructions, summed over cores.
    pub skipped_insts: u64,
    /// CPU cycles spent draining in-flight state before fast-forwards.
    pub drain_cycles: u64,
    /// Per-window aggregate IPC (sum over cores).
    pub ipc: MetricStats,
    /// Per-window DRAM energy in nanojoules.
    pub energy_nj: MetricStats,
    /// Per-window DRAM row-hit rate.
    pub row_hit_rate: MetricStats,
}

impl SampleStats {
    /// Journal encoding, nested under the report's `samples` key.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "plan".into(),
                Json::Arr(vec![
                    Json::u64(self.plan.window_insts),
                    Json::u64(self.plan.warmup_insts),
                    Json::u64(self.plan.ff_insts),
                ]),
            ),
            ("windows".into(), Json::u64(self.windows)),
            ("measured_insts".into(), Json::u64(self.measured_insts)),
            ("warmed_insts".into(), Json::u64(self.warmed_insts)),
            ("skipped_insts".into(), Json::u64(self.skipped_insts)),
            ("drain_cycles".into(), Json::u64(self.drain_cycles)),
            ("ipc".into(), self.ipc.to_json()),
            ("energy_nj".into(), self.energy_nj.to_json()),
            ("row_hit_rate".into(), self.row_hit_rate.to_json()),
        ])
    }

    /// Decodes [`SampleStats::to_json`] output; `None` on malformed
    /// input (a present-but-broken `samples` key is a decode error, not
    /// a silent default).
    pub fn decode(v: &Json) -> Option<Self> {
        let plan = v.get("plan")?.as_arr()?;
        if plan.len() != 3 {
            return None;
        }
        let u = |key: &str| v.get(key)?.as_u64();
        Some(Self {
            plan: SamplePlan {
                window_insts: plan[0].as_u64()?,
                warmup_insts: plan[1].as_u64()?,
                ff_insts: plan[2].as_u64()?,
            },
            windows: u("windows")?,
            measured_insts: u("measured_insts")?,
            warmed_insts: u("warmed_insts")?,
            skipped_insts: u("skipped_insts")?,
            drain_cycles: u("drain_cycles")?,
            ipc: MetricStats::decode(v.get("ipc")?)?,
            energy_nj: MetricStats::decode(v.get("energy_nj")?)?,
            row_hit_rate: MetricStats::decode(v.get("row_hit_rate")?)?,
        })
    }
}

/// What [`drive`] hands back to [`System::run`].
pub(crate) struct SampleOutcome {
    pub stats: SampleStats,
    /// Per-core mean window IPC.
    pub ipc: Vec<f64>,
    /// Per-core mean window MPKI.
    pub mpki: Vec<f64>,
    /// Every scheduled window completed within the cycle cap.
    pub complete: bool,
}

/// DRAM-side counters a window measures as deltas.
fn snapshot(sys: &System) -> (f64, u64, u64) {
    let mut energy = 0.0;
    let mut hits = 0u64;
    let mut opens = 0u64;
    for mc in &sys.mcs {
        energy += mc.energy().total_nj();
        let s = mc.stats();
        hits += s.row_hits;
        opens += s.row_hits + s.row_misses + s.row_conflicts;
    }
    (energy, hits, opens)
}

/// Runs `sys` under the sampling schedule. The caller (`System::run`)
/// already handled the pre-run functional warmup; this drives the
/// alternating (drain, fast-forward, detailed warmup, measured window)
/// intervals and aggregates per-window samples.
pub(crate) fn drive(sys: &mut System, plan: SamplePlan, max_cpu_cycles: u64) -> SampleOutcome {
    let event = matches!(sys.cfg.engine, Engine::EventDriven);
    let cores = sys.cluster.num_cores() as u64;
    let windows = plan.windows_for(sys.cfg.cpu.target_insts);
    let mut ipc_samples = Vec::with_capacity(windows as usize);
    let mut energy_samples = Vec::with_capacity(windows as usize);
    let mut rhr_samples = Vec::with_capacity(windows as usize);
    let mut core_ipc: Vec<Vec<f64>> = vec![Vec::new(); cores as usize];
    let mut core_mpki: Vec<Vec<f64>> = vec![Vec::new(); cores as usize];
    let mut drain_cycles = 0u64;
    let mut warmed = 0u64;
    let mut skipped = 0u64;
    let mut done_windows = 0u64;

    for w in 0..windows {
        if sys.cpu_cycle >= max_cpu_cycles {
            break;
        }
        if w > 0 {
            // Drain: freeze fetch and step the detailed pipeline until
            // nothing is in flight, so the functional fast-forward acts
            // on clean architectural state. The event engine's skips
            // here are the usual provably exact no-ops.
            let drain_start = sys.cpu_cycle;
            sys.cluster.set_fetch_frozen(true);
            while !sys.cluster.quiescent() && sys.cpu_cycle < max_cpu_cycles {
                sys.step(event);
            }
            sys.cluster.set_fetch_frozen(false);
            drain_cycles += sys.cpu_cycle - drain_start;
            if !sys.cluster.quiescent() {
                break; // cycle cap hit mid-drain
            }
            // The drain emptied the queues but open-page policy leaves
            // row buffers open; close them through the normal precharge
            // bookkeeping before the fast-forward mutates the CROW
            // table underneath them — a stale open pair would otherwise
            // write through rows whose table entries no longer exist.
            let mem_now = sys.mem_cycle;
            for mc in &mut sys.mcs {
                mc.quiesce_open_rows(mem_now);
            }
            // Fast-forward functionally, replaying every LLC miss (and
            // dirty eviction) into its controller so address-indexed
            // DRAM state — the CROW table's install/eviction/LRU
            // dynamics — evolves across the skipped instructions. Queues
            // stay behind; the detailed warmup below rebuilds row
            // buffers and queues before measurement.
            let System {
                cluster,
                mcs,
                mapper,
                ..
            } = sys;
            cluster.warm_with(plan.ff_insts, &mut |pa| {
                let a = mapper.decode(pa);
                mcs[a.channel as usize].warm_touch(a.rank, a.bank, a.row);
            });
            skipped += plan.ff_insts * cores;
        }
        if plan.warmup_insts > 0 {
            sys.cluster.begin_phase(plan.warmup_insts);
            sys.run_serial(max_cpu_cycles);
            if !sys.cluster.done() {
                break; // cycle cap hit mid-warmup
            }
            warmed += plan.warmup_insts * cores;
        }
        let start = sys.cpu_cycle;
        let (e0, hits0, opens0) = snapshot(sys);
        sys.cluster.begin_phase(plan.window_insts);
        sys.run_serial(max_cpu_cycles);
        let finished = sys.cluster.done();
        let (e1, hits1, opens1) = snapshot(sys);
        let mut ipc_sum = 0.0;
        for i in 0..cores as usize {
            // A core that never hit the window target (parked trace or
            // cycle cap) samples 0, matching the full-run convention.
            let ipc = match sys.cluster.finish_cycle(i) {
                Some(fc) => plan.window_insts as f64 / fc.saturating_sub(start).max(1) as f64,
                None => 0.0,
            };
            core_ipc[i].push(ipc);
            core_mpki[i].push(sys.cluster.mpki(i));
            ipc_sum += ipc;
        }
        ipc_samples.push(ipc_sum);
        energy_samples.push(e1 - e0);
        rhr_samples
            .push(hits1.saturating_sub(hits0) as f64 / opens1.saturating_sub(opens0).max(1) as f64);
        done_windows += 1;
        if !finished {
            break; // cycle cap hit mid-window
        }
    }

    let mean = |s: &[f64]| {
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    };
    let complete = done_windows == windows && sys.cluster.done();
    SampleOutcome {
        stats: SampleStats {
            plan,
            windows: done_windows,
            measured_insts: done_windows * plan.window_insts * cores,
            warmed_insts: warmed,
            skipped_insts: skipped,
            drain_cycles,
            ipc: MetricStats::from_samples(&ipc_samples),
            energy_nj: MetricStats::from_samples(&energy_samples),
            row_hit_rate: MetricStats::from_samples(&rhr_samples),
        },
        ipc: core_ipc.iter().map(|s| mean(s)).collect(),
        mpki: core_mpki.iter().map(|s| mean(s)).collect(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_and_fingerprint() {
        let p = SamplePlan::parse("5000:2500:42500").unwrap();
        assert_eq!(
            p,
            SamplePlan {
                window_insts: 5000,
                warmup_insts: 2500,
                ff_insts: 42_500
            }
        );
        assert_eq!(p.fingerprint(), "w5000h2500f42500");
        assert_eq!(p.interval_insts(), 50_000);
        assert_eq!(p.windows_for(400_000), 8);
        assert_eq!(p.windows_for(10_000), 1, "at least one window");
        assert_eq!(
            SamplePlan::parse(" default ").unwrap(),
            SamplePlan::default_profile()
        );
        for bad in ["", "5000", "1:2", "1:2:3:4", "a:2:3", "0:2:3"] {
            assert!(SamplePlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn env_lookup_is_strict() {
        // Nothing set: no sampling.
        assert_eq!(SamplePlan::from_lookup(|_| None).unwrap(), None);
        // Explicit spec.
        let p = SamplePlan::from_lookup(|k| (k == "CROW_SAMPLE").then(|| "100:50:850".into()))
            .unwrap()
            .unwrap();
        assert_eq!(p.window_insts, 100);
        // Named profile.
        let p = SamplePlan::from_lookup(|k| (k == "CROW_SAMPLE").then(|| "default".into()))
            .unwrap()
            .unwrap();
        assert_eq!(p, SamplePlan::default_profile());
        // Field overrides alone start from the default profile.
        let p = SamplePlan::from_lookup(|k| (k == "CROW_SAMPLE_FF").then(|| "90000".into()))
            .unwrap()
            .unwrap();
        assert_eq!(p.ff_insts, 90_000);
        assert_eq!(p.window_insts, SamplePlan::default_profile().window_insts);
        // Overrides compose with an explicit base.
        let p = SamplePlan::from_lookup(|k| match k {
            "CROW_SAMPLE" => Some("100:50:850".into()),
            "CROW_SAMPLE_WARMUP" => Some("75".into()),
            _ => None,
        })
        .unwrap()
        .unwrap();
        assert_eq!((p.window_insts, p.warmup_insts, p.ff_insts), (100, 75, 850));
        // Explicit off.
        let off = SamplePlan::from_lookup(|k| (k == "CROW_SAMPLE").then(|| "off".into())).unwrap();
        assert_eq!(off, None);
        // Malformed values are configuration errors, never silent
        // defaults — same contract as CROW_THREADS/CROW_SERVE_*.
        for (k, v) in [
            ("CROW_SAMPLE", "fast"),
            ("CROW_SAMPLE", "1:2"),
            ("CROW_SAMPLE", "0:1:2"),
            ("CROW_SAMPLE_WINDOW", "5k"),
            ("CROW_SAMPLE_WINDOW", "0"),
            ("CROW_SAMPLE_WARMUP", "-1"),
            ("CROW_SAMPLE_FF", "ninety"),
        ] {
            let err = SamplePlan::from_lookup(|q| (q == k).then(|| v.into()))
                .expect_err(&format!("{k}={v} must be rejected"))
                .to_string();
            assert!(err.contains("SamplePlan"), "typed error: {err}");
        }
        // off + overrides is a contradiction, not a silent winner.
        let err = SamplePlan::from_lookup(|k| match k {
            "CROW_SAMPLE" => Some("off".into()),
            "CROW_SAMPLE_WINDOW" => Some("100".into()),
            _ => None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("contradicts"), "{err}");
    }

    #[test]
    fn ci_math_matches_hand_computation() {
        let s = MetricStats::from_samples(&[]);
        assert_eq!((s.mean, s.ci95, s.n), (0.0, 0.0, 0));
        let s = MetricStats::from_samples(&[2.5]);
        assert_eq!((s.mean, s.ci95, s.n), (2.5, 0.0, 1));
        // Two samples: mean 2, sample stddev sqrt(2), CI = 12.706·1.
        let s = MetricStats::from_samples(&[1.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.ci95 - 12.706).abs() < 1e-9, "{}", s.ci95);
        // Five identical samples: zero variance.
        let s = MetricStats::from_samples(&[4.0; 5]);
        assert_eq!((s.mean, s.ci95, s.n), (4.0, 0.0, 5));
        // Large n falls back to the normal quantile.
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 2)).collect();
        let s = MetricStats::from_samples(&samples);
        let sd = (samples.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>() / 99.0).sqrt();
        assert!((s.ci95 - 1.96 * sd / 10.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stats_json_roundtrips_bit_exact() {
        let stats = SampleStats {
            plan: SamplePlan::default_profile(),
            windows: 8,
            measured_insts: 40_000,
            warmed_insts: 20_000,
            skipped_insts: 297_500,
            drain_cycles: 1234,
            ipc: MetricStats {
                mean: 0.1 + 0.2,
                ci95: 1.0 / 3.0,
                n: 8,
            },
            energy_nj: MetricStats {
                mean: 1e-300,
                ci95: 0.30000000000000004,
                n: 8,
            },
            row_hit_rate: MetricStats {
                mean: f64::NAN,
                ci95: 0.0,
                n: 8,
            },
        };
        let text = stats.to_json().render();
        let back = SampleStats::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.plan, stats.plan);
        assert_eq!(back.ipc.mean.to_bits(), stats.ipc.mean.to_bits());
        assert_eq!(
            back.energy_nj.ci95.to_bits(),
            stats.energy_nj.ci95.to_bits()
        );
        assert!(back.row_hit_rate.mean.is_nan(), "NaN survives as null");
        assert_eq!(back.windows, 8);
        // Re-encoding reproduces the bytes (modulo the NaN→null mapping,
        // which is already applied on the first encode).
        assert_eq!(back.to_json().render(), text);
        // Malformed nested stats are decode errors.
        let mut v = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "ipc" {
                    *val = Json::Arr(vec![Json::u64(1)]);
                }
            }
        }
        assert!(SampleStats::decode(&v).is_none());
    }
}
