//! Process-isolated job execution for the simulation service: child
//! sandboxes, hard kills, circuit breakers, and crash-loop backoff.
//!
//! PR 6's `crow-serve` runs jobs as `catch_unwind` threads inside the
//! server process. That contains panics, but three failure classes leak
//! through a thread boundary by construction:
//!
//! * a **wedged** attempt is merely *abandoned* — its thread keeps
//!   burning a core until the process exits;
//! * a **runaway allocation** is shared-fate — the kernel OOM-kills the
//!   whole server, healthy jobs included;
//! * a **corrupting** job shares an address space with every other job.
//!
//! [`Supervisor`] restores real fault containment by re-exec'ing the
//! server binary as a sandboxed child per attempt (`crow-serve
//! --job-runner <parent-pid>`): the parent writes one job spec to the
//! child's stdin, the child runs it through the ordinary single-job
//! [`Campaign`] machinery and writes a result envelope to stdout, and
//! the parent polls `try_wait` while enforcing the job deadline and an
//! RSS cap read from `/proc/<pid>/statm` — breaching either gets the
//! child SIGKILLed and reaped, so wedged and memory-bomb jobs actually
//! *die*.
//!
//! On top of the process boundary sit two service-protection layers:
//!
//! * **per-fingerprint circuit breakers** ([`Breakers`]): K consecutive
//!   child crashes/kills for one fingerprint open the breaker; further
//!   duplicates are answered with a structured `quarantined` error for
//!   the cooldown, then a single half-open probe decides between
//!   closing the breaker and re-opening it. A poison job cannot occupy
//!   the worker pool in a crash loop.
//! * **exponential crash-loop backoff with jitter**: a worker slot that
//!   just reaped a crashed child waits `base * 2^crashes` (capped,
//!   jittered ±50%) before the retry attempt, so a crash storm cannot
//!   re-spawn children as fast as the kernel can reap them.
//!
//! The hosting binary must dispatch `--job-runner` to
//! [`job_runner_main`] before any other argument parsing (`crow-serve`
//! does); embedders that cannot rearrange their `main` point
//! [`SuperviseConfig::runner_exe`] at a binary that does.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng as _, SeedableRng as _};

use crate::campaign::{fnv1a64, Campaign, CampaignPolicy, Journaled as _, OutcomeKind};
use crate::error::CrowError;
use crate::experiments::Scale;
use crate::json::Json;
use crate::server::SimJob;

fn sup_err(reason: String) -> CrowError {
    CrowError::Config(crow_dram::ConfigError::new("SuperviseConfig", reason))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// --- configuration ----------------------------------------------------

/// Where an accepted job executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process `catch_unwind` worker threads (PR 6 behavior, the
    /// default): cheapest, but wedged attempts linger and a runaway
    /// allocation is shared-fate.
    Thread,
    /// One sandboxed child process per attempt, hard-killed on deadline
    /// or RSS-cap breach, with circuit breakers and crash-loop backoff.
    Process,
}

impl IsolationMode {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            IsolationMode::Thread => "thread",
            IsolationMode::Process => "process",
        }
    }
}

/// Supervision knobs (env-overridable; see
/// [`SuperviseConfig::from_lookup`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseConfig {
    /// Job execution substrate (`CROW_SERVE_ISOLATION=process|thread`,
    /// default thread).
    pub isolation: IsolationMode,
    /// Child RSS cap in bytes; breach is a SIGKILL with a structured
    /// `resource-limit` error (`CROW_SERVE_RSS_MB`, default 4096 MiB;
    /// 0 disables the cap).
    pub rss_cap: Option<u64>,
    /// Consecutive child crashes/kills of one fingerprint that open its
    /// circuit breaker (`CROW_SERVE_BREAKER_K`, default 3; 0 disables
    /// the breaker).
    pub breaker_k: u32,
    /// How long an open breaker quarantines duplicates before allowing
    /// a half-open probe (`CROW_SERVE_BREAKER_COOLDOWN_SECS`, default
    /// 30 s).
    pub breaker_cooldown: Duration,
    /// Crash-loop backoff base: a retry after `n` consecutive child
    /// crashes waits `base * 2^(n-1)` (capped, jittered) before the
    /// slot refills.
    pub backoff_base: Duration,
    /// Ceiling of the exponential backoff.
    pub backoff_cap: Duration,
    /// The binary to re-exec as the job runner; `None` uses
    /// `current_exe()` (correct for `crow-serve`, which dispatches
    /// `--job-runner` before its own argument parsing).
    pub runner_exe: Option<PathBuf>,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self {
            isolation: IsolationMode::Thread,
            rss_cap: Some(4096 << 20),
            breaker_k: 3,
            breaker_cooldown: Duration::from_secs(30),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            runner_exe: None,
        }
    }
}

impl SuperviseConfig {
    /// Reads the knobs from the environment on top of the defaults.
    /// Malformed values are configuration errors, never silent defaults.
    pub fn from_env() -> Result<Self, CrowError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`SuperviseConfig::from_env`] against an arbitrary lookup
    /// (testable without mutating process-global state).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, CrowError> {
        let mut c = Self::default();
        if let Some(v) = lookup("CROW_SERVE_ISOLATION") {
            c.isolation = match v.trim() {
                "process" => IsolationMode::Process,
                "thread" => IsolationMode::Thread,
                _ => {
                    return Err(sup_err(format!(
                        "CROW_SERVE_ISOLATION={v:?} must be \"process\" or \"thread\""
                    )))
                }
            };
        }
        let uint = |k: &str| -> Result<Option<u64>, CrowError> {
            match lookup(k) {
                None => Ok(None),
                Some(v) => v
                    .trim()
                    .parse()
                    .map(Some)
                    .map_err(|_| sup_err(format!("{k}={v:?} is not an unsigned integer"))),
            }
        };
        if let Some(mb) = uint("CROW_SERVE_RSS_MB")? {
            c.rss_cap = (mb > 0).then_some(mb << 20);
        }
        if let Some(k) = uint("CROW_SERVE_BREAKER_K")? {
            c.breaker_k = u32::try_from(k)
                .map_err(|_| sup_err("CROW_SERVE_BREAKER_K does not fit in 32 bits".into()))?;
        }
        if let Some(v) = lookup("CROW_SERVE_BREAKER_COOLDOWN_SECS") {
            let s: f64 = v.trim().parse().map_err(|_| {
                sup_err(format!(
                    "CROW_SERVE_BREAKER_COOLDOWN_SECS={v:?} is not a number of seconds"
                ))
            })?;
            if !(s >= 0.0 && s.is_finite()) {
                return Err(sup_err(format!(
                    "CROW_SERVE_BREAKER_COOLDOWN_SECS={v:?} must be a finite non-negative number"
                )));
            }
            c.breaker_cooldown = Duration::from_secs_f64(s);
        }
        Ok(c)
    }
}

// --- circuit breakers -------------------------------------------------

/// One breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Failures below K: requests run normally.
    Closed,
    /// K consecutive failures: duplicates quarantined until cooldown.
    Open,
    /// Cooldown elapsed: exactly one probe runs; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
struct BreakerEntry {
    state: BreakerState,
    consecutive: u32,
    open_until: Instant,
    probing: bool,
}

/// What [`Breakers::admit`] decided for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed (or disabled): run normally.
    Run,
    /// Breaker half-open and this request won the probe slot: run, and
    /// the outcome moves the breaker. The caller must end the probe via
    /// `record_success`/`record_failure`/`release_probe`.
    Probe,
    /// Breaker open (or a probe is already in flight): answer with a
    /// structured `quarantined` error instead of running.
    Quarantined {
        /// Conservative wait before a retry can be admitted.
        retry_after: Duration,
    },
}

/// Per-fingerprint circuit breakers.
///
/// State machine per fingerprint: `Closed` --K consecutive child
/// crashes/kills--> `Open` --cooldown--> `HalfOpen` --probe success-->
/// `Closed` (entry dropped) / --probe failure--> `Open` again.
/// Structured job failures (the child ran fine and reported an error)
/// never count: the breaker protects against *process-level* poison,
/// not unsatisfiable requests.
#[derive(Debug)]
pub struct Breakers {
    k: u32,
    cooldown: Duration,
    entries: Mutex<HashMap<String, BreakerEntry>>,
}

/// One breaker's externally visible state (health reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerInfo {
    /// The fingerprint the breaker guards.
    pub fingerprint: String,
    /// Current state (open entries past cooldown report half-open).
    pub state: BreakerState,
    /// Consecutive countable failures recorded.
    pub consecutive: u32,
    /// Remaining quarantine, zero unless open.
    pub retry_after: Duration,
}

impl Breakers {
    /// Breakers opening after `k` consecutive failures (0 disables) and
    /// quarantining for `cooldown`.
    pub fn new(k: u32, cooldown: Duration) -> Self {
        Self {
            k,
            cooldown,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The configured failure threshold.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Gate one request for `fp`.
    pub fn admit(&self, fp: &str) -> Admit {
        if self.k == 0 {
            return Admit::Run;
        }
        let mut m = lock(&self.entries);
        let Some(e) = m.get_mut(fp) else {
            return Admit::Run;
        };
        match e.state {
            BreakerState::Closed => Admit::Run,
            BreakerState::Open => {
                let now = Instant::now();
                if now >= e.open_until {
                    e.state = BreakerState::HalfOpen;
                    e.probing = true;
                    Admit::Probe
                } else {
                    Admit::Quarantined {
                        retry_after: e.open_until - now,
                    }
                }
            }
            BreakerState::HalfOpen => {
                if e.probing {
                    Admit::Quarantined {
                        retry_after: self.cooldown,
                    }
                } else {
                    e.probing = true;
                    Admit::Probe
                }
            }
        }
    }

    /// Records one countable failure (child crash, deadline kill, RSS
    /// kill). Returns whether the breaker is open afterwards.
    pub fn record_failure(&self, fp: &str) -> bool {
        if self.k == 0 {
            return false;
        }
        let mut m = lock(&self.entries);
        let e = m.entry(fp.to_string()).or_insert(BreakerEntry {
            state: BreakerState::Closed,
            consecutive: 0,
            open_until: Instant::now(),
            probing: false,
        });
        e.consecutive += 1;
        match e.state {
            BreakerState::Closed if e.consecutive < self.k => false,
            // Threshold reached, probe failed, or already open: (re)open.
            _ => {
                e.state = BreakerState::Open;
                e.open_until = Instant::now() + self.cooldown;
                e.probing = false;
                true
            }
        }
    }

    /// Records a success: the breaker closes and its entry is dropped.
    pub fn record_success(&self, fp: &str) {
        lock(&self.entries).remove(fp);
    }

    /// Returns a held probe slot without deciding the breaker (the
    /// probe ended without process-level evidence: cache hit, spawn
    /// failure, or a structured job error).
    pub fn release_probe(&self, fp: &str) {
        if let Some(e) = lock(&self.entries).get_mut(fp) {
            if e.state == BreakerState::HalfOpen {
                e.probing = false;
            }
        }
    }

    /// All live breaker entries (health reporting).
    pub fn snapshot(&self) -> Vec<BreakerInfo> {
        let now = Instant::now();
        let mut out: Vec<BreakerInfo> = lock(&self.entries)
            .iter()
            .map(|(fp, e)| BreakerInfo {
                fingerprint: fp.clone(),
                state: e.state,
                consecutive: e.consecutive,
                retry_after: match e.state {
                    BreakerState::Open => e.open_until.saturating_duration_since(now),
                    _ => Duration::ZERO,
                },
            })
            .collect();
        out.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        out
    }
}

// --- the supervisor ---------------------------------------------------

/// Cumulative child-process counters (monotonic over the server's
/// lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupCounters {
    /// Children spawned.
    pub spawned: u64,
    /// Children SIGKILLed at the job deadline.
    pub killed_deadline: u64,
    /// Children SIGKILLed over the RSS cap.
    pub killed_rss: u64,
    /// Children that exited abnormally (or produced garbage).
    pub crashes: u64,
    /// Retry attempts beyond the first, across all jobs.
    pub retries: u64,
}

/// One live child (health reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct ChildSnapshot {
    /// OS process id.
    pub pid: u32,
    /// The fingerprint the child is executing.
    pub fingerprint: String,
    /// Time since spawn.
    pub elapsed: Duration,
}

#[derive(Debug)]
struct ChildInfo {
    fingerprint: String,
    started: Instant,
}

/// The terminal outcome of one supervised (multi-attempt) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SupOutcome {
    /// How the job ended.
    pub kind: OutcomeKind,
    /// Attempts executed (spawned children).
    pub attempts: u32,
    /// The last failure message, for failed jobs.
    pub error: Option<String>,
    /// The child-produced report document, for successful jobs.
    pub report: Option<Json>,
}

/// How one child run ended, before retry policy is applied.
enum ChildEnd {
    /// Exit 0 with a well-formed result envelope.
    Output(Json),
    /// Abnormal exit, or exit 0 without a parseable envelope.
    Crash(String),
    /// SIGKILLed at the deadline.
    KilledDeadline(Duration),
    /// SIGKILLed over the RSS cap.
    KilledRss { rss_mib: u64, cap_mib: u64 },
    /// The child could not be spawned at all (not the job's fault).
    Spawn(String),
}

/// How often the parent polls a live child (exit, deadline, RSS).
const CHILD_POLL: Duration = Duration::from_millis(10);

/// Supervises sandboxed child processes for the serve worker pool (see
/// the module docs).
#[derive(Debug)]
pub struct Supervisor {
    cfg: SuperviseConfig,
    exe: PathBuf,
    /// The parent pid, passed as the child's second argument so leaked
    /// children are attributable to one server instance (`supervise_gate`
    /// scans `/proc/*/cmdline` for it).
    tag: String,
    children: Mutex<HashMap<u32, ChildInfo>>,
    breakers: Breakers,
    spawned: AtomicU64,
    killed_deadline: AtomicU64,
    killed_rss: AtomicU64,
    crashes: AtomicU64,
    retries: AtomicU64,
}

impl Supervisor {
    /// Builds a supervisor, resolving the runner executable.
    pub fn new(cfg: SuperviseConfig) -> Result<Self, CrowError> {
        let exe = match &cfg.runner_exe {
            Some(p) => p.clone(),
            None => std::env::current_exe()
                .map_err(|e| sup_err(format!("cannot resolve current_exe: {e}")))?,
        };
        Ok(Self {
            breakers: Breakers::new(cfg.breaker_k, cfg.breaker_cooldown),
            cfg,
            exe,
            tag: std::process::id().to_string(),
            children: Mutex::new(HashMap::new()),
            spawned: AtomicU64::new(0),
            killed_deadline: AtomicU64::new(0),
            killed_rss: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        })
    }

    /// The per-fingerprint circuit breakers.
    pub fn breakers(&self) -> &Breakers {
        &self.breakers
    }

    /// Cumulative counters.
    pub fn counters(&self) -> SupCounters {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        SupCounters {
            spawned: g(&self.spawned),
            killed_deadline: g(&self.killed_deadline),
            killed_rss: g(&self.killed_rss),
            crashes: g(&self.crashes),
            retries: g(&self.retries),
        }
    }

    /// Children alive right now.
    pub fn live_children(&self) -> Vec<ChildSnapshot> {
        let now = Instant::now();
        let mut out: Vec<ChildSnapshot> = lock(&self.children)
            .iter()
            .map(|(&pid, c)| ChildSnapshot {
                pid,
                fingerprint: c.fingerprint.clone(),
                elapsed: now.saturating_duration_since(c.started),
            })
            .collect();
        out.sort_by_key(|c| c.pid);
        out
    }

    /// Executes one job to a terminal outcome: spawn a child per
    /// attempt, enforce deadline and RSS cap with SIGKILL, apply the
    /// degrade-ladder retry policy with crash-loop backoff, and keep the
    /// fingerprint's circuit breaker posted. The caller has already
    /// passed [`Breakers::admit`]; this method ends any held probe.
    pub fn execute(&self, fp: &str, job: &SimJob, policy: &CampaignPolicy) -> SupOutcome {
        let mut attempt: u32 = 0;
        let mut crashes: u32 = 0;
        loop {
            let scale = policy.scale_for_attempt(attempt);
            let spec = runner_spec(job, scale, attempt);
            let end = self.run_child(fp, &spec, policy.timeout);
            let (kind, err, countable) = match end {
                ChildEnd::Output(env) => {
                    if env.get("ok").and_then(Json::as_bool) == Some(true) {
                        match env.get("report") {
                            Some(report) => {
                                self.breakers.record_success(fp);
                                let kind = if scale == policy.scale {
                                    OutcomeKind::Ok
                                } else {
                                    OutcomeKind::Degraded
                                };
                                return SupOutcome {
                                    kind,
                                    attempts: attempt + 1,
                                    error: None,
                                    report: Some(report.clone()),
                                };
                            }
                            None => {
                                self.crashes.fetch_add(1, Ordering::Relaxed);
                                (
                                    OutcomeKind::Panicked,
                                    "crash: child result envelope has no report".to_string(),
                                    true,
                                )
                            }
                        }
                    } else {
                        // A structured failure: the child process worked;
                        // the job itself errored. Retryable, but not
                        // breaker evidence.
                        let msg = env
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("child reported an unspecified error");
                        (OutcomeKind::Panicked, format!("error: {msg}"), false)
                    }
                }
                ChildEnd::Crash(detail) => {
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                    (OutcomeKind::Panicked, format!("crash: {detail}"), true)
                }
                ChildEnd::KilledDeadline(d) => (
                    OutcomeKind::TimedOut,
                    format!("deadline: child exceeded {d:?} (SIGKILL)"),
                    true,
                ),
                ChildEnd::KilledRss { rss_mib, cap_mib } => (
                    OutcomeKind::Panicked,
                    CrowError::ResourceLimit { rss_mib, cap_mib }.to_string(),
                    true,
                ),
                ChildEnd::Spawn(e) => {
                    self.breakers.release_probe(fp);
                    return SupOutcome {
                        kind: OutcomeKind::Panicked,
                        attempts: attempt + 1,
                        error: Some(format!("spawn: {e}")),
                        report: None,
                    };
                }
            };
            let opened = if countable {
                crashes += 1;
                self.breakers.record_failure(fp)
            } else {
                false
            };
            if opened {
                // Stop retrying a poison fingerprint the moment its
                // breaker opens; duplicates are now quarantined at
                // admission.
                return SupOutcome {
                    kind,
                    attempts: attempt + 1,
                    error: Some(format!(
                        "{err}; circuit breaker opened after {} consecutive child failure(s)",
                        self.breakers.k()
                    )),
                    report: None,
                };
            }
            if attempt >= policy.max_retries {
                if !countable {
                    self.breakers.release_probe(fp);
                }
                return SupOutcome {
                    kind,
                    attempts: attempt + 1,
                    error: Some(err),
                    report: None,
                };
            }
            attempt += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.backoff(fp, attempt, crashes);
        }
    }

    /// Crash-loop backoff before a retry: exponential in the number of
    /// consecutive child crashes, capped, and jittered to ±50% so a
    /// storm of identical poison jobs decorrelates.
    fn backoff(&self, fp: &str, attempt: u32, crashes: u32) {
        let exp = crashes.max(attempt).saturating_sub(1).min(10);
        let raw = self.cfg.backoff_base.saturating_mul(1 << exp);
        let capped = raw.min(self.cfg.backoff_cap);
        let seed = fnv1a64(
            format!(
                "{fp}/{attempt}/{}/{}",
                self.tag,
                self.spawned.load(Ordering::Relaxed)
            )
            .as_bytes(),
        );
        let jitter = StdRng::seed_from_u64(seed).gen_range(0.5..1.5);
        std::thread::sleep(capped.mul_f64(jitter));
    }

    /// Spawns, feeds, watches, and reaps one child.
    fn run_child(&self, fp: &str, spec: &str, deadline: Option<Duration>) -> ChildEnd {
        let mut cmd = Command::new(&self.exe);
        cmd.arg("--job-runner")
            .arg(&self.tag)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => return ChildEnd::Spawn(e.to_string()),
        };
        self.spawned.fetch_add(1, Ordering::Relaxed);
        let pid = child.id();
        lock(&self.children).insert(
            pid,
            ChildInfo {
                fingerprint: fp.to_string(),
                started: Instant::now(),
            },
        );
        let end = self.watch(&mut child, spec, deadline);
        lock(&self.children).remove(&pid);
        end
    }

    /// The per-child supervision loop. On every return path the child
    /// has been reaped (`wait`), so no zombie survives.
    fn watch(&self, child: &mut Child, spec: &str, deadline: Option<Duration>) -> ChildEnd {
        // The stdout reader must exist before the child can fill the
        // pipe, or a chatty child deadlocks against our try_wait loop.
        let reader = child.stdout.take().map(|mut out| {
            std::thread::spawn(move || {
                let mut text = String::new();
                let _ = out.read_to_string(&mut text);
                text
            })
        });
        let drain = |r: Option<std::thread::JoinHandle<String>>| {
            r.and_then(|h| h.join().ok()).unwrap_or_default()
        };
        if let Some(mut stdin) = child.stdin.take() {
            // A write failure means the child died instantly; its exit
            // status tells that story better than the EPIPE would.
            let _ = stdin.write_all(spec.as_bytes());
            let _ = stdin.write_all(b"\n");
        }
        let started = Instant::now();
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    drain(reader);
                    return ChildEnd::Crash(format!("wait failed: {e}"));
                }
            }
            if let Some(d) = deadline {
                if started.elapsed() >= d {
                    let _ = child.kill(); // SIGKILL on unix.
                    let _ = child.wait(); // Reap; no zombie.
                    drain(reader);
                    self.killed_deadline.fetch_add(1, Ordering::Relaxed);
                    return ChildEnd::KilledDeadline(d);
                }
            }
            if let Some(cap) = self.cfg.rss_cap {
                if let Some(rss) = rss_bytes(child.id()) {
                    if rss > cap {
                        let _ = child.kill();
                        let _ = child.wait();
                        drain(reader);
                        self.killed_rss.fetch_add(1, Ordering::Relaxed);
                        return ChildEnd::KilledRss {
                            rss_mib: rss >> 20,
                            cap_mib: cap >> 20,
                        };
                    }
                }
            }
            std::thread::sleep(CHILD_POLL);
        };
        let out = drain(reader);
        if !status.success() {
            return ChildEnd::Crash(format!("child exited abnormally ({status})"));
        }
        let envelope = out
            .lines()
            .find(|l| !l.trim().is_empty())
            .and_then(|l| Json::parse(l).ok());
        match envelope {
            Some(env) if env.get("v").and_then(Json::as_u64) == Some(1) => ChildEnd::Output(env),
            _ => ChildEnd::Crash("child exited 0 without a result envelope".into()),
        }
    }
}

/// Resident set size of `pid` in bytes, from `/proc/<pid>/statm`
/// (field 2 is resident pages; Linux pages are 4 KiB on every platform
/// this workspace targets). `None` on non-Linux hosts or a raced exit —
/// the cap is then simply not enforced for that poll tick.
fn rss_bytes(pid: u32) -> Option<u64> {
    let text = std::fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    let resident: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * 4096)
}

/// The one-line job spec the parent writes to a child's stdin.
fn runner_spec(job: &SimJob, scale: Scale, attempt: u32) -> String {
    Json::obj(vec![
        ("v", Json::u64(1)),
        ("attempt", Json::u64(u64::from(attempt))),
        ("insts", Json::u64(scale.insts)),
        ("warmup", Json::u64(scale.warmup)),
        ("job", job.to_json()),
    ])
    .render()
}

// --- the child side ---------------------------------------------------

/// Entry point of the sandboxed job runner (`crow-serve --job-runner`):
/// reads one job spec line from stdin, runs it through a single-job
/// [`Campaign`], writes the result envelope to stdout, and exits.
/// Deadlines and resource caps are the *parent's* job (SIGKILL); the
/// child itself runs the attempt unbounded.
pub fn job_runner_main() -> ! {
    match run_spec_from_stdin() {
        Ok(envelope) => {
            println!("{envelope}");
            let _ = std::io::stdout().flush();
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("crow-serve --job-runner: {msg}");
            std::process::exit(3);
        }
    }
}

fn run_spec_from_stdin() -> Result<String, String> {
    let mut line = String::new();
    std::io::stdin()
        .read_line(&mut line)
        .map_err(|e| format!("stdin: {e}"))?;
    let spec = Json::parse(line.trim()).map_err(|e| format!("spec is not JSON: {e}"))?;
    if spec.get("v").and_then(Json::as_u64) != Some(1) {
        return Err("spec: unsupported version".into());
    }
    let field = |k: &str| -> Result<u64, String> {
        spec.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("spec: missing or non-integer {k:?}"))
    };
    let (attempt, insts, warmup) = (field("attempt")?, field("insts")?, field("warmup")?);
    let job = spec
        .get("job")
        .and_then(SimJob::from_json)
        .ok_or("spec: malformed job document")?;
    if let Some(chaos) = job.chaos.clone() {
        apply_chaos(&chaos, attempt);
    }
    let scale = Scale {
        insts,
        warmup,
        mixes_per_group: 1,
        max_cycles: u64::MAX,
        threads: 1,
        checkpoints: false,
        // The sampling plan rides the job document, not the envelope's
        // degrade ladder: a degraded attempt keeps the job's plan.
        sample: job.sample,
    };
    let mut policy = CampaignPolicy::new(scale);
    policy.max_retries = 0; // The parent owns the retry ladder.
    policy.timeout = None; // The parent owns the deadline (SIGKILL).
    policy.threads = 1;
    let mut camp = Campaign::ephemeral(&job.id, policy);
    let outcome = camp
        .run(vec![(job.fingerprint(), job)], |j: &SimJob, s| {
            crate::server::run_sim(j, s)
        })
        .into_iter()
        .next();
    let envelope = match outcome {
        Some(o) => match o.result {
            Some(r) => Json::obj(vec![
                ("v", Json::u64(1)),
                ("ok", Json::Bool(true)),
                ("report", r.encode()),
            ]),
            None => Json::obj(vec![
                ("v", Json::u64(1)),
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::str(o.error.unwrap_or_else(|| "job produced no result".into())),
                ),
            ]),
        },
        None => Json::obj(vec![
            ("v", Json::u64(1)),
            ("ok", Json::Bool(false)),
            ("error", Json::str("campaign produced no outcome")),
        ]),
    };
    Ok(envelope.render())
}

/// Deliberate misbehavior for chaos testing, applied in the child only
/// (the server refuses chaos jobs unless `CROW_SERVE_CHAOS=1` *and*
/// isolation is `process`, so none of these can ever run in-process).
fn apply_chaos(kind: &str, attempt: u64) {
    match kind {
        "crash" => std::process::abort(),
        "crash-first" if attempt == 0 => std::process::abort(),
        "crash-first" => {}
        "wedge" => loop {
            std::thread::sleep(Duration::from_millis(50));
        },
        "bomb" => {
            let mut hoard: Vec<Vec<u8>> = Vec::new();
            loop {
                // Nonzero fill: zeroed allocations come from calloc'd
                // copy-on-write pages and would never grow the RSS.
                hoard.push(vec![0xA5u8; 8 << 20]);
                if hoard.len() >= 192 {
                    // 1.5 GiB absolute safety stop: if the parent's cap
                    // is somehow not enforced, wedge instead of taking
                    // the host down (the deadline still reaps us).
                    loop {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
                std::thread::sleep(Duration::from_millis(3));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let b = Breakers::new(2, Duration::from_millis(50));
        assert_eq!(b.admit("fp"), Admit::Run);
        assert!(!b.record_failure("fp"), "below threshold stays closed");
        assert_eq!(b.admit("fp"), Admit::Run);
        assert!(b.record_failure("fp"), "K-th consecutive failure opens");
        match b.admit("fp") {
            Admit::Quarantined { retry_after } => {
                assert!(retry_after <= Duration::from_millis(50));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.admit("fp"), Admit::Probe, "cooldown elapses to a probe");
        assert!(
            matches!(b.admit("fp"), Admit::Quarantined { .. }),
            "only one probe at a time"
        );
        assert!(b.record_failure("fp"), "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.admit("fp"), Admit::Probe);
        b.record_success("fp");
        assert_eq!(b.admit("fp"), Admit::Run, "success closes the breaker");
        assert!(b.snapshot().is_empty(), "closed entries are dropped");
    }

    #[test]
    fn breaker_released_probe_can_be_retaken() {
        let b = Breakers::new(1, Duration::from_millis(10));
        assert!(b.record_failure("fp"));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit("fp"), Admit::Probe);
        b.release_probe("fp");
        assert_eq!(b.admit("fp"), Admit::Probe, "released probe is retaken");
        let snap = b.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, BreakerState::HalfOpen);
    }

    #[test]
    fn breaker_is_per_fingerprint_and_disableable() {
        let b = Breakers::new(1, Duration::from_secs(60));
        assert!(b.record_failure("poison"));
        assert!(matches!(b.admit("poison"), Admit::Quarantined { .. }));
        assert_eq!(b.admit("healthy"), Admit::Run, "other fingerprints run");
        let off = Breakers::new(0, Duration::from_secs(60));
        for _ in 0..10 {
            assert!(!off.record_failure("fp"));
        }
        assert_eq!(off.admit("fp"), Admit::Run, "k=0 disables the breaker");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = Breakers::new(3, Duration::from_secs(60));
        assert!(!b.record_failure("fp"));
        assert!(!b.record_failure("fp"));
        b.record_success("fp");
        assert!(!b.record_failure("fp"), "count restarted after success");
        assert!(!b.record_failure("fp"));
        assert!(b.record_failure("fp"));
    }

    #[test]
    fn supervise_config_lookup_is_strict() {
        let c = SuperviseConfig::from_lookup(|_| None).unwrap();
        assert_eq!(c.isolation, IsolationMode::Thread, "thread is the default");
        assert_eq!(c.rss_cap, Some(4096 << 20));
        assert_eq!(c.breaker_k, 3);
        let c = SuperviseConfig::from_lookup(|k| match k {
            "CROW_SERVE_ISOLATION" => Some("process".into()),
            "CROW_SERVE_RSS_MB" => Some("64".into()),
            "CROW_SERVE_BREAKER_K" => Some("5".into()),
            "CROW_SERVE_BREAKER_COOLDOWN_SECS" => Some("0.25".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.isolation, IsolationMode::Process);
        assert_eq!(c.rss_cap, Some(64 << 20));
        assert_eq!(c.breaker_k, 5);
        assert_eq!(c.breaker_cooldown, Duration::from_millis(250));
        // 0 disables the cap and the breaker.
        let c = SuperviseConfig::from_lookup(|k| match k {
            "CROW_SERVE_RSS_MB" => Some("0".into()),
            "CROW_SERVE_BREAKER_K" => Some("0".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.rss_cap, None);
        assert_eq!(c.breaker_k, 0);
        for (k, v) in [
            ("CROW_SERVE_ISOLATION", "container"),
            ("CROW_SERVE_ISOLATION", "Process"),
            ("CROW_SERVE_RSS_MB", "lots"),
            ("CROW_SERVE_RSS_MB", "-1"),
            ("CROW_SERVE_BREAKER_K", "3.5"),
            ("CROW_SERVE_BREAKER_K", "99999999999"),
            ("CROW_SERVE_BREAKER_COOLDOWN_SECS", "NaN"),
            ("CROW_SERVE_BREAKER_COOLDOWN_SECS", "-2"),
        ] {
            let err = SuperviseConfig::from_lookup(|q| (q == k).then(|| v.into()))
                .expect_err(&format!("{k}={v} must be rejected"))
                .to_string();
            assert!(err.contains(k), "names the variable: {err}");
        }
    }

    #[test]
    fn runner_spec_roundtrips_through_the_child_parser() {
        let job = SimJob {
            id: "j1".into(),
            apps: vec!["mcf".into(), "gcc".into()],
            mechanism: "crow-8".into(),
            insts: 50_000,
            warmup: 1_000,
            seed: 7,
            density: 16,
            llc_mib: 4,
            channels: 2,
            prefetch: true,
            ddr4: false,
            validate: false,
            hammer: Some(("double".into(), 1000)),
            chaos: None,
            sample: Some(crate::sampling::SamplePlan::default_profile()),
        };
        let spec = runner_spec(&job, job.scale(), 2);
        let doc = Json::parse(&spec).unwrap();
        assert_eq!(doc.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("attempt").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("insts").unwrap().as_u64(), Some(50_000));
        let back = SimJob::from_json(doc.get("job").unwrap()).unwrap();
        assert_eq!(back, job);
    }
}
