//! Deterministic aggressor request generators.
//!
//! An [`AggressorGen`] is a seeded, self-pacing source of ordinary read
//! requests aimed at the rows adjacent to a victim. It injects straight
//! into the victim channel's controller queue, so aggressor traffic
//! contends with the workload under the real FR-FCFS scheduler, row
//! policy, and refresh machinery — the measured IPC slowdown *is* the
//! mitigation's interference cost.
//!
//! Determinism contract: the emitted request stream (ids, coordinates,
//! injection cycles) is a pure function of the scenario and the DRAM
//! geometry. Backpressure (a full queue) delays delivery but never
//! changes the stream, and the event-driven engine's idle skipping is
//! bounded by [`AggressorGen::next_boundary_in`] so both engines poll
//! the generator at identical cycles.

use crow_dram::DramConfig;
use crow_mem::{MemRequest, ReqKind};

use super::{hash64, AttackPattern, HammerScenario};

/// Aggressor request ids carry this tag so they can never collide with
/// CPU miss ids; the cluster silently drops completions it does not
/// track.
pub const ATTACKER_ID_BASE: u64 = 1 << 63;

/// A seeded aggressor request source (see the module docs).
#[derive(Debug, Clone)]
pub struct AggressorGen {
    channel: u32,
    rank: u32,
    bank: u32,
    victim: u32,
    /// Cyclic aggressor row sequence.
    seq: Vec<u32>,
    idx: usize,
    /// CPU cycles between injections (fixed grid; ≥ 1).
    interval: u64,
    next_at: u64,
    next_id: u64,
    injected: u64,
    /// A request the controller rejected (queue full); retried every
    /// cycle until it lands, ahead of the injection grid.
    pending: Option<MemRequest>,
}

impl AggressorGen {
    /// Builds the generator for a validated scenario
    /// ([`HammerScenario::validate`] must have passed for this
    /// geometry).
    pub fn new(sc: &HammerScenario, dram: &DramConfig) -> Self {
        let (channel, rank, bank, victim) = match sc.target {
            Some(t) => t,
            None => {
                // A seeded interior row of a middle subarray: the jitter
                // keeps at least 3/8 of the subarray on each side, far
                // beyond the distance-2 blast radius and every pattern
                // offset (≤ 9 rows).
                let rps = dram.rows_per_subarray;
                let sa = dram.subarrays_per_bank() / 2;
                let jitter = hash64(sc.seed) % u64::from(rps / 4);
                (0, 0, 0, sa * rps + rps / 2 - rps / 8 + jitter as u32)
            }
        };
        let v = victim;
        let seq = match sc.pattern {
            AttackPattern::SingleSided => {
                // The decoy row lives in a neighbouring subarray: far
                // enough to disturb nothing near the victim, close
                // enough to share the bank and evict its open row.
                let rps = dram.rows_per_subarray;
                let decoy = if v >= rps { v - rps } else { v + rps };
                vec![v - 1, decoy]
            }
            AttackPattern::DoubleSided => vec![v - 1, v + 1],
            AttackPattern::ManySided(n) => (0..u32::from(n))
                .map(|k| {
                    let off = (k / 2) * 2 + 1;
                    if k % 2 == 0 {
                        v - off
                    } else {
                        v + off
                    }
                })
                .collect(),
            AttackPattern::HalfDouble => {
                // Eight far-pair rounds per near-pair round.
                let mut s = Vec::with_capacity(18);
                for _ in 0..8 {
                    s.push(v - 2);
                    s.push(v + 2);
                }
                s.push(v - 1);
                s.push(v + 1);
                s
            }
        };
        // tREFW in CPU cycles over the requested activations per window.
        let (num, den) = crate::config::SystemConfig::CLOCK_RATIO;
        let trefw_cpu =
            u64::from(dram.timings.trefi) * u64::from(crow_core::REFS_PER_WINDOW) * num / den;
        let interval = (trefw_cpu / sc.intensity).max(1);
        Self {
            channel,
            rank,
            bank,
            victim,
            seq,
            idx: 0,
            interval,
            next_at: interval, // first injection one interval in
            next_id: 0,
            injected: 0,
            pending: None,
        }
    }

    /// The channel every aggressor request targets.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// The victim row under attack.
    pub fn victim_row(&self) -> u32 {
        self.victim
    }

    /// Aggressor requests accepted by the controller so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The injection interval in CPU cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// True when this cycle must poll the generator (a retry is pending
    /// or the injection grid is due) — the idle-skip gate.
    pub fn due(&self, now: u64) -> bool {
        self.pending.is_some() || now >= self.next_at
    }

    /// CPU cycles until the next mandatory poll (0 when due now).
    pub fn next_boundary_in(&self, now: u64) -> u64 {
        if self.pending.is_some() {
            0
        } else {
            self.next_at.saturating_sub(now)
        }
    }

    /// Returns the request to deliver this cycle, if any: a pending
    /// retry first, otherwise a fresh aggressor read when the grid is
    /// due. The caller reports rejection via [`AggressorGen::requeue`]
    /// and acceptance via [`AggressorGen::note_injected`].
    pub fn poll(&mut self, now: u64) -> Option<MemRequest> {
        if let Some(r) = self.pending.take() {
            return Some(r);
        }
        if now < self.next_at {
            return None;
        }
        self.next_at += self.interval;
        let row = self.seq[self.idx];
        self.idx = (self.idx + 1) % self.seq.len();
        let id = ATTACKER_ID_BASE | self.next_id;
        self.next_id += 1;
        Some(MemRequest::new(
            id,
            ReqKind::Read,
            self.rank,
            self.bank,
            row,
            0,
            0,
        ))
    }

    /// Re-arms a rejected request for retry next cycle.
    pub fn requeue(&mut self, r: MemRequest) {
        self.pending = Some(r);
    }

    /// Records a successful enqueue.
    pub fn note_injected(&mut self) {
        self.injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(g: &mut AggressorGen, cycles: u64) -> Vec<(u64, u64, u32, u32, u32)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            if let Some(r) = g.poll(now) {
                out.push((now, r.id, r.rank, r.bank, r.row));
                g.note_injected();
            }
        }
        out
    }

    #[test]
    fn same_seed_same_stream() {
        let dram = DramConfig::tiny_test();
        let sc = HammerScenario::new(AttackPattern::HalfDouble, 200_000);
        let mut a = AggressorGen::new(&sc, &dram);
        let mut b = AggressorGen::new(&sc, &dram);
        let sa = drain(&mut a, 50_000);
        let sb = drain(&mut b, 50_000);
        assert!(!sa.is_empty());
        assert_eq!(sa, sb, "identical scenarios must emit identical streams");
        assert_eq!(a.injected(), sa.len() as u64);
    }

    #[test]
    fn different_seed_moves_the_victim() {
        // Jitter is hash(seed) % (rps/4); on tiny geometry two specific
        // seeds may collide, so assert diversity over a seed family.
        let dram = DramConfig::tiny_test();
        let victims: std::collections::HashSet<u32> = (0..16u64)
            .map(|s| {
                let mut sc = HammerScenario::new(AttackPattern::DoubleSided, 100_000);
                sc.seed = s;
                AggressorGen::new(&sc, &dram).victim_row()
            })
            .collect();
        assert!(victims.len() > 1, "seed must move the victim row");
    }

    #[test]
    fn double_sided_sandwiches_the_victim() {
        let dram = DramConfig::tiny_test();
        let mut sc = HammerScenario::new(AttackPattern::DoubleSided, 100_000);
        sc.target = Some((0, 0, 1, 32));
        let mut g = AggressorGen::new(&sc, &dram);
        let s = drain(&mut g, 20_000);
        assert!(s.len() >= 2);
        assert_eq!(s[0].4, 31);
        assert_eq!(s[1].4, 33);
        assert!(s.iter().all(|&(_, id, rank, bank, _)| {
            id & ATTACKER_ID_BASE != 0 && rank == 0 && bank == 1
        }));
    }

    #[test]
    fn intensity_sets_the_injection_interval() {
        let dram = DramConfig::tiny_test();
        let trefw_cpu = u64::from(dram.timings.trefi) * 8192 * 5 / 2;
        let sc = HammerScenario::new(AttackPattern::DoubleSided, 1_000);
        let g = AggressorGen::new(&sc, &dram);
        assert_eq!(g.interval(), trefw_cpu / 1_000);
        // Saturating: absurd intensity degrades to one per cycle.
        let sc = HammerScenario::new(AttackPattern::DoubleSided, u64::MAX / 4);
        assert_eq!(AggressorGen::new(&sc, &dram).interval(), 1);
    }

    #[test]
    fn rejected_requests_retry_without_perturbing_the_grid() {
        let dram = DramConfig::tiny_test();
        let mut sc = HammerScenario::new(AttackPattern::DoubleSided, 100_000);
        sc.target = Some((0, 0, 0, 100));
        let mut g = AggressorGen::new(&sc, &dram);
        let interval = g.interval();
        let first = g.poll(interval).expect("due at the first grid point");
        assert!(g.next_boundary_in(interval) == 0 || g.pending.is_none());
        g.requeue(first);
        assert!(g.due(interval), "a pending retry forces polling");
        assert_eq!(g.next_boundary_in(interval), 0);
        let retried = g.poll(interval + 1).expect("retry is served first");
        assert_eq!(retried.row, 99);
        g.note_injected();
        // The grid is unchanged: next fresh request at 2×interval.
        assert_eq!(
            g.next_boundary_in(interval + 2),
            2 * interval - interval - 2
        );
    }
}
