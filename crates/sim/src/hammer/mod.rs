//! RowHammer attack scenarios: seeded aggressor-trace generators, a
//! probabilistic disturbance/bit-flip model, and the statistics that tie
//! them to the mitigation under test.
//!
//! The CROW paper (§4.3) proposes a counter-based detector plus victim
//! remapping to copy rows as a low-cost RowHammer mitigation, but only
//! argues its overhead. This module supplies the missing evaluation
//! harness: a [`gen::AggressorGen`] drives deterministic attack request
//! streams (single-sided, double-sided, many-sided, half-double) through
//! the *real* controller and scheduler as ordinary reads, and a
//! [`flip::FlipModel`] observes the resulting DRAM command stream
//! ([`crow_mem::DramEvent`]) to accumulate per-row disturbance and draw
//! seeded bit flips against per-row thresholds. Mitigations — the
//! PARA/TRR baselines in `crow-mem` and the paper's CROW-based remapper —
//! interpose on the same command stream, so their effect on both the flip
//! count and on workload slowdown falls out of one simulation.
//!
//! Everything is seeded and serial: the same [`HammerScenario`] produces
//! a byte-identical request stream and flip count across runs and across
//! the naive and event-driven engines.

pub mod flip;
pub mod gen;

pub use flip::{FlipCandidate, FlipModel, FlipParams};
pub use gen::AggressorGen;

use crow_core::Owner;
use crow_dram::DramConfig;
use crow_mem::MemController;

/// Splitmix64: the one PRNG used by every seeded component of the
/// scenario (victim placement, per-row thresholds, flip draws). Small,
/// fast, and fully deterministic from a `u64` seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stateless hash draw (seeded splitmix64 step).
pub(crate) fn hash64(seed: u64) -> u64 {
    let mut s = seed;
    splitmix64(&mut s)
}

/// Which aggressor access pattern the generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPattern {
    /// One aggressor adjacent to the victim, interleaved with a far row
    /// in another subarray to defeat the open-row buffer (every access
    /// becomes an activation).
    SingleSided,
    /// The classic pair sandwiching the victim (`v-1`, `v+1`).
    DoubleSided,
    /// `n` aggressors fanned out around the victim at odd offsets
    /// (`v±1, v±3, …`), as in TRRespass-style many-sided patterns that
    /// overflow small sampler tables.
    ManySided(u8),
    /// Half-Double: a heavily hammered far pair (`v±2`) assisted by a
    /// lightly hammered near pair (`v±1`), stressing distance-2
    /// disturbance.
    HalfDouble,
}

impl AttackPattern {
    /// Parses the CLI spellings: `single`, `double`, `many-N`,
    /// `half-double` (case-insensitive). `None` for anything else —
    /// callers report a structured error, never a silent default.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        match s.as_str() {
            "single" | "single-sided" => return Some(AttackPattern::SingleSided),
            "double" | "double-sided" => return Some(AttackPattern::DoubleSided),
            "half-double" | "halfdouble" => return Some(AttackPattern::HalfDouble),
            _ => {}
        }
        if let Some(n) = s.strip_prefix("many-") {
            if let Ok(n) = n.parse::<u8>() {
                if (2..=10).contains(&n) {
                    return Some(AttackPattern::ManySided(n));
                }
            }
        }
        None
    }

    /// Short label for tables and figure rows.
    pub fn label(&self) -> String {
        match self {
            AttackPattern::SingleSided => "single-sided".into(),
            AttackPattern::DoubleSided => "double-sided".into(),
            AttackPattern::ManySided(n) => format!("{n}-sided"),
            AttackPattern::HalfDouble => "half-double".into(),
        }
    }
}

/// A complete attack scenario: what to hammer, how hard, and the physics
/// of the flip model judging the outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammerScenario {
    /// Aggressor geometry.
    pub pattern: AttackPattern,
    /// Aggressor activations injected per refresh window (tREFW =
    /// 8192 × tREFI). The generator converts this to a fixed CPU-cycle
    /// injection interval; actual issue timing is up to the scheduler.
    pub intensity: u64,
    /// Explicit victim placement `(channel, rank, bank, row)`; `None`
    /// derives a seeded interior row of a middle subarray on channel 0.
    pub target: Option<(u32, u32, u32, u32)>,
    /// Scenario seed (victim jitter, request ids are deterministic from
    /// it; the flip model mixes it with the system seed).
    pub seed: u64,
    /// Disturbance / flip physics.
    pub flip: FlipParams,
}

impl HammerScenario {
    /// A scenario with default placement and flip physics.
    pub fn new(pattern: AttackPattern, intensity: u64) -> Self {
        Self {
            pattern,
            intensity,
            target: None,
            seed: 0x4841_4D52, // "HAMR"
            flip: FlipParams::paper_default(),
        }
    }

    /// Checks the scenario against a channel geometry. Returns the
    /// violated constraint on failure.
    pub fn validate(&self, dram: &DramConfig, channels: u32) -> Result<(), String> {
        if self.intensity == 0 {
            return Err("intensity must be at least one activation per window".into());
        }
        if dram.rows_per_subarray < 64 {
            return Err("aggressor placement needs at least 64 rows per subarray".into());
        }
        if matches!(self.pattern, AttackPattern::SingleSided) && dram.subarrays_per_bank() < 2 {
            return Err("single-sided decoy row needs at least two subarrays".into());
        }
        if let AttackPattern::ManySided(n) = self.pattern {
            if !(2..=10).contains(&n) {
                return Err("many-sided patterns support 2..=10 aggressors".into());
            }
        }
        if let Some((ch, rank, bank, row)) = self.target {
            if ch >= channels || rank >= dram.ranks || bank >= dram.banks {
                return Err("target channel/rank/bank out of range".into());
            }
            let rps = dram.rows_per_subarray;
            if row >= dram.rows_per_bank || row % rps < 12 || row % rps >= rps - 12 {
                return Err("target row must sit at least 12 rows inside its subarray".into());
            }
        }
        self.flip.validate()
    }

    /// Applies `CROW_HAMMER_*` environment overrides (pattern,
    /// intensity, seed, flip thresholds). Unset variables leave the
    /// scenario untouched; a set-but-malformed variable is an error, not
    /// a silent default.
    pub fn apply_env(&mut self) -> Result<(), String> {
        fn var(name: &str) -> Option<String> {
            std::env::var(name).ok().filter(|v| !v.is_empty())
        }
        fn num(name: &str, v: &str) -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{name}={v:?} is not a number"))
        }
        if let Some(v) = var("CROW_HAMMER_PATTERN") {
            self.pattern = AttackPattern::parse(&v)
                .ok_or_else(|| format!("CROW_HAMMER_PATTERN={v:?} is not a pattern"))?;
        }
        if let Some(v) = var("CROW_HAMMER_INTENSITY") {
            self.intensity = num("CROW_HAMMER_INTENSITY", &v)?;
        }
        if let Some(v) = var("CROW_HAMMER_SEED") {
            self.seed = num("CROW_HAMMER_SEED", &v)?;
        }
        if let Some(v) = var("CROW_HAMMER_THRESHOLD") {
            self.flip.base_threshold = num("CROW_HAMMER_THRESHOLD", &v)?;
        }
        if let Some(v) = var("CROW_HAMMER_FLIP_P_INV") {
            self.flip.flip_p_inv = num("CROW_HAMMER_FLIP_P_INV", &v)?;
        }
        Ok(())
    }
}

/// Attack-outcome counters reported in
/// [`crate::SimReport`](crate::report::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HammerStats {
    /// Aggressor requests accepted into a controller queue.
    pub injected: u64,
    /// Bit flips on live (non-remapped) rows — actual data corruption.
    pub flips: u64,
    /// Distinct rows that suffered at least one live flip.
    pub flipped_rows: u64,
    /// Flip draws absorbed harmlessly because the physical victim row
    /// had been remapped to a copy row (CROW mitigation, §4.3).
    pub absorbed: u64,
    /// RowHammer detector alarms (CROW's counter table).
    pub detections: u64,
    /// Neighbor-row refreshes issued by the PARA/TRR baselines.
    pub mitigation_refreshes: u64,
}

/// Runtime state of an active scenario inside a
/// [`crate::System`](crate::system::System): the generator, the flip
/// model, and scratch buffers for draining controller events.
#[derive(Debug)]
pub struct HammerState {
    /// The aggressor request source.
    pub gen: AggressorGen,
    /// The disturbance/flip bookkeeping.
    pub flip: FlipModel,
    events: Vec<crow_mem::DramEvent>,
    cands: Vec<FlipCandidate>,
}

impl HammerState {
    /// Builds the runtime state, validating the scenario against the
    /// effective geometry.
    pub fn try_new(
        sc: &HammerScenario,
        dram: &DramConfig,
        channels: u32,
        system_seed: u64,
    ) -> Result<Self, String> {
        sc.validate(dram, channels)?;
        Ok(Self {
            gen: AggressorGen::new(sc, dram),
            flip: FlipModel::new(&sc.flip, dram, channels, system_seed ^ sc.seed),
            events: Vec::new(),
            cands: Vec::new(),
        })
    }

    /// Drains the controller's command events into the flip model and
    /// commits any resulting flip draws, classifying each as live or
    /// absorbed depending on whether CROW currently remaps the row.
    pub fn drain(&mut self, ch: u32, mc: &mut MemController) {
        mc.drain_events(&mut self.events);
        if self.events.is_empty() {
            return;
        }
        for e in self.events.drain(..) {
            self.flip.on_event(ch, e, &mut self.cands);
        }
        let dram = mc.channel().config();
        let (banks, rps) = (dram.banks, dram.rows_per_subarray);
        for cand in self.cands.drain(..) {
            // A flip on a physical row whose data lives in a copy row
            // (pinned Ref/Hammer remap) corrupts nothing.
            let absorbed = mc.crow().is_some_and(|c| {
                let cb = cand.rank * banks + cand.bank;
                matches!(
                    c.table().lookup(cb, cand.row / rps, cand.row),
                    Some((_, e)) if e.owner != Owner::Cache
                )
            });
            self.flip.commit(ch, cand, absorbed);
        }
    }

    /// Scenario-side counters (the report adds the controller- and
    /// substrate-side ones).
    pub fn stats(&self) -> HammerStats {
        HammerStats {
            injected: self.gen.injected(),
            flips: self.flip.flips(),
            flipped_rows: self.flip.flipped_rows(),
            absorbed: self.flip.absorbed(),
            detections: 0,
            mitigation_refreshes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parse_and_labels() {
        assert_eq!(
            AttackPattern::parse("single"),
            Some(AttackPattern::SingleSided)
        );
        assert_eq!(
            AttackPattern::parse("Double"),
            Some(AttackPattern::DoubleSided)
        );
        assert_eq!(
            AttackPattern::parse("many-6"),
            Some(AttackPattern::ManySided(6))
        );
        assert_eq!(
            AttackPattern::parse("half-double"),
            Some(AttackPattern::HalfDouble)
        );
        for bad in ["", "many-1", "many-11", "many-x", "triple"] {
            assert!(AttackPattern::parse(bad).is_none(), "{bad:?}");
        }
        assert_eq!(AttackPattern::ManySided(4).label(), "4-sided");
        assert_eq!(AttackPattern::HalfDouble.label(), "half-double");
    }

    #[test]
    fn scenario_validation_rejects_bad_targets() {
        let dram = DramConfig::tiny_test();
        let ok = HammerScenario::new(AttackPattern::DoubleSided, 10_000);
        ok.validate(&dram, 1).unwrap();

        let mut zero = ok;
        zero.intensity = 0;
        assert!(zero.validate(&dram, 1).is_err());

        let mut edge = ok;
        edge.target = Some((0, 0, 0, 1)); // subarray edge
        assert!(edge.validate(&dram, 1).is_err());

        let mut far_ch = ok;
        far_ch.target = Some((3, 0, 0, 32));
        assert!(far_ch.validate(&dram, 1).is_err());

        let mut interior = ok;
        interior.target = Some((0, 0, 1, 32));
        interior.validate(&dram, 1).unwrap();
    }
}
