//! Probabilistic disturbance and bit-flip model.
//!
//! The model watches the *issued* DRAM command stream
//! ([`crow_mem::DramEvent`]) — not the injected request stream — so
//! everything the controller does on its own behalf counts too: demand
//! activations disturb neighbours, PARA/TRR neighbor refreshes and
//! CROW's `ACT-c` victim copies restore rows, refresh re-establishes
//! charge one slice per `REF` (a real `REF` covers only `1/8192` of the
//! rows; see [`crow_core::REFS_PER_WINDOW`]).
//!
//! Physics, per activation of row `r`:
//!
//! * row `r` itself is fully restored (its disturbance clears);
//! * rows `r ± 1` gain `w1` disturbance units, rows `r ± 2` gain `w2`
//!   (both clamped to `r`'s subarray — sense-amplifier stripes isolate
//!   subarrays);
//! * once a row's accumulated units reach its threshold, every further
//!   disturbing activation flips a bit with probability `1/flip_p_inv`.
//!
//! Thresholds vary per row: a seeded ±25 % process-variation jitter
//! around `base_threshold`, divided by `weak_divisor` for rows the
//! retention profile marks weak (weak cells are also the first to flip
//! under disturbance). All draws come from one splitmix64 stream in
//! event order, so the flip count is bit-reproducible and identical
//! across stepping engines.

use std::collections::{HashMap, HashSet};

use crow_core::{RetentionProfile, REFS_PER_WINDOW};
use crow_dram::DramConfig;
use crow_mem::DramEvent;

use super::{hash64, splitmix64};

/// Flip-physics parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipParams {
    /// Disturbance units a typical row tolerates before flips become
    /// possible (units, not activations: a double-sided ACT pair adds
    /// `2·w1` to the victim).
    pub base_threshold: u64,
    /// Weak-row thresholds are `base/weak_divisor`.
    pub weak_divisor: u64,
    /// Units added to distance-1 neighbours per activation.
    pub w1: u64,
    /// Units added to distance-2 neighbours per activation.
    pub w2: u64,
    /// Over-threshold activations flip with probability `1/flip_p_inv`.
    pub flip_p_inv: u64,
    /// Which rows are retention-weak (lowered threshold). Seeded with
    /// the same per-channel stream as CROW-ref's profile, so the rows
    /// CROW-ref remaps are exactly the fragile ones.
    pub profile: RetentionProfile,
}

impl FlipParams {
    /// Modern-chip defaults: with `w1 = 4`, a double-sided attack needs
    /// ~32 K aggressor ACTs to open the flip regime (HCfirst in the
    /// 10⁴–10⁵ range), an order of magnitude above CROW's detector
    /// threshold — mitigations that act on detection act in time.
    pub fn paper_default() -> Self {
        Self {
            base_threshold: 262_144,
            weak_divisor: 4,
            w1: 4,
            w2: 1,
            flip_p_inv: 1024,
            profile: RetentionProfile::paper_conservative(),
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_threshold == 0 {
            return Err("base_threshold must be nonzero".into());
        }
        if self.weak_divisor == 0 {
            return Err("weak_divisor must be nonzero".into());
        }
        if self.flip_p_inv == 0 {
            return Err("flip_p_inv must be nonzero".into());
        }
        if self.w1 == 0 {
            return Err("w1 must be nonzero (distance-1 coupling is the attack)".into());
        }
        Ok(())
    }
}

/// A flip draw that succeeded: the row (bank-relative) whose cell
/// flipped. The caller classifies it as live or absorbed (remapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipCandidate {
    /// Rank of the flipped row.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Bank-relative row number.
    pub row: u32,
}

/// Global row key: (channel, rank, bank, row).
type Key = (u32, u32, u32, u32);

/// The disturbance bookkeeping for a whole system (all channels).
#[derive(Debug)]
pub struct FlipModel {
    params: FlipParams,
    seed: u64,
    rng: u64,
    rows_per_subarray: u32,
    banks: u32,
    /// Accumulated disturbance units per row (absent = fully charged).
    disturb: HashMap<Key, u64>,
    /// Retention-weak rows (lowered flip threshold).
    weak: HashSet<Key>,
    /// Rows that suffered at least one live flip.
    flipped: HashSet<Key>,
    /// Per-(channel, rank) all-bank REF slice cursor.
    ref_slice: HashMap<(u32, u32), u32>,
    /// Per-(channel, rank, bank) per-bank REF slice cursor.
    refpb_slice: HashMap<(u32, u32, u32), u32>,
    flips: u64,
    absorbed: u64,
}

impl FlipModel {
    /// Builds the model for `channels` channels of `dram` geometry,
    /// seeding the weak-row sets with the same per-channel streams the
    /// CROW substrate uses (`seed ^ (0x9e37 + channel)`).
    pub fn new(params: &FlipParams, dram: &DramConfig, channels: u32, seed: u64) -> Self {
        let mut weak = HashSet::new();
        for ch in 0..channels {
            let rows = params.profile.generate(
                dram.banks * dram.ranks,
                dram.subarrays_per_bank(),
                dram.rows_per_subarray,
                dram.copy_rows_per_subarray,
                seed ^ (0x9e37 + u64::from(ch)),
            );
            for (cb, _sa, row) in rows.iter_regular() {
                weak.insert((ch, cb / dram.banks, cb % dram.banks, row));
            }
        }
        Self {
            params: *params,
            seed,
            rng: seed ^ 0x464C_4950, // "FLIP"
            rows_per_subarray: dram.rows_per_subarray,
            banks: dram.banks,
            disturb: HashMap::new(),
            weak,
            flipped: HashSet::new(),
            ref_slice: HashMap::new(),
            refpb_slice: HashMap::new(),
            flips: 0,
            absorbed: 0,
        }
    }

    /// Live bit flips so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Distinct rows with at least one live flip.
    pub fn flipped_rows(&self) -> u64 {
        self.flipped.len() as u64
    }

    /// Flip draws absorbed by a CROW remap.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Number of retention-weak rows the model tracks (diagnostics).
    pub fn weak_rows(&self) -> usize {
        self.weak.len()
    }

    /// The flip threshold of a row, in disturbance units.
    pub fn threshold(&self, ch: u32, rank: u32, bank: u32, row: u32) -> u64 {
        let k: Key = (ch, rank, bank, row);
        let h = hash64(
            self.seed
                ^ (u64::from(ch) << 48)
                ^ (u64::from(rank) << 40)
                ^ (u64::from(bank) << 32)
                ^ u64::from(row),
        );
        let base = self.params.base_threshold;
        // ±25 % process variation, deterministic per row.
        let t = base - base / 4 + h % (base / 2 + 1);
        let t = if self.weak.contains(&k) {
            t / self.params.weak_divisor
        } else {
            t
        };
        t.max(1)
    }

    /// Feeds one issued DRAM command event from channel `ch`. Successful
    /// flip draws are appended to `out` for the caller to commit.
    pub fn on_event(&mut self, ch: u32, e: DramEvent, out: &mut Vec<FlipCandidate>) {
        match e {
            DramEvent::Act { rank, bank, row } => {
                // The activated row itself is fully restored.
                self.disturb.remove(&(ch, rank, bank, row));
                let rps = self.rows_per_subarray;
                let sa = row / rps;
                let (lo, hi) = (sa * rps, sa * rps + rps - 1);
                for (off, w) in [(1u32, self.params.w1), (2u32, self.params.w2)] {
                    if w == 0 {
                        continue;
                    }
                    if row >= lo + off {
                        self.bump(ch, rank, bank, row - off, w, out);
                    }
                    if row + off <= hi {
                        self.bump(ch, rank, bank, row + off, w, out);
                    }
                }
            }
            DramEvent::RefAll { rank } => {
                let s = *self.ref_slice.get(&(ch, rank)).unwrap_or(&0);
                self.disturb
                    .retain(|k, _| !(k.0 == ch && k.1 == rank && k.3 % REFS_PER_WINDOW == s));
                self.ref_slice.insert((ch, rank), (s + 1) % REFS_PER_WINDOW);
            }
            DramEvent::RefBank { rank, bank } => {
                let s = *self.refpb_slice.get(&(ch, rank, bank)).unwrap_or(&0);
                self.disturb.retain(|k, _| {
                    !(k.0 == ch && k.1 == rank && k.2 == bank && k.3 % REFS_PER_WINDOW == s)
                });
                self.refpb_slice
                    .insert((ch, rank, bank), (s + 1) % REFS_PER_WINDOW);
            }
        }
    }

    /// Commits a flip draw: `absorbed` when the physical row is remapped
    /// (the flip lands in dead cells), live data corruption otherwise.
    /// Either way the cell's disturbance history restarts.
    pub fn commit(&mut self, ch: u32, cand: FlipCandidate, absorbed: bool) {
        let k: Key = (ch, cand.rank, cand.bank, cand.row);
        self.disturb.remove(&k);
        if absorbed {
            self.absorbed += 1;
        } else {
            self.flips += 1;
            self.flipped.insert(k);
        }
    }

    fn bump(
        &mut self,
        ch: u32,
        rank: u32,
        bank: u32,
        row: u32,
        w: u64,
        out: &mut Vec<FlipCandidate>,
    ) {
        let k: Key = (ch, rank, bank, row);
        let d = self.disturb.entry(k).or_insert(0);
        *d += w;
        let total = *d;
        if total >= self.threshold(ch, rank, bank, row)
            && splitmix64(&mut self.rng).is_multiple_of(self.params.flip_p_inv)
        {
            out.push(FlipCandidate { rank, bank, row });
        }
    }

    /// Test/diagnostic accessor: current disturbance units of a row.
    pub fn disturbance(&self, ch: u32, rank: u32, bank: u32, row: u32) -> u64 {
        *self.disturb.get(&(ch, rank, bank, row)).unwrap_or(&0)
    }

    /// Test/diagnostic accessor: bank count per rank (key decoding).
    pub fn banks(&self) -> u32 {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(params: FlipParams) -> FlipModel {
        FlipModel::new(&params, &DramConfig::tiny_test(), 1, 7)
    }

    fn quick_params() -> FlipParams {
        FlipParams {
            base_threshold: 100,
            weak_divisor: 4,
            w1: 4,
            w2: 1,
            flip_p_inv: 1,
            profile: RetentionProfile::FixedPerSubarray { n: 0 },
        }
    }

    #[test]
    fn blast_radius_and_self_restore() {
        let mut m = model(quick_params());
        let mut out = Vec::new();
        m.on_event(
            0,
            DramEvent::Act {
                rank: 0,
                bank: 0,
                row: 100,
            },
            &mut out,
        );
        assert_eq!(m.disturbance(0, 0, 0, 99), 4);
        assert_eq!(m.disturbance(0, 0, 0, 101), 4);
        assert_eq!(m.disturbance(0, 0, 0, 98), 1);
        assert_eq!(m.disturbance(0, 0, 0, 102), 1);
        assert_eq!(m.disturbance(0, 0, 0, 100), 0, "own row restored");
        // Activating the neighbour restores it and disturbs row 100.
        m.on_event(
            0,
            DramEvent::Act {
                rank: 0,
                bank: 0,
                row: 99,
            },
            &mut out,
        );
        assert_eq!(m.disturbance(0, 0, 0, 99), 0);
        assert_eq!(m.disturbance(0, 0, 0, 100), 4);
        assert!(out.is_empty(), "far below threshold");
    }

    #[test]
    fn subarray_edges_clamp_disturbance() {
        // tiny_test: 64 rows per subarray; row 64 opens subarray 1.
        let mut m = model(quick_params());
        let mut out = Vec::new();
        m.on_event(
            0,
            DramEvent::Act {
                rank: 0,
                bank: 0,
                row: 64,
            },
            &mut out,
        );
        assert_eq!(m.disturbance(0, 0, 0, 63), 0, "previous subarray isolated");
        assert_eq!(m.disturbance(0, 0, 0, 62), 0);
        assert_eq!(m.disturbance(0, 0, 0, 65), 4);
        assert_eq!(m.disturbance(0, 0, 0, 66), 1);
    }

    #[test]
    fn flips_fire_over_threshold_and_reset() {
        let mut p = quick_params();
        p.base_threshold = 40; // jittered to [30, 50]
        let mut m = model(p);
        let mut out = Vec::new();
        // Double-sided: rows 99 and 101 hammer row 100 with 8 units/pair.
        let mut first_flip_at = None;
        for i in 0..40 {
            m.on_event(
                0,
                DramEvent::Act {
                    rank: 0,
                    bank: 0,
                    row: 99,
                },
                &mut out,
            );
            m.on_event(
                0,
                DramEvent::Act {
                    rank: 0,
                    bank: 0,
                    row: 101,
                },
                &mut out,
            );
            if !out.is_empty() && first_flip_at.is_none() {
                first_flip_at = Some(i);
            }
            for c in out.drain(..) {
                m.commit(0, c, false);
            }
        }
        let first = first_flip_at.expect("p=1 must flip as soon as threshold is crossed");
        assert!(
            first >= 3,
            "threshold >= 30 units needs >= 4 pairs, saw {first}"
        );
        assert!(m.flips() > 1, "disturbance restarts and flips again");
        // The sandwiched victim flips; the aggressors themselves never do
        // (each activation restores them). Collateral flips on the outer
        // neighbours (98/102 at 4 units/pair) are legitimate physics.
        assert!(m.flipped.contains(&(0, 0, 0, 100)), "victim row flipped");
        assert!(!m.flipped.contains(&(0, 0, 0, 99)));
        assert!(!m.flipped.contains(&(0, 0, 0, 101)));
    }

    #[test]
    fn weak_rows_flip_earlier() {
        let mut p = quick_params();
        p.base_threshold = 10_000;
        p.profile = RetentionProfile::FixedPerSubarray { n: 3 };
        let m = model(p);
        assert!(m.weak_rows() > 0);
        // Every weak row's threshold is at most 1/weak_divisor of the
        // strongest possible jitter.
        let weak_key = *m.weak.iter().next().unwrap();
        let t_weak = m.threshold(weak_key.0, weak_key.1, weak_key.2, weak_key.3);
        assert!(t_weak <= (10_000 + 5_000) / 4, "weak threshold {t_weak}");
    }

    #[test]
    fn refresh_clears_one_slice_per_ref() {
        let mut m = model(quick_params());
        let mut out = Vec::new();
        m.on_event(
            0,
            DramEvent::Act {
                rank: 0,
                bank: 0,
                row: 100,
            },
            &mut out,
        );
        // Slice 0 does not cover row 99 (99 % 8192 = 99): charge stays.
        m.on_event(0, DramEvent::RefAll { rank: 0 }, &mut out);
        assert_eq!(m.disturbance(0, 0, 0, 99), 4);
        // Drive the cursor to slice 99: that REF clears the row.
        for _ in 1..99 {
            m.on_event(0, DramEvent::RefAll { rank: 0 }, &mut out);
        }
        assert_eq!(m.disturbance(0, 0, 0, 99), 4);
        m.on_event(0, DramEvent::RefAll { rank: 0 }, &mut out);
        assert_eq!(m.disturbance(0, 0, 0, 99), 0);
        // Other ranks/banks are untouched by rank-0 refreshes.
        m.on_event(
            0,
            DramEvent::Act {
                rank: 0,
                bank: 1,
                row: 100,
            },
            &mut out,
        );
        m.on_event(0, DramEvent::RefBank { rank: 0, bank: 0 }, &mut out);
        assert_eq!(m.disturbance(0, 0, 1, 99), 4);
    }

    #[test]
    fn absorbed_flips_do_not_count_as_corruption() {
        let mut m = model(quick_params());
        let c = FlipCandidate {
            rank: 0,
            bank: 0,
            row: 50,
        };
        m.commit(0, c, true);
        m.commit(0, c, false);
        assert_eq!(m.absorbed(), 1);
        assert_eq!(m.flips(), 1);
        assert_eq!(m.flipped_rows(), 1);
    }

    #[test]
    fn draw_stream_is_deterministic() {
        let mk = || {
            let mut p = quick_params();
            p.base_threshold = 40;
            p.flip_p_inv = 8;
            let mut m = model(p);
            let mut out = Vec::new();
            for _ in 0..500 {
                m.on_event(
                    0,
                    DramEvent::Act {
                        rank: 0,
                        bank: 0,
                        row: 99,
                    },
                    &mut out,
                );
                m.on_event(
                    0,
                    DramEvent::Act {
                        rank: 0,
                        bank: 0,
                        row: 101,
                    },
                    &mut out,
                );
            }
            for c in out.drain(..) {
                m.commit(0, c, false);
            }
            m.flips()
        };
        let a = mk();
        assert!(a > 0);
        assert_eq!(a, mk());
    }
}
