//! Seeded fault-injection harness (robustness testing).
//!
//! A [`FaultPlan`] schedules three classes of deterministic, seeded
//! faults against a running [`crate::System`]:
//!
//! * **VRT retention failures** — a random row is declared weak and
//!   queued for CROW's runtime remapping (paper §4.2.3), exercising the
//!   `ACT-c` weak-row copy path and the refresh-interval fallback;
//! * **RowHammer disturbance activations** — a burst of aggressor
//!   activations of a random row is fed to the detector, exercising the
//!   victim-copy path (paper §4.3);
//! * **transient command-bus drops** — one scheduling opportunity is
//!   lost, exercising the controller's retry behaviour.
//!
//! All intervals are in CPU cycles and all randomness derives from
//! [`FaultPlan::seed`], so runs are bit-reproducible and identical
//! across stepping engines. The [`FaultPolicy`] decides what a run does
//! with faults the mechanism cannot mitigate and with protocol
//! violations observed by the shadow validator.

/// What the run does about injected faults and observed violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// [`crate::System::run_checked`] fails after the run if the shadow
    /// validator recorded protocol violations or a core parked on a
    /// trace fault.
    Abort,
    /// Inject everything, count everything, always complete the run.
    #[default]
    Record,
    /// Like [`FaultPolicy::Record`], but injections the configured
    /// mechanism cannot mitigate (VRT remaps or hammer protection
    /// without a CROW substrate) are suppressed and counted instead of
    /// applied.
    Degrade,
}

/// A deterministic schedule of fault injections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for target selection (rows, banks, ranks).
    pub seed: u64,
    /// Inject one VRT weak-row discovery every this many CPU cycles.
    pub vrt_interval: Option<u64>,
    /// Inject one RowHammer burst every this many CPU cycles.
    pub hammer_interval: Option<u64>,
    /// Aggressor activations per hammer injection.
    pub hammer_burst: u32,
    /// Drop one command-bus scheduling slot every this many CPU cycles.
    pub drop_interval: Option<u64>,
    /// Mitigation policy.
    pub policy: FaultPolicy,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a base to customise).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            vrt_interval: None,
            hammer_interval: None,
            hammer_burst: 1,
            drop_interval: None,
            policy: FaultPolicy::Record,
        }
    }

    /// A stress plan exercising all three fault classes at short
    /// intervals (for tests; production soak runs would use much longer
    /// intervals).
    pub fn stress(seed: u64) -> Self {
        Self {
            seed,
            vrt_interval: Some(40_000),
            hammer_interval: Some(25_000),
            hammer_burst: 64,
            drop_interval: Some(10_000),
            policy: FaultPolicy::Record,
        }
    }

    /// All active injection intervals.
    pub fn intervals(&self) -> impl Iterator<Item = u64> + '_ {
        [self.vrt_interval, self.hammer_interval, self.drop_interval]
            .into_iter()
            .flatten()
    }

    /// Whether `now` is an injection boundary for any active interval.
    pub fn due(&self, now: u64) -> bool {
        now > 0 && self.intervals().any(|i| now.is_multiple_of(i))
    }

    /// CPU cycles from `now` (exclusive) to the next injection boundary;
    /// `u64::MAX` when the plan injects nothing.
    pub fn next_boundary_in(&self, now: u64) -> u64 {
        self.intervals()
            .map(|i| (now / i + 1) * i - now)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// Counters for everything the harness injected (deterministic; part of
/// the cross-engine equivalence contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// VRT weak-row discoveries injected.
    pub vrt_injected: u64,
    /// RowHammer bursts injected.
    pub hammer_injected: u64,
    /// Victim protection copies queued by the detector across all
    /// hammer injections.
    pub hammer_victims: u64,
    /// Command-bus drops armed.
    pub drops_injected: u64,
    /// Injections suppressed by [`FaultPolicy::Degrade`] because the
    /// mechanism cannot mitigate them.
    pub suppressed: u64,
}

impl FaultStats {
    /// Total faults injected (suppressed ones excluded).
    pub fn total_injected(&self) -> u64 {
        self.vrt_injected + self.hammer_injected + self.drops_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_and_due() {
        let mut p = FaultPlan::quiet(1);
        assert!(!p.due(1000));
        assert_eq!(p.next_boundary_in(1000), u64::MAX);
        p.vrt_interval = Some(300);
        p.drop_interval = Some(70);
        assert!(p.due(300) && p.due(700) && p.due(2100));
        assert!(!p.due(0), "cycle 0 never injects");
        assert!(!p.due(301));
        assert_eq!(p.next_boundary_in(0), 70);
        assert_eq!(p.next_boundary_in(295), 5);
        assert_eq!(p.next_boundary_in(300), 50, "next is 350, not 300");
    }

    #[test]
    fn stress_plan_is_fully_active() {
        let p = FaultPlan::stress(7);
        assert_eq!(p.intervals().count(), 3);
        assert!(p.hammer_burst > 0);
    }

    #[test]
    fn stats_total() {
        let s = FaultStats {
            vrt_injected: 2,
            hammer_injected: 3,
            drops_injected: 5,
            hammer_victims: 6,
            suppressed: 1,
        };
        assert_eq!(s.total_injected(), 10);
    }
}
