//! System assembly and the main simulation loop.

use crow_circuit::TlDramModel;
use crow_core::{CrowConfig, CrowStats, CrowSubstrate};
use crow_cpu::{CpuCluster, CpuMemReq, MemPort};
use crow_dram::{ActTimingMod, AddrMapper, ChannelStats};
use crow_energy::EnergyCounter;
use crow_mem::controller::CacheMode;
use crow_mem::{Completion, McStats, MemController, MemRequest, ReqKind, SchedStats};
use crow_workloads::AppProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Engine, Mechanism, SystemConfig};
use crate::error::CrowError;
use crate::fault::{FaultPolicy, FaultStats};
use crate::hammer::HammerState;
use crate::report::SimReport;
use crow_dram::ConfigError;

/// Routes CPU requests to the per-channel controllers.
struct Router<'a> {
    mcs: &'a mut [MemController],
    mapper: &'a AddrMapper,
    /// Per-channel next-event bounds; a successful enqueue mutates the
    /// controller, so its bound is reset to force a real tick.
    next_event: &'a mut [u64],
}

impl MemPort for Router<'_> {
    fn send(&mut self, req: CpuMemReq) -> bool {
        let a = self.mapper.decode(req.line_pa);
        let kind = if req.is_write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        let mut r = MemRequest::new(req.id, kind, a.rank, a.bank, a.row, a.col, req.core);
        r.is_prefetch = req.is_prefetch;
        let ch = a.channel as usize;
        if self.mcs[ch].try_enqueue(r).is_ok() {
            self.next_event[ch] = 0;
            true
        } else {
            false
        }
    }
}

/// The assembled system: cores + LLC + channels.
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) cluster: CpuCluster,
    pub(crate) mcs: Vec<MemController>,
    pub(crate) mapper: AddrMapper,
    pub(crate) cpu_cycle: u64,
    pub(crate) mem_cycle: u64,
    pub(crate) clock_accum: u64,
    completions: Vec<Completion>,
    vrt_rng: StdRng,
    vrt_events: u64,
    /// Per-channel conservative next-event bounds (event-driven engine):
    /// memory ticks strictly before `mc_next_event[i]` are provable
    /// no-ops for controller `i`. 0 forces a real tick.
    pub(crate) mc_next_event: Vec<u64>,
    /// Target selection for the fault harness (independent of `vrt_rng`
    /// so `cfg.vrt_interval_cycles` and `cfg.fault_plan` compose without
    /// perturbing each other's draws).
    fault_rng: StdRng,
    fault_stats: FaultStats,
    /// Active RowHammer attack scenario (generator + flip model); `None`
    /// when `cfg.hammer` is unset.
    hammer: Option<HammerState>,
}

impl System {
    /// Builds a system running one application per core.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or the configuration is inconsistent;
    /// [`System::try_new`] returns the error instead.
    pub fn new(cfg: SystemConfig, apps: &[&AppProfile]) -> Self {
        match Self::try_new(cfg, apps) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`System::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CrowError`] if `apps` is empty or any configuration
    /// fails validation.
    pub fn try_new(cfg: SystemConfig, apps: &[&AppProfile]) -> Result<Self, CrowError> {
        if apps.is_empty() {
            return Err(CrowError::Config(ConfigError::new(
                "SystemConfig",
                "at least one application required",
            )));
        }
        let traces = apps
            .iter()
            .enumerate()
            .map(|(i, a)| a.trace(cfg.seed.wrapping_add(i as u64 * 0x5bd1e995)))
            .collect();
        Self::try_with_traces(cfg, traces)
    }

    /// Builds a system from explicit instruction traces, one per core
    /// (e.g. recorded traces loaded with `crow_cpu::trace::load_trace`).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the configuration is inconsistent;
    /// [`System::try_with_traces`] returns the error instead.
    pub fn with_traces(cfg: SystemConfig, traces: Vec<Box<dyn crow_cpu::TraceSource>>) -> Self {
        match Self::try_with_traces(cfg, traces) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`System::with_traces`]: every configuration
    /// (DRAM geometry/timings, controller, CPU) is validated up front
    /// and reported as a typed [`CrowError`] instead of a panic deep in
    /// a constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CrowError`] if `traces` is empty or any configuration
    /// fails validation.
    pub fn try_with_traces(
        cfg: SystemConfig,
        traces: Vec<Box<dyn crow_cpu::TraceSource>>,
    ) -> Result<Self, CrowError> {
        if traces.is_empty() {
            return Err(CrowError::Config(ConfigError::new(
                "SystemConfig",
                "at least one core required",
            )));
        }
        let dram = cfg.effective_dram();
        dram.validate()
            .map_err(|reason| ConfigError::new("DramConfig", reason))?;
        cfg.cpu
            .validate()
            .map_err(|reason| ConfigError::new("CpuConfig", reason))?;
        let mapper = AddrMapper::new(cfg.scheme, cfg.channels, &dram);
        let mut mc_cfg = cfg.mc;
        match cfg.mechanism {
            Mechanism::NoRefresh | Mechanism::IdealCacheNoRefresh => mc_cfg.refresh = false,
            Mechanism::Salp {
                open_page: true, ..
            } => mc_cfg = mc_cfg.with_open_page(),
            Mechanism::Para { hazard } => {
                mc_cfg = mc_cfg.with_mitigation(crow_mem::Mitigation::Para { hazard });
            }
            Mechanism::Trr { entries, threshold } => {
                mc_cfg = mc_cfg.with_mitigation(crow_mem::Mitigation::Trr { entries, threshold });
            }
            _ => {}
        }
        let hammer = match &cfg.hammer {
            None => None,
            Some(sc) => Some(
                HammerState::try_new(sc, &dram, cfg.channels, cfg.seed)
                    .map_err(|reason| ConfigError::new("HammerScenario", reason))?,
            ),
        };
        let mcs: Vec<MemController> = (0..cfg.channels)
            .map(|ch| -> Result<MemController, CrowError> {
                let crow = Self::build_crow(&cfg, &dram, ch);
                let mut mc = MemController::try_new(mc_cfg, dram.clone(), crow)?;
                // PARA's coin stream is per channel so multi-channel
                // samplings do not correlate.
                mc.set_mitigation_seed(cfg.seed ^ 0x5041_5241 ^ (u64::from(ch) << 32));
                if cfg.hammer.is_some() {
                    mc.enable_event_log();
                }
                if let Mechanism::TlDram { near_rows } = cfg.mechanism {
                    let model = TlDramModel::calibrated();
                    let near_trcd = model.near_trcd_ratio(u32::from(near_rows));
                    let near_tras = model.near_tras_ratio(u32::from(near_rows));
                    let near = ActTimingMod {
                        trcd: near_trcd,
                        tras_full: near_tras,
                        tras_early: near_tras,
                        twr_full: near_tras.max(0.2),
                        twr_early: near_tras.max(0.2),
                    };
                    let f = model.far_ratio();
                    let far = ActTimingMod {
                        trcd: f,
                        tras_full: f,
                        tras_early: f,
                        twr_full: f,
                        twr_early: f,
                    };
                    mc.set_cache_mode(CacheMode::TlDram { near, far });
                }
                if cfg.oracle && !matches!(cfg.mechanism, Mechanism::TlDram { .. }) {
                    mc.attach_oracle();
                }
                if cfg.validate_protocol {
                    mc.attach_validator();
                }
                Ok(mc)
            })
            .collect::<Result<_, _>>()?;
        let cluster = CpuCluster::new(cfg.cpu, traces, mapper.capacity_bytes(), cfg.seed);
        let vrt_rng = StdRng::seed_from_u64(cfg.seed ^ 0x56525421);
        let fault_seed = cfg.fault_plan.map_or(0, |p| p.seed);
        let fault_rng = StdRng::seed_from_u64(fault_seed ^ 0x464C5421);
        let mc_next_event = vec![0; mcs.len()];
        Ok(Self {
            cfg,
            cluster,
            mcs,
            mapper,
            cpu_cycle: 0,
            mem_cycle: 0,
            clock_accum: 0,
            completions: Vec::with_capacity(64),
            vrt_rng,
            vrt_events: 0,
            mc_next_event,
            fault_rng,
            fault_stats: FaultStats::default(),
            hammer,
        })
    }

    /// Injects one VRT weak-row discovery: a random row of a random bank
    /// on a round-robin channel is declared weak and queued for runtime
    /// remapping (paper §4.2.3).
    pub fn inject_vrt_event(&mut self) {
        let ch = (self.vrt_events % u64::from(self.cfg.channels)) as usize;
        let dram = self.mcs[ch].channel().config();
        let rank = self.vrt_rng.gen_range(0..dram.ranks);
        let bank = self.vrt_rng.gen_range(0..dram.banks);
        let row = self.vrt_rng.gen_range(0..dram.rows_per_bank);
        self.mcs[ch].remap_weak_row_in_rank(rank, bank, row);
        self.mc_next_event[ch] = 0;
        self.vrt_events += 1;
    }

    /// Number of VRT events injected so far.
    pub fn vrt_events(&self) -> u64 {
        self.vrt_events
    }

    /// Counters for everything the fault harness injected.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Applies every injection due at the current CPU cycle under the
    /// configured [`crate::FaultPlan`]. All selections draw from the dedicated
    /// fault RNG, so the schedule is bit-reproducible and identical
    /// across stepping engines.
    fn poll_fault_plan(&mut self) {
        let Some(plan) = self.cfg.fault_plan else {
            return;
        };
        let now = self.cpu_cycle;
        if now == 0 {
            return;
        }
        if plan.vrt_interval.is_some_and(|i| now.is_multiple_of(i)) {
            self.inject_fault_vrt(plan.policy);
        }
        if plan.hammer_interval.is_some_and(|i| now.is_multiple_of(i)) {
            self.inject_fault_hammer(plan.policy, plan.hammer_burst);
        }
        if plan.drop_interval.is_some_and(|i| now.is_multiple_of(i)) {
            let ch = (self.fault_stats.drops_injected % u64::from(self.cfg.channels)) as usize;
            self.mcs[ch].drop_next_issue();
            self.mc_next_event[ch] = 0;
            self.fault_stats.drops_injected += 1;
        }
    }

    /// One VRT retention failure: a random row is declared weak. Without
    /// a CROW substrate the remap is unmitigable; [`FaultPolicy::Degrade`]
    /// suppresses it (counted), other policies queue it anyway (the
    /// controller drops the op and the row simply stays unprotected).
    fn inject_fault_vrt(&mut self, policy: FaultPolicy) {
        let ch = (self.fault_stats.vrt_injected % u64::from(self.cfg.channels)) as usize;
        if policy == FaultPolicy::Degrade && self.mcs[ch].crow().is_none() {
            self.fault_stats.suppressed += 1;
            return;
        }
        let dram = self.mcs[ch].channel().config();
        let rank = self.fault_rng.gen_range(0..dram.ranks);
        let bank = self.fault_rng.gen_range(0..dram.banks);
        let row = self.fault_rng.gen_range(0..dram.rows_per_bank);
        self.mcs[ch].remap_weak_row_in_rank(rank, bank, row);
        self.mc_next_event[ch] = 0;
        self.fault_stats.vrt_injected += 1;
    }

    /// One RowHammer burst: `burst` aggressor activations of a random
    /// row are shown to the detector; flagged victims queue `ACT-c`
    /// protection copies.
    fn inject_fault_hammer(&mut self, policy: FaultPolicy, burst: u32) {
        let ch = (self.fault_stats.hammer_injected % u64::from(self.cfg.channels)) as usize;
        if policy == FaultPolicy::Degrade && self.mcs[ch].crow().is_none() {
            self.fault_stats.suppressed += 1;
            return;
        }
        let dram = self.mcs[ch].channel().config();
        let rank = self.fault_rng.gen_range(0..dram.ranks);
        let bank = self.fault_rng.gen_range(0..dram.banks);
        let row = self.fault_rng.gen_range(0..dram.rows_per_bank);
        let victims = self.mcs[ch].inject_disturbance(rank, bank, row, burst, self.mem_cycle);
        self.mc_next_event[ch] = 0;
        self.fault_stats.hammer_injected += 1;
        self.fault_stats.hammer_victims += u64::from(victims);
    }

    fn build_crow(
        cfg: &SystemConfig,
        dram: &crow_dram::DramConfig,
        ch: u32,
    ) -> Option<CrowSubstrate> {
        let base = CrowConfig {
            // One table bank range per (rank, bank) pair.
            banks: dram.banks * dram.ranks,
            subarrays_per_bank: dram.subarrays_per_bank(),
            rows_per_subarray: dram.rows_per_subarray,
            copy_rows: dram.copy_rows_per_subarray,
            share_factor: 1,
            cache: true,
            hammer: None,
            ideal: false,
        };
        match cfg.mechanism {
            Mechanism::Baseline
            | Mechanism::NoRefresh
            | Mechanism::Salp { .. }
            | Mechanism::Para { .. }
            | Mechanism::Trr { .. } => None,
            Mechanism::CrowCache { share_factor, .. } => {
                let mut c = base;
                c.share_factor = share_factor;
                Some(CrowSubstrate::new(c))
            }
            Mechanism::TlDram { .. } => Some(CrowSubstrate::new(base)),
            Mechanism::IdealCache | Mechanism::IdealCacheNoRefresh => {
                let mut c = base;
                c.ideal = true;
                Some(CrowSubstrate::new(c))
            }
            Mechanism::CrowRef { profile } => {
                let mut c = base;
                c.cache = false;
                let mut s = CrowSubstrate::new(c);
                let weak = profile.generate(
                    dram.banks * dram.ranks,
                    dram.subarrays_per_bank(),
                    dram.rows_per_subarray,
                    dram.copy_rows_per_subarray,
                    cfg.seed ^ (0x9e37 + u64::from(ch)),
                );
                s.install_ref_plan(&weak);
                Some(s)
            }
            Mechanism::CrowCombined { profile, .. } => {
                let mut s = CrowSubstrate::new(base);
                let weak = profile.generate(
                    dram.banks * dram.ranks,
                    dram.subarrays_per_bank(),
                    dram.rows_per_subarray,
                    dram.copy_rows_per_subarray,
                    cfg.seed ^ (0x9e37 + u64::from(ch)),
                );
                s.install_ref_plan(&weak);
                Some(s)
            }
            Mechanism::RowHammer { hammer, .. } => {
                let mut c = base;
                c.hammer = Some(hammer);
                Some(CrowSubstrate::new(c))
            }
        }
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Functionally warms the LLC/page tables (no timing).
    pub fn warm(&mut self, instructions: u64) {
        self.cluster.warm(instructions);
    }

    /// Serializes the post-warmup architectural state (cores, page
    /// tables, LLC) as opaque words, or `None` when the system has
    /// already started timing simulation or a component cannot
    /// checkpoint. Pair with [`System::restore_checkpoint_words`] on a
    /// freshly built system of identical configuration.
    pub fn checkpoint_words(&self) -> Option<Vec<u64>> {
        if self.cpu_cycle != 0 || self.mem_cycle != 0 {
            return None;
        }
        self.cluster.checkpoint_words()
    }

    /// Restores warmup state captured by [`System::checkpoint_words`].
    /// Returns `false` on malformed or mismatched words; the system must
    /// then be rebuilt and warmed cold.
    pub fn restore_checkpoint_words(&mut self, words: &[u64]) -> bool {
        self.cpu_cycle == 0 && self.mem_cycle == 0 && self.cluster.restore_checkpoint_words(words)
    }

    /// Direct access to the controllers (tests/diagnostics).
    pub fn controllers(&self) -> &[MemController] {
        &self.mcs
    }

    /// Direct access to the active attack scenario's state
    /// (tests/diagnostics); `None` when no scenario is configured.
    pub fn hammer_state(&self) -> Option<&HammerState> {
        self.hammer.as_ref()
    }

    /// Advances the system by one CPU cycle.
    ///
    /// With `event_driven` set, memory ticks provably before a
    /// controller's next event are replaced by the equivalent background
    /// accounting ([`MemController::skip_idle`]); everything else is
    /// stepped identically to the naive engine.
    pub(crate) fn step(&mut self, event_driven: bool) {
        if let Some(interval) = self.cfg.vrt_interval_cycles {
            if self.cpu_cycle > 0 && self.cpu_cycle.is_multiple_of(interval) {
                self.inject_vrt_event();
            }
        }
        self.poll_fault_plan();
        self.poll_hammer();
        let (num, den) = SystemConfig::CLOCK_RATIO;
        self.clock_accum += den;
        if self.clock_accum >= num {
            self.clock_accum -= num;
            let hammer = &mut self.hammer;
            for (i, mc) in self.mcs.iter_mut().enumerate() {
                if event_driven && self.mem_cycle < self.mc_next_event[i] {
                    mc.skip_idle(1);
                } else {
                    mc.tick(self.mem_cycle, &mut self.completions);
                    if let Some(hs) = hammer.as_mut() {
                        hs.drain(i as u32, mc);
                    }
                    if event_driven {
                        self.mc_next_event[i] = mc.min_wakeup(self.mem_cycle);
                    }
                }
            }
            self.mem_cycle += 1;
            for c in self.completions.drain(..) {
                self.cluster.on_completion(c.id, self.cpu_cycle);
            }
        }
        let mut router = Router {
            mcs: &mut self.mcs,
            mapper: &self.mapper,
            next_event: &mut self.mc_next_event,
        };
        self.cluster.cycle(self.cpu_cycle, &mut router);
        self.cpu_cycle += 1;
    }

    /// Delivers one due aggressor request to its channel's controller
    /// (no-op without an active scenario). Rejections re-arm for retry;
    /// a successful enqueue mutates the controller, so its event-driven
    /// bound is reset just like the [`Router`]'s.
    fn poll_hammer(&mut self) {
        let Some(hs) = self.hammer.as_mut() else {
            return;
        };
        if let Some(req) = hs.gen.poll(self.cpu_cycle) {
            let ch = hs.gen.channel() as usize;
            match self.mcs[ch].try_enqueue(req) {
                Ok(()) => {
                    hs.gen.note_injected();
                    self.mc_next_event[ch] = 0;
                }
                Err(r) => hs.gen.requeue(r),
            }
        }
    }

    /// How many CPU cycles (starting at the current one) the whole
    /// system can provably fast-forward: the cluster is inert, no VRT
    /// injection is due, and no skipped memory tick would reach a
    /// controller's next event. 0 means the next cycle must step.
    pub(crate) fn idle_skip(&self, max_cpu_cycles: u64) -> u64 {
        let inert = self.cluster.inert_cycles(self.cpu_cycle);
        if inert == 0 {
            return 0;
        }
        let now = self.cpu_cycle;
        let mut k = inert.min(max_cpu_cycles.saturating_sub(now));
        if let Some(interval) = self.cfg.vrt_interval_cycles {
            if now > 0 && now.is_multiple_of(interval) {
                return 0; // an injection is due this very cycle
            }
            k = k.min((now / interval + 1) * interval - now);
        }
        if let Some(plan) = &self.cfg.fault_plan {
            if plan.due(now) {
                return 0; // a fault injection is due this very cycle
            }
            k = k.min(plan.next_boundary_in(now));
        }
        if let Some(hs) = &self.hammer {
            if hs.gen.due(now) {
                return 0; // an aggressor injection is due this very cycle
            }
            k = k.min(hs.gen.next_boundary_in(now));
        }
        // Memory-side cap: the skipped span may contain only memory
        // ticks strictly before the earliest controller event. Over `k`
        // CPU cycles the accumulator produces
        // `(clock_accum + den*k) / num` ticks, at cycles
        // `mem_cycle ..`; bounding those below `mem_next` yields the
        // largest admissible `k`.
        let (num, den) = SystemConfig::CLOCK_RATIO;
        let mem_next = self.mc_next_event.iter().copied().min().unwrap_or(u64::MAX);
        let r = mem_next.saturating_sub(self.mem_cycle);
        let budget = num
            .saturating_mul(r.saturating_add(1))
            .saturating_sub(1 + self.clock_accum);
        k.min(budget / den)
    }

    /// Fast-forwards `skip` cycles agreed by [`System::idle_skip`]:
    /// advances inert cores in closed form, replays the clock
    /// accumulator, and charges the skipped memory ticks as idle
    /// background time.
    pub(crate) fn apply_skip(&mut self, skip: u64) {
        self.cluster.advance_inert(self.cpu_cycle, skip);
        let (num, den) = SystemConfig::CLOCK_RATIO;
        let total = self.clock_accum + den * skip;
        let mem_ticks = total / num;
        self.clock_accum = total % num;
        if mem_ticks > 0 {
            for mc in &mut self.mcs {
                mc.skip_idle(mem_ticks);
            }
            self.mem_cycle += mem_ticks;
        }
        self.cpu_cycle += skip;
    }

    /// Runs until every core reaches its instruction target or
    /// `max_cpu_cycles` elapse; returns the report (with wall-clock
    /// throughput of this call filled in).
    pub fn run(&mut self, max_cpu_cycles: u64) -> SimReport {
        let started = std::time::Instant::now();
        let start_cycle = self.cpu_cycle;
        // Sampled runs own the phase schedule and are serial-only (the
        // sharded driver cannot re-target cores mid-shard).
        let sampled = self
            .cfg
            .sample
            .map(|plan| crate::sampling::drive(self, plan, max_cpu_cycles));
        if sampled.is_none() {
            // Attack scenarios are serial-only: the sharded driver cannot
            // poll the generator or drain flip events mid-shard.
            if self.cfg.threads > 1 && self.cfg.channels > 1 && self.hammer.is_none() {
                crate::parallel::drive(self, max_cpu_cycles);
            } else {
                self.run_serial(max_cpu_cycles);
            }
        }
        if self.cfg.validate_protocol {
            let now = self.mem_cycle;
            for mc in &mut self.mcs {
                mc.finish_validation(now);
            }
        }
        let mut r = self.report();
        if let Some(out) = sampled {
            // The plain counters only cover the last measured phase;
            // replace them with the per-window aggregates.
            r.ipc = out.ipc;
            r.mpki = out.mpki;
            r.finished = out.complete;
            r.samples = Some(out.stats);
        }
        r.wall_seconds = started.elapsed().as_secs_f64();
        if r.wall_seconds > 0.0 {
            r.sim_cycles_per_sec = (self.cpu_cycle - start_cycle) as f64 / r.wall_seconds;
        }
        r
    }

    /// The serial stepping loop under the configured engine: runs until
    /// every core reaches its current instruction target or
    /// `max_cpu_cycles` elapse. Factored out so the sampling driver can
    /// re-enter the detailed pipeline for each measured window.
    pub(crate) fn run_serial(&mut self, max_cpu_cycles: u64) {
        match self.cfg.engine {
            Engine::Naive => {
                while !self.cluster.done() && self.cpu_cycle < max_cpu_cycles {
                    self.step(false);
                }
            }
            Engine::EventDriven => {
                while !self.cluster.done() && self.cpu_cycle < max_cpu_cycles {
                    let skip = self.idle_skip(max_cpu_cycles);
                    if skip > 0 {
                        self.apply_skip(skip);
                    } else {
                        self.step(true);
                    }
                }
            }
        }
    }

    /// Like [`System::run`], but turns bad outcomes into typed errors:
    /// unless the fault plan's policy is [`FaultPolicy::Record`] or
    /// [`FaultPolicy::Degrade`] (which explicitly opt into completing),
    /// a core parked on a dry trace or any protocol violation recorded
    /// by the shadow validator fails the run.
    ///
    /// # Errors
    ///
    /// Returns [`CrowError::Trace`] for a parked core and
    /// [`CrowError::Protocol`] (with the first formatted violation) for
    /// validator findings.
    pub fn run_checked(&mut self, max_cpu_cycles: u64) -> Result<SimReport, CrowError> {
        let r = self.run(max_cpu_cycles);
        let tolerate = self
            .cfg
            .fault_plan
            .is_some_and(|p| matches!(p.policy, FaultPolicy::Record | FaultPolicy::Degrade));
        if !tolerate {
            if let Some(&(_, e)) = self.cluster.trace_faults().first() {
                return Err(CrowError::Trace(e));
            }
            if r.violations > 0 {
                let first = self.mcs.iter().find_map(|mc| {
                    mc.channel()
                        .validator()
                        .and_then(|v| v.violations().first())
                        .map(ToString::to_string)
                });
                return Err(CrowError::Protocol {
                    violations: r.violations,
                    first,
                });
            }
        }
        Ok(r)
    }

    /// Builds the report for the current state.
    pub fn report(&self) -> SimReport {
        let n = self.cluster.num_cores();
        let mut mc = McStats::new();
        let mut commands = ChannelStats::new();
        let mut crow = CrowStats::new();
        let mut energy = EnergyCounter::new();
        let mut sched = SchedStats::new();
        let mut violations = 0u64;
        let mut hammer = self
            .hammer
            .as_ref()
            .map(HammerState::stats)
            .unwrap_or_default();
        for c in &self.mcs {
            mc.merge(c.stats());
            commands.merge(c.channel().stats());
            energy.merge(&c.energy());
            sched.merge(c.sched_stats());
            if let Some(s) = c.crow() {
                crow.merge(s.stats());
                hammer.detections += s.hammer_detections();
            }
            if let Some(v) = c.channel().validator() {
                violations += v.total_violations();
            }
        }
        hammer.mitigation_refreshes = mc.neighbor_refreshes;
        SimReport {
            ipc: (0..n).map(|i| self.cluster.ipc(i)).collect(),
            mpki: (0..n).map(|i| self.cluster.mpki(i)).collect(),
            cpu_cycles: self.cpu_cycle,
            mem_cycles: self.mem_cycle,
            mc,
            commands,
            crow,
            energy,
            finished: self.cluster.done(),
            violations,
            trace_faults: self.cluster.trace_faults().len() as u64,
            faults: self.fault_stats,
            sched,
            hammer,
            samples: None,
            wall_seconds: 0.0,
            sim_cycles_per_sec: 0.0,
        }
    }

    /// Asserts the data-integrity oracle saw no violations (requires
    /// `cfg.oracle`).
    ///
    /// # Panics
    ///
    /// Panics if any channel recorded a violation.
    pub fn assert_data_integrity(&self) {
        for mc in &self.mcs {
            if let Some(o) = mc.channel().oracle() {
                o.assert_clean();
            }
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("mechanism", &self.cfg.mechanism.label())
            .field("cpu_cycle", &self.cpu_cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Mechanism, SystemConfig};

    fn app(name: &str) -> &'static AppProfile {
        AppProfile::by_name(name).unwrap()
    }

    fn run_quick(mechanism: Mechanism, name: &str) -> SimReport {
        let mut cfg = SystemConfig::quick_test(mechanism);
        cfg.oracle = true;
        let mut sys = System::new(cfg, &[app(name)]);
        let r = sys.run(30_000_000);
        sys.assert_data_integrity();
        assert!(r.finished, "{name} under {mechanism:?} did not finish");
        r
    }

    #[test]
    fn baseline_run_finishes_with_sane_stats() {
        let r = run_quick(Mechanism::Baseline, "mcf");
        assert!(r.ipc[0] > 0.0 && r.ipc[0] <= 4.0);
        assert!(
            r.mpki[0] > 10.0,
            "mcf must be memory-intensive: {}",
            r.mpki[0]
        );
        assert!(r.mc.reads > 0);
        assert!(r.energy.total_nj() > 0.0);
    }

    #[test]
    fn crow_cache_beats_baseline_on_reuse_heavy_app() {
        let base = run_quick(Mechanism::Baseline, "mcf");
        let crow = run_quick(Mechanism::crow_cache(8), "mcf");
        assert!(crow.commands.issued(crow_dram::Command::ActT) > 0);
        assert!(
            crow.crow_hit_rate() > 0.3,
            "hit rate {}",
            crow.crow_hit_rate()
        );
        assert!(
            crow.ipc[0] > base.ipc[0],
            "CROW {} vs baseline {}",
            crow.ipc[0],
            base.ipc[0]
        );
    }

    #[test]
    fn ideal_cache_at_least_as_fast_as_crow8() {
        let crow = run_quick(Mechanism::crow_cache(8), "omnetpp");
        let cfg = SystemConfig::quick_test(Mechanism::IdealCache);
        let mut sys = System::new(cfg, &[app("omnetpp")]);
        let ideal = sys.run(30_000_000);
        assert!(
            ideal.ipc[0] >= crow.ipc[0] * 0.98,
            "ideal {} vs CROW-8 {}",
            ideal.ipc[0],
            crow.ipc[0]
        );
    }

    #[test]
    fn crow_ref_reduces_refreshes() {
        // Compare refresh counts over an identical simulated window.
        let count = |mech: Mechanism| -> u64 {
            let mut cfg = SystemConfig::quick_test(mech);
            cfg.cpu.target_insts = u64::MAX / 2; // never finishes
            let mut sys = System::new(cfg, &[app("libq")]);
            let r = sys.run(2_000_000);
            r.mc.refreshes
        };
        let base = count(Mechanism::Baseline);
        let cref = count(Mechanism::crow_ref());
        assert!(base > 10, "window too short: {base}");
        // Doubled interval: about half the refreshes.
        let ratio = cref as f64 / base as f64;
        assert!(
            (0.4..0.62).contains(&ratio),
            "ratio {ratio} ({cref}/{base})"
        );
    }

    #[test]
    fn salp_runs_and_overlaps() {
        let r = run_quick(
            Mechanism::Salp {
                subarrays: 8,
                open_page: true,
            },
            "mcf",
        );
        assert!(r.ipc[0] > 0.0);
    }

    #[test]
    fn tldram_runs() {
        let mut cfg = SystemConfig::quick_test(Mechanism::TlDram { near_rows: 8 });
        cfg.oracle = false; // timing-only model
        let mut sys = System::new(cfg, &[app("mcf")]);
        let r = sys.run(30_000_000);
        assert!(r.finished);
        assert!(r.ipc[0] > 0.0);
    }

    #[test]
    fn four_core_run_finishes() {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.cpu.target_insts = 15_000;
        let apps = [app("mcf"), app("libq"), app("gcc"), app("povray")];
        let mut sys = System::new(cfg, &apps);
        let r = sys.run(80_000_000);
        assert!(r.finished);
        assert_eq!(r.ipc.len(), 4);
        for (i, &ipc) in r.ipc.iter().enumerate() {
            assert!(ipc > 0.0, "core {i} ipc");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
            let mut sys = System::new(cfg, &[app("milc")]);
            sys.run(30_000_000)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.mc.reads, b.mc.reads);
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
    }

    #[test]
    fn vrt_events_remap_rows_at_runtime() {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_combined());
        cfg.oracle = true;
        cfg.vrt_interval_cycles = Some(20_000);
        let mut sys = System::new(cfg, &[app("mcf")]);
        let r = sys.run(30_000_000);
        assert!(r.finished);
        assert!(sys.vrt_events() > 0, "VRT events should have fired");
        sys.assert_data_integrity();
        // Runtime remaps land in the table as pinned Ref entries: the
        // total of installed ref remaps grows beyond the boot-time plan.
        let boot_plan = {
            let cfg2 = SystemConfig::quick_test(Mechanism::crow_combined());
            let sys2 = System::new(cfg2, &[app("mcf")]);
            sys2.controllers()[0]
                .crow()
                .unwrap()
                .table()
                .total_occupancy()
        };
        let with_vrt = sys.controllers()[0]
            .crow()
            .unwrap()
            .table()
            .total_occupancy();
        // Occupancy comparison is noisy (cache entries churn), so check
        // the refresh multiplier stayed extended and the run stayed clean.
        assert_eq!(sys.controllers()[0].crow().unwrap().refresh_multiplier(), 2);
        let _ = (boot_plan, with_vrt);
    }

    #[test]
    fn workload_profiles_land_in_their_intensity_classes() {
        // The suite's generators must reproduce the paper's L/M/H
        // classification when actually simulated (one representative
        // app per class plus the boundary-heavy cases).
        use crow_workloads::Class;
        for name in ["mcf", "libq", "gcc", "astar", "povray", "gamess"] {
            let profile = AppProfile::by_name(name).unwrap();
            let mut cfg = SystemConfig::quick_test(Mechanism::Baseline);
            cfg.cpu.target_insts = 40_000;
            // Match the paper platform's LLC share for one core.
            cfg.cpu.llc_bytes = 8 << 20;
            let mut sys = System::new(cfg, &[profile]);
            sys.warm(20_000);
            let r = sys.run(200_000_000);
            assert!(r.finished, "{name}");
            let mpki = r.mpki[0];
            match profile.class {
                Class::H => assert!(mpki >= 8.0, "{name}: H-class mpki {mpki}"),
                Class::M => assert!((0.8..12.0).contains(&mpki), "{name}: M-class mpki {mpki}"),
                Class::L => assert!(mpki < 1.6, "{name}: L-class mpki {mpki}"),
            }
        }
    }

    #[test]
    fn ddr4_platform_runs_and_crow_still_helps() {
        let run = |mech| {
            let mut cfg = SystemConfig::ddr4(mech);
            cfg.cpu.target_insts = 30_000;
            cfg.oracle = true;
            let mut sys = System::new(cfg, &[app("mcf")]);
            let r = sys.run(40_000_000);
            sys.assert_data_integrity();
            assert!(r.finished);
            r
        };
        let base = run(Mechanism::Baseline);
        let crow = run(Mechanism::crow_cache(8));
        assert!(crow.commands.issued(crow_dram::Command::ActT) > 0);
        assert!(
            crow.ipc[0] > base.ipc[0] * 0.99,
            "CROW on DDR4: {} vs {}",
            crow.ipc[0],
            base.ipc[0]
        );
    }

    #[test]
    fn try_construction_reports_typed_errors() {
        let mut bad_dram = SystemConfig::quick_test(Mechanism::Baseline);
        bad_dram.dram.banks = 6;
        let e = System::try_new(bad_dram, &[app("mcf")]).unwrap_err();
        assert!(e.to_string().contains("invalid DramConfig"), "{e}");

        let mut bad_mc = SystemConfig::quick_test(Mechanism::Baseline);
        bad_mc.mc.read_q = 0;
        let e = System::try_new(bad_mc, &[app("mcf")]).unwrap_err();
        assert!(e.to_string().contains("invalid McConfig"), "{e}");

        let e = System::try_new(SystemConfig::quick_test(Mechanism::Baseline), &[]).unwrap_err();
        assert!(e.to_string().contains("at least one application"), "{e}");
    }

    #[test]
    fn dry_trace_parks_core_and_run_checked_reports_it() {
        use crow_cpu::{IterTrace, TraceEntry};
        // ~6000 instructions of trace against a 30 000-instruction
        // target: the trace runs dry mid-measurement.
        let mk = || {
            let src = IterTrace::try_new(
                (0..2000u64)
                    .map(|i| TraceEntry::load(2, (i % 512) * 64))
                    .collect::<Vec<_>>()
                    .into_iter(),
            )
            .unwrap();
            let cfg = SystemConfig::quick_test(Mechanism::Baseline);
            System::try_with_traces(cfg, vec![Box::new(src)]).unwrap()
        };
        // run() completes gracefully and reports the parked core.
        let mut sys = mk();
        let r = sys.run(10_000_000);
        assert!(r.finished, "parked cluster still terminates the run");
        assert_eq!(r.trace_faults, 1);
        assert_eq!(r.ipc[0], 0.0, "target never reached");
        // run_checked() surfaces it as a typed error.
        let mut sys = mk();
        let e = sys.run_checked(10_000_000).unwrap_err();
        assert!(
            matches!(
                e,
                crate::error::CrowError::Trace(crow_cpu::TraceError::Exhausted { .. })
            ),
            "{e}"
        );
        assert!(e.to_string().contains("trace exhausted"), "{e}");
    }

    #[test]
    fn hammer_fault_injection_queues_victim_copies() {
        use crate::fault::FaultPlan;
        let mechanism = Mechanism::RowHammer {
            copy_rows: 8,
            hammer: crow_core::HammerConfig {
                threshold: 16,
                window_cycles: 100_000_000,
            },
        };
        let mut cfg = SystemConfig::quick_test(mechanism);
        cfg.oracle = true;
        cfg.validate_protocol = true;
        let mut plan = FaultPlan::quiet(0xBEEF);
        plan.hammer_interval = Some(20_000);
        plan.hammer_burst = 32; // crosses the detector threshold alone
        cfg.fault_plan = Some(plan);
        let mut sys = System::new(cfg, &[app("mcf")]);
        let r = sys.run(30_000_000);
        assert!(r.finished);
        assert!(r.faults.hammer_injected > 0);
        assert!(
            r.faults.hammer_victims > 0,
            "a 32-activation burst over threshold 16 must flag victims"
        );
        assert!(
            r.mc.hammer_copies > 0,
            "queued victims must become ACT-c protection copies"
        );
        assert_eq!(r.violations, 0, "injections must not break protocol");
        sys.assert_data_integrity();
    }

    #[test]
    fn degrade_policy_suppresses_unmitigable_injections() {
        use crate::fault::{FaultPlan, FaultPolicy};
        // Baseline has no CROW substrate: VRT remaps and hammer
        // protection are unmitigable, so Degrade suppresses them.
        let mut cfg = SystemConfig::quick_test(Mechanism::Baseline);
        cfg.cpu.target_insts = u64::MAX / 2; // never finishes
        let mut plan = FaultPlan::quiet(3);
        plan.vrt_interval = Some(10_000);
        plan.hammer_interval = Some(15_000);
        plan.policy = FaultPolicy::Degrade;
        cfg.fault_plan = Some(plan);
        let mut sys = System::new(cfg, &[app("libq")]);
        let r = sys.run(300_000);
        assert!(r.faults.suppressed > 0, "{:?}", r.faults);
        assert_eq!(r.faults.vrt_injected, 0);
        assert_eq!(r.faults.hammer_injected, 0);
        assert_eq!(r.faults.total_injected(), 0);
    }

    #[test]
    fn warmup_reduces_cold_misses() {
        let cfg = SystemConfig::quick_test(Mechanism::Baseline);
        let mut cold = System::new(cfg.clone(), &[app("gcc")]);
        let rc = cold.run(30_000_000);
        let mut warm = System::new(cfg, &[app("gcc")]);
        warm.warm(50_000);
        let rw = warm.run(30_000_000);
        assert!(
            rw.mpki[0] <= rc.mpki[0] * 1.05,
            "{} vs {}",
            rw.mpki[0],
            rc.mpki[0]
        );
    }
}
