//! System configuration and mechanism presets.

use crow_core::retention::RetentionProfile;
use crow_core::HammerConfig;
use crow_cpu::CpuConfig;
use crow_dram::{DramConfig, MapScheme, MraTimings};
use crow_mem::McConfig;

use crate::fault::FaultPlan;

/// Which memory-system mechanism the run evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Commodity LPDDR4 (paper baseline).
    Baseline,
    /// CROW-cache with `copy_rows` per subarray and a CROW-table entry
    /// sharing factor (§6.1; 1 = dedicated entries).
    CrowCache {
        /// Copy rows per subarray (CROW-1 / CROW-8 / CROW-255).
        copy_rows: u8,
        /// Entry sharing factor.
        share_factor: u32,
    },
    /// CROW-ref weak-row remapping (doubles the refresh interval).
    CrowRef {
        /// How weak rows are injected.
        profile: RetentionProfile,
    },
    /// CROW-cache + CROW-ref sharing the same copy rows (§8.3).
    CrowCombined {
        /// Copy rows per subarray.
        copy_rows: u8,
        /// Weak-row injection.
        profile: RetentionProfile,
    },
    /// Hypothetical 100%-hit-rate CROW-cache (paper's *Ideal
    /// CROW-cache*).
    IdealCache,
    /// Ideal CROW-cache plus no refresh at all (the Fig. 14 ideal).
    IdealCacheNoRefresh,
    /// Refresh disabled only (ablation).
    NoRefresh,
    /// TL-DRAM \[58\] with a near segment of `near_rows` per subarray.
    TlDram {
        /// Near-segment rows.
        near_rows: u8,
    },
    /// SALP-MASA \[53\] with `subarrays` subarrays per bank.
    Salp {
        /// Subarrays per bank (baseline organization has 128).
        subarrays: u32,
        /// Use the open-page policy (`SALP-N-O` in §8.1.4).
        open_page: bool,
    },
    /// CROW-based RowHammer mitigation (§4.3) on top of CROW-cache.
    RowHammer {
        /// Copy rows per subarray.
        copy_rows: u8,
        /// Detector configuration.
        hammer: HammerConfig,
    },
    /// PARA \[51\]: every demand activation refreshes one random
    /// neighbour with probability `1/hazard` (commodity-DRAM RowHammer
    /// baseline, no copy rows).
    Para {
        /// Inverse sampling probability.
        hazard: u32,
    },
    /// TRR-like sampler: bounded per-bank counter tables, flushed at
    /// every refresh, that queue neighbor refreshes for rows activated
    /// at least `threshold` times since the last flush.
    Trr {
        /// Counter-table entries per bank.
        entries: u32,
        /// Activations per refresh interval that trigger the
        /// neighbor refresh (the tables clear every tREFI, so useful
        /// values are tens, not thousands).
        threshold: u32,
    },
}

impl Mechanism {
    /// CROW-cache with dedicated table entries.
    pub fn crow_cache(copy_rows: u8) -> Self {
        Mechanism::CrowCache {
            copy_rows,
            share_factor: 1,
        }
    }

    /// CROW-ref with the paper's pessimistic three-weak-rows profile.
    pub fn crow_ref() -> Self {
        Mechanism::CrowRef {
            profile: RetentionProfile::paper_conservative(),
        }
    }

    /// The combined mechanism with the paper's defaults (CROW-8).
    pub fn crow_combined() -> Self {
        Mechanism::CrowCombined {
            copy_rows: 8,
            profile: RetentionProfile::paper_conservative(),
        }
    }

    /// The paper's §4.3 CROW-based RowHammer mitigation with a detector
    /// threshold well under the flip regime.
    pub fn crow_hammer() -> Self {
        Mechanism::RowHammer {
            copy_rows: 8,
            hammer: HammerConfig::paper_default(),
        }
    }

    /// PARA at the literature's conventional operating point
    /// (p ≈ 0.002).
    pub fn para() -> Self {
        Mechanism::Para { hazard: 512 }
    }

    /// A TRR-like sampler with a 16-entry table per bank and a
    /// 32-activations-per-tREFI trigger.
    pub fn trr() -> Self {
        Mechanism::Trr {
            entries: 16,
            threshold: 32,
        }
    }

    /// Parses the mechanism spellings the CLI and the batch server
    /// accept: `baseline`, `crow-N`, `crow-ref`, `crow-combined`,
    /// `crow-hammer`, `ideal`, `ideal-no-refresh`, `no-refresh`,
    /// `tldram-N`, `salp-N`, `salp-N-o`, `para`, `para-N` (hazard),
    /// `trr`, and `trr-N` (threshold), all case-insensitive. `None` for
    /// anything else — callers turn that into a structured error, never
    /// a default.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        match s.as_str() {
            "baseline" => return Some(Mechanism::Baseline),
            "crow-ref" | "ref" => return Some(Mechanism::crow_ref()),
            "crow-combined" | "combined" => return Some(Mechanism::crow_combined()),
            "crow-hammer" => return Some(Mechanism::crow_hammer()),
            "ideal" => return Some(Mechanism::IdealCache),
            "ideal-no-refresh" => return Some(Mechanism::IdealCacheNoRefresh),
            "no-refresh" => return Some(Mechanism::NoRefresh),
            "para" => return Some(Mechanism::para()),
            "trr" => return Some(Mechanism::trr()),
            _ => {}
        }
        if let Some(n) = s.strip_prefix("para-") {
            if let Ok(hazard) = n.parse::<u32>() {
                if hazard > 0 {
                    return Some(Mechanism::Para { hazard });
                }
            }
        }
        if let Some(n) = s.strip_prefix("trr-") {
            if let Ok(threshold) = n.parse::<u32>() {
                if threshold > 0 {
                    return Some(Mechanism::Trr {
                        entries: 16,
                        threshold,
                    });
                }
            }
        }
        if let Some(n) = s.strip_prefix("crow-") {
            if let Ok(n) = n.parse::<u8>() {
                return Some(Mechanism::crow_cache(n));
            }
        }
        if let Some(n) = s.strip_prefix("tldram-") {
            if let Ok(n) = n.parse::<u8>() {
                return Some(Mechanism::TlDram { near_rows: n });
            }
        }
        if let Some(rest) = s.strip_prefix("salp-") {
            let (n, open_page) = match rest.strip_suffix("-o") {
                Some(core) => (core, true),
                None => (rest, false),
            };
            if let Ok(subarrays) = n.parse::<u32>() {
                if subarrays > 0 {
                    return Some(Mechanism::Salp {
                        subarrays,
                        open_page,
                    });
                }
            }
        }
        None
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Mechanism::Baseline => "baseline".into(),
            Mechanism::CrowCache {
                copy_rows,
                share_factor: 1,
            } => format!("CROW-{copy_rows}"),
            Mechanism::CrowCache {
                copy_rows,
                share_factor,
            } => format!("CROW-{copy_rows}/share{share_factor}"),
            Mechanism::CrowRef { .. } => "CROW-ref".into(),
            Mechanism::CrowCombined { copy_rows, .. } => {
                format!("CROW-{copy_rows}+ref")
            }
            Mechanism::IdealCache => "Ideal CROW-cache".into(),
            Mechanism::IdealCacheNoRefresh => "Ideal (no refresh)".into(),
            Mechanism::NoRefresh => "no-refresh".into(),
            Mechanism::TlDram { near_rows } => format!("TL-DRAM-{near_rows}"),
            Mechanism::Salp {
                subarrays,
                open_page,
            } => format!("SALP-{subarrays}{}", if *open_page { "-O" } else { "" }),
            Mechanism::RowHammer { copy_rows, .. } => format!("CROW-{copy_rows}+hammer"),
            Mechanism::Para { hazard } => format!("PARA-1/{hazard}"),
            Mechanism::Trr { threshold, .. } => format!("TRR-{threshold}"),
        }
    }
}

/// Which stepping engine [`crate::System::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Step every CPU cycle through the full model (reference engine).
    Naive,
    /// Fast-forward provably inert spans (stalled or purely mechanical
    /// cores, idle controllers) in closed form. Produces bit-identical
    /// reports to [`Engine::Naive`]; only wall-clock time differs.
    EventDriven,
}

/// Full-system configuration (paper Table 2 defaults).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of memory channels.
    pub channels: u32,
    /// Per-channel DRAM geometry/timings.
    pub dram: DramConfig,
    /// Memory-controller configuration.
    pub mc: McConfig,
    /// CPU/cache configuration.
    pub cpu: CpuConfig,
    /// Address-interleaving scheme.
    pub scheme: MapScheme,
    /// Mechanism under evaluation.
    pub mechanism: Mechanism,
    /// Master seed (traces, page tables, retention profiles).
    pub seed: u64,
    /// Attach the data-integrity oracle (slower; for tests).
    pub oracle: bool,
    /// Inject one variable-retention-time (VRT) weak-row discovery every
    /// this many CPU cycles (paper §4.2.3: newly-identified weak rows are
    /// remapped at runtime with `ACT-c`). `None` disables VRT events.
    pub vrt_interval_cycles: Option<u64>,
    /// Overrides the multiple-row-activation timing set (ablations, e.g.
    /// [`MraTimings::no_partial_restore`]); `None` uses the paper
    /// operating point.
    pub mra_override: Option<MraTimings>,
    /// Stepping engine (results are identical either way).
    pub engine: Engine,
    /// Seeded fault-injection schedule (VRT failures, RowHammer bursts,
    /// command-bus drops); `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// An active RowHammer attack scenario: a seeded aggressor generator
    /// injects attack reads through the real controller and a flip model
    /// judges the outcome ([`crate::hammer`]). `None` runs no attack.
    /// Scenario runs always use the serial engines (the sharded parallel
    /// driver is bypassed even when `threads > 1`).
    pub hammer: Option<crate::hammer::HammerScenario>,
    /// Attach the shadow protocol validator to every channel (observes
    /// each issued command against an independent JEDEC state machine;
    /// violations are reported, not asserted). Presets default this from
    /// the `CROW_VALIDATE` environment variable so an entire test run
    /// can be validated with `CROW_VALIDATE=1`.
    pub validate_protocol: bool,
    /// Worker threads for the sharded per-channel engine. `1` runs the
    /// classic serial loop; values above `1` (with more than one
    /// channel) shard channels across workers. Reports are bit-identical
    /// at any thread count.
    pub threads: u32,
    /// Interval-sampling schedule ([`crate::sampling`]): measured
    /// windows separated by functional fast-forward, with per-window
    /// confidence intervals in the report. `None` simulates every cycle
    /// in detail. Sampled runs always use the serial engines (the
    /// sharded parallel driver is bypassed even when `threads > 1`).
    pub sample: Option<crate::sampling::SamplePlan>,
}

/// Preset default for [`SystemConfig::validate_protocol`]: true iff the
/// `CROW_VALIDATE` environment variable is set to anything but `0`.
fn validate_from_env() -> bool {
    std::env::var("CROW_VALIDATE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

impl SystemConfig {
    /// The paper's Table 2 system with the given mechanism.
    pub fn paper_default(mechanism: Mechanism) -> Self {
        Self {
            channels: 4,
            dram: DramConfig::lpddr4_default(),
            mc: McConfig::paper_default(),
            cpu: CpuConfig::paper_default(),
            scheme: MapScheme::RoBaRaCoCh,
            mechanism,
            seed: 0xC0DE,
            oracle: false,
            vrt_interval_cycles: None,
            mra_override: None,
            engine: Engine::EventDriven,
            fault_plan: None,
            hammer: None,
            validate_protocol: validate_from_env(),
            threads: 1,
            sample: None,
        }
    }

    /// A DDR4-2400 platform (16 banks in 4 bank groups, 2 ranks, 64 ms
    /// refresh): CROW is not LPDDR4-specific (§7), and bank-group timing
    /// changes the scheduling landscape.
    pub fn ddr4(mechanism: Mechanism) -> Self {
        Self {
            channels: 4,
            dram: DramConfig::ddr4_default(),
            mc: McConfig::paper_default(),
            cpu: CpuConfig::paper_default(),
            scheme: MapScheme::RoBaRaCoCh,
            mechanism,
            seed: 0xC0DE,
            oracle: false,
            vrt_interval_cycles: None,
            mra_override: None,
            engine: Engine::EventDriven,
            fault_plan: None,
            hammer: None,
            validate_protocol: validate_from_env(),
            threads: 1,
            sample: None,
        }
    }

    /// A scaled-down system for fast tests: one channel, smaller DRAM
    /// and LLC, short instruction targets.
    pub fn quick_test(mechanism: Mechanism) -> Self {
        let mut dram = DramConfig::lpddr4_default();
        dram.rows_per_bank = 16_384; // 32 subarrays of 512 rows per bank
        dram.rows_per_subarray = 512;
        let mut cpu = CpuConfig::paper_default();
        cpu.llc_bytes = 1 << 20;
        cpu.target_insts = 30_000;
        Self {
            channels: 1,
            dram,
            mc: McConfig::paper_default(),
            cpu,
            scheme: MapScheme::RoBaRaCoCh,
            mechanism,
            seed: 0xC0DE,
            oracle: false,
            vrt_interval_cycles: None,
            mra_override: None,
            engine: Engine::EventDriven,
            fault_plan: None,
            hammer: None,
            validate_protocol: validate_from_env(),
            threads: 1,
            sample: None,
        }
    }

    /// Returns a copy at a different chip density (Fig. 13).
    pub fn with_density(mut self, gbit: u32) -> Self {
        self.dram = self.dram.with_density(gbit);
        self
    }

    /// Returns a copy with a different LLC capacity (Fig. 14).
    pub fn with_llc_bytes(mut self, bytes: u64) -> Self {
        self.cpu = self.cpu.with_llc_bytes(bytes);
        self
    }

    /// Returns a copy with the stride prefetcher enabled (Fig. 12).
    pub fn with_prefetcher(mut self) -> Self {
        self.cpu = self.cpu.with_prefetcher();
        self
    }

    /// Returns a copy running the given RowHammer attack scenario.
    pub fn with_hammer(mut self, sc: crate::hammer::HammerScenario) -> Self {
        self.hammer = Some(sc);
        self
    }

    /// CPU cycles per memory-bus cycle numerator/denominator
    /// (4 GHz / 1.6 GHz = 5:2).
    pub const CLOCK_RATIO: (u64, u64) = (5, 2);

    /// Resolves the effective DRAM configuration for the mechanism
    /// (copy rows, subarray parallelism, MRA timing set).
    pub fn effective_dram(&self) -> DramConfig {
        let mut d = self.dram.clone();
        match self.mechanism {
            Mechanism::Baseline
            | Mechanism::NoRefresh
            | Mechanism::Para { .. }
            | Mechanism::Trr { .. }
            | Mechanism::IdealCache
            | Mechanism::IdealCacheNoRefresh => {
                d.copy_rows_per_subarray = if matches!(
                    self.mechanism,
                    Mechanism::IdealCache | Mechanism::IdealCacheNoRefresh
                ) {
                    1
                } else {
                    0
                };
            }
            Mechanism::CrowCache { copy_rows, .. }
            | Mechanism::CrowCombined { copy_rows, .. }
            | Mechanism::RowHammer { copy_rows, .. } => {
                d.copy_rows_per_subarray = copy_rows;
            }
            Mechanism::CrowRef { .. } => {
                d.copy_rows_per_subarray = 8;
            }
            Mechanism::TlDram { near_rows } => {
                d.copy_rows_per_subarray = near_rows;
            }
            Mechanism::Salp { subarrays, .. } => {
                d.copy_rows_per_subarray = 0;
                d.subarray_parallelism = true;
                assert!(
                    d.rows_per_bank.is_multiple_of(subarrays),
                    "subarray count must divide rows per bank"
                );
                d.rows_per_subarray = d.rows_per_bank / subarrays;
            }
        }
        d.mra = self
            .mra_override
            .unwrap_or_else(MraTimings::paper_operating_point);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_spellings_and_rejects_garbage() {
        assert_eq!(Mechanism::parse("baseline"), Some(Mechanism::Baseline));
        assert_eq!(Mechanism::parse("CROW-8"), Some(Mechanism::crow_cache(8)));
        assert_eq!(
            Mechanism::parse("crow-combined").map(|m| m.label()),
            Some("CROW-8+ref".into())
        );
        assert_eq!(
            Mechanism::parse("salp-64-o"),
            Some(Mechanism::Salp {
                subarrays: 64,
                open_page: true
            })
        );
        assert_eq!(
            Mechanism::parse("tldram-4"),
            Some(Mechanism::TlDram { near_rows: 4 })
        );
        for bad in [
            "",
            "crow",
            "crow-",
            "crow-999",
            "salp-0",
            "salp-x",
            "warp-drive",
        ] {
            assert!(Mechanism::parse(bad).is_none(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Mechanism::crow_cache(8).label(), "CROW-8");
        assert_eq!(
            Mechanism::Salp {
                subarrays: 128,
                open_page: true
            }
            .label(),
            "SALP-128-O"
        );
        assert_eq!(Mechanism::TlDram { near_rows: 8 }.label(), "TL-DRAM-8");
        assert_eq!(Mechanism::crow_combined().label(), "CROW-8+ref");
    }

    #[test]
    fn effective_dram_per_mechanism() {
        let base = SystemConfig::paper_default(Mechanism::Baseline).effective_dram();
        assert_eq!(base.copy_rows_per_subarray, 0);
        let crow = SystemConfig::paper_default(Mechanism::crow_cache(8)).effective_dram();
        assert_eq!(crow.copy_rows_per_subarray, 8);
        let salp = SystemConfig::paper_default(Mechanism::Salp {
            subarrays: 256,
            open_page: false,
        })
        .effective_dram();
        assert!(salp.subarray_parallelism);
        assert_eq!(salp.rows_per_subarray, 256);
        salp.validate().unwrap();
    }

    #[test]
    fn quick_test_config_is_valid() {
        let c = SystemConfig::quick_test(Mechanism::crow_cache(8));
        c.effective_dram().validate().unwrap();
        c.cpu.validate().unwrap();
        c.mc.validate().unwrap();
    }
}
