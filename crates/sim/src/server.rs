//! Hardened simulation-as-a-service: the batch server core behind the
//! `crow-serve` binary.
//!
//! The service speaks JSONL — one request object in, a stream of event
//! objects out — over stdin/stdout and/or a Unix socket. Robustness is
//! the design driver, in this order:
//!
//! * **Malformed input is a response, never a panic.** Every request
//!   line passes a strict validator ([`parse_request`]): non-object
//!   documents, unknown keys, duplicate keys, wrong types, and
//!   out-of-range values (huge instruction counts, impossible
//!   densities) all become structured [`CrowError::Request`]-derived
//!   error events, and the connection keeps serving.
//! * **Overload sheds, it does not wedge.** Admission goes through a
//!   bounded queue ([`ServeConfig::queue_depth`]); a full queue answers
//!   `overloaded` immediately instead of buffering without bound.
//! * **Slow clients cannot hold the server.** Socket reads go through
//!   [`LineReader`], which enforces a byte cap per request line (the
//!   overflow is discarded and answered with `too-large`) and a stall
//!   deadline on partially received lines; writes get OS-level
//!   deadlines in the binary.
//! * **Every accepted job inherits the campaign substrate.** Workers
//!   run jobs through [`Campaign`] — crash isolation via
//!   `catch_unwind`, per-attempt wall-clock deadlines, degrade-ladder
//!   retries — and journal terminal outcomes to a shared fsynced
//!   [`Journal`].
//! * **Duplicates simulate zero cycles.** The journal doubles as a
//!   fingerprint-keyed result cache: a request whose fingerprint is
//!   already journaled is answered from the record (`cached: true`),
//!   and concurrent duplicates wait on the in-flight run instead of
//!   racing it.
//! * **Drain is graceful and resumable.** [`Server::drain`] stops
//!   admission, lets every accepted job finish and journal, and joins
//!   all workers; a SIGKILL instead loses nothing that was journaled —
//!   a restarted server answers the same requests from the journal with
//!   zero re-simulated cycles.

use std::collections::{HashSet, VecDeque};
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crow_workloads::AppProfile;

use crate::campaign::{Campaign, CampaignPolicy, Journal, JournalRecord, Journaled, OutcomeKind};
use crate::config::{Mechanism, SystemConfig};
use crate::error::CrowError;
use crate::experiments::Scale;
use crate::json::Json;
use crate::report::SimReport;
use crate::supervise::{Admit, IsolationMode, SupCounters, SuperviseConfig, Supervisor};
use crate::system::System;

// --- configuration ----------------------------------------------------

/// Server tuning knobs (env-overridable; see [`ServeConfig::from_env`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded admission queue depth; a full queue sheds with
    /// `overloaded` (`CROW_SERVE_QUEUE`, default 64).
    pub queue_depth: usize,
    /// Worker threads executing jobs (`CROW_SERVE_WORKERS`, default one
    /// per available core).
    pub workers: usize,
    /// Request line byte cap; longer lines are discarded and answered
    /// with `too-large` (`CROW_SERVE_MAX_LINE`, default 64 KiB).
    pub max_line_bytes: usize,
    /// How long a partially received request line may stall before the
    /// connection is dropped with a structured error
    /// (`CROW_SERVE_READ_TIMEOUT_SECS`, default 10 s).
    pub read_timeout: Duration,
    /// Per-attempt wall-clock deadline for one job
    /// (`CROW_SERVE_JOB_TIMEOUT_SECS`, default 120 s; 0 disables).
    pub job_timeout: Option<Duration>,
    /// Degrade-ladder retries after a failed/timed-out attempt
    /// (`CROW_SERVE_RETRIES`, default 1).
    pub max_retries: u32,
    /// Period of streamed `running` heartbeat events while a job
    /// simulates (`CROW_SERVE_HEARTBEAT_SECS`, default 5 s; 0 disables).
    pub heartbeat: Option<Duration>,
    /// Journal directory (`serve.jsonl` inside doubles as the result
    /// cache); `None` runs unjournaled — no caching, no resume.
    pub journal_dir: Option<PathBuf>,
    /// Job isolation substrate and its supervision knobs
    /// (`CROW_SERVE_ISOLATION` and friends; see
    /// [`SuperviseConfig::from_lookup`]). Thread mode is the default
    /// and matches the pre-supervision server exactly.
    pub supervise: SuperviseConfig,
    /// Accept `chaos` jobs — deliberate crash/wedge/memory-bomb
    /// misbehavior for testing the supervision machinery
    /// (`CROW_SERVE_CHAOS`, default off). Chaos jobs additionally
    /// require process isolation; they are never run in-process.
    pub allow_chaos: bool,
}

fn serve_err(reason: String) -> CrowError {
    CrowError::Config(crow_dram::ConfigError::new("ServeConfig", reason))
}

impl ServeConfig {
    /// Built-in defaults with the journal under `dir`.
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            queue_depth: 64,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_line_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(10),
            job_timeout: Some(Duration::from_secs(120)),
            max_retries: 1,
            heartbeat: Some(Duration::from_secs(5)),
            journal_dir: dir,
            supervise: SuperviseConfig::default(),
            allow_chaos: false,
        }
    }

    /// Reads the knobs from the environment on top of [`ServeConfig::new`]
    /// with the default journal directory (`$CROW_CAMPAIGN_DIR` or
    /// `results/campaign`). Malformed values are configuration errors,
    /// never silent defaults.
    pub fn from_env() -> Result<Self, CrowError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`ServeConfig::from_env`] against an arbitrary lookup (testable
    /// without mutating process-global state).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, CrowError> {
        let dir = lookup("CROW_CAMPAIGN_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/campaign"));
        let mut c = Self::new(Some(dir));
        let uint = |k: &str, min: u64| -> Result<Option<u64>, CrowError> {
            match lookup(k) {
                None => Ok(None),
                Some(v) => {
                    let n: u64 = v
                        .trim()
                        .parse()
                        .map_err(|_| serve_err(format!("{k}={v:?} is not an unsigned integer")))?;
                    if n < min {
                        return Err(serve_err(format!("{k}={v:?} must be at least {min}")));
                    }
                    Ok(Some(n))
                }
            }
        };
        let secs = |k: &str| -> Result<Option<Duration>, CrowError> {
            match lookup(k) {
                None => Ok(None),
                Some(v) => {
                    let s: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| serve_err(format!("{k}={v:?} is not a number of seconds")))?;
                    if !(s >= 0.0 && s.is_finite()) {
                        return Err(serve_err(format!(
                            "{k}={v:?} must be a finite non-negative number"
                        )));
                    }
                    Ok(Some(Duration::from_secs_f64(s)))
                }
            }
        };
        if let Some(n) = uint("CROW_SERVE_QUEUE", 1)? {
            c.queue_depth = n as usize;
        }
        if let Some(n) = uint("CROW_SERVE_WORKERS", 1)? {
            c.workers = n as usize;
        }
        if let Some(n) = uint("CROW_SERVE_MAX_LINE", 256)? {
            c.max_line_bytes = n as usize;
        }
        if let Some(d) = secs("CROW_SERVE_READ_TIMEOUT_SECS")? {
            if d.is_zero() {
                return Err(serve_err(
                    "CROW_SERVE_READ_TIMEOUT_SECS must be positive".into(),
                ));
            }
            c.read_timeout = d;
        }
        if let Some(d) = secs("CROW_SERVE_JOB_TIMEOUT_SECS")? {
            c.job_timeout = (!d.is_zero()).then_some(d);
        }
        if let Some(n) = uint("CROW_SERVE_RETRIES", 0)? {
            c.max_retries = u32::try_from(n)
                .map_err(|_| serve_err("CROW_SERVE_RETRIES does not fit in 32 bits".into()))?;
        }
        if let Some(d) = secs("CROW_SERVE_HEARTBEAT_SECS")? {
            c.heartbeat = (!d.is_zero()).then_some(d);
        }
        c.supervise = SuperviseConfig::from_lookup(&lookup)?;
        if let Some(v) = lookup("CROW_SERVE_CHAOS") {
            c.allow_chaos = match v.trim() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                _ => {
                    return Err(serve_err(format!(
                        "CROW_SERVE_CHAOS={v:?} is not a boolean"
                    )));
                }
            };
        }
        Ok(c)
    }
}

// --- wire protocol ----------------------------------------------------

/// One simulation job, as validated from a `{"op":"sim",...}` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Client-chosen request id, echoed on every event for this job.
    /// Not part of the fingerprint: two ids asking for the same
    /// simulation share one result.
    pub id: String,
    /// Application names (one core each).
    pub apps: Vec<String>,
    /// Mechanism spelling (validated against [`Mechanism::parse`]).
    pub mechanism: String,
    /// Instructions per core.
    pub insts: u64,
    /// Functional warmup instructions per core.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Chip density in Gbit (8/16/32/64).
    pub density: u32,
    /// LLC capacity in MiB.
    pub llc_mib: u64,
    /// Memory channels.
    pub channels: u32,
    /// Enable the stride prefetcher.
    pub prefetch: bool,
    /// Use the DDR4-2400 platform instead of LPDDR4-3200.
    pub ddr4: bool,
    /// Attach the shadow protocol validator.
    pub validate: bool,
    /// Active RowHammer attack scenario: (pattern spelling, intensity
    /// in aggressor ACTs per refresh window). The scenario uses the
    /// job's master seed and the paper-default flip physics.
    pub hammer: Option<(String, u64)>,
    /// Deliberate misbehavior for supervision testing (`crash`,
    /// `crash-first`, `wedge`, or `bomb`), applied inside the sandboxed
    /// child only. Accepted only when [`ServeConfig::allow_chaos`] is
    /// set *and* isolation is process — never run in-process.
    pub chaos: Option<String>,
    /// Interval-sampling schedule (`sample_window`/`sample_warmup`/
    /// `sample_ff` request keys); `None` runs every cycle in detail.
    /// Joins the fingerprint: sampled and full results never collide.
    pub sample: Option<crate::sampling::SamplePlan>,
}

/// Hard ceilings the validator enforces on numeric request fields, so a
/// hostile `"insts": 1e18` is an error response instead of a job that
/// runs for a geological epoch.
pub const MAX_JOB_INSTS: u64 = 1_000_000_000;
const MAX_JOB_WARMUP: u64 = 1_000_000_000;
const MAX_JOB_APPS: usize = 8;
const MAX_JOB_CHANNELS: u32 = 16;
const MAX_JOB_LLC_MIB: u64 = 1024;
const MAX_JOB_HAMMER_INTENSITY: u64 = 16_000_000;
const MAX_ID_LEN: usize = 120;

/// Chaos modes a request may name via the `"chaos"` key: deliberate
/// child misbehavior for exercising the supervision machinery.
pub const CHAOS_MODES: [&str; 4] = ["crash", "crash-first", "wedge", "bomb"];

impl SimJob {
    /// The job's canonical fingerprint — everything that changes the
    /// simulated outcome and nothing that does not (the client id and
    /// the service knobs are excluded). Combined with the scale
    /// fingerprint it keys the journal cache, exactly like a campaign
    /// job.
    pub fn fingerprint(&self) -> String {
        format!(
            "serve/{}/{}/d{}/llc{}/ch{}/s{}{}{}{}{}{}{}",
            self.mechanism.to_ascii_lowercase(),
            self.apps.join("+"),
            self.density,
            self.llc_mib,
            self.channels,
            self.seed,
            if self.prefetch { "/pref" } else { "" },
            if self.ddr4 { "/ddr4" } else { "" },
            if self.validate { "/validate" } else { "" },
            match &self.hammer {
                Some((p, i)) => format!("/hammer:{p}x{i}"),
                None => String::new(),
            },
            match &self.chaos {
                Some(c) => format!("/chaos:{c}"),
                None => String::new(),
            },
            match &self.sample {
                Some(p) => format!("/sample:{}", p.fingerprint()),
                None => String::new(),
            },
        )
    }

    /// The simulation scale this job requests.
    pub fn scale(&self) -> Scale {
        Scale {
            insts: self.insts,
            warmup: self.warmup,
            mixes_per_group: 1,
            max_cycles: u64::MAX,
            threads: 1,
            checkpoints: false,
            sample: self.sample,
        }
    }

    /// The full journal fingerprint (job + scale), matching
    /// [`Campaign::fingerprint`] for a campaign at this job's scale.
    pub fn journal_fingerprint(&self) -> String {
        format!("{}@{}", self.fingerprint(), self.scale().fingerprint())
    }

    /// Builds the system configuration (infallible once validated).
    fn to_config(&self, mech: Mechanism) -> SystemConfig {
        let base = if self.ddr4 {
            SystemConfig::ddr4(mech)
        } else {
            SystemConfig::paper_default(mech).with_density(self.density)
        };
        let mut cfg = base.with_llc_bytes(self.llc_mib << 20);
        cfg.channels = self.channels;
        cfg.seed = self.seed;
        if self.prefetch {
            cfg = cfg.with_prefetcher();
        }
        if self.validate {
            cfg.validate_protocol = true;
        }
        if let Some((pattern, intensity)) = &self.hammer {
            // The spelling was validated at parse time; geometry checks
            // happen in `System::try_new`.
            let p = crate::hammer::AttackPattern::parse(pattern).expect("validated by parse_sim");
            cfg = cfg.with_hammer(crate::hammer::HammerScenario::new(p, *intensity));
        }
        cfg
    }

    /// Encodes the job as a JSON object — the parent half of the child
    /// wire format (see [`crate::supervise`]). [`SimJob::from_json`]
    /// inverts it exactly.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(self.id.as_str())),
            (
                "apps",
                Json::Arr(self.apps.iter().map(|a| Json::str(a.as_str())).collect()),
            ),
            ("mechanism", Json::str(self.mechanism.as_str())),
            ("insts", Json::u64(self.insts)),
            ("warmup", Json::u64(self.warmup)),
            ("seed", Json::u64(self.seed)),
            ("density", Json::u64(u64::from(self.density))),
            ("llc_mib", Json::u64(self.llc_mib)),
            ("channels", Json::u64(u64::from(self.channels))),
            ("prefetch", Json::Bool(self.prefetch)),
            ("ddr4", Json::Bool(self.ddr4)),
            ("validate", Json::Bool(self.validate)),
            (
                "hammer_pattern",
                match &self.hammer {
                    Some((p, _)) => Json::str(p.as_str()),
                    None => Json::Null,
                },
            ),
            (
                "hammer_intensity",
                match &self.hammer {
                    Some((_, i)) => Json::u64(*i),
                    None => Json::Null,
                },
            ),
            (
                "chaos",
                match &self.chaos {
                    Some(c) => Json::str(c.as_str()),
                    None => Json::Null,
                },
            ),
            (
                "sample_window",
                match &self.sample {
                    Some(p) => Json::u64(p.window_insts),
                    None => Json::Null,
                },
            ),
            (
                "sample_warmup",
                match &self.sample {
                    Some(p) => Json::u64(p.warmup_insts),
                    None => Json::Null,
                },
            ),
            (
                "sample_ff",
                match &self.sample {
                    Some(p) => Json::u64(p.ff_insts),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Decodes a [`SimJob::to_json`] document. The wire format is
    /// internal (parent to child over a pipe), so this is a consistency
    /// check — any missing or mistyped field returns `None`.
    pub fn from_json(doc: &Json) -> Option<Self> {
        let str_field = |k: &str| doc.get(k).and_then(Json::as_str).map(str::to_string);
        let u64_field = |k: &str| doc.get(k).and_then(Json::as_u64);
        let bool_field = |k: &str| doc.get(k).and_then(Json::as_bool);
        let hammer = match doc.get("hammer_pattern") {
            None | Some(Json::Null) => None,
            Some(p) => Some((p.as_str()?.to_string(), u64_field("hammer_intensity")?)),
        };
        let chaos = match doc.get("chaos") {
            None | Some(Json::Null) => None,
            Some(c) => Some(c.as_str()?.to_string()),
        };
        let sample = match doc.get("sample_window") {
            None | Some(Json::Null) => None,
            Some(w) => Some(crate::sampling::SamplePlan {
                window_insts: w.as_u64()?,
                warmup_insts: u64_field("sample_warmup")?,
                ff_insts: u64_field("sample_ff")?,
            }),
        };
        Some(SimJob {
            id: str_field("id")?,
            apps: doc
                .get("apps")?
                .as_arr()?
                .iter()
                .map(|a| a.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            mechanism: str_field("mechanism")?,
            insts: u64_field("insts")?,
            warmup: u64_field("warmup")?,
            seed: u64_field("seed")?,
            density: u32::try_from(u64_field("density")?).ok()?,
            llc_mib: u64_field("llc_mib")?,
            channels: u32::try_from(u64_field("channels")?).ok()?,
            prefetch: bool_field("prefetch")?,
            ddr4: bool_field("ddr4")?,
            validate: bool_field("validate")?,
            hammer,
            chaos,
            sample,
        })
    }
}

/// A validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or answer from cache) one simulation.
    Sim(Box<SimJob>),
    /// Liveness probe; answered inline with `pong`.
    Ping,
    /// Server counters; answered inline.
    Stats,
    /// Supervision health: queue depth, live children, breaker states,
    /// cumulative kill/retry counters; answered inline.
    Health,
    /// Begin a graceful drain (equivalent to SIGTERM).
    Shutdown,
}

fn bad_req(reason: impl Into<String>) -> CrowError {
    CrowError::Request {
        reason: reason.into(),
    }
}

/// The wire `code` for a [`CrowError`] carried by an error event.
pub fn error_code(e: &CrowError) -> &'static str {
    match e {
        CrowError::Request { .. } => "bad-request",
        CrowError::Config(_) | CrowError::Controller(_) => "bad-config",
        CrowError::Trace(_) => "trace",
        CrowError::Protocol { .. } => "protocol",
        CrowError::Journal { .. } => "journal",
        CrowError::Checkpoint { .. } => "checkpoint",
        CrowError::Quarantined { .. } => "quarantined",
        CrowError::ResourceLimit { .. } => "resource-limit",
    }
}

/// Strictly validates one request line. On failure the error carries
/// the client id when one could still be recovered from the document,
/// so the error response can be correlated.
pub fn parse_request(line: &str) -> Result<Request, (Option<String>, CrowError)> {
    let doc = Json::parse(line).map_err(|e| (None, bad_req(format!("not JSON: {e}"))))?;
    let recovered_id = doc
        .get("id")
        .and_then(Json::as_str)
        .filter(|s| id_ok(s))
        .map(str::to_string);
    parse_request_doc(&doc).map_err(|e| (recovered_id, e))
}

fn id_ok(s: &str) -> bool {
    !s.is_empty() && s.len() <= MAX_ID_LEN && s.chars().all(|c| !c.is_control())
}

fn parse_request_doc(doc: &Json) -> Result<Request, CrowError> {
    let pairs = doc
        .as_obj()
        .ok_or_else(|| bad_req("request must be a JSON object"))?;
    // Duplicate keys are an error, not a silent first-or-last-wins.
    let mut seen = HashSet::new();
    for (k, _) in pairs {
        if !seen.insert(k.as_str()) {
            return Err(bad_req(format!("duplicate key {k:?}")));
        }
    }
    let op = doc
        .get("op")
        .ok_or_else(|| bad_req("missing required key \"op\""))?
        .as_str()
        .ok_or_else(|| bad_req("\"op\" must be a string"))?;
    match op {
        "ping" | "stats" | "health" | "shutdown" => {
            for (k, _) in pairs {
                if k != "op" && k != "id" {
                    return Err(bad_req(format!("unknown key {k:?} for op {op:?}")));
                }
            }
            Ok(match op {
                "ping" => Request::Ping,
                "stats" => Request::Stats,
                "health" => Request::Health,
                _ => Request::Shutdown,
            })
        }
        "sim" => parse_sim(doc, pairs).map(|j| Request::Sim(Box::new(j))),
        other => Err(bad_req(format!(
            "unknown op {other:?} (expected sim, ping, stats, health, or shutdown)"
        ))),
    }
}

fn parse_sim(doc: &Json, pairs: &[(String, Json)]) -> Result<SimJob, CrowError> {
    const KEYS: [&str; 19] = [
        "op",
        "id",
        "apps",
        "mechanism",
        "insts",
        "warmup",
        "seed",
        "density",
        "llc_mib",
        "channels",
        "prefetch",
        "ddr4",
        "validate",
        "hammer_pattern",
        "hammer_intensity",
        "chaos",
        "sample_window",
        "sample_warmup",
        "sample_ff",
    ];
    for (k, _) in pairs {
        if !KEYS.contains(&k.as_str()) {
            return Err(bad_req(format!("unknown key {k:?} for op \"sim\"")));
        }
    }
    let id = doc
        .get("id")
        .ok_or_else(|| bad_req("missing required key \"id\""))?
        .as_str()
        .ok_or_else(|| bad_req("\"id\" must be a string"))?;
    if !id_ok(id) {
        return Err(bad_req(format!(
            "\"id\" must be 1..={MAX_ID_LEN} non-control characters"
        )));
    }
    let apps_json = doc
        .get("apps")
        .ok_or_else(|| bad_req("missing required key \"apps\""))?
        .as_arr()
        .ok_or_else(|| bad_req("\"apps\" must be an array of application names"))?;
    if apps_json.is_empty() || apps_json.len() > MAX_JOB_APPS {
        return Err(bad_req(format!(
            "\"apps\" must list 1..={MAX_JOB_APPS} applications"
        )));
    }
    let mut apps = Vec::with_capacity(apps_json.len());
    for a in apps_json {
        let name = a
            .as_str()
            .ok_or_else(|| bad_req("\"apps\" entries must be strings"))?;
        if AppProfile::by_name(name).is_none() {
            return Err(bad_req(format!("unknown application {name:?}")));
        }
        apps.push(name.to_string());
    }
    let uint = |key: &str, default: u64, max: u64| -> Result<u64, CrowError> {
        match doc.get(key) {
            None => Ok(default),
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| bad_req(format!("{key:?} must be an unsigned integer")))?;
                if n > max {
                    return Err(bad_req(format!("{key:?} must be at most {max}")));
                }
                Ok(n)
            }
        }
    };
    let flag = |key: &str| -> Result<bool, CrowError> {
        match doc.get(key) {
            None => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad_req(format!("{key:?} must be a boolean"))),
        }
    };
    let mechanism = match doc.get("mechanism") {
        None => "baseline".to_string(),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| bad_req("\"mechanism\" must be a string"))?;
            if Mechanism::parse(s).is_none() {
                return Err(bad_req(format!("unknown mechanism {s:?}")));
            }
            s.to_string()
        }
    };
    let insts = uint("insts", 100_000, MAX_JOB_INSTS)?;
    if insts == 0 {
        return Err(bad_req("\"insts\" must be positive"));
    }
    let density = u32::try_from(uint("density", 8, 64)?).expect("bounded above by 64");
    if !(density.is_power_of_two() && (8..=64).contains(&density)) {
        return Err(bad_req("\"density\" must be 8, 16, 32, or 64 (Gbit)"));
    }
    let channels = u32::try_from(uint("channels", 4, u64::from(MAX_JOB_CHANNELS))?)
        .expect("bounded above by MAX_JOB_CHANNELS");
    if channels == 0 {
        return Err(bad_req("\"channels\" must be positive"));
    }
    let llc_mib = uint("llc_mib", 8, MAX_JOB_LLC_MIB)?;
    if llc_mib == 0 {
        return Err(bad_req("\"llc_mib\" must be positive"));
    }
    let ddr4 = flag("ddr4")?;
    if ddr4 && doc.get("density").is_some() {
        return Err(bad_req("\"density\" applies to the LPDDR4 platform only"));
    }
    let hammer = match doc.get("hammer_pattern") {
        None => {
            if doc.get("hammer_intensity").is_some() {
                return Err(bad_req("\"hammer_intensity\" requires \"hammer_pattern\""));
            }
            None
        }
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| bad_req("\"hammer_pattern\" must be a string"))?;
            if crate::hammer::AttackPattern::parse(s).is_none() {
                return Err(bad_req(format!("unknown hammer pattern {s:?}")));
            }
            let intensity = uint("hammer_intensity", 500_000, MAX_JOB_HAMMER_INTENSITY)?;
            if intensity == 0 {
                return Err(bad_req("\"hammer_intensity\" must be positive"));
            }
            Some((s.to_string(), intensity))
        }
    };
    let chaos = match doc.get("chaos") {
        None => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| bad_req("\"chaos\" must be a string"))?;
            if !CHAOS_MODES.contains(&s) {
                return Err(bad_req(format!(
                    "unknown chaos mode {s:?} (expected crash, crash-first, wedge, or bomb)"
                )));
            }
            Some(s.to_string())
        }
    };
    let sample = if doc.get("sample_window").is_none()
        && doc.get("sample_warmup").is_none()
        && doc.get("sample_ff").is_none()
    {
        None
    } else {
        // Any subset of the three keys enables sampling; unspecified
        // fields come from the default profile, mirroring the
        // CROW_SAMPLE_* environment knobs.
        let d = crate::sampling::SamplePlan::default_profile();
        let plan = crate::sampling::SamplePlan {
            window_insts: uint("sample_window", d.window_insts, MAX_JOB_INSTS)?,
            warmup_insts: uint("sample_warmup", d.warmup_insts, MAX_JOB_INSTS)?,
            ff_insts: uint("sample_ff", d.ff_insts, MAX_JOB_INSTS)?,
        };
        if plan.window_insts == 0 {
            return Err(bad_req("\"sample_window\" must be positive"));
        }
        Some(plan)
    };
    Ok(SimJob {
        id: id.to_string(),
        apps,
        mechanism,
        insts,
        warmup: uint("warmup", 10_000, MAX_JOB_WARMUP)?,
        seed: uint("seed", 0xC0DE, u64::MAX)?,
        density,
        llc_mib,
        channels,
        prefetch: flag("prefetch")?,
        ddr4,
        validate: flag("validate")?,
        hammer,
        chaos,
        sample,
    })
}

// --- responses --------------------------------------------------------

/// Where a connection's outbound event lines go. Cheap to clone; jobs
/// hold one so results reach the submitting connection (or vanish
/// harmlessly if it is gone — the result is journaled either way).
#[derive(Debug, Clone)]
pub struct Reply(mpsc::Sender<String>);

impl Reply {
    /// A reply channel and its receiving end (the connection writer).
    pub fn pair() -> (Reply, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (Reply(tx), rx)
    }

    fn send(&self, doc: Json) {
        // A gone connection is not an error: the job still journals.
        let _ = self.0.send(doc.render());
    }

    fn event(&self, kind: &str, id: Option<&str>, extra: Vec<(String, Json)>) {
        let mut pairs = vec![("event".into(), Json::str(kind))];
        pairs.push((
            "id".into(),
            match id {
                Some(s) => Json::str(s),
                None => Json::Null,
            },
        ));
        pairs.extend(extra);
        self.send(Json::Obj(pairs));
    }

    /// Emits a structured error event.
    pub fn error(&self, id: Option<&str>, code: &str, message: &str) {
        self.event(
            "error",
            id,
            vec![
                ("code".into(), Json::str(code)),
                ("error".into(), Json::str(message)),
            ],
        );
    }
}

// --- bounded line reader ----------------------------------------------

/// What one [`LineReader::poll`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete request line (without the newline).
    Line(String),
    /// The peer closed the stream.
    Eof,
    /// Nothing new; poll again (lets the caller check shutdown flags).
    Idle,
    /// A partial line sat unfinished past the stall deadline; the
    /// caller should answer with a structured error and drop the
    /// connection.
    Stalled,
    /// A line exceeded the byte cap; the overflow was discarded through
    /// the next newline. The connection stays usable.
    TooLong,
}

/// An incremental, bounded, stall-detecting line reader.
///
/// Reads are expected to come from a stream with a short OS read
/// timeout (the poll tick); `WouldBlock`/`TimedOut` are how the reader
/// notices time passing. A line longer than `cap` flips into discard
/// mode — bytes are dropped, not buffered — until the newline arrives,
/// then reports [`LineRead::TooLong`]. A line that starts arriving but
/// does not finish within `deadline` reports [`LineRead::Stalled`].
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    cap: usize,
    deadline: Duration,
    started: Option<Instant>,
    discarding: bool,
}

impl LineReader {
    /// A reader enforcing `cap` bytes per line and `deadline` per
    /// partial line.
    pub fn new(cap: usize, deadline: Duration) -> Self {
        Self {
            buf: Vec::new(),
            cap,
            deadline,
            started: None,
            discarding: false,
        }
    }

    fn take_buffered(&mut self) -> Option<LineRead> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let rest = self.buf.split_off(nl + 1);
        let mut line = std::mem::replace(&mut self.buf, rest);
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.started = (!self.buf.is_empty()).then(Instant::now);
        // The cap applies to the extracted line too: an oversized line
        // whose newline arrived in the same chunk as its overflow never
        // entered discard mode but must still be rejected.
        if self.discarding || line.len() > self.cap {
            self.discarding = false;
            return Some(LineRead::TooLong);
        }
        Some(LineRead::Line(String::from_utf8_lossy(&line).into_owned()))
    }

    /// Advances the reader by at most one `read` call.
    pub fn poll(&mut self, r: &mut impl Read) -> std::io::Result<LineRead> {
        if let Some(out) = self.take_buffered() {
            return Ok(out);
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() && !self.discarding {
                    return Ok(LineRead::Eof);
                }
                // A trailing partial line still gets an answer (it will
                // parse-error or report too-long); EOF follows next poll.
                self.buf.push(b'\n');
                Ok(self.take_buffered().expect("newline just appended"))
            }
            Ok(n) => {
                if self.started.is_none() {
                    self.started = Some(Instant::now());
                }
                if self.discarding {
                    // Keep only anything at/after a newline.
                    match chunk[..n].iter().position(|&b| b == b'\n') {
                        Some(nl) => self.buf.extend_from_slice(&chunk[nl..n]),
                        None => return Ok(LineRead::Idle),
                    }
                } else {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if self.buf.len() > self.cap && !self.buf.contains(&b'\n') {
                        self.buf.clear();
                        self.discarding = true;
                        return Ok(LineRead::Idle);
                    }
                }
                match self.take_buffered() {
                    Some(out) => Ok(out),
                    None => Ok(LineRead::Idle),
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(t0) = self.started {
                    if t0.elapsed() > self.deadline {
                        self.buf.clear();
                        self.discarding = false;
                        self.started = None;
                        return Ok(LineRead::Stalled);
                    }
                }
                Ok(LineRead::Idle)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(LineRead::Idle),
            Err(e) => Err(e),
        }
    }
}

// --- the server -------------------------------------------------------

#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    jobs_run: AtomicU64,
    cache_hits: AtomicU64,
    cycles_simulated: AtomicU64,
    results: AtomicU64,
    failures: AtomicU64,
    quarantined: AtomicU64,
    abandoned_attempts: AtomicU64,
}

struct QueuedJob {
    job: SimJob,
    reply: Reply,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    journal: Option<Mutex<Journal>>,
    inflight: Mutex<HashSet<String>>,
    inflight_cv: Condvar,
    draining: AtomicBool,
    stats: Counters,
    /// Present iff isolation is process: jobs run in sandboxed children
    /// under deadline/RSS supervision with per-fingerprint breakers.
    supervisor: Option<Supervisor>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Worker panics are contained by the campaign layer; a poisoned
    // mutex here only means some other thread panicked after its own
    // state was already consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Final accounting returned by [`Server::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Worker threads joined (all of them, or the drain is not clean).
    pub workers_joined: usize,
    /// Fresh simulations executed over the server's lifetime.
    pub jobs_run: u64,
    /// Requests answered from the journal cache.
    pub cache_hits: u64,
    /// Requests shed by the bounded admission queue.
    pub shed: u64,
    /// Requests rejected by the strict validator.
    pub bad_requests: u64,
    /// Jobs still queued after the drain (always 0 on a clean drain).
    pub abandoned: usize,
    /// Attempt threads abandoned past their deadline (thread mode) —
    /// leaked detached threads the process carries until exit.
    pub abandoned_attempts: u64,
    /// Sandboxed children SIGKILLed by the supervisor (deadline plus
    /// RSS-cap kills; process mode only).
    pub killed_children: u64,
    /// Requests refused because their fingerprint's breaker was open.
    pub quarantined: u64,
}

/// The batch simulation server (see the module docs).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the journal (resuming any prior records — that is the
    /// cache) and starts the worker pool.
    pub fn new(cfg: ServeConfig) -> Result<Self, CrowError> {
        let journal = match &cfg.journal_dir {
            Some(dir) => Some(Mutex::new(Journal::open(&dir.join("serve.jsonl"), true)?)),
            None => None,
        };
        let supervisor = match cfg.supervise.isolation {
            IsolationMode::Process => Some(Supervisor::new(cfg.supervise.clone())?),
            IsolationMode::Thread => None,
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            journal,
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stats: Counters::default(),
            supervisor,
            cfg,
        });
        // Exactly `cfg.workers` threads; 0 is admission-only (tests).
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crow-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| serve_err(format!("cannot spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shared, workers })
    }

    /// Handles one request line from a connection: validates, answers
    /// inline ops immediately, and admits simulation jobs through the
    /// bounded queue. Never panics, never blocks on simulation work.
    pub fn handle_line(&self, line: &str, reply: &Reply) {
        self.shared.stats.received.fetch_add(1, Ordering::Relaxed);
        match parse_request(line) {
            Err((id, e)) => {
                self.shared
                    .stats
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                reply.error(id.as_deref(), error_code(&e), &e.to_string());
            }
            Ok(Request::Ping) => reply.event("pong", None, Vec::new()),
            Ok(Request::Stats) => reply.send(self.stats_json()),
            Ok(Request::Health) => reply.send(self.health_json()),
            Ok(Request::Shutdown) => {
                self.shared.draining.store(true, Ordering::SeqCst);
                reply.event("draining", None, Vec::new());
            }
            Ok(Request::Sim(job)) => self.submit(*job, reply.clone()),
        }
    }

    /// Admits one validated job (or sheds it with a structured
    /// response).
    pub fn submit(&self, job: SimJob, reply: Reply) {
        if self.shared.draining.load(Ordering::SeqCst) {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            reply.error(
                Some(&job.id),
                "draining",
                "server is draining; not accepting new jobs",
            );
            return;
        }
        // Chaos is opt-in twice over: the operator must enable it AND
        // run process isolation, so deliberate misbehavior can never
        // execute inside the server process itself.
        if job.chaos.is_some() && !(self.shared.cfg.allow_chaos && self.shared.supervisor.is_some())
        {
            self.shared
                .stats
                .bad_requests
                .fetch_add(1, Ordering::Relaxed);
            reply.error(
                Some(&job.id),
                "bad-request",
                "chaos jobs require CROW_SERVE_CHAOS=1 and CROW_SERVE_ISOLATION=process",
            );
            return;
        }
        let fingerprint = job.journal_fingerprint();
        {
            let mut q = lock(&self.shared.queue);
            if q.closed || q.jobs.len() >= self.shared.cfg.queue_depth {
                drop(q);
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                reply.error(
                    Some(&job.id),
                    "overloaded",
                    &format!(
                        "admission queue full (depth {}); retry later",
                        self.shared.cfg.queue_depth
                    ),
                );
                return;
            }
            // The `accepted` event goes out while the queue lock is still
            // held, so it is ordered before any worker event for the job.
            self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            reply.event(
                "accepted",
                Some(&job.id),
                vec![
                    ("fingerprint".into(), Json::str(fingerprint)),
                    ("queue_depth".into(), Json::u64((q.jobs.len() + 1) as u64)),
                ],
            );
            q.jobs.push_back(QueuedJob { job, reply });
        }
        self.shared.queue_cv.notify_one();
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Whether a drain was requested (shutdown op or owner decision).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a drain without consuming the server (used by signal
    /// handlers; follow with [`Server::drain`]).
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.queue).jobs.len()
    }

    /// Server counters as a `stats` event document.
    pub fn stats_json(&self) -> Json {
        let s = &self.shared.stats;
        let g = |a: &AtomicU64| Json::u64(a.load(Ordering::Relaxed));
        let sup = self
            .shared
            .supervisor
            .as_ref()
            .map(Supervisor::counters)
            .unwrap_or_default();
        Json::Obj(vec![
            ("event".into(), Json::str("stats")),
            ("received".into(), g(&s.received)),
            ("accepted".into(), g(&s.accepted)),
            ("shed".into(), g(&s.shed)),
            ("bad_requests".into(), g(&s.bad_requests)),
            ("jobs_run".into(), g(&s.jobs_run)),
            ("cache_hits".into(), g(&s.cache_hits)),
            ("cycles_simulated".into(), g(&s.cycles_simulated)),
            ("results".into(), g(&s.results)),
            ("failures".into(), g(&s.failures)),
            ("quarantined".into(), g(&s.quarantined)),
            ("abandoned_attempts".into(), g(&s.abandoned_attempts)),
            ("children_spawned".into(), Json::u64(sup.spawned)),
            (
                "children_killed".into(),
                Json::u64(sup.killed_deadline + sup.killed_rss),
            ),
            ("queue_depth".into(), Json::u64(self.queue_len() as u64)),
            ("draining".into(), Json::Bool(self.draining())),
        ])
    }

    /// Supervision health as a `health` event document: queue depth,
    /// live sandboxed children, per-fingerprint breaker states, and the
    /// cumulative kill/retry counters. Thread mode answers the same
    /// shape with zeros and empty arrays, so dashboards need no mode
    /// switch.
    pub fn health_json(&self) -> Json {
        let s = &self.shared.stats;
        let (children, breakers, sup) = match self.shared.supervisor.as_ref() {
            Some(sup) => (
                sup.live_children(),
                sup.breakers().snapshot(),
                sup.counters(),
            ),
            None => (Vec::new(), Vec::new(), SupCounters::default()),
        };
        let children: Vec<Json> = children
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("pid", Json::u64(u64::from(c.pid))),
                    ("fingerprint", Json::str(c.fingerprint.as_str())),
                    ("elapsed_secs", Json::f64(c.elapsed.as_secs_f64())),
                ])
            })
            .collect();
        let breakers = breakers
            .iter()
            .map(|b| {
                Json::obj(vec![
                    ("fingerprint", Json::str(b.fingerprint.as_str())),
                    ("state", Json::str(b.state.as_str())),
                    ("consecutive_failures", Json::u64(u64::from(b.consecutive))),
                    ("retry_after_secs", Json::f64(b.retry_after.as_secs_f64())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("event".into(), Json::str("health")),
            (
                "isolation".into(),
                Json::str(self.shared.cfg.supervise.isolation.as_str()),
            ),
            ("queue_depth".into(), Json::u64(self.queue_len() as u64)),
            ("draining".into(), Json::Bool(self.draining())),
            ("live_children".into(), Json::u64(children.len() as u64)),
            ("children".into(), Json::Arr(children)),
            ("breakers".into(), Json::Arr(breakers)),
            (
                "quarantined".into(),
                Json::u64(s.quarantined.load(Ordering::Relaxed)),
            ),
            (
                "abandoned_attempts".into(),
                Json::u64(s.abandoned_attempts.load(Ordering::Relaxed)),
            ),
            (
                "counters".into(),
                Json::obj(vec![
                    ("children_spawned", Json::u64(sup.spawned)),
                    ("children_killed_deadline", Json::u64(sup.killed_deadline)),
                    ("children_killed_rss", Json::u64(sup.killed_rss)),
                    ("child_crashes", Json::u64(sup.crashes)),
                    ("child_retries", Json::u64(sup.retries)),
                ]),
            ),
        ])
    }

    /// Gracefully drains: no new admissions, every already-accepted job
    /// finishes (and journals), every worker thread is joined. Returns
    /// the final accounting.
    pub fn drain(self) -> DrainSummary {
        self.shared.draining.store(true, Ordering::SeqCst);
        {
            let mut q = lock(&self.shared.queue);
            q.closed = true;
        }
        self.shared.queue_cv.notify_all();
        let mut joined = 0;
        for w in self.workers {
            if w.join().is_ok() {
                joined += 1;
            }
        }
        let s = &self.shared.stats;
        let sup = self
            .shared
            .supervisor
            .as_ref()
            .map(Supervisor::counters)
            .unwrap_or_default();
        DrainSummary {
            workers_joined: joined,
            jobs_run: s.jobs_run.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            bad_requests: s.bad_requests.load(Ordering::Relaxed),
            abandoned: lock(&self.shared.queue).jobs.len(),
            abandoned_attempts: s.abandoned_attempts.load(Ordering::Relaxed),
            killed_children: sup.killed_deadline + sup.killed_rss,
            quarantined: s.quarantined.load(Ordering::Relaxed),
        }
    }
}

// --- worker side ------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(item) = q.jobs.pop_front() {
                    break item;
                }
                if q.closed {
                    return;
                }
                q = shared
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        process_job(shared, item);
    }
}

/// Answers from the journal cache, if the fingerprint is there.
fn cached_record(shared: &Shared, fp: &str) -> Option<JournalRecord> {
    let journal = shared.journal.as_ref()?;
    lock(journal).lookup(fp).cloned()
}

/// The wire `code` for a terminal job failure. Timeouts and
/// resource-cap kills get dedicated codes so clients can react
/// differently (back off vs. shrink the job); everything else is
/// `failed`. Thread-mode jobs can never produce a `resource-limit`
/// error string, so this changes nothing for them.
fn failure_code(kind: OutcomeKind, error: Option<&str>) -> &'static str {
    if kind == OutcomeKind::TimedOut {
        "timeout"
    } else if error.is_some_and(|e| e.starts_with("resource-limit")) {
        "resource-limit"
    } else {
        "failed"
    }
}

fn reply_from_record(reply: &Reply, id: &str, rec: &JournalRecord) {
    let report = rec.payload.as_deref().and_then(|t| Json::parse(t).ok());
    match report {
        Some(report) => reply.event(
            "result",
            Some(id),
            vec![
                ("cached".into(), Json::Bool(true)),
                ("outcome".into(), Json::str(rec.kind.as_str())),
                ("attempts".into(), Json::u64(u64::from(rec.attempts))),
                ("report".into(), report),
            ],
        ),
        None => reply.error(
            Some(id),
            failure_code(rec.kind, rec.error.as_deref()),
            rec.error.as_deref().unwrap_or("journaled failure"),
        ),
    }
}

/// Removes the in-flight claim on drop, so even a panicking worker
/// cannot leave a fingerprint permanently claimed (which would wedge
/// every future duplicate).
struct InflightGuard<'a> {
    shared: &'a Shared,
    fp: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shared.inflight).remove(&self.fp);
        self.shared.inflight_cv.notify_all();
    }
}

/// Whether a journaled record may answer a request without re-running
/// it. Thread mode: always (PR-6 behavior, byte for byte). Process
/// mode: success records only — journaled failures stay retryable so a
/// crash-looping fingerprint keeps feeding its circuit breaker instead
/// of turning into a permanently cached error.
fn record_usable(shared: &Shared, rec: &JournalRecord) -> bool {
    shared.supervisor.is_none() || rec.payload.is_some()
}

fn process_job(shared: &Shared, item: QueuedJob) {
    let QueuedJob { job, reply } = item;
    let fp = job.journal_fingerprint();

    // Circuit breaker first: a quarantined fingerprint is refused
    // before any cache or dedup work. The refusal is never journaled —
    // the cooldown is transient supervision state, not a result.
    let mut probe = false;
    if let Some(sup) = shared.supervisor.as_ref() {
        match sup.breakers().admit(&fp) {
            Admit::Run => {}
            Admit::Probe => probe = true,
            Admit::Quarantined { retry_after } => {
                shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                let e = CrowError::Quarantined {
                    fingerprint: fp.clone(),
                    retry_after_ms: u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX),
                };
                reply.error(Some(&job.id), error_code(&e), &e.to_string());
                return;
            }
        }
    }
    // If this job was admitted as the half-open probe but ends up not
    // executing (cache hit, dedup), the probe slot must be handed back
    // or the breaker would wedge half-open forever.
    let release_probe = |shared: &Shared| {
        if probe {
            if let Some(sup) = shared.supervisor.as_ref() {
                sup.breakers().release_probe(&fp);
            }
        }
    };

    // Fast path: already journaled — zero cycles simulated.
    if let Some(rec) = cached_record(shared, &fp) {
        if record_usable(shared, &rec) {
            release_probe(shared);
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.results.fetch_add(1, Ordering::Relaxed);
            reply_from_record(&reply, &job.id, &rec);
            return;
        }
    }

    // In-flight dedup: if another worker is computing this fingerprint,
    // wait for it and answer from the journal instead of racing it.
    let _guard = {
        let mut infl = lock(&shared.inflight);
        loop {
            if !infl.contains(&fp) {
                infl.insert(fp.clone());
                break;
            }
            infl = shared
                .inflight_cv
                .wait(infl)
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(journal) = shared.journal.as_ref() {
                let rec = lock(journal).lookup(&fp).cloned();
                if let Some(rec) = rec {
                    if record_usable(shared, &rec) {
                        drop(infl);
                        release_probe(shared);
                        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        shared.stats.results.fetch_add(1, Ordering::Relaxed);
                        reply_from_record(&reply, &job.id, &rec);
                        return;
                    }
                }
            }
        }
        InflightGuard {
            shared,
            fp: fp.clone(),
        }
    };

    let scale = job.scale();
    let mut policy = CampaignPolicy::new(scale);
    policy.timeout = shared.cfg.job_timeout;
    policy.max_retries = shared.cfg.max_retries;
    reply.event(
        "started",
        Some(&job.id),
        vec![("insts".into(), Json::u64(scale.insts))],
    );

    // Heartbeats while the job simulates, so a long-running request is
    // visibly alive to the client.
    let (hb_done_tx, hb_done_rx) = mpsc::channel::<()>();
    let heartbeat = shared.cfg.heartbeat.map(|period| {
        let reply = reply.clone();
        let id = job.id.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            while let Err(mpsc::RecvTimeoutError::Timeout) = hb_done_rx.recv_timeout(period) {
                reply.event(
                    "running",
                    Some(&id),
                    vec![(
                        "elapsed_secs".into(),
                        Json::f64(start.elapsed().as_secs_f64()),
                    )],
                );
            }
        })
    });

    // Thread mode runs the job in-process through the campaign layer,
    // exactly as before supervision existed; process mode hands it to
    // the supervisor, which re-execs this binary as a sandboxed child
    // per attempt. Either way the outcome lands in one shape:
    // (kind, attempts, error, report-as-JSON).
    let outcome: Option<(OutcomeKind, u32, Option<String>, Option<Json>)> =
        match shared.supervisor.as_ref() {
            Some(sup) => {
                let o = sup.execute(&fp, &job, &policy);
                Some((o.kind, o.attempts, o.error, o.report))
            }
            None => {
                // The campaign layer supplies crash isolation
                // (catch_unwind), per-attempt deadlines, and the degrade
                // ladder; the shared journal append below supplies
                // durability and the result cache.
                let mut camp = Campaign::ephemeral(&job.id, policy);
                let o = camp
                    .run(vec![(job.fingerprint(), job.clone())], run_sim)
                    .into_iter()
                    .next();
                shared
                    .stats
                    .abandoned_attempts
                    .fetch_add(camp.counts().abandoned, Ordering::Relaxed);
                o.map(|o| (o.kind, o.attempts, o.error, o.result.map(|r| r.encode())))
            }
        };

    drop(hb_done_tx);
    if let Some(h) = heartbeat {
        let _ = h.join();
    }

    let Some((kind, attempts, error, report)) = outcome else {
        // Campaign::run returns one outcome per job by contract; treat
        // anything else as a failed job rather than panicking a worker.
        shared.stats.failures.fetch_add(1, Ordering::Relaxed);
        reply.error(Some(&job.id), "failed", "supervisor produced no outcome");
        return;
    };

    shared.stats.jobs_run.fetch_add(1, Ordering::Relaxed);
    if let Some(cycles) = report
        .as_ref()
        .and_then(|r| r.get("cpu_cycles"))
        .and_then(Json::as_u64)
    {
        shared
            .stats
            .cycles_simulated
            .fetch_add(cycles, Ordering::Relaxed);
    }

    // Journal the terminal outcome (fsynced) before answering, so a
    // client that saw a result can always get it again after a crash.
    if let Some(journal) = shared.journal.as_ref() {
        let rec = JournalRecord {
            fingerprint: fp.clone(),
            kind,
            attempts,
            error: error.clone(),
            payload: report.as_ref().map(Json::render),
        };
        if let Err(e) = lock(journal).append(&rec) {
            // Same stance as campaigns: a journal write failure must not
            // kill the job; the server just stops being a cache for it.
            eprintln!("crow-serve: {e}");
        }
    }

    match &report {
        Some(r) => {
            shared.stats.results.fetch_add(1, Ordering::Relaxed);
            reply.event(
                "result",
                Some(&job.id),
                vec![
                    ("cached".into(), Json::Bool(false)),
                    ("outcome".into(), Json::str(kind.as_str())),
                    ("attempts".into(), Json::u64(u64::from(attempts))),
                    ("report".into(), r.clone()),
                ],
            );
        }
        None => {
            shared.stats.failures.fetch_add(1, Ordering::Relaxed);
            reply.error(
                Some(&job.id),
                failure_code(kind, error.as_deref()),
                error.as_deref().unwrap_or("job produced no result"),
            );
        }
    }
}

/// Executes one validated job at the given (possibly degraded) scale.
/// `pub(crate)` so the child half of process isolation
/// ([`crate::supervise::job_runner_main`]) runs the identical function.
pub(crate) fn run_sim(job: &SimJob, scale: Scale) -> Result<SimReport, CrowError> {
    let mech = Mechanism::parse(&job.mechanism)
        .ok_or_else(|| bad_req(format!("unknown mechanism {:?}", job.mechanism)))?;
    let mut cfg = job.to_config(mech);
    cfg.cpu.target_insts = scale.insts;
    cfg.sample = scale.sample;
    let apps: Vec<&'static AppProfile> = job
        .apps
        .iter()
        .map(|n| {
            AppProfile::by_name(n).ok_or_else(|| bad_req(format!("unknown application {n:?}")))
        })
        .collect::<Result<_, _>>()?;
    let mut sys = System::try_new(cfg, &apps)?;
    if scale.warmup > 0 {
        sys.warm(scale.warmup);
    }
    sys.run_checked(scale.max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        let mut c = ServeConfig::new(None);
        c.workers = 2;
        c.queue_depth = 4;
        c.heartbeat = None;
        c.job_timeout = Some(Duration::from_secs(60));
        c
    }

    #[test]
    fn serve_config_env_parsing_is_strict() {
        let c = ServeConfig::from_lookup(|_| None).unwrap();
        assert_eq!(c.queue_depth, 64);
        assert_eq!(c.max_line_bytes, 64 * 1024);
        assert_eq!(
            c.journal_dir.as_deref(),
            Some(std::path::Path::new("results/campaign"))
        );
        let c = ServeConfig::from_lookup(|k| match k {
            "CROW_SERVE_QUEUE" => Some("2".into()),
            "CROW_SERVE_WORKERS" => Some("3".into()),
            "CROW_SERVE_MAX_LINE" => Some("4096".into()),
            "CROW_SERVE_READ_TIMEOUT_SECS" => Some("0.5".into()),
            "CROW_SERVE_JOB_TIMEOUT_SECS" => Some("0".into()),
            "CROW_SERVE_HEARTBEAT_SECS" => Some("0".into()),
            "CROW_CAMPAIGN_DIR" => Some("/tmp/x".into()),
            "CROW_SERVE_ISOLATION" => Some("process".into()),
            "CROW_SERVE_CHAOS" => Some("1".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!((c.queue_depth, c.workers, c.max_line_bytes), (2, 3, 4096));
        assert_eq!(c.read_timeout, Duration::from_millis(500));
        assert_eq!(c.job_timeout, None, "0 disables the deadline");
        assert_eq!(c.heartbeat, None);
        assert_eq!(
            c.journal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(
            c.supervise.isolation,
            IsolationMode::Process,
            "supervision knobs flow through ServeConfig"
        );
        assert!(c.allow_chaos);
        for (k, v) in [
            ("CROW_SERVE_QUEUE", "0"),
            ("CROW_SERVE_QUEUE", "many"),
            ("CROW_SERVE_WORKERS", "-1"),
            ("CROW_SERVE_MAX_LINE", "10"),
            ("CROW_SERVE_READ_TIMEOUT_SECS", "0"),
            ("CROW_SERVE_READ_TIMEOUT_SECS", "NaN"),
            ("CROW_SERVE_JOB_TIMEOUT_SECS", "-3"),
            ("CROW_SERVE_RETRIES", "x"),
            ("CROW_SERVE_ISOLATION", "vm"),
            ("CROW_SERVE_CHAOS", "maybe"),
        ] {
            let err = ServeConfig::from_lookup(|q| (q == k).then(|| v.into()))
                .expect_err(&format!("{k}={v} must be rejected"))
                .to_string();
            assert!(err.contains(k), "names the variable: {err}");
        }
    }

    #[test]
    fn parse_request_accepts_the_documented_shapes() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("{\"op\":\"health\"}").unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        let r = parse_request(
            "{\"op\":\"sim\",\"id\":\"j1\",\"apps\":[\"mcf\"],\"mechanism\":\"crow-8\",\
             \"insts\":50000,\"warmup\":1000,\"seed\":7,\"density\":16,\"llc_mib\":4,\
             \"channels\":2,\"prefetch\":true,\"validate\":false}",
        )
        .unwrap();
        let Request::Sim(job) = r else {
            panic!("expected a sim job")
        };
        assert_eq!(job.id, "j1");
        assert_eq!(job.apps, vec!["mcf".to_string()]);
        assert_eq!((job.insts, job.warmup, job.seed), (50_000, 1_000, 7));
        assert_eq!((job.density, job.llc_mib, job.channels), (16, 4, 2));
        assert!(job.prefetch && !job.validate && !job.ddr4);
        // Defaults kick in for omitted keys.
        let r = parse_request("{\"op\":\"sim\",\"id\":\"j2\",\"apps\":[\"gcc\",\"mcf\"]}").unwrap();
        let Request::Sim(job) = r else {
            panic!("expected a sim job")
        };
        assert_eq!(job.mechanism, "baseline");
        assert_eq!((job.insts, job.density, job.channels), (100_000, 8, 4));
        assert_eq!(job.hammer, None);
        // An attack scenario: pattern validated, intensity defaulted.
        let r = parse_request(
            "{\"op\":\"sim\",\"id\":\"j3\",\"apps\":[\"mcf\"],\"mechanism\":\"para\",\
             \"hammer_pattern\":\"double\"}",
        )
        .unwrap();
        let Request::Sim(job) = r else {
            panic!("expected a sim job")
        };
        assert_eq!(job.hammer, Some(("double".to_string(), 500_000)));
        assert!(job.fingerprint().contains("/hammer:doublex500000"));
        // A chaos job parses (acceptance is gated at submit, not parse)
        // and the mode is part of the fingerprint.
        let r =
            parse_request("{\"op\":\"sim\",\"id\":\"j4\",\"apps\":[\"mcf\"],\"chaos\":\"wedge\"}")
                .unwrap();
        let Request::Sim(job) = r else {
            panic!("expected a sim job")
        };
        assert_eq!(job.chaos.as_deref(), Some("wedge"));
        assert!(job.fingerprint().contains("/chaos:wedge"));
    }

    #[test]
    fn parse_request_rejects_hostile_shapes() {
        let cases: &[(&str, &str)] = &[
            ("", "not JSON"),
            ("{\"op\":\"sim\",", "not JSON"),
            ("[1,2,3]", "object"),
            ("{\"op\":\"launch\"}", "unknown op"),
            ("{\"id\":\"x\"}", "missing required key \"op\""),
            ("{\"op\":\"ping\",\"op\":\"ping\"}", "duplicate key"),
            ("{\"op\":\"ping\",\"turbo\":1}", "unknown key"),
            (
                "{\"op\":\"sim\",\"apps\":[\"mcf\"]}",
                "missing required key \"id\"",
            ),
            ("{\"op\":\"sim\",\"id\":\"\",\"apps\":[\"mcf\"]}", "\"id\""),
            ("{\"op\":\"sim\",\"id\":\"x\",\"apps\":[]}", "apps"),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"nosuch\"]}",
                "unknown application",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"mechanism\":\"warp\"}",
                "unknown mechanism",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"insts\":99999999999999}",
                "at most",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"insts\":0}",
                "positive",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"insts\":1e9}",
                "unsigned integer",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"insts\":-5}",
                "unsigned integer",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"density\":12}",
                "density",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"ddr4\":true,\"density\":16}",
                "LPDDR4",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"prefetch\":\"yes\"}",
                "boolean",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"gpu\":true}",
                "unknown key",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"hammer_pattern\":\"septuple\"}",
                "unknown hammer pattern",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"hammer_intensity\":1000}",
                "requires \"hammer_pattern\"",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"hammer_pattern\":\"double\",\
                 \"hammer_intensity\":0}",
                "positive",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"chaos\":\"teapot\"}",
                "unknown chaos mode",
            ),
            (
                "{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"chaos\":7}",
                "\"chaos\" must be a string",
            ),
        ];
        for (line, needle) in cases {
            let (_, e) = parse_request(line).expect_err(&format!("{line:?} must be rejected"));
            let msg = e.to_string();
            assert!(
                msg.contains(needle),
                "{line:?}: expected {needle:?} in {msg:?}"
            );
            assert_eq!(error_code(&e), "bad-request");
        }
        // The id is recovered for correlation when the document parsed.
        let (id, _) =
            parse_request("{\"op\":\"sim\",\"id\":\"j9\",\"apps\":[\"mcf\"],\"bogus\":1}")
                .expect_err("unknown key");
        assert_eq!(id.as_deref(), Some("j9"));
    }

    #[test]
    fn fingerprint_excludes_id_and_embeds_scale() {
        let mk = |id: &str, insts: u64| {
            let Request::Sim(j) = parse_request(&format!(
                "{{\"op\":\"sim\",\"id\":\"{id}\",\"apps\":[\"mcf\"],\"insts\":{insts}}}"
            ))
            .unwrap() else {
                panic!("sim")
            };
            j
        };
        let a = mk("a", 50_000);
        let b = mk("b", 50_000);
        let c = mk("a", 60_000);
        assert_eq!(a.journal_fingerprint(), b.journal_fingerprint());
        assert_ne!(a.journal_fingerprint(), c.journal_fingerprint());
    }

    /// A scripted reader: a sequence of chunks and errors.
    struct Script(VecDeque<std::io::Result<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.pop_front() {
                None => Ok(0),
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
            }
        }
    }

    fn wouldblock() -> std::io::Result<Vec<u8>> {
        Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"))
    }

    #[test]
    fn line_reader_splits_reassembles_and_caps() {
        let mut r = Script(VecDeque::from([
            Ok(b"{\"op\":\"pi".to_vec()),
            wouldblock(),
            Ok(b"ng\"}\n{\"op\":\"stats\"}\n".to_vec()),
        ]));
        let mut lr = LineReader::new(64, Duration::from_secs(5));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        assert_eq!(
            lr.poll(&mut r).unwrap(),
            LineRead::Line("{\"op\":\"ping\"}".into())
        );
        assert_eq!(
            lr.poll(&mut r).unwrap(),
            LineRead::Line("{\"op\":\"stats\"}".into())
        );
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Eof);

        // Over-cap line: discarded, reported, connection stays usable.
        let huge = vec![b'x'; 200];
        let mut r = Script(VecDeque::from([
            Ok(huge.clone()),
            Ok(huge),
            Ok(b"tail\n{\"op\":\"ping\"}\n".to_vec()),
        ]));
        let mut lr = LineReader::new(64, Duration::from_secs(5));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::TooLong);
        assert_eq!(
            lr.poll(&mut r).unwrap(),
            LineRead::Line("{\"op\":\"ping\"}".into())
        );

        // A trailing partial line is surfaced before EOF.
        let mut r = Script(VecDeque::from([Ok(b"{\"tail".to_vec())]));
        let mut lr = LineReader::new(64, Duration::from_secs(5));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Line("{\"tail".into()));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Eof);
    }

    #[test]
    fn line_reader_stalls_a_partial_line() {
        let mut lr = LineReader::new(64, Duration::from_millis(20));
        let mut r = Script(VecDeque::from([Ok(b"{\"half".to_vec()), wouldblock()]));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Stalled);
        // An idle connection (no pending bytes) never stalls.
        let mut lr = LineReader::new(64, Duration::from_millis(20));
        let mut r = Script(VecDeque::from([wouldblock(), wouldblock()]));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(lr.poll(&mut r).unwrap(), LineRead::Idle);
    }

    #[test]
    fn inline_ops_answer_and_bad_lines_get_structured_errors() {
        let server = Server::new(quick_cfg()).unwrap();
        let (reply, rx) = Reply::pair();
        server.handle_line("{\"op\":\"ping\"}", &reply);
        let pong = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(pong.get("event").unwrap().as_str(), Some("pong"));
        server.handle_line("complete garbage", &reply);
        let err = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(err.get("event").unwrap().as_str(), Some("error"));
        assert_eq!(err.get("code").unwrap().as_str(), Some("bad-request"));
        server.handle_line("{\"op\":\"stats\"}", &reply);
        let stats = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(stats.get("bad_requests").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("received").unwrap().as_u64(), Some(3));
        let sum = server.drain();
        assert_eq!(sum.workers_joined, 2);
        assert_eq!(sum.bad_requests, 1);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // Admission-only server (no workers consume the queue), so the
        // test is deterministic: two jobs fill the queue, the third is
        // shed immediately with a structured response.
        let mut cfg = quick_cfg();
        cfg.queue_depth = 2;
        cfg.workers = 0;
        let server = Server::new(cfg).unwrap();
        let (reply, rx) = Reply::pair();
        let line = |id: &str| format!("{{\"op\":\"sim\",\"id\":\"{id}\",\"apps\":[\"mcf\"]}}");
        server.handle_line(&line("a"), &reply);
        server.handle_line(&line("b"), &reply);
        server.handle_line(&line("c"), &reply);
        let mut events = Vec::new();
        while let Ok(l) = rx.try_recv() {
            events.push(Json::parse(&l).unwrap());
        }
        assert_eq!(events.len(), 3);
        for (doc, id) in events.iter().zip(["a", "b"]) {
            assert_eq!(doc.get("event").unwrap().as_str(), Some("accepted"));
            assert_eq!(doc.get("id").unwrap().as_str(), Some(id));
            assert!(doc.get("fingerprint").unwrap().as_str().is_some());
        }
        assert_eq!(events[2].get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(events[2].get("id").unwrap().as_str(), Some("c"));
        assert_eq!(server.queue_len(), 2);
        let sum = server.drain();
        assert_eq!(sum.shed, 1);
        assert_eq!(sum.abandoned, 2, "nothing consumed an admission-only queue");
    }

    #[test]
    fn draining_server_rejects_new_jobs() {
        let server = Server::new(quick_cfg()).unwrap();
        let (reply, rx) = Reply::pair();
        server.handle_line("{\"op\":\"shutdown\"}", &reply);
        let doc = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("draining"));
        server.handle_line(
            "{\"op\":\"sim\",\"id\":\"late\",\"apps\":[\"mcf\"]}",
            &reply,
        );
        let doc = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(doc.get("code").unwrap().as_str(), Some("draining"));
        assert!(server.draining());
        server.drain();
    }

    #[test]
    fn chaos_jobs_are_refused_without_process_isolation_and_opt_in() {
        // Default (thread) server: chaos is a structured refusal at
        // submit, never an in-process execution.
        let server = Server::new(quick_cfg()).unwrap();
        let (reply, rx) = Reply::pair();
        server.handle_line(
            "{\"op\":\"sim\",\"id\":\"boom\",\"apps\":[\"mcf\"],\"chaos\":\"crash\"}",
            &reply,
        );
        let doc = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("code").unwrap().as_str(), Some("bad-request"));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("boom"));
        let msg = doc.get("error").unwrap().as_str().unwrap().to_string();
        assert!(msg.contains("CROW_SERVE_CHAOS"), "{msg}");
        assert!(msg.contains("CROW_SERVE_ISOLATION"), "{msg}");
        let sum = server.drain();
        assert_eq!(sum.bad_requests, 1);
        assert_eq!((sum.killed_children, sum.quarantined), (0, 0));
    }

    #[test]
    fn health_op_answers_a_uniform_shape_in_thread_mode() {
        let server = Server::new(quick_cfg()).unwrap();
        let (reply, rx) = Reply::pair();
        server.handle_line("{\"op\":\"health\"}", &reply);
        let doc = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("health"));
        assert_eq!(doc.get("isolation").unwrap().as_str(), Some("thread"));
        assert_eq!(doc.get("live_children").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("children").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("breakers").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("quarantined").unwrap().as_u64(), Some(0));
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("children_spawned").unwrap().as_u64(), Some(0));
        assert_eq!(counters.get("child_retries").unwrap().as_u64(), Some(0));
        // Stats also carries the supervision counters (zeros here).
        server.handle_line("{\"op\":\"stats\"}", &reply);
        let stats = Json::parse(&rx.recv().unwrap()).unwrap();
        assert_eq!(stats.get("children_spawned").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("abandoned_attempts").unwrap().as_u64(), Some(0));
        server.drain();
    }
}
