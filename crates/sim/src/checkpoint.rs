//! Warm architectural checkpoints.
//!
//! Functional warmup ([`System::warm`]) is pure CPU-side state: trace
//! cursors, page tables, and LLC contents. That state depends only on
//! the *warmup fingerprint* — applications, master seed, warmup length,
//! CPU/cache geometry, and the physical address space — and **not** on
//! the CROW mechanism, scheduler, stepping engine, or thread count. A
//! campaign sweeping mechanisms over the same workload therefore
//! re-simulates the identical warmup dozens of times; this module
//! caches it once under `results/checkpoints/` (override with
//! `CROW_CHECKPOINT_DIR`) and restores it in O(state).
//!
//! Checkpoints are serialized through the [`crate::json`] codec (number
//! tokens are kept literally, so 64-bit RNG words round-trip exactly)
//! and written atomically (temp file + rename). A corrupt, truncated,
//! or mismatched checkpoint never fails the run: the warmup falls back
//! to cold simulation and the incident is recorded as a
//! [`CrowError::Checkpoint`] in the returned [`WarmOutcome`] and the
//! process-wide [`stats`].

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::config::SystemConfig;
use crate::error::CrowError;
use crate::json::Json;
use crate::system::System;

/// Result of [`warm_via_cache`].
#[derive(Debug)]
pub struct WarmOutcome {
    /// Whether the warmup state came from a checkpoint (hit) instead of
    /// cold simulation (miss).
    pub restored: bool,
    /// The recorded incident when a checkpoint existed but could not be
    /// used (the run still completed via cold warmup).
    pub error: Option<CrowError>,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static CORRUPT: AtomicU64 = AtomicU64::new(0);
static INSTS_RESTORED: AtomicU64 = AtomicU64::new(0);
static INSTS_SIMULATED: AtomicU64 = AtomicU64::new(0);
static COLD_NANOS: AtomicU64 = AtomicU64::new(0);
static RESTORE_NANOS: AtomicU64 = AtomicU64::new(0);
static SAVED_NANOS: AtomicU64 = AtomicU64::new(0);

/// Process-wide checkpoint counters (cumulative; snapshot with
/// [`stats`] and difference two snapshots with
/// [`CheckpointStats::since`] to scope them to a campaign).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckpointStats {
    /// Warmups restored from a checkpoint.
    pub hits: u64,
    /// Warmups simulated cold (no usable checkpoint).
    pub misses: u64,
    /// Checkpoints found but rejected (corrupt/truncated/mismatched).
    pub corrupt: u64,
    /// Warmup instructions restored instead of simulated (per core).
    pub insts_restored: u64,
    /// Warmup instructions simulated cold (per core).
    pub insts_simulated: u64,
    /// Wall-clock seconds spent simulating cold warmups.
    pub cold_seconds: f64,
    /// Wall-clock seconds spent restoring checkpoints.
    pub restore_seconds: f64,
    /// Wall-clock seconds of cold warmup avoided by hits (as recorded
    /// in each checkpoint by the run that produced it).
    pub saved_seconds: f64,
}

impl CheckpointStats {
    /// The counters accumulated since an earlier snapshot.
    pub fn since(&self, base: &CheckpointStats) -> CheckpointStats {
        CheckpointStats {
            hits: self.hits - base.hits,
            misses: self.misses - base.misses,
            corrupt: self.corrupt - base.corrupt,
            insts_restored: self.insts_restored - base.insts_restored,
            insts_simulated: self.insts_simulated - base.insts_simulated,
            cold_seconds: self.cold_seconds - base.cold_seconds,
            restore_seconds: self.restore_seconds - base.restore_seconds,
            saved_seconds: self.saved_seconds - base.saved_seconds,
        }
    }

    /// The counters as a JSON object (campaign summaries).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::u64(self.hits)),
            ("misses".into(), Json::u64(self.misses)),
            ("corrupt".into(), Json::u64(self.corrupt)),
            ("insts_restored".into(), Json::u64(self.insts_restored)),
            ("insts_simulated".into(), Json::u64(self.insts_simulated)),
            ("cold_seconds".into(), Json::f64(self.cold_seconds)),
            ("restore_seconds".into(), Json::f64(self.restore_seconds)),
            ("saved_seconds".into(), Json::f64(self.saved_seconds)),
        ])
    }
}

/// Snapshot of the process-wide checkpoint counters.
pub fn stats() -> CheckpointStats {
    CheckpointStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        corrupt: CORRUPT.load(Ordering::Relaxed),
        insts_restored: INSTS_RESTORED.load(Ordering::Relaxed),
        insts_simulated: INSTS_SIMULATED.load(Ordering::Relaxed),
        cold_seconds: COLD_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
        restore_seconds: RESTORE_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
        saved_seconds: SAVED_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
    }
}

const VERSION: u64 = 1;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The canonical text the fingerprint hashes. Everything the functional
/// warmup state depends on is here — and nothing else, so
/// configurations differing only in mechanism, scheduler, engine,
/// thread count, or measured-instruction target share one checkpoint.
/// (A mechanism that changes the physical capacity changes the page
/// tables and is split automatically via the capacity term.)
fn descriptor(cfg: &SystemConfig, capacity_bytes: u64, app_names: &[&str], warmup: u64) -> String {
    let mut cpu = cfg.cpu;
    cpu.target_insts = 0;
    let mut d = format!(
        "v{VERSION}|apps={app_names:?}|seed={}|warmup={warmup}|cpu={cpu:?}|capacity={capacity_bytes}|channels={}",
        cfg.seed, cfg.channels,
    );
    // Sampled runs key separately (appended only when sampling so every
    // pre-sampling checkpoint file stays valid under VERSION 1).
    if let Some(p) = &cfg.sample {
        d.push_str("|sample=");
        d.push_str(&p.fingerprint());
    }
    d
}

/// The warmup fingerprint for a built system: a stable 64-bit key over
/// [`descriptor`].
pub fn fingerprint(sys: &System, app_names: &[&str], warmup: u64) -> u64 {
    fnv1a64(descriptor(sys.config(), sys.mapper.capacity_bytes(), app_names, warmup).as_bytes())
}

/// The directory checkpoints live in (`CROW_CHECKPOINT_DIR` override).
pub fn checkpoint_dir() -> PathBuf {
    std::env::var_os("CROW_CHECKPOINT_DIR")
        .map_or_else(|| PathBuf::from("results/checkpoints"), PathBuf::from)
}

/// The file a given (apps, fingerprint) pair is cached under. The app
/// names are only for human readability; the fingerprint is the key.
pub fn checkpoint_path(app_names: &[&str], fp: u64) -> PathBuf {
    let mut slug: String = app_names
        .join("+")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '+' {
                c
            } else {
                '_'
            }
        })
        .take(48)
        .collect();
    if slug.is_empty() {
        slug.push('x');
    }
    checkpoint_dir().join(format!("{slug}-{fp:016x}.json"))
}

fn ck_err(path: &std::path::Path, reason: impl Into<String>) -> CrowError {
    CrowError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Reads and validates a checkpoint file. `Ok(None)` is a plain miss
/// (no file); `Err` is a recorded incident (unreadable, corrupt,
/// truncated, or keyed to a different warmup).
fn load(path: &std::path::Path, fp: u64, desc: &str) -> Result<Option<(Vec<u64>, f64)>, CrowError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ck_err(path, e.to_string())),
    };
    let doc = Json::parse(&text).map_err(|e| ck_err(path, e.to_string()))?;
    if doc.get("version").and_then(Json::as_u64) != Some(VERSION) {
        return Err(ck_err(path, "unsupported or missing version"));
    }
    let stored_fp = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    if stored_fp != Some(fp) || doc.get("descriptor").and_then(Json::as_str) != Some(desc) {
        return Err(ck_err(
            path,
            "fingerprint mismatch (stale or colliding checkpoint)",
        ));
    }
    let words: Option<Vec<u64>> = doc
        .get("words")
        .and_then(Json::as_arr)
        .map(|a| a.iter().map(Json::as_u64).collect())
        .unwrap_or(None);
    let Some(words) = words else {
        return Err(ck_err(path, "malformed word array"));
    };
    let cold = doc
        .get("cold_warm_seconds")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    Ok(Some((words, cold)))
}

/// Writes a checkpoint atomically (temp file in the same directory,
/// then rename), so a crashed or concurrent writer can never leave a
/// half-written file under the final name.
fn save(
    path: &std::path::Path,
    fp: u64,
    desc: &str,
    warmup: u64,
    cold_seconds: f64,
    words: &[u64],
) -> Result<(), CrowError> {
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    crate::campaign::ensure_dir(dir).map_err(|e| ck_err(path, e.to_string()))?;
    let doc = Json::Obj(vec![
        ("version".into(), Json::u64(VERSION)),
        ("fingerprint".into(), Json::str(format!("{fp:016x}"))),
        ("descriptor".into(), Json::str(desc)),
        ("warmup_insts".into(), Json::u64(warmup)),
        ("cold_warm_seconds".into(), Json::f64(cold_seconds)),
        (
            "words".into(),
            Json::Arr(words.iter().map(|&w| Json::u64(w)).collect()),
        ),
    ]);
    // The temp name is unique per process AND per writer within the
    // process: concurrent server jobs may publish the same checkpoint
    // simultaneously, and a shared temp file would let one writer
    // corrupt the other's bytes before the rename.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.tmp{}-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt"),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let write = |p: &std::path::Path| -> std::io::Result<()> {
        let mut f = fs::File::create(p)?;
        f.write_all(doc.pretty().as_bytes())?;
        f.sync_all()
    };
    write(&tmp).map_err(|e| ck_err(&tmp, e.to_string()))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        ck_err(path, e.to_string())
    })
}

/// Warms `sys` through the checkpoint cache: restore on a hit, simulate
/// cold (and publish the checkpoint) on a miss. `rebuild` is invoked
/// only when a rejected restore may have left the system partially
/// mutated — the replacement is then warmed cold.
///
/// Never fails the run: every checkpoint problem degrades to a cold
/// warmup, with the incident returned in [`WarmOutcome::error`].
pub fn warm_via_cache(
    sys: &mut System,
    rebuild: impl FnOnce() -> System,
    app_names: &[&str],
    warmup: u64,
) -> WarmOutcome {
    let ncores = app_names.len() as u64;
    let desc = descriptor(sys.config(), sys.mapper.capacity_bytes(), app_names, warmup);
    let fp = fnv1a64(desc.as_bytes());
    let path = checkpoint_path(app_names, fp);
    let mut error = None;
    match load(&path, fp, &desc) {
        Ok(Some((words, cold_seconds))) => {
            let t = Instant::now();
            if sys.restore_checkpoint_words(&words) {
                HITS.fetch_add(1, Ordering::Relaxed);
                INSTS_RESTORED.fetch_add(warmup * ncores, Ordering::Relaxed);
                RESTORE_NANOS.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                SAVED_NANOS.fetch_add((cold_seconds * 1e9) as u64, Ordering::Relaxed);
                return WarmOutcome {
                    restored: true,
                    error: None,
                };
            }
            CORRUPT.fetch_add(1, Ordering::Relaxed);
            error = Some(ck_err(&path, "restore rejected the stored words"));
            // The rejected restore may have committed some components;
            // start over from a clean system.
            *sys = rebuild();
        }
        Ok(None) => {}
        Err(e) => {
            CORRUPT.fetch_add(1, Ordering::Relaxed);
            error = Some(e);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    INSTS_SIMULATED.fetch_add(warmup * ncores, Ordering::Relaxed);
    let t = Instant::now();
    sys.warm(warmup);
    let cold_seconds = t.elapsed().as_secs_f64();
    COLD_NANOS.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if let Some(words) = sys.checkpoint_words() {
        if let Err(e) = save(&path, fp, &desc, warmup, cold_seconds, &words) {
            error.get_or_insert(e);
        }
    }
    WarmOutcome {
        restored: false,
        error,
    }
}
