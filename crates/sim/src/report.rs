//! Aggregated run reports.

use crow_core::CrowStats;
use crow_dram::ChannelStats;
use crow_energy::EnergyCounter;
use crow_mem::McStats;

use crate::fault::FaultStats;

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-core IPC over each core's measured window.
    pub ipc: Vec<f64>,
    /// Per-core demand MPKI.
    pub mpki: Vec<f64>,
    /// CPU cycles simulated (to the last core's finish or the cap).
    pub cpu_cycles: u64,
    /// Memory-bus cycles simulated.
    pub mem_cycles: u64,
    /// Merged controller statistics across channels.
    pub mc: McStats,
    /// Merged DRAM command counts across channels.
    pub commands: ChannelStats,
    /// Merged CROW mechanism statistics (zeros when CROW is off).
    pub crow: CrowStats,
    /// Merged DRAM energy across channels.
    pub energy: EnergyCounter,
    /// Whether every core reached its instruction target.
    pub finished: bool,
    /// Protocol violations recorded by the shadow validator across all
    /// channels (always 0 when `validate_protocol` is off).
    pub violations: u64,
    /// Cores parked because their instruction trace ran dry.
    pub trace_faults: u64,
    /// Fault-harness injection counters (all zero without a fault plan).
    pub faults: FaultStats,
    /// Wall-clock seconds the `run` call took (diagnostic; not part of
    /// the cross-engine equivalence contract).
    pub wall_seconds: f64,
    /// Simulated CPU cycles per wall-clock second over the `run` call
    /// (diagnostic; not part of the cross-engine equivalence contract).
    pub sim_cycles_per_sec: f64,
}

impl SimReport {
    /// Sum of per-core IPCs (throughput).
    pub fn ipc_sum(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// CROW-table hit rate (0 when CROW-cache is off).
    pub fn crow_hit_rate(&self) -> f64 {
        self.crow.hit_rate()
    }

    /// Total DRAM energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_nj() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_values() {
        let r = SimReport {
            ipc: vec![1.0, 2.0],
            mpki: vec![5.0, 1.0],
            cpu_cycles: 100,
            mem_cycles: 40,
            mc: McStats::new(),
            commands: ChannelStats::new(),
            crow: CrowStats::new(),
            energy: EnergyCounter::new(),
            finished: true,
            violations: 0,
            trace_faults: 0,
            faults: FaultStats::default(),
            wall_seconds: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        assert!((r.ipc_sum() - 3.0).abs() < 1e-12);
        assert_eq!(r.energy_mj(), 0.0);
    }
}
