//! Aggregated run reports.

use crow_core::CrowStats;
use crow_dram::ChannelStats;
use crow_energy::EnergyCounter;
use crow_mem::stats::LATENCY_BUCKETS;
use crow_mem::{McStats, SchedStats};

use crate::campaign::Journaled;
use crate::fault::FaultStats;
use crate::hammer::HammerStats;
use crate::json::Json;
use crate::sampling::SampleStats;

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-core IPC over each core's measured window.
    pub ipc: Vec<f64>,
    /// Per-core demand MPKI.
    pub mpki: Vec<f64>,
    /// CPU cycles simulated (to the last core's finish or the cap).
    pub cpu_cycles: u64,
    /// Memory-bus cycles simulated.
    pub mem_cycles: u64,
    /// Merged controller statistics across channels.
    pub mc: McStats,
    /// Merged DRAM command counts across channels.
    pub commands: ChannelStats,
    /// Merged CROW mechanism statistics (zeros when CROW is off).
    pub crow: CrowStats,
    /// Merged DRAM energy across channels.
    pub energy: EnergyCounter,
    /// Whether every core reached its instruction target.
    pub finished: bool,
    /// Protocol violations recorded by the shadow validator across all
    /// channels (always 0 when `validate_protocol` is off).
    pub violations: u64,
    /// Cores parked because their instruction trace ran dry.
    pub trace_faults: u64,
    /// Fault-harness injection counters (all zero without a fault plan).
    pub faults: FaultStats,
    /// Merged scheduler work counters across channels (diagnostic; not
    /// part of the cross-engine equivalence contract — engines and
    /// scheduler implementations legitimately differ here).
    pub sched: SchedStats,
    /// RowHammer attack-scenario outcome (all zero without an active
    /// [`crate::hammer::HammerScenario`]; `detections` and
    /// `mitigation_refreshes` also count ambient mitigation work).
    pub hammer: HammerStats,
    /// Interval-sampling outcome: per-window means and 95% confidence
    /// intervals ([`crate::sampling`]). `None` for a full detailed run.
    pub samples: Option<SampleStats>,
    /// Wall-clock seconds the `run` call took (diagnostic; not part of
    /// the cross-engine equivalence contract).
    pub wall_seconds: f64,
    /// Simulated CPU cycles per wall-clock second over the `run` call
    /// (diagnostic; not part of the cross-engine equivalence contract).
    pub sim_cycles_per_sec: f64,
}

impl SimReport {
    /// Sum of per-core IPCs (throughput).
    pub fn ipc_sum(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// CROW-table hit rate (0 when CROW-cache is off).
    pub fn crow_hit_rate(&self) -> f64 {
        self.crow.hit_rate()
    }

    /// Total DRAM energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_nj() / 1e6
    }
}

// --- campaign journal codec -------------------------------------------
//
// Counter values ride the journal as exact JSON tokens (`u64` decimal,
// `f64` shortest round-trip), so a report restored from a journal is
// bit-identical to the freshly computed one and resumed figure output
// matches a clean run byte for byte. The two wall-clock diagnostics are
// journaled too, but figures must never put them in their data files —
// they differ between a fresh and a restored run by construction.

fn f64s(vs: &[f64]) -> Json {
    Json::Arr(vs.iter().map(|&v| Json::f64(v)).collect())
}

fn u64s(vs: &[u64]) -> Json {
    Json::Arr(vs.iter().map(|&v| Json::u64(v)).collect())
}

// Non-finite values journal as `null` (JSON has no NaN token) and
// restore as NaN, so the NaN sentinels of failed-job reports round-trip.
fn get_f64s(v: &Json, key: &str) -> Option<Vec<f64>> {
    v.get(key)?
        .as_arr()?
        .iter()
        .map(|e| match e {
            Json::Null => Some(f64::NAN),
            other => other.as_f64(),
        })
        .collect()
}

fn get_u64s(v: &Json, key: &str) -> Option<Vec<u64>> {
    v.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn get_f64(v: &Json, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

impl Journaled for SimReport {
    fn encode(&self) -> Json {
        let mc = &self.mc;
        let mc_counters = [
            mc.reads,
            mc.writes,
            mc.row_hits,
            mc.row_misses,
            mc.row_conflicts,
            mc.refreshes,
            mc.rejections,
            mc.read_latency_sum,
            mc.read_latency_max,
            mc.restore_activations,
            mc.hammer_copies,
            mc.bus_drops,
            mc.neighbor_refreshes,
        ];
        let crow = [
            self.crow.cache_lookups,
            self.crow.cache_hits,
            self.crow.cache_installs,
            self.crow.clean_evictions,
            self.crow.restore_evictions,
            self.crow.ref_redirects,
            self.crow.hammer_redirects,
            self.crow.hammer_remaps,
        ];
        let energy = [
            self.energy.act_nj,
            self.energy.rd_nj,
            self.energy.wr_nj,
            self.energy.ref_nj,
            self.energy.background_nj,
        ];
        let faults = [
            self.faults.vrt_injected,
            self.faults.hammer_injected,
            self.faults.hammer_victims,
            self.faults.drops_injected,
            self.faults.suppressed,
        ];
        let sched = [
            self.sched.picks,
            self.sched.scanned,
            self.sched.fastpath_skips,
            self.sched.rebuilds,
            self.sched.wakeup_skips,
        ];
        let hammer = [
            self.hammer.injected,
            self.hammer.flips,
            self.hammer.flipped_rows,
            self.hammer.absorbed,
            self.hammer.detections,
            self.hammer.mitigation_refreshes,
        ];
        let mut fields = vec![
            ("ipc".into(), f64s(&self.ipc)),
            ("mpki".into(), f64s(&self.mpki)),
            ("cpu_cycles".into(), Json::u64(self.cpu_cycles)),
            ("mem_cycles".into(), Json::u64(self.mem_cycles)),
            ("mc".into(), u64s(&mc_counters)),
            ("latency_hist".into(), u64s(&mc.latency_hist)),
            ("commands".into(), u64s(&self.commands.snapshot())),
            ("crow".into(), u64s(&crow)),
            ("energy".into(), f64s(&energy)),
            ("finished".into(), Json::Bool(self.finished)),
            ("violations".into(), Json::u64(self.violations)),
            ("trace_faults".into(), Json::u64(self.trace_faults)),
            ("faults".into(), u64s(&faults)),
            ("sched".into(), u64s(&sched)),
            ("hammer".into(), u64s(&hammer)),
            ("wall_seconds".into(), Json::f64(self.wall_seconds)),
            (
                "sim_cycles_per_sec".into(),
                Json::f64(self.sim_cycles_per_sec),
            ),
        ];
        // Full runs omit the key entirely, so pre-sampling journals and
        // full-run journals are byte-identical to before.
        if let Some(s) = &self.samples {
            fields.push(("samples".into(), s.to_json()));
        }
        Json::Obj(fields)
    }

    fn decode(v: &Json) -> Option<Self> {
        let mc_counters = get_u64s(v, "mc")?;
        let hist = get_u64s(v, "latency_hist")?;
        let commands = get_u64s(v, "commands")?;
        let crow = get_u64s(v, "crow")?;
        let energy = get_f64s(v, "energy")?;
        let faults = get_u64s(v, "faults")?;
        // Journals written before the scheduler counters existed lack
        // the key entirely (restore as zeros); a present but malformed
        // array is still a decode error.
        let sched = match v.get("sched") {
            None => SchedStats::default(),
            Some(_) => {
                let s = get_u64s(v, "sched")?;
                if s.len() != 5 {
                    return None;
                }
                SchedStats {
                    picks: s[0],
                    scanned: s[1],
                    fastpath_skips: s[2],
                    rebuilds: s[3],
                    wakeup_skips: s[4],
                }
            }
        };
        // Journals written before the RowHammer subsystem existed lack
        // the key entirely (restore as zeros), same back-compat rule as
        // `sched`.
        let hammer = match v.get("hammer") {
            None => HammerStats::default(),
            Some(_) => {
                let h = get_u64s(v, "hammer")?;
                if h.len() != 6 {
                    return None;
                }
                HammerStats {
                    injected: h[0],
                    flips: h[1],
                    flipped_rows: h[2],
                    absorbed: h[3],
                    detections: h[4],
                    mitigation_refreshes: h[5],
                }
            }
        };
        // Full runs (and journals predating sampling) have no `samples`
        // key and restore as `None`; a present-but-malformed object is
        // still a decode error.
        let samples = match v.get("samples") {
            None => None,
            Some(s) => Some(SampleStats::decode(s)?),
        };
        // 12-counter `mc` arrays predate the `neighbor_refreshes`
        // mitigation counter; both lengths decode.
        if !(mc_counters.len() == 12 || mc_counters.len() == 13)
            || hist.len() != LATENCY_BUCKETS
            || commands.len() != 8
            || crow.len() != 8
            || energy.len() != 5
            || faults.len() != 5
        {
            return None;
        }
        let mut latency_hist = [0u64; LATENCY_BUCKETS];
        latency_hist.copy_from_slice(&hist);
        let mut cmd = [0u64; 8];
        cmd.copy_from_slice(&commands);
        Some(SimReport {
            ipc: get_f64s(v, "ipc")?,
            mpki: get_f64s(v, "mpki")?,
            cpu_cycles: get_u64(v, "cpu_cycles")?,
            mem_cycles: get_u64(v, "mem_cycles")?,
            mc: McStats {
                reads: mc_counters[0],
                writes: mc_counters[1],
                row_hits: mc_counters[2],
                row_misses: mc_counters[3],
                row_conflicts: mc_counters[4],
                refreshes: mc_counters[5],
                rejections: mc_counters[6],
                read_latency_sum: mc_counters[7],
                read_latency_max: mc_counters[8],
                restore_activations: mc_counters[9],
                hammer_copies: mc_counters[10],
                bus_drops: mc_counters[11],
                neighbor_refreshes: mc_counters.get(12).copied().unwrap_or(0),
                latency_hist,
            },
            commands: ChannelStats::from_snapshot(cmd),
            crow: CrowStats {
                cache_lookups: crow[0],
                cache_hits: crow[1],
                cache_installs: crow[2],
                clean_evictions: crow[3],
                restore_evictions: crow[4],
                ref_redirects: crow[5],
                hammer_redirects: crow[6],
                hammer_remaps: crow[7],
            },
            energy: EnergyCounter {
                act_nj: energy[0],
                rd_nj: energy[1],
                wr_nj: energy[2],
                ref_nj: energy[3],
                background_nj: energy[4],
            },
            finished: v.get("finished")?.as_bool()?,
            violations: get_u64(v, "violations")?,
            trace_faults: get_u64(v, "trace_faults")?,
            faults: FaultStats {
                vrt_injected: faults[0],
                hammer_injected: faults[1],
                hammer_victims: faults[2],
                drops_injected: faults[3],
                suppressed: faults[4],
            },
            sched,
            hammer,
            samples,
            wall_seconds: get_f64(v, "wall_seconds").unwrap_or(0.0),
            sim_cycles_per_sec: get_f64(v, "sim_cycles_per_sec").unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_values() {
        let r = SimReport {
            ipc: vec![1.0, 2.0],
            mpki: vec![5.0, 1.0],
            cpu_cycles: 100,
            mem_cycles: 40,
            mc: McStats::new(),
            commands: ChannelStats::new(),
            crow: CrowStats::new(),
            energy: EnergyCounter::new(),
            finished: true,
            violations: 0,
            trace_faults: 0,
            faults: FaultStats::default(),
            sched: SchedStats::default(),
            hammer: HammerStats::default(),
            samples: None,
            wall_seconds: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        assert!((r.ipc_sum() - 3.0).abs() < 1e-12);
        assert_eq!(r.energy_mj(), 0.0);
    }

    #[test]
    fn journal_codec_roundtrips_bit_exact() {
        let mut mc = McStats {
            reads: u64::MAX,
            read_latency_max: 123,
            ..McStats::new()
        };
        mc.record_latency(100);
        let mut commands = ChannelStats::new();
        commands.record(crow_dram::Command::Act);
        commands.record(crow_dram::Command::Rd);
        let r = SimReport {
            ipc: vec![0.1 + 0.2, 1.0 / 3.0, f64::NAN],
            mpki: vec![5.0, 1e-300],
            cpu_cycles: 1 << 62,
            mem_cycles: 40,
            mc,
            commands,
            crow: CrowStats {
                cache_hits: 7,
                ..CrowStats::new()
            },
            energy: EnergyCounter {
                act_nj: 0.30000000000000004,
                ..EnergyCounter::new()
            },
            finished: false,
            violations: 2,
            trace_faults: 1,
            faults: FaultStats {
                vrt_injected: 3,
                ..FaultStats::default()
            },
            sched: SchedStats {
                picks: 11,
                scanned: 97,
                fastpath_skips: 5,
                rebuilds: 2,
                wakeup_skips: u64::MAX,
            },
            hammer: HammerStats::default(),
            samples: None,
            wall_seconds: 1.5,
            sim_cycles_per_sec: 2e9,
        };
        let text = r.encode().render();
        let back = SimReport::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.ipc[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(back.ipc[2].is_nan(), "NaN sentinel survives the journal");
        assert_eq!(back.mpki[1].to_bits(), 1e-300f64.to_bits());
        assert_eq!(back.cpu_cycles, 1 << 62);
        assert_eq!(back.mc, r.mc);
        assert_eq!(back.commands, r.commands);
        assert_eq!(back.energy.act_nj.to_bits(), r.energy.act_nj.to_bits());
        assert!(!back.finished);
        assert_eq!(back.faults.vrt_injected, 3);
        assert_eq!(back.sched, r.sched);
        // Re-encoding the decoded report reproduces the bytes.
        assert_eq!(back.encode().render(), text);
    }

    #[test]
    fn journal_with_samples_roundtrips_and_without_restores_none() {
        use crate::sampling::{MetricStats, SamplePlan, SampleStats};
        let mut r = SimReport {
            ipc: vec![1.0],
            mpki: vec![0.5],
            cpu_cycles: 10,
            mem_cycles: 4,
            mc: McStats::new(),
            commands: ChannelStats::new(),
            crow: CrowStats::new(),
            energy: EnergyCounter::new(),
            finished: true,
            violations: 0,
            trace_faults: 0,
            faults: FaultStats::default(),
            sched: SchedStats::default(),
            hammer: HammerStats::default(),
            samples: Some(SampleStats {
                plan: SamplePlan::default_profile(),
                windows: 8,
                measured_insts: 40_000,
                warmed_insts: 20_000,
                skipped_insts: 297_500,
                drain_cycles: 999,
                ipc: MetricStats {
                    mean: 0.1 + 0.2,
                    ci95: 1.0 / 3.0,
                    n: 8,
                },
                energy_nj: MetricStats {
                    mean: 2.5,
                    ci95: 0.25,
                    n: 8,
                },
                row_hit_rate: MetricStats {
                    mean: 0.75,
                    ci95: 0.01,
                    n: 8,
                },
            }),
            wall_seconds: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        let text = r.encode().render();
        let back = SimReport::decode(&Json::parse(&text).unwrap()).unwrap();
        let s = back.samples.expect("samples key restores");
        assert_eq!(s, r.samples.unwrap());
        assert_eq!(s.ipc.mean.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.encode().render(), text, "byte-exact re-encode");
        // A full run omits the key and restores as None.
        r.samples = None;
        let text = r.encode().render();
        assert!(!text.contains("samples"));
        let back = SimReport::decode(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.samples.is_none());
        // A present-but-malformed samples object is a decode error.
        let Json::Obj(mut fields) = r.encode() else {
            panic!("encode returns an object")
        };
        fields.push(("samples".into(), Json::Arr(vec![])));
        assert!(SimReport::decode(&Json::Obj(fields)).is_none());
    }

    #[test]
    fn journal_without_sched_counters_decodes_as_zeros() {
        let mut r = SimReport {
            ipc: vec![1.0],
            mpki: vec![0.0],
            cpu_cycles: 1,
            mem_cycles: 1,
            mc: McStats::new(),
            commands: ChannelStats::new(),
            crow: CrowStats::new(),
            energy: EnergyCounter::new(),
            finished: true,
            violations: 0,
            trace_faults: 0,
            faults: FaultStats::default(),
            sched: SchedStats {
                picks: 9,
                ..SchedStats::default()
            },
            hammer: HammerStats::default(),
            samples: None,
            wall_seconds: 0.0,
            sim_cycles_per_sec: 0.0,
        };
        // Simulate a pre-counter journal by stripping the key.
        let Json::Obj(mut fields) = r.encode() else {
            panic!("encode returns an object")
        };
        fields.retain(|(k, _)| k != "sched");
        let back = SimReport::decode(&Json::Obj(fields)).unwrap();
        assert_eq!(back.sched, SchedStats::default());
        // A malformed length is rejected, not silently zeroed.
        r.sched = SchedStats::default();
        let Json::Obj(mut fields) = r.encode() else {
            panic!("encode returns an object")
        };
        for (k, v) in &mut fields {
            if k == "sched" {
                *v = Json::Arr(vec![Json::u64(1)]);
            }
        }
        assert!(SimReport::decode(&Json::Obj(fields)).is_none());
    }
}
