//! Minimal hand-rolled JSON used by the campaign journal and the figure
//! summary files.
//!
//! Numbers are kept as *literal tokens* ([`Json::Num`] holds the exact
//! text written to or read from the wire), so `u64` counters above 2^53
//! and `f64` values round-trip bit-exactly: encoders write integers with
//! `to_string` and floats with the shortest round-trippable `{:?}`
//! representation, and decoders re-parse the stored token. Object keys
//! keep insertion order, which makes re-rendering a parsed document
//! byte-stable — the property the journal's content hash relies on.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A numeric literal, stored as its exact token text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An integer number node.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A float number node (shortest round-trippable representation);
    /// non-finite values become `null` since JSON cannot carry them.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object node from `(&str, value)` pairs — spares call sites
    /// the per-key `.into()` noise of building [`Json::Obj`] directly.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a `u64`, if it is an integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The node as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The node as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The node's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The node's key/value pairs, if it is an object. Duplicate keys
    /// are preserved in parse order (the server's strict request
    /// validator rejects them; [`Json::get`] returns the first).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Two-space-indented multi-line rendering (figure summary files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.pretty_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing garbage"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl JsonError {
    fn at(at: usize, reason: &'static str) -> Self {
        Self { at, reason }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str, reason: &'static str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, reason))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null", "expected null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true", "expected true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false", "expected false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected , or ] in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected : after object key"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::at(*pos, "expected , or } in object")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by our own
                        // encoder; reject them rather than mis-decode.
                        let c = char::from_u32(hex)
                            .ok_or(JsonError::at(*pos, "non-scalar \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input came from a &str,
                // so decoding a 4-byte window always yields at least one
                // complete char unless the window is truncated mid-char,
                // in which case `valid_up_to` still covers the first one.
                let window = &b[*pos..(*pos + 4).min(b.len())];
                let prefix = match std::str::from_utf8(window) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()])
                            .map_err(|_| JsonError::at(*pos, "bad utf-8"))?
                    }
                    Err(_) => return Err(JsonError::at(*pos, "bad utf-8")),
                };
                let c = prefix
                    .chars()
                    .next()
                    .ok_or(JsonError::at(*pos, "bad utf-8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(JsonError::at(*pos, "expected number"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(JsonError::at(*pos, "expected fraction digits"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(JsonError::at(*pos, "expected exponent digits"));
        }
    }
    let token = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| JsonError::at(start, "bad utf-8 in number"))?
        .to_string();
    Ok(Json::Num(token))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_tokens() {
        let v = Json::Obj(vec![
            ("a".into(), Json::u64(u64::MAX)),
            ("b".into(), Json::f64(0.1)),
            ("c".into(), Json::f64(1.0)),
            ("s".into(), Json::str("x\"y\\z\n")),
            ("n".into(), Json::Null),
            ("t".into(), Json::Bool(true)),
            ("arr".into(), Json::Arr(vec![Json::u64(1), Json::u64(2)])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Re-rendering a parsed document is byte-stable.
        assert_eq!(back.render(), text);
        assert_eq!(back.get("a").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("b").unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn f64_shortest_repr_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 12345.6789, f64::MIN_POSITIVE] {
            let j = Json::f64(x);
            let back = Json::parse(&j.render()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
    }

    #[test]
    fn obj_helper_matches_hand_built() {
        let a = Json::obj(vec![("x", Json::u64(1)), ("y", Json::Bool(false))]);
        let b = Json::Obj(vec![
            ("x".into(), Json::u64(1)),
            ("y".into(), Json::Bool(false)),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_is_parseable() {
        let v = Json::Obj(vec![
            ("data".into(), Json::Obj(vec![("k".into(), Json::f64(2.5))])),
            ("empty".into(), Json::Obj(vec![])),
            ("list".into(), Json::Arr(vec![Json::str("a")])),
        ]);
        let p = v.pretty();
        assert_eq!(Json::parse(&p).unwrap(), v);
    }
}
