//! Sharded per-channel parallel simulation.
//!
//! Each (channel, controller, DRAM, validator) shard replays its memory
//! ticks on a worker thread while the main thread drives the CPU
//! cluster; deterministic epoch barriers keep reports **bit-identical**
//! to the serial engine at any thread count (see `DESIGN.md` §3.14).
//!
//! The window (epoch) protocol exploits two invariants of the serial
//! loop:
//!
//! 1. *Bounded feedback latency.* The only controller→cluster traffic is
//!    read completions, and a read issued at memory tick `m` completes
//!    no earlier than `m + RL + tBL`. Inside a window of `RL + tBL`
//!    ticks, every completion the cluster can observe is therefore
//!    already sitting in some controller's in-flight list *at window
//!    start* — the main thread pre-extracts them (each channel delivers
//!    at most one completion per tick because the controller issues at
//!    most one command per tick and read latencies are constant) and
//!    delivers them at exactly the CPU cycles the serial loop would.
//! 2. *Tagged replay.* Cluster→controller traffic (requests) is
//!    buffered per channel, tagged with the index of the first memory
//!    tick that observes it. A conservative occupancy model (queue
//!    depth can only be over-estimated) guarantees no enqueue in the
//!    window is rejected in either engine, so the window ends *before*
//!    any cycle where the serial engine could have diverged on a retry;
//!    those cycles fall back to the literal serial `System::step`.
//!
//! After the cluster phase, each shard's controller is moved to its
//! worker, which replays ticks `[m0, m_end)` — applying tagged sends
//! and the per-channel skip-vs-tick decision (`m < next_event`) exactly
//! as the serial event-driven engine would — then moves it back at the
//! barrier. Completions observed by workers are reconciled against the
//! pre-extracted schedule in fixed (channel, cycle) order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};

use crow_cpu::{CpuMemReq, MemPort};
use crow_dram::AddrMapper;
use crow_mem::{Completion, MemController, MemRequest, ReqKind};

use crate::config::{Engine, SystemConfig};
use crate::system::System;

/// One shard's work order for a window: its controller, the tick range
/// to replay, and the tagged requests the cluster sent it.
struct Job {
    ch: usize,
    mc: MemController,
    m0: u64,
    m_end: u64,
    /// The shard's `mc_next_event` bound at window start.
    next_event: u64,
    /// `(first observing tick, request)`, tick-ordered.
    sends: Vec<(u64, MemRequest)>,
    event_driven: bool,
}

/// A shard's controller handed back at the barrier.
struct JobOut {
    ch: usize,
    mc: MemController,
    next_event: u64,
    /// Completions the replay produced, as `(tick, id)`.
    delivered: Vec<(u64, u64)>,
}

enum SlotState {
    Idle,
    Work(Vec<Job>),
    Done(Vec<JobOut>),
    Poisoned,
    Quit,
}

/// One worker's mailbox (blocking handoff: the host may have a single
/// hardware thread, so the barrier must sleep, never spin).
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Idle),
            cv: Condvar::new(),
        }
    }

    fn put_work(&self, jobs: Vec<Job>) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *g = SlotState::Work(jobs);
        self.cv.notify_all();
    }

    fn take_done(&self) -> Vec<JobOut> {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*g {
                SlotState::Done(_) | SlotState::Poisoned => break,
                _ => g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner),
            }
        }
        match std::mem::replace(&mut *g, SlotState::Idle) {
            SlotState::Done(outs) => outs,
            _ => panic!("parallel shard worker panicked"),
        }
    }

    fn quit(&self) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *g = SlotState::Quit;
        self.cv.notify_all();
    }
}

fn worker_loop(slot: &Slot) {
    loop {
        let jobs = {
            let mut g = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*g {
                    SlotState::Work(_) => break,
                    SlotState::Quit => return,
                    _ => g = slot.cv.wait(g).unwrap_or_else(PoisonError::into_inner),
                }
            }
            match std::mem::replace(&mut *g, SlotState::Idle) {
                SlotState::Work(jobs) => jobs,
                _ => unreachable!("matched Work above"),
            }
        };
        let outs = catch_unwind(AssertUnwindSafe(|| {
            jobs.into_iter().map(replay).collect::<Vec<_>>()
        }));
        let mut g = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        *g = match outs {
            Ok(outs) => SlotState::Done(outs),
            Err(_) => SlotState::Poisoned,
        };
        slot.cv.notify_all();
    }
}

/// Replays one shard over `[m0, m_end)`, reproducing the serial engine's
/// per-channel schedule: tagged sends land before the tick that first
/// observes them (resetting the wakeup bound, as `Router` does), and
/// provably idle ticks are charged with `skip_idle` exactly when
/// `m < next_event` — the same predicate the serial event-driven step
/// uses.
fn replay(job: Job) -> JobOut {
    let Job {
        ch,
        mut mc,
        m0,
        m_end,
        mut next_event,
        sends,
        event_driven,
    } = job;
    let mut m = m0;
    let mut si = 0;
    let mut buf: Vec<Completion> = Vec::new();
    let mut delivered = Vec::new();
    while m < m_end {
        while si < sends.len() && sends[si].0 == m {
            assert!(
                mc.try_enqueue(sends[si].1).is_ok(),
                "window occupancy model admitted a rejected enqueue"
            );
            next_event = 0;
            si += 1;
        }
        if event_driven && m < next_event {
            let next_send = sends.get(si).map_or(m_end, |s| s.0);
            let stop = next_event.min(next_send).min(m_end);
            mc.skip_idle(stop - m);
            m = stop;
            continue;
        }
        mc.tick(m, &mut buf);
        for c in buf.drain(..) {
            delivered.push((m, c.id));
        }
        if event_driven {
            next_event = mc.min_wakeup(m);
        }
        m += 1;
    }
    JobOut {
        ch,
        mc,
        next_event,
        delivered,
    }
}

/// Buffers cluster requests during a window instead of enqueuing them,
/// mirroring `Router` exactly (same decode, same request construction).
/// Sends always succeed: the per-cycle occupancy pre-check already
/// proved no queue can be full.
struct BufferPort<'a> {
    mapper: &'a AddrMapper,
    /// Index of the first memory tick that will observe a send made now.
    tag: u64,
    sends: &'a mut [Vec<(u64, MemRequest)>],
    model_read: &'a mut [usize],
    model_write: &'a mut [usize],
}

impl MemPort for BufferPort<'_> {
    fn send(&mut self, req: CpuMemReq) -> bool {
        let a = self.mapper.decode(req.line_pa);
        let kind = if req.is_write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        let mut r = MemRequest::new(req.id, kind, a.rank, a.bank, a.row, a.col, req.core);
        r.is_prefetch = req.is_prefetch;
        let ch = a.channel as usize;
        if req.is_write {
            self.model_write[ch] += 1;
        } else {
            self.model_read[ch] += 1;
        }
        self.sends[ch].push((self.tag, r));
        true
    }
}

/// Drives the system to completion with channel shards on worker
/// threads. Called by [`System::run`] when `threads > 1` and more than
/// one channel exists; behaves exactly like the configured serial
/// engine, report-bit for report-bit.
pub(crate) fn drive(sys: &mut System, max_cpu_cycles: u64) {
    let event_driven = matches!(sys.cfg.engine, Engine::EventDriven);
    let workers = (sys.cfg.threads as usize).min(sys.mcs.len()).max(1);
    let slots: Vec<Slot> = (0..workers).map(|_| Slot::new()).collect();
    // Workers must be told to quit even when the main thread unwinds
    // (a reconciliation assert, say) — `thread::scope` joins them
    // before propagating the panic, so a missed quit is a deadlock.
    struct QuitOnDrop<'a>(&'a [Slot]);
    impl Drop for QuitOnDrop<'_> {
        fn drop(&mut self) {
            for slot in self.0 {
                slot.quit();
            }
        }
    }
    std::thread::scope(|scope| {
        for slot in &slots {
            scope.spawn(move || worker_loop(slot));
        }
        let _quit = QuitOnDrop(&slots);
        while !sys.cluster.done() && sys.cpu_cycle < max_cpu_cycles {
            // Idle spans are cheapest in closed form on the main thread —
            // exactly the serial engine's fast path.
            if event_driven {
                let skip = sys.idle_skip(max_cpu_cycles);
                if skip > 0 {
                    sys.apply_skip(skip);
                    continue;
                }
            }
            if !run_window(sys, &slots, max_cpu_cycles, event_driven) {
                // No viable window (injection boundary due, queues near
                // capacity, or the horizon is exhausted): take one
                // literal serial step, which handles every such case by
                // construction.
                sys.step(event_driven);
            }
        }
    });
}

/// Runs one window (epoch). Returns `false` without touching the system
/// if no progress could be made; the caller then serial-steps.
fn run_window(sys: &mut System, slots: &[Slot], max_cpu_cycles: u64, event_driven: bool) -> bool {
    let t0 = sys.cpu_cycle;
    let m0 = sys.mem_cycle;
    let nch = sys.mcs.len();
    // Feedback horizon: a read issued inside the window completes at
    // least RL + tBL ticks later, i.e. outside `[m0, m_max)`.
    let t = &sys.mcs[0].channel().config().timings;
    let horizon = u64::from(t.rl) + u64::from(t.tbl);
    if horizon == 0 {
        return false;
    }
    let m_max = m0 + horizon;
    // The window may not contain an injection boundary: those cycles
    // mutate controllers from the main thread and are serial-stepped.
    let mut c_bound = max_cpu_cycles;
    if let Some(interval) = sys.cfg.vrt_interval_cycles {
        if t0 > 0 && t0.is_multiple_of(interval) {
            return false;
        }
        c_bound = c_bound.min((t0 / interval + 1) * interval);
    }
    if let Some(plan) = &sys.cfg.fault_plan {
        if plan.due(t0) {
            return false;
        }
        c_bound = c_bound.min(t0.saturating_add(plan.next_boundary_in(t0)));
    }
    if c_bound <= t0 {
        return false;
    }
    // Pre-extract the window's completion schedule. Dues are strictly
    // distinct per channel (one issue per tick, constant read latency);
    // bail out defensively rather than guess an intra-tick order.
    let mut due: Vec<Vec<(u64, Completion)>> = Vec::with_capacity(nch);
    for mc in &sys.mcs {
        let mut v: Vec<(u64, Completion)> = mc
            .inflight()
            .iter()
            .filter(|(d, _)| *d < m_max)
            .copied()
            .collect();
        v.sort_unstable_by_key(|(d, _)| *d);
        if v.windows(2).any(|w| w[0].0 == w[1].0) || v.first().is_some_and(|(d, _)| *d < m0) {
            return false;
        }
        due.push(v);
    }
    // Conservative queue-occupancy model: starts at the real depth and
    // only ever grows, so "model fits" implies "real enqueue succeeds"
    // for both this run and the serial reference.
    let read_cap = sys.cfg.mc.read_q;
    let write_cap = sys.cfg.mc.write_q;
    let mut model_read: Vec<usize> = sys.mcs.iter().map(MemController::read_q_len).collect();
    let mut model_write: Vec<usize> = sys.mcs.iter().map(MemController::write_q_len).collect();
    let mut sends: Vec<Vec<(u64, MemRequest)>> = vec![Vec::new(); nch];
    let mut next_idx = vec![0usize; nch];
    let (num, den) = SystemConfig::CLOCK_RATIO;
    let mut acc = sys.clock_accum;
    let mut m = m0;
    let mut cpu = t0;
    // Cluster phase: advance the CPU side, delivering the pre-extracted
    // completions at their exact cycles and buffering sends.
    loop {
        if cpu >= c_bound || sys.cluster.done() {
            break;
        }
        let tick_fires = acc + den >= num;
        if tick_fires && m >= m_max {
            break;
        }
        // Completions due this tick (at most one per channel).
        let mut deliveries = 0usize;
        if tick_fires {
            for ch in 0..nch {
                if due[ch].get(next_idx[ch]).is_some_and(|(d, _)| *d == m) {
                    deliveries += 1;
                }
            }
        }
        // Occupancy pre-check, *before* mutating anything: this cycle
        // can send at most `mshr headroom + deliveries` reads (each
        // delivery frees an MSHR before the cluster runs) and
        // `pending writebacks + deliveries` writes (each fill can evict
        // one dirty victim) — all conservatively chargeable to any one
        // channel.
        let headroom = sys.cluster.mshr_headroom() as usize;
        let wb = sys.cluster.pending_writebacks_len();
        let fits = (0..nch).all(|ch| {
            model_read[ch] + headroom + deliveries <= read_cap
                && model_write[ch] + wb + deliveries <= write_cap
        });
        if !fits {
            break;
        }
        acc += den;
        if acc >= num {
            acc -= num;
            for ch in 0..nch {
                if due[ch].get(next_idx[ch]).is_some_and(|(d, _)| *d == m) {
                    let c = due[ch][next_idx[ch]].1;
                    sys.cluster.on_completion(c.id, cpu);
                    next_idx[ch] += 1;
                }
            }
            m += 1;
        }
        let mut port = BufferPort {
            mapper: &sys.mapper,
            tag: m,
            sends: &mut sends,
            model_read: &mut model_read,
            model_write: &mut model_write,
        };
        sys.cluster.cycle(cpu, &mut port);
        cpu += 1;
        // Inert fast path: while the cluster provably does nothing and
        // no delivery is due, advance in closed form (the skipped memory
        // ticks are the workers' to replay). Not past retirement: the
        // serial loop re-checks `done` every cycle, so coasting beyond
        // it would overshoot the final cycle counts.
        if event_driven && !sys.cluster.done() {
            let inert = sys.cluster.inert_cycles(cpu);
            if inert > 0 {
                let mem_next = (0..nch)
                    .filter_map(|ch| due[ch].get(next_idx[ch]).map(|(d, _)| *d))
                    .min()
                    .unwrap_or(m_max)
                    .min(m_max);
                let r = mem_next.saturating_sub(m);
                let budget = num.saturating_mul(r + 1).saturating_sub(1 + acc);
                let k = inert.min(budget / den).min(c_bound - cpu);
                if k > 0 {
                    sys.cluster.advance_inert(cpu, k);
                    let total = acc + den * k;
                    m += total / num;
                    acc = total % num;
                    cpu += k;
                }
            }
        }
    }
    if cpu == t0 {
        return false;
    }
    let m_end = m;
    // Fork: ship each shard (controller + tagged sends) to its worker.
    // Sends tagged `m_end` were produced after the window's final tick;
    // they are applied on the main thread after the barrier, exactly as
    // the serial engine would observe them.
    let mcs = std::mem::take(&mut sys.mcs);
    let mut leftovers: Vec<Vec<MemRequest>> = vec![Vec::new(); nch];
    let mut per_worker: Vec<Vec<Job>> = (0..slots.len()).map(|_| Vec::new()).collect();
    for (ch, mc) in mcs.into_iter().enumerate() {
        let mut shard_sends = std::mem::take(&mut sends[ch]);
        while shard_sends.last().is_some_and(|(tag, _)| *tag >= m_end) {
            let (_, req) = shard_sends.pop().expect("checked non-empty");
            leftovers[ch].push(req);
        }
        leftovers[ch].reverse();
        per_worker[ch % slots.len()].push(Job {
            ch,
            mc,
            m0,
            m_end,
            next_event: sys.mc_next_event[ch],
            sends: shard_sends,
            event_driven,
        });
    }
    for (slot, jobs) in slots.iter().zip(per_worker) {
        slot.put_work(jobs);
    }
    // Barrier: collect shards back in fixed channel order and reconcile
    // the observed completions against the pre-extracted schedule.
    let mut returned: Vec<Option<JobOut>> = (0..nch).map(|_| None).collect();
    for slot in slots {
        for out in slot.take_done() {
            let ch = out.ch;
            returned[ch] = Some(out);
        }
    }
    sys.mcs = Vec::with_capacity(nch);
    for (ch, slot_out) in returned.into_iter().enumerate() {
        let out = slot_out.expect("every channel returns from its worker");
        // Only the dues the cluster phase actually consumed: the window
        // may have closed before the full pre-extracted horizon.
        let expect: Vec<(u64, u64)> = due[ch][..next_idx[ch]]
            .iter()
            .map(|(d, c)| (*d, c.id))
            .collect();
        assert!(
            out.delivered == expect,
            "shard {ch} diverged from the pre-extracted completion schedule"
        );
        sys.mcs.push(out.mc);
        sys.mc_next_event[ch] = out.next_event;
        for req in leftovers[ch].drain(..) {
            assert!(
                sys.mcs[ch].try_enqueue(req).is_ok(),
                "window occupancy model admitted a rejected enqueue"
            );
            sys.mc_next_event[ch] = 0;
        }
    }
    sys.cpu_cycle = cpu;
    sys.mem_cycle = m_end;
    sys.clock_accum = acc;
    true
}
