//! The simulator-level error hierarchy.
//!
//! Every fallible construction or checked-run path in the workspace
//! funnels into [`CrowError`], so binaries can print one diagnostic and
//! exit instead of unwinding with a backtrace.

use crow_cpu::TraceError;
use crow_dram::ConfigError;
use crow_mem::McError;

/// Anything that can go wrong building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrowError {
    /// A configuration failed validation before the system was built.
    Config(ConfigError),
    /// A memory controller could not be constructed.
    Controller(McError),
    /// An instruction trace was empty or ran dry.
    Trace(TraceError),
    /// The shadow protocol validator recorded violations and the fault
    /// policy is [`crate::FaultPolicy::Abort`].
    Protocol {
        /// Total violations across all channels.
        violations: u64,
        /// The first recorded violation, formatted (None if all were
        /// dropped by the storage cap).
        first: Option<String>,
    },
    /// A campaign result journal could not be read or written.
    Journal {
        /// The journal file involved.
        path: String,
        /// What went wrong (I/O error text or format diagnosis).
        reason: String,
    },
    /// A warm-architectural-state checkpoint could not be used (corrupt,
    /// truncated, or mismatched). The run falls back to a cold warmup;
    /// this error records why.
    Checkpoint {
        /// The checkpoint file involved.
        path: String,
        /// What went wrong (I/O error text or format diagnosis).
        reason: String,
    },
    /// A simulation-service request failed strict validation (malformed
    /// JSON, unknown or duplicate keys, out-of-range values). The server
    /// answers with a structured error response; it never panics and
    /// never substitutes a silent default.
    Request {
        /// What the validator rejected.
        reason: String,
    },
    /// A request was refused because its fingerprint's circuit breaker
    /// is open: K consecutive child crashes/kills mark the job as
    /// poison, and duplicates are quarantined for the cooldown instead
    /// of re-running it.
    Quarantined {
        /// The poisoned job fingerprint.
        fingerprint: String,
        /// Conservative wait before a retry can be admitted.
        retry_after_ms: u64,
    },
    /// A supervised child process exceeded its resident-set cap and was
    /// SIGKILLed by the parent.
    ResourceLimit {
        /// Observed resident set at the kill, in MiB.
        rss_mib: u64,
        /// The configured cap, in MiB.
        cap_mib: u64,
    },
}

impl std::fmt::Display for CrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrowError::Config(e) => write!(f, "{e}"),
            CrowError::Controller(e) => write!(f, "{e}"),
            CrowError::Trace(e) => write!(f, "{e}"),
            CrowError::Protocol { violations, first } => {
                write!(f, "{violations} protocol violation(s)")?;
                if let Some(first) = first {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            CrowError::Journal { path, reason } => {
                write!(f, "campaign journal {path}: {reason}")
            }
            CrowError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
            CrowError::Request { reason } => {
                write!(f, "bad request: {reason}")
            }
            CrowError::Quarantined {
                fingerprint,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "quarantined: circuit breaker open for {fingerprint} (retry in {:.1}s)",
                    *retry_after_ms as f64 / 1000.0
                )
            }
            CrowError::ResourceLimit { rss_mib, cap_mib } => {
                write!(
                    f,
                    "resource-limit: child RSS {rss_mib} MiB exceeded cap {cap_mib} MiB (SIGKILL)"
                )
            }
        }
    }
}

impl std::error::Error for CrowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrowError::Config(e) => Some(e),
            CrowError::Controller(e) => Some(e),
            CrowError::Trace(e) => Some(e),
            CrowError::Protocol { .. }
            | CrowError::Journal { .. }
            | CrowError::Checkpoint { .. }
            | CrowError::Request { .. }
            | CrowError::Quarantined { .. }
            | CrowError::ResourceLimit { .. } => None,
        }
    }
}

impl From<ConfigError> for CrowError {
    fn from(e: ConfigError) -> Self {
        CrowError::Config(e)
    }
}

impl From<McError> for CrowError {
    fn from(e: McError) -> Self {
        CrowError::Controller(e)
    }
}

impl From<TraceError> for CrowError {
    fn from(e: TraceError) -> Self {
        CrowError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_inner_messages() {
        let e: CrowError = ConfigError::new("DramConfig", "banks must be a power of two").into();
        assert_eq!(
            e.to_string(),
            "invalid DramConfig: banks must be a power of two"
        );
        let t: CrowError = TraceError::Exhausted { after: 3 }.into();
        assert_eq!(t.to_string(), "trace exhausted after 3 records");
        let p = CrowError::Protocol {
            violations: 2,
            first: Some("cycle 9: Act rank 0 bank 1: tFAW".into()),
        };
        assert!(p.to_string().contains("2 protocol violation(s)"));
        assert!(p.to_string().contains("tFAW"));
        let j = CrowError::Journal {
            path: "results/campaign/fig8.jsonl".into(),
            reason: "No space left on device".into(),
        };
        assert_eq!(
            j.to_string(),
            "campaign journal results/campaign/fig8.jsonl: No space left on device"
        );
        let q = CrowError::Quarantined {
            fingerprint: "serve/base/mcf/d16/llc4/ch1/s1".into(),
            retry_after_ms: 2_500,
        };
        assert_eq!(
            q.to_string(),
            "quarantined: circuit breaker open for serve/base/mcf/d16/llc4/ch1/s1 (retry in 2.5s)"
        );
        let r = CrowError::ResourceLimit {
            rss_mib: 97,
            cap_mib: 64,
        };
        assert_eq!(
            r.to_string(),
            "resource-limit: child RSS 97 MiB exceeded cap 64 MiB (SIGKILL)"
        );
    }

    #[test]
    fn source_reaches_root_cause() {
        use std::error::Error;
        let e: CrowError = McError::Config(ConfigError::new("McConfig", "read_q")).into();
        assert!(e.source().is_some());
        assert!(e.source().unwrap().source().is_some());
    }
}
