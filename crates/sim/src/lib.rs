//! # crow-sim
//!
//! The full-system simulator of the CROW reproduction: trace-driven cores
//! and a shared LLC (`crow-cpu`) connected through an address mapper to
//! four LPDDR4 channels, each driven by a memory controller (`crow-mem`)
//! over the cycle-accurate device model (`crow-dram`), with the CROW
//! substrate (`crow-core`) and energy accounting (`crow-energy`) wired
//! in.
//!
//! [`SystemConfig`] defaults to the paper's Table 2 platform; a
//! [`Mechanism`] selects between the baseline, CROW-cache (any copy-row
//! count), CROW-ref, the combined mechanism, the ideal variants, and the
//! TL-DRAM / SALP comparison baselines of §8.1.4.
//!
//! The CPU runs at 4 GHz and the memory bus at 1600 MHz; the 2.5× clock
//! ratio is handled with an integer accumulator (two memory ticks every
//! five CPU ticks).
//!
//! ## Example
//!
//! ```
//! use crow_sim::{Mechanism, SystemConfig, System};
//! use crow_workloads::AppProfile;
//!
//! let cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
//! let app = AppProfile::by_name("mcf").unwrap();
//! let mut sys = System::new(cfg, &[app]);
//! let report = sys.run(2_000_000);
//! assert!(report.ipc[0] > 0.0);
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod experiments;
pub mod fault;
pub mod hammer;
pub mod json;
pub mod metrics;
mod parallel;
pub mod report;
pub mod sampling;
pub mod server;
pub mod supervise;
pub mod system;

pub use campaign::{
    Campaign, CampaignPolicy, JobOutcome, Journal, Journaled, OutcomeCounts, OutcomeKind,
};
pub use checkpoint::{warm_via_cache, CheckpointStats, WarmOutcome};
pub use config::{Engine, Mechanism, SystemConfig};
pub use error::CrowError;
pub use experiments::{run_many, run_mix, run_single, run_with_config, Scale};
pub use fault::{FaultPlan, FaultPolicy, FaultStats};
pub use hammer::{
    AggressorGen, AttackPattern, FlipModel, FlipParams, HammerScenario, HammerState, HammerStats,
};
pub use json::Json;
pub use metrics::weighted_speedup;
pub use report::SimReport;
pub use sampling::{MetricStats, SamplePlan, SampleStats};
pub use server::{LineRead, LineReader, Reply, Request, ServeConfig, Server, SimJob};
pub use supervise::{
    Admit, BreakerState, Breakers, IsolationMode, SupCounters, SuperviseConfig, Supervisor,
};
pub use system::System;
