//! The sandboxed job-runner binary the supervision integration tests
//! point [`crow_sim::supervise::SuperviseConfig::runner_exe`] at: its
//! only behavior is the child half of `CROW_SERVE_ISOLATION=process`.
//! The real `crow-serve` binary embeds the same entry point behind its
//! `--job-runner` flag; this example exists because a test binary's
//! `current_exe()` is the test harness, which must not be re-exec'd.

fn main() {
    crow_sim::supervise::job_runner_main();
}
