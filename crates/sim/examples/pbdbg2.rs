use crow_dram::{Command, DramConfig};
use crow_mem::{McConfig, MemController, MemRequest, ReqKind};
fn main() {
    for pb in [false, true] {
        let mut cfg = McConfig::paper_default();
        cfg.per_bank_refresh = pb;
        let mut dram = DramConfig::lpddr4_default().with_density(64);
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(cfg, dram, None);
        let mut out = Vec::new();
        let mut next_id = 0u64;
        // Steady stream: one read every 40 cycles, random banks/rows.
        for now in 0..200_000u64 {
            if now % 40 == 0 && mc.can_accept_read() {
                let bank = (next_id * 7) % 8;
                let row = ((next_id * 7919) % 65536) as u32;
                mc.try_enqueue(MemRequest::new(
                    next_id,
                    ReqKind::Read,
                    0,
                    bank as u32,
                    row,
                    0,
                    0,
                ))
                .ok();
                next_id += 1;
            }
            mc.tick(now, &mut out);
        }
        println!(
            "pb={pb}: served {} avg_lat {:.0} max_lat {} refreshes {} REFpb {} pending {}",
            out.len(),
            mc.stats().avg_read_latency(),
            mc.stats().read_latency_max,
            mc.stats().refreshes,
            mc.channel().stats().issued(Command::RefPb),
            mc.pending()
        );
    }
}
