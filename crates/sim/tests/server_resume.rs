//! Resume and dedup semantics of the simulation service: duplicate
//! requests are answered from the journal with zero re-simulated
//! cycles, concurrent duplicates share one run, and a server restarted
//! over the same journal directory replies byte-identically without
//! re-running anything that was journaled.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crow_sim::server::{Reply, ServeConfig, Server};
use crow_sim::Json;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "crow-serve-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn serve_cfg(dir: &std::path::Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(Some(dir.to_path_buf()));
    cfg.workers = 2;
    cfg.heartbeat = None;
    cfg.job_timeout = Some(Duration::from_secs(120));
    cfg
}

const JOB: &str = "{\"op\":\"sim\",\"id\":\"ID\",\"apps\":[\"mcf\"],\"insts\":20000,\
     \"warmup\":1000,\"channels\":1,\"llc_mib\":1}";

fn job_line(id: &str) -> String {
    JOB.replace("ID", id)
}

/// Collects terminal events (`result`/`error`) from a reply channel.
/// Concurrent jobs finish in any order, so terminals for other ids are
/// stashed instead of dropped — waiting for A then B cannot hang just
/// because B's event arrived first.
struct Terminals {
    rx: std::sync::mpsc::Receiver<String>,
    stash: std::collections::HashMap<String, Json>,
}

impl Terminals {
    fn new(rx: std::sync::mpsc::Receiver<String>) -> Self {
        Self {
            rx,
            stash: std::collections::HashMap::new(),
        }
    }

    fn wait(&mut self, id: &str) -> Json {
        if let Some(ev) = self.stash.remove(id) {
            return ev;
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        while std::time::Instant::now() < deadline {
            let line = self
                .rx
                .recv_timeout(Duration::from_secs(120))
                .expect("an event before the deadline");
            let ev = Json::parse(&line).expect("valid event JSON");
            let kind = ev.get("event").and_then(Json::as_str);
            if kind != Some("result") && kind != Some("error") {
                continue;
            }
            let got = ev
                .get("id")
                .and_then(Json::as_str)
                .expect("terminal events carry an id")
                .to_owned();
            if got == id {
                return ev;
            }
            self.stash.insert(got, ev);
        }
        panic!("no terminal event for {id}");
    }
}

fn stat(server: &Server, key: &str) -> u64 {
    server
        .stats_json()
        .get(key)
        .and_then(Json::as_u64)
        .expect("counter present")
}

#[test]
fn duplicates_and_restart_simulate_zero_cycles() {
    let dir = temp_dir("restart");

    // First server: run the job once, then serve a duplicate from cache.
    let server = Server::new(serve_cfg(&dir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("first"), &reply);
    let fresh = rx.wait("first");
    assert_eq!(fresh.get("event").unwrap().as_str(), Some("result"));
    assert_eq!(fresh.get("cached").unwrap().as_bool(), Some(false));
    let fresh_report = fresh.get("report").unwrap().render();

    server.handle_line(&job_line("dup"), &reply);
    let dup = rx.wait("dup");
    assert_eq!(dup.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        dup.get("report").unwrap().render(),
        fresh_report,
        "cached reply is byte-identical"
    );
    assert_eq!(stat(&server, "jobs_run"), 1, "the duplicate did not run");
    assert_eq!(stat(&server, "cache_hits"), 1);
    let cycles_after_first = stat(&server, "cycles_simulated");
    assert!(cycles_after_first > 0);
    let sum = server.drain();
    assert_eq!(sum.jobs_run, 1);
    assert_eq!(sum.abandoned, 0);

    // Restarted server over the same journal: the same request must be
    // answered byte-identically with zero simulated cycles.
    let server = Server::new(serve_cfg(&dir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("after-restart"), &reply);
    let restored = rx.wait("after-restart");
    assert_eq!(restored.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(restored.get("report").unwrap().render(), fresh_report);
    assert_eq!(stat(&server, "jobs_run"), 0, "nothing re-ran after restart");
    assert_eq!(stat(&server, "cycles_simulated"), 0);
    server.drain();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_duplicates_share_one_run() {
    let dir = temp_dir("inflight");
    let server = Server::new(serve_cfg(&dir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    // Submit the same simulation four times back-to-back; with two
    // workers at least two are in the system concurrently. The
    // in-flight gate must collapse them onto a single run.
    for i in 0..4 {
        server.handle_line(&job_line(&format!("dup-{i}")), &reply);
    }
    let mut reports = Vec::new();
    for i in 0..4 {
        let ev = rx.wait(&format!("dup-{i}"));
        assert_eq!(ev.get("event").unwrap().as_str(), Some("result"));
        reports.push(ev.get("report").unwrap().render());
    }
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "every duplicate sees the same bytes"
    );
    assert_eq!(stat(&server, "jobs_run"), 1, "one simulation for four ids");
    assert_eq!(stat(&server, "cache_hits"), 3);
    let sum = server.drain();
    assert_eq!(sum.jobs_run, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distinct_jobs_do_not_dedup() {
    let dir = temp_dir("distinct");
    let server = Server::new(serve_cfg(&dir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("seed-a"), &reply);
    server.handle_line(
        &job_line("seed-b").replace("\"llc_mib\":1", "\"llc_mib\":2"),
        &reply,
    );
    let a = rx.wait("seed-a");
    let b = rx.wait("seed-b");
    assert_eq!(a.get("event").unwrap().as_str(), Some("result"));
    assert_eq!(b.get("event").unwrap().as_str(), Some("result"));
    assert_ne!(
        a.get("report").unwrap().render(),
        b.get("report").unwrap().render(),
        "different configs produce different results"
    );
    assert_eq!(stat(&server, "jobs_run"), 2);
    assert_eq!(stat(&server, "cache_hits"), 0);
    server.drain();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_jobs_are_cached_as_failures() {
    let dir = temp_dir("fail");
    let mut cfg = serve_cfg(&dir);
    cfg.max_retries = 0;
    // An impossible per-attempt deadline forces a timeout outcome.
    cfg.job_timeout = Some(Duration::from_millis(1));
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("doomed"), &reply);
    let ev = rx.wait("doomed");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(ev.get("code").unwrap().as_str(), Some("timeout"));
    // The failure is journaled too: a duplicate is answered from the
    // journal instead of burning another attempt.
    server.handle_line(&job_line("doomed-again"), &reply);
    let again = rx.wait("doomed-again");
    assert_eq!(again.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(stat(&server, "jobs_run"), 1);
    assert_eq!(stat(&server, "cache_hits"), 1);
    server.drain();
    std::fs::remove_dir_all(&dir).ok();
}
