//! Chaos tests for process-isolated job execution: children that crash,
//! wedge, or bomb memory are hard-killed and surfaced as structured
//! errors, healthy jobs keep completing, circuit breakers quarantine
//! poison fingerprints, and the results that do land are byte-identical
//! to thread-mode execution.
//!
//! Every server here points `runner_exe` at the `job_runner` example
//! binary (a test binary's own `current_exe()` is the libtest harness,
//! which must never be re-exec'd).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crow_sim::server::{Reply, ServeConfig, Server};
use crow_sim::supervise::IsolationMode;
use crow_sim::Json;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "crow-supervise-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The `job_runner` example binary, which cargo builds alongside the
/// test: `<target>/debug/deps/<test>` -> `<target>/debug/examples/job_runner`.
fn runner_exe() -> PathBuf {
    let mut p = std::env::current_exe().unwrap();
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    let exe = p.join("examples").join("job_runner");
    assert!(
        exe.exists(),
        "{} missing (cargo builds examples with tests)",
        exe.display()
    );
    exe
}

fn process_cfg(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(Some(dir.to_path_buf()));
    cfg.workers = 2;
    cfg.heartbeat = None;
    cfg.job_timeout = Some(Duration::from_secs(120));
    cfg.supervise.isolation = IsolationMode::Process;
    cfg.supervise.runner_exe = Some(runner_exe());
    cfg.supervise.backoff_base = Duration::from_millis(5);
    cfg.supervise.backoff_cap = Duration::from_millis(20);
    cfg.allow_chaos = true;
    cfg
}

fn thread_cfg(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(Some(dir.to_path_buf()));
    cfg.workers = 2;
    cfg.heartbeat = None;
    cfg.job_timeout = Some(Duration::from_secs(120));
    cfg
}

fn job_line(id: &str, chaos: Option<&str>) -> String {
    let base = format!(
        "{{\"op\":\"sim\",\"id\":\"{id}\",\"apps\":[\"mcf\"],\"insts\":20000,\
         \"warmup\":1000,\"channels\":1,\"llc_mib\":1"
    );
    match chaos {
        Some(c) => format!("{base},\"chaos\":\"{c}\"}}"),
        None => format!("{base}}}"),
    }
}

/// Collects terminal events (`result`/`error`), stashing terminals for
/// other ids so concurrent completion order cannot hang a wait.
struct Terminals {
    rx: std::sync::mpsc::Receiver<String>,
    stash: std::collections::HashMap<String, Json>,
}

impl Terminals {
    fn new(rx: std::sync::mpsc::Receiver<String>) -> Self {
        Self {
            rx,
            stash: std::collections::HashMap::new(),
        }
    }

    fn wait(&mut self, id: &str) -> Json {
        if let Some(ev) = self.stash.remove(id) {
            return ev;
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        while Instant::now() < deadline {
            let line = self
                .rx
                .recv_timeout(Duration::from_secs(120))
                .expect("an event before the deadline");
            let ev = Json::parse(&line).expect("valid event JSON");
            let kind = ev.get("event").and_then(Json::as_str);
            if kind != Some("result") && kind != Some("error") {
                continue;
            }
            let got = ev
                .get("id")
                .and_then(Json::as_str)
                .expect("terminal events carry an id")
                .to_owned();
            if got == id {
                return ev;
            }
            self.stash.insert(got, ev);
        }
        panic!("no terminal event for {id}");
    }
}

/// Render a report with the wall-clock fields removed: everything an
/// architectural simulation computes is deterministic, but how long it
/// took to compute is not.
fn deterministic_bytes(report: &Json) -> String {
    match report {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "wall_seconds" && k != "sim_cycles_per_sec")
                .cloned()
                .collect(),
        )
        .render(),
        other => other.render(),
    }
}

fn stat(server: &Server, key: &str) -> u64 {
    server
        .stats_json()
        .get(key)
        .and_then(Json::as_u64)
        .expect("counter present")
}

fn sup_counter(server: &Server, key: &str) -> u64 {
    server
        .health_json()
        .get("counters")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .expect("health counter present")
}

fn live_children(server: &Server) -> u64 {
    server
        .health_json()
        .get("live_children")
        .and_then(Json::as_u64)
        .expect("live_children present")
}

#[test]
fn process_mode_matches_thread_mode_byte_for_byte() {
    // Thread mode first: the reference bytes.
    let tdir = temp_dir("parity-thread");
    let server = Server::new(thread_cfg(&tdir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("ref", None), &reply);
    let reference = rx.wait("ref");
    assert_eq!(reference.get("event").unwrap().as_str(), Some("result"));
    let reference_report = deterministic_bytes(reference.get("report").unwrap());
    server.drain();

    // Process mode: same job, sandboxed child, identical report bytes.
    let pdir = temp_dir("parity-process");
    let server = Server::new(process_cfg(&pdir)).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("iso", None), &reply);
    let iso = rx.wait("iso");
    assert_eq!(iso.get("event").unwrap().as_str(), Some("result"));
    assert_eq!(iso.get("outcome").unwrap().as_str(), Some("ok"));
    assert_eq!(iso.get("cached").unwrap().as_bool(), Some(false));
    assert_eq!(
        deterministic_bytes(iso.get("report").unwrap()),
        reference_report,
        "a sandboxed child computes the same bytes as an in-process thread"
    );
    let iso_report = iso.get("report").unwrap().render();
    assert_eq!(sup_counter(&server, "children_spawned"), 1);
    assert_eq!(live_children(&server), 0, "the child was reaped");
    assert!(
        stat(&server, "cycles_simulated") > 0,
        "cycles flow from the child report"
    );

    // A duplicate is a cache hit: no second child.
    server.handle_line(&job_line("iso-dup", None), &reply);
    let dup = rx.wait("iso-dup");
    assert_eq!(dup.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(dup.get("report").unwrap().render(), iso_report);
    assert_eq!(sup_counter(&server, "children_spawned"), 1);
    let sum = server.drain();
    assert_eq!(sum.jobs_run, 1);
    assert_eq!(sum.killed_children, 0);
    std::fs::remove_dir_all(&tdir).ok();
    std::fs::remove_dir_all(&pdir).ok();
}

#[test]
fn crash_on_first_attempt_retries_and_dedups() {
    let dir = temp_dir("crash-first");
    let mut cfg = process_cfg(&dir);
    cfg.max_retries = 1;
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("cf", Some("crash-first")), &reply);
    let ev = rx.wait("cf");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("result"));
    assert_eq!(
        ev.get("outcome").unwrap().as_str(),
        Some("degraded"),
        "the retry ran at the degraded rung"
    );
    assert_eq!(ev.get("attempts").unwrap().as_u64(), Some(2));
    let report = ev.get("report").unwrap().render();
    assert_eq!(sup_counter(&server, "children_spawned"), 2);
    assert_eq!(sup_counter(&server, "child_crashes"), 1);
    assert_eq!(sup_counter(&server, "child_retries"), 1);

    // The success journaled; a duplicate under a different id is served
    // from cache byte-identically, with no third child.
    server.handle_line(&job_line("cf-dup", Some("crash-first")), &reply);
    let dup = rx.wait("cf-dup");
    assert_eq!(dup.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(dup.get("report").unwrap().render(), report);
    assert_eq!(sup_counter(&server, "children_spawned"), 2);
    server.drain();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wedged_child_is_deadline_killed_and_the_slot_refills() {
    let dir = temp_dir("wedge");
    let mut cfg = process_cfg(&dir);
    cfg.workers = 1;
    cfg.max_retries = 0;
    cfg.job_timeout = Some(Duration::from_millis(500));
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("stuck", Some("wedge")), &reply);
    let ev = rx.wait("stuck");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(ev.get("code").unwrap().as_str(), Some("timeout"));
    let msg = ev.get("error").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("deadline"), "{msg}");
    assert_eq!(sup_counter(&server, "children_killed_deadline"), 1);
    assert_eq!(
        live_children(&server),
        0,
        "the wedged child is dead, not abandoned"
    );

    // The single worker slot is genuinely free again: a healthy job
    // completes on it.
    server.handle_line(&job_line("after", None), &reply);
    let ok = rx.wait("after");
    assert_eq!(ok.get("event").unwrap().as_str(), Some("result"));
    let sum = server.drain();
    assert_eq!(sum.killed_children, 1);
    assert_eq!(
        sum.abandoned_attempts, 0,
        "process mode abandons no threads"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_bomb_is_rss_killed_with_a_structured_error() {
    let dir = temp_dir("bomb");
    let mut cfg = process_cfg(&dir);
    cfg.workers = 1;
    cfg.max_retries = 0;
    cfg.supervise.rss_cap = Some(64 << 20);
    // Deadline backstop in case RSS polling is unavailable on the host.
    cfg.job_timeout = Some(Duration::from_secs(30));
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    server.handle_line(&job_line("hog", Some("bomb")), &reply);
    let ev = rx.wait("hog");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(ev.get("code").unwrap().as_str(), Some("resource-limit"));
    let msg = ev.get("error").unwrap().as_str().unwrap().to_string();
    assert!(
        msg.contains("resource-limit") && msg.contains("SIGKILL"),
        "{msg}"
    );
    assert_eq!(sup_counter(&server, "children_killed_rss"), 1);
    assert_eq!(live_children(&server), 0);
    let sum = server.drain();
    assert_eq!(sum.killed_children, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn externally_sigkilled_child_is_reported_as_a_crash() {
    let dir = temp_dir("sigkill");
    let mut cfg = process_cfg(&dir);
    cfg.workers = 1;
    cfg.max_retries = 0;
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);
    // A wedged child sticks around long enough to find and kill.
    server.handle_line(&job_line("victim", Some("wedge")), &reply);
    let deadline = Instant::now() + Duration::from_secs(30);
    let pid = loop {
        let h = server.health_json();
        let children = h.get("children").unwrap().as_arr().unwrap();
        if let Some(c) = children.first() {
            break c.get("pid").unwrap().as_u64().unwrap();
        }
        assert!(Instant::now() < deadline, "no child appeared in health");
        std::thread::sleep(Duration::from_millis(20));
    };
    let status = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {pid}"))
        .status()
        .unwrap();
    assert!(status.success(), "kill -9 {pid}");
    let ev = rx.wait("victim");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(ev.get("code").unwrap().as_str(), Some("failed"));
    let msg = ev.get("error").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("crash"), "{msg}");
    assert_eq!(live_children(&server), 0, "the killed child was reaped");
    server.drain();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breaker_opens_quarantines_duplicates_and_reprobes() {
    let dir = temp_dir("breaker");
    let mut cfg = process_cfg(&dir);
    cfg.workers = 1;
    cfg.max_retries = 3;
    cfg.supervise.breaker_k = 2;
    cfg.supervise.breaker_cooldown = Duration::from_millis(300);
    let server = Server::new(cfg).unwrap();
    let (reply, rx) = Reply::pair();
    let mut rx = Terminals::new(rx);

    // Two consecutive child crashes open the breaker mid-retry-ladder:
    // the job stops burning attempts the moment the fingerprint is
    // declared poison.
    server.handle_line(&job_line("poison", Some("crash")), &reply);
    let ev = rx.wait("poison");
    assert_eq!(ev.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(ev.get("code").unwrap().as_str(), Some("failed"));
    let msg = ev.get("error").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("circuit breaker opened"), "{msg}");
    assert_eq!(
        sup_counter(&server, "children_spawned"),
        2,
        "the breaker stopped the ladder after K crashes, not after max_retries"
    );

    // Duplicates are quarantined without a single re-execution.
    server.handle_line(&job_line("poison-dup", Some("crash")), &reply);
    let dup = rx.wait("poison-dup");
    assert_eq!(dup.get("event").unwrap().as_str(), Some("error"));
    assert_eq!(dup.get("code").unwrap().as_str(), Some("quarantined"));
    let msg = dup.get("error").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("circuit breaker open"), "{msg}");
    assert_eq!(
        sup_counter(&server, "children_spawned"),
        2,
        "quarantine spawned nothing"
    );
    assert_eq!(stat(&server, "quarantined"), 1);
    let breakers = server.health_json();
    let breakers = breakers.get("breakers").unwrap().as_arr().unwrap();
    assert_eq!(breakers.len(), 1);
    assert_eq!(breakers[0].get("state").unwrap().as_str(), Some("open"));

    // A healthy, different fingerprint is unaffected by the open breaker.
    server.handle_line(&job_line("healthy", None), &reply);
    let ok = rx.wait("healthy");
    assert_eq!(ok.get("event").unwrap().as_str(), Some("result"));

    // Past the cooldown, one probe runs — and its crash re-opens the
    // breaker immediately (a single failure, not K again).
    std::thread::sleep(Duration::from_millis(350));
    server.handle_line(&job_line("probe", Some("crash")), &reply);
    let probe = rx.wait("probe");
    assert_eq!(probe.get("event").unwrap().as_str(), Some("error"));
    let msg = probe.get("error").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("circuit breaker opened"), "{msg}");
    server.handle_line(&job_line("still-poison", Some("crash")), &reply);
    let again = rx.wait("still-poison");
    assert_eq!(again.get("code").unwrap().as_str(), Some("quarantined"));
    let sum = server.drain();
    assert_eq!(sum.quarantined, 2);
    std::fs::remove_dir_all(&dir).ok();
}
