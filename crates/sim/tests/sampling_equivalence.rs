//! Interval sampling rides on the same determinism contract as the
//! engines themselves: for a fixed seed and plan, a sampled run must
//! produce a bit-identical [`SimReport`] across the full engine ×
//! scheduler-implementation matrix, and a *degenerate* plan (one
//! window covering the whole run, no warmup, no fast-forward) must
//! reproduce the full run's architectural report exactly — sampling
//! machinery engaged, zero approximation.

use crow_mem::SchedImpl;
use crow_sim::sampling::SamplePlan;
use crow_sim::{Engine, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

const MATRIX: [(Engine, SchedImpl); 4] = [
    (Engine::Naive, SchedImpl::Linear),
    (Engine::Naive, SchedImpl::Indexed),
    (Engine::EventDriven, SchedImpl::Linear),
    (Engine::EventDriven, SchedImpl::Indexed),
];

/// Zeroes the fields the equivalence contract excludes: wall-clock
/// measurements and the scheduler work counters.
fn normalize(r: &mut crow_sim::SimReport) {
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
    r.sched = Default::default();
}

fn run_sampled(
    mechanism: Mechanism,
    app: &str,
    plan: SamplePlan,
    insts: u64,
    engine: Engine,
    sched_impl: SchedImpl,
) -> crow_sim::SimReport {
    let profile = AppProfile::by_name(app).unwrap();
    let mut cfg = SystemConfig::quick_test(mechanism);
    cfg.engine = engine;
    cfg.mc.sched_impl = sched_impl;
    cfg.cpu.target_insts = insts;
    cfg.sample = Some(plan);
    let mut sys = System::new(cfg, &[profile]);
    let mut r = sys.run(u64::MAX);
    normalize(&mut r);
    r
}

/// A sampled run (drain → fast-forward → warmup → window intervals)
/// must agree bit-for-bit across all four engine × scheduler cells,
/// including the per-window statistics.
fn assert_sampled_equivalent(mechanism: Mechanism, app: &str) {
    let plan = SamplePlan {
        window_insts: 5_000,
        warmup_insts: 2_500,
        ff_insts: 42_500,
    };
    let reports: Vec<_> = MATRIX
        .iter()
        .map(|&(engine, sched_impl)| run_sampled(mechanism, app, plan, 400_000, engine, sched_impl))
        .collect();
    let samples = reports[0].samples.as_ref().expect("sampling engaged");
    assert!(samples.windows >= 2, "plan must measure several windows");
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "sampled {:?} diverged from {:?} for {mechanism:?} on {app}",
            MATRIX[i],
            MATRIX[0],
        );
    }
}

#[test]
fn sampled_baseline_mcf_matches_across_matrix() {
    assert_sampled_equivalent(Mechanism::Baseline, "mcf");
}

#[test]
fn sampled_crow_cache_random_matches_across_matrix() {
    // The random-access stress keeps every bank churning, so the
    // drain/fast-forward boundaries land mid-burst — the adversarial
    // input for the interval bookkeeping.
    assert_sampled_equivalent(Mechanism::crow_cache(8), "random");
}

#[test]
fn sampled_combined_libq_matches_across_matrix() {
    assert_sampled_equivalent(Mechanism::crow_combined(), "libq");
}

/// Functional fast-forward advances the CROW table without issuing
/// commands, so the controller mirrors the modeled activations into
/// the data-integrity oracle; a sampled run with the oracle attached
/// must stay violation-free (fast-forward-installed copy rows must
/// carry the adopted contents the detailed windows then check).
#[test]
fn sampled_runs_stay_clean_under_the_data_integrity_oracle() {
    for (mechanism, app) in [
        (Mechanism::crow_combined(), "mcf"),
        (Mechanism::crow_cache(8), "random"),
    ] {
        let profile = AppProfile::by_name(app).unwrap();
        let mut cfg = SystemConfig::quick_test(mechanism);
        cfg.cpu.target_insts = 400_000;
        cfg.sample = Some(SamplePlan {
            window_insts: 5_000,
            warmup_insts: 2_500,
            ff_insts: 42_500,
        });
        cfg.oracle = true;
        let mut sys = System::new(cfg, &[profile]);
        let r = sys.run(u64::MAX);
        assert!(
            r.samples.as_ref().is_some_and(|s| s.windows >= 2),
            "{mechanism:?}/{app}: sampling engaged",
        );
        sys.assert_data_integrity();
    }
}

/// A plan whose single window spans the whole run is not an
/// approximation at all: no fast-forward ever happens, so the
/// architectural report must equal the unsampled run's bit-for-bit
/// (only the `samples` block and wall-clock fields differ).
#[test]
fn degenerate_plan_reproduces_the_full_run_exactly() {
    let total = 200_000u64;
    for mechanism in [Mechanism::Baseline, Mechanism::crow_cache(8)] {
        let profile = AppProfile::by_name("mcf").unwrap();
        let run = |sample: Option<SamplePlan>| {
            let mut cfg = SystemConfig::quick_test(mechanism);
            cfg.cpu.target_insts = total;
            cfg.sample = sample;
            let mut sys = System::new(cfg, &[profile]);
            let mut r = sys.run(u64::MAX);
            normalize(&mut r);
            r
        };
        let full = run(None);
        let mut sampled = run(Some(SamplePlan {
            window_insts: total,
            warmup_insts: 0,
            ff_insts: 0,
        }));
        let s = sampled.samples.take().expect("sampling engaged");
        assert_eq!(s.windows, 1, "{mechanism:?}: one window spans the run");
        assert_eq!(s.skipped_insts, 0, "{mechanism:?}: nothing fast-forwarded");
        assert_eq!(
            format!("{full:?}"),
            format!("{sampled:?}"),
            "{mechanism:?}: degenerate plan altered the architectural report",
        );
        let full_ipc: f64 = full.ipc.iter().sum();
        assert!(
            (s.ipc.mean - full_ipc).abs() < 1e-12,
            "{mechanism:?}: window IPC must equal the run IPC exactly",
        );
    }
}
