//! End-to-end RowHammer attack-scenario tests: aggressor traffic flows
//! through the real controller, the flip model watches the issued
//! command stream, and every mitigation (PARA, TRR-like, CROW §4.3)
//! measurably suppresses live corruption relative to the unmitigated
//! run. The scenario must also preserve the engine-equivalence
//! contract: naive and event-driven steppers (× both scheduler
//! implementations) produce bit-identical reports under attack.

use crow_core::{HammerConfig, RetentionProfile};
use crow_mem::SchedImpl;
use crow_sim::{
    AttackPattern, Engine, FlipParams, HammerScenario, Mechanism, SimReport, System, SystemConfig,
};
use crow_workloads::AppProfile;

/// Flip physics compressed for a short run: low threshold, high flip
/// probability, no retention-weak rows (keeps the counts readable).
/// FR-FCFS batches row hits, so the ~16 K injected reads collapse to a
/// few hundred ACTs per aggressor row over a 2 M-cycle run — the
/// threshold must sit well below that regime.
fn quick_flip_params() -> FlipParams {
    FlipParams {
        base_threshold: 128,
        weak_divisor: 4,
        w1: 4,
        w2: 1,
        flip_p_inv: 4,
        profile: RetentionProfile::FixedPerSubarray { n: 0 },
    }
}

/// A high-intensity scenario. The requested rate outruns tRC, so the
/// queue backpressure path (reject → retry) is exercised continuously;
/// the achieved activation rate is the bank's service rate.
fn quick_scenario(pattern: AttackPattern) -> HammerScenario {
    let mut sc = HammerScenario::new(pattern, 4_000_000);
    sc.flip = quick_flip_params();
    sc
}

fn attack_cfg(mechanism: Mechanism, pattern: AttackPattern) -> SystemConfig {
    SystemConfig::quick_test(mechanism).with_hammer(quick_scenario(pattern))
}

fn run_attack(mechanism: Mechanism, pattern: AttackPattern) -> SimReport {
    let profile = AppProfile::by_name("mcf").unwrap();
    let mut sys = System::new(attack_cfg(mechanism, pattern), &[profile]);
    sys.run(2_000_000)
}

#[test]
fn unmitigated_attack_injects_and_flips() {
    let r = run_attack(Mechanism::Baseline, AttackPattern::DoubleSided);
    assert!(r.hammer.injected > 1_000, "injected {}", r.hammer.injected);
    assert!(r.hammer.flips > 0, "no flips: {:?}", r.hammer);
    assert!(r.hammer.flipped_rows > 0);
    assert_eq!(r.hammer.absorbed, 0, "no CROW table to absorb flips");
    assert_eq!(r.hammer.mitigation_refreshes, 0);
}

#[test]
fn every_pattern_hammers() {
    for pattern in [
        AttackPattern::SingleSided,
        AttackPattern::DoubleSided,
        AttackPattern::ManySided(8),
        AttackPattern::HalfDouble,
    ] {
        let r = run_attack(Mechanism::Baseline, pattern);
        assert!(
            r.hammer.injected > 1_000,
            "{pattern:?} injected {}",
            r.hammer.injected
        );
        assert!(r.hammer.flips > 0, "{pattern:?} produced no flips");
    }
}

#[test]
fn mitigations_suppress_live_flips() {
    let base = run_attack(Mechanism::Baseline, AttackPattern::DoubleSided);
    assert!(
        base.hammer.flips > 10,
        "baseline flips {}",
        base.hammer.flips
    );

    // PARA with an aggressive hazard for the short run. A specific
    // victim is refreshed every ~2 × hazard aggressor ACTs (the draw
    // picks one side), so the expected between-refresh disturbance is
    // 2 × 8 × w1 = 64 units, below the lowest jittered threshold (96).
    let para = run_attack(Mechanism::Para { hazard: 8 }, AttackPattern::DoubleSided);
    assert!(
        para.hammer.flips < base.hammer.flips / 2,
        "PARA {} vs baseline {}",
        para.hammer.flips,
        base.hammer.flips
    );
    assert!(para.hammer.mitigation_refreshes > 0);

    // TRR-like sampler. Tables flush (and clear) at every REF, and the
    // achieved rate is only a few ACTs per aggressor row per tREFI, so
    // the short-run threshold must be tiny.
    let trr = run_attack(
        Mechanism::Trr {
            entries: 16,
            threshold: 2,
        },
        AttackPattern::DoubleSided,
    );
    assert!(
        trr.hammer.flips < base.hammer.flips / 2,
        "TRR {} vs baseline {}",
        trr.hammer.flips,
        base.hammer.flips
    );
    assert!(trr.hammer.mitigation_refreshes > 0);

    // CROW §4.3: detector threshold low enough to fire before the flip
    // regime opens (8 ACTs per aggressor ≈ 64 victim units < 96);
    // victims are remapped so further flips land in the abandoned
    // physical rows (absorbed, not corruption).
    let crow = run_attack(
        Mechanism::RowHammer {
            copy_rows: 8,
            hammer: HammerConfig {
                threshold: 8,
                window_cycles: 102_400_000,
            },
        },
        AttackPattern::DoubleSided,
    );
    assert!(crow.hammer.detections > 0, "detector never fired");
    assert!(
        crow.hammer.flips < base.hammer.flips / 2,
        "CROW {} vs baseline {}",
        crow.hammer.flips,
        base.hammer.flips
    );
}

#[test]
fn attack_reports_are_engine_invariant() {
    // The full engine × scheduler matrix must agree bit-for-bit on a
    // run with live flips (only wall-clock and scheduler diagnostics
    // may differ).
    let matrix = [
        (Engine::Naive, SchedImpl::Linear),
        (Engine::Naive, SchedImpl::Indexed),
        (Engine::EventDriven, SchedImpl::Linear),
        (Engine::EventDriven, SchedImpl::Indexed),
    ];
    let profile = AppProfile::by_name("mcf").unwrap();
    let mut reports = Vec::new();
    for (engine, sched_impl) in matrix {
        let mut cfg = attack_cfg(Mechanism::crow_cache(8), AttackPattern::DoubleSided);
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        let mut sys = System::new(cfg, &[profile]);
        let mut r = sys.run(2_000_000);
        r.wall_seconds = 0.0;
        r.sim_cycles_per_sec = 0.0;
        r.sched = Default::default();
        reports.push(r);
    }
    assert!(reports[0].hammer.flips > 0, "want a run with live flips");
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged under attack",
            matrix[i],
        );
    }
}

#[test]
fn attack_run_is_validator_clean() {
    let profile = AppProfile::by_name("mcf").unwrap();
    for mech in [
        Mechanism::Baseline,
        Mechanism::Para { hazard: 64 },
        Mechanism::Trr {
            entries: 16,
            threshold: 32,
        },
        Mechanism::crow_hammer(),
    ] {
        let mut cfg = attack_cfg(mech, AttackPattern::HalfDouble);
        cfg.validate_protocol = true;
        let mut sys = System::new(cfg, &[profile]);
        let r = sys
            .run_checked(2_000_000)
            .unwrap_or_else(|e| panic!("{mech:?}: {e}"));
        assert_eq!(r.violations, 0, "{mech:?} violated the protocol");
        assert!(r.hammer.injected > 0, "{mech:?} injected nothing");
    }
}
