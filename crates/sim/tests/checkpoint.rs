//! Warm-checkpoint contract tests: a restored warmup must be
//! indistinguishable from a cold one (bit-identical report), and a
//! damaged checkpoint must degrade to a cold warmup with a recorded
//! error — never a failed or silently-wrong run.

use std::sync::{Mutex, MutexGuard, PoisonError};

use crow_sim::checkpoint::{checkpoint_path, fingerprint, warm_via_cache};
use crow_sim::{CampaignPolicy, Mechanism, Scale, System, SystemConfig};
use crow_workloads::AppProfile;

/// `CROW_CHECKPOINT_DIR` is process-global, so tests that point it at
/// their own scratch directory serialize on this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn scratch_dir(test: &str) -> (MutexGuard<'static, ()>, std::path::PathBuf) {
    let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let dir = std::env::temp_dir().join(format!("crow-ckpt-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("CROW_CHECKPOINT_DIR", &dir);
    (guard, dir)
}

fn test_cfg() -> SystemConfig {
    SystemConfig::quick_test(Mechanism::crow_cache(8))
}

const WARMUP: u64 = 5_000;

fn run_normalized(sys: &mut System) -> String {
    let mut r = sys.run(2_000_000);
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
    format!("{r:?}")
}

#[test]
fn roundtrip_restore_matches_cold_run_bit_for_bit() {
    let (_guard, dir) = scratch_dir("roundtrip");
    let app = AppProfile::by_name("mcf").unwrap();

    // Pass 1: no checkpoint exists — cold warmup, and the state is
    // published for the next run.
    let mut cold = System::new(test_cfg(), &[app]);
    let out = warm_via_cache(
        &mut cold,
        || System::new(test_cfg(), &[app]),
        &["mcf"],
        WARMUP,
    );
    assert!(!out.restored, "first warmup must be a miss");
    assert!(out.error.is_none(), "a plain miss records no error");
    let fp = fingerprint(&System::new(test_cfg(), &[app]), &["mcf"], WARMUP);
    assert!(
        checkpoint_path(&["mcf"], fp).exists(),
        "miss publishes a checkpoint"
    );
    let cold_report = run_normalized(&mut cold);

    // Pass 2: same warmup fingerprint — restore, then an identical run.
    let mut warm = System::new(test_cfg(), &[app]);
    let out = warm_via_cache(
        &mut warm,
        || System::new(test_cfg(), &[app]),
        &["mcf"],
        WARMUP,
    );
    assert!(out.restored, "second warmup must hit the checkpoint");
    assert!(out.error.is_none());
    assert_eq!(
        cold_report,
        run_normalized(&mut warm),
        "a restored warmup must be bit-identical to a cold one"
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn damaged_checkpoints_fall_back_to_cold_warmup_with_recorded_error() {
    let (_guard, dir) = scratch_dir("damaged");
    let app = AppProfile::by_name("libq").unwrap();
    let names = ["libq"];
    let build = || System::new(test_cfg(), &[app]);

    // Publish a good checkpoint and keep the cold reference report.
    let mut cold = build();
    warm_via_cache(&mut cold, build, &names, WARMUP);
    let cold_report = run_normalized(&mut cold);
    let fp = fingerprint(&build(), &names, WARMUP);
    let path = checkpoint_path(&names, fp);
    let good = std::fs::read_to_string(&path).unwrap();

    // Damage it in three distinct ways; each run must complete with the
    // cold-reference report and a recorded (not raised) CrowError.
    let truncated_words = {
        // Valid JSON, but the word array loses its tail: the decode
        // succeeds and the *restore* is what rejects it, exercising the
        // rebuild path.
        let cut = good.rfind(',').unwrap();
        let mut s = good[..cut].to_string();
        s.push_str("]}\n");
        s
    };
    for (label, text) in [
        ("unparseable", "{not json".to_string()),
        ("truncated file", good[..good.len() / 2].to_string()),
        ("truncated words", truncated_words),
    ] {
        std::fs::write(&path, &text).unwrap();
        let mut sys = build();
        let out = warm_via_cache(&mut sys, build, &names, WARMUP);
        assert!(!out.restored, "{label}: a damaged checkpoint cannot hit");
        match &out.error {
            Some(crow_sim::CrowError::Checkpoint { path: p, .. }) => {
                assert!(
                    p.contains("crow-ckpt"),
                    "{label}: error names the file: {p}"
                )
            }
            other => panic!("{label}: expected a recorded Checkpoint error, got {other:?}"),
        }
        assert_eq!(
            cold_report,
            run_normalized(&mut sys),
            "{label}: the fallback cold warmup must produce the reference report"
        );
        // The fallback re-publishes a usable checkpoint.
        let mut again = build();
        let out = warm_via_cache(&mut again, build, &names, WARMUP);
        assert!(
            out.restored,
            "{label}: the cold fallback must republish a working checkpoint"
        );
    }

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn degrade_ladder_retries_use_distinct_fingerprints() {
    // The campaign degrade ladder halves the warmup on retry; the
    // halved attempt must key a *different* checkpoint, never restore
    // the stale full-warmup snapshot.
    let scale = Scale {
        warmup: 8_000,
        ..Scale::tiny()
    };
    let policy = CampaignPolicy::new(scale);
    let app = AppProfile::by_name("mcf").unwrap();
    let sys = System::new(test_cfg(), &[app]);
    let full = policy.scale_for_attempt(0);
    let retry = policy.scale_for_attempt(1);
    assert_eq!(retry.warmup, full.warmup / 2, "the ladder halves warmup");
    let fp_full = fingerprint(&sys, &["mcf"], full.warmup);
    let fp_retry = fingerprint(&sys, &["mcf"], retry.warmup);
    assert_ne!(
        fp_full, fp_retry,
        "a degraded retry must never restore the full-warmup checkpoint"
    );
    assert_ne!(
        checkpoint_path(&["mcf"], fp_full),
        checkpoint_path(&["mcf"], fp_retry),
        "distinct fingerprints map to distinct files"
    );
}

#[test]
fn fingerprint_ignores_mechanism_and_threads_but_not_seed() {
    // Mechanism (at equal capacity), scheduler, engine, and thread
    // count don't touch functional warmup state — configs differing
    // only there share one checkpoint. The seed and warmup length do.
    let app = AppProfile::by_name("mcf").unwrap();
    let base = fingerprint(&System::new(test_cfg(), &[app]), &["mcf"], WARMUP);

    let mut threaded = test_cfg();
    threaded.threads = 4;
    threaded.engine = crow_sim::Engine::Naive;
    assert_eq!(
        base,
        fingerprint(&System::new(threaded, &[app]), &["mcf"], WARMUP),
        "engine/threads must not split the checkpoint space"
    );

    let mut reseeded = test_cfg();
    reseeded.seed ^= 1;
    assert_ne!(
        base,
        fingerprint(&System::new(reseeded, &[app]), &["mcf"], WARMUP),
        "the seed drives trace and page-table contents"
    );
    assert_ne!(
        base,
        fingerprint(&System::new(test_cfg(), &[app]), &["mcf"], WARMUP - 1),
        "the warmup length is part of the key"
    );
}
