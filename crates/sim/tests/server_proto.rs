//! Hostile-input coverage for the simulation-service wire protocol:
//! every malformed request line must produce a structured error event —
//! never a panic, never a silent default, never a wedged server — and
//! the server must keep serving afterwards.

use std::collections::VecDeque;
use std::io::Read;
use std::time::Duration;

use crow_sim::server::{parse_request, LineRead, LineReader, Reply, ServeConfig, Server};
use crow_sim::Json;

/// A request template that passes every syntactic check but names an
/// application that does not exist, so a mutation that survives parsing
/// is still rejected by validation instead of launching a simulation.
const TEMPLATE: &str = "{\"op\":\"sim\",\"id\":\"fuzz\",\"apps\":[\"no-such-app\"],\
     \"mechanism\":\"crow-8\",\"insts\":50000,\"warmup\":1000,\"seed\":7,\
     \"density\":16,\"llc_mib\":4,\"channels\":2,\"prefetch\":true}";

/// A tiny deterministic PRNG (xorshift64*), so the fuzz corpus is
/// reproducible without pulling in a dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn admission_only_server() -> Server {
    let mut cfg = ServeConfig::new(None);
    cfg.workers = 0; // validation-path test: nothing must reach a worker
    cfg.heartbeat = None;
    Server::new(cfg).expect("server boots")
}

/// Every corpus line gets exactly one immediate event back (an error,
/// or an accept if the mutation happened to stay valid), and the server
/// still answers a ping afterwards.
fn assert_served(corpus: &[String]) {
    let server = admission_only_server();
    let (reply, rx) = Reply::pair();
    for line in corpus {
        server.handle_line(line, &reply);
        let ev = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("no response to {line:?}"));
        let doc = Json::parse(&ev).expect("every event is valid JSON");
        let kind = doc.get("event").and_then(Json::as_str).expect("event kind");
        assert!(
            kind == "error" || kind == "accepted",
            "{line:?} produced unexpected event {kind:?}"
        );
        if kind == "error" {
            assert!(
                doc.get("code").and_then(Json::as_str).is_some(),
                "error events carry a code: {ev}"
            );
            assert!(
                doc.get("error").and_then(Json::as_str).is_some(),
                "error events carry a message: {ev}"
            );
        }
    }
    server.handle_line("{\"op\":\"ping\"}", &reply);
    let pong = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("still alive");
    assert_eq!(
        Json::parse(&pong).unwrap().get("event").unwrap().as_str(),
        Some("pong"),
        "server keeps serving after hostile input"
    );
    server.drain();
}

#[test]
fn truncations_every_prefix_is_answered() {
    let corpus: Vec<String> = (0..TEMPLATE.len())
        .map(|n| TEMPLATE[..n].to_string())
        .collect();
    assert_served(&corpus);
    // Pure parse check as well: no prefix but the (invalid-app) full
    // line parses into a request.
    for line in &corpus {
        if !line.is_empty() {
            assert!(parse_request(line).is_err(), "{line:?} must not parse");
        }
    }
}

#[test]
fn byte_mutations_are_answered() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    let bytes = TEMPLATE.as_bytes();
    let replacements: &[u8] = b"\x00\x01{}[]\",:x9\\\x7f\xff";
    let mut corpus = Vec::new();
    for _ in 0..600 {
        let mut m = bytes.to_vec();
        for _ in 0..=rng.below(3) {
            let pos = rng.below(m.len());
            match rng.below(3) {
                0 => m[pos] = replacements[rng.below(replacements.len())],
                1 => {
                    m.remove(pos);
                }
                _ => m.insert(pos, replacements[rng.below(replacements.len())]),
            }
        }
        corpus.push(String::from_utf8_lossy(&m).into_owned());
    }
    assert_served(&corpus);
}

#[test]
fn structured_hostility_is_answered() {
    let huge_number = format!(
        "{{\"op\":\"sim\",\"id\":\"h\",\"apps\":[\"no-such-app\"],\"insts\":{}}}",
        "9".repeat(400)
    );
    let deep_nest = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    let many_keys = {
        let mut s = String::from("{\"op\":\"sim\",\"id\":\"k\"");
        for i in 0..200 {
            s.push_str(&format!(",\"k{i}\":{i}"));
        }
        s.push('}');
        s
    };
    let corpus = vec![
        // Duplicate keys, in every position.
        "{\"op\":\"ping\",\"op\":\"ping\"}".into(),
        "{\"op\":\"sim\",\"id\":\"a\",\"id\":\"b\",\"apps\":[\"no-such-app\"]}".into(),
        "{\"op\":\"sim\",\"id\":\"a\",\"apps\":[],\"apps\":[\"mcf\"]}".into(),
        // Unknown keys.
        "{\"op\":\"sim\",\"id\":\"a\",\"apps\":[\"no-such-app\"],\"frequency\":9}".into(),
        "{\"op\":\"shutdown-now\"}".into(),
        // Huge and degenerate numbers.
        huge_number,
        "{\"op\":\"sim\",\"id\":\"h\",\"apps\":[\"no-such-app\"],\"insts\":1e308}".into(),
        "{\"op\":\"sim\",\"id\":\"h\",\"apps\":[\"no-such-app\"],\"seed\":-1}".into(),
        "{\"op\":\"sim\",\"id\":\"h\",\"apps\":[\"no-such-app\"],\"channels\":4294967296}".into(),
        // Wrong shapes.
        "null".into(),
        "true".into(),
        "42".into(),
        "\"a string\"".into(),
        "[{\"op\":\"ping\"}]".into(),
        deep_nest,
        many_keys,
        // Interleaved garbage.
        "\x00\x01\x02\x03".into(),
        "}{".into(),
        "{\"op\":\"ping\"}{\"op\":\"ping\"}".into(),
        "\u{FEFF}{\"op\":\"ping\"}".into(),
    ];
    assert_served(&corpus);
}

/// Chunked scripted reader for exercising `LineReader` against torn and
/// interleaved delivery.
struct Script(VecDeque<Vec<u8>>);

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.0.pop_front() {
            None => Ok(0),
            Some(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
        }
    }
}

#[test]
fn torn_delivery_reassembles_into_the_same_corpus() {
    // A pipeline of requests torn at random byte boundaries must come
    // out of the LineReader exactly as it went in.
    let lines = [
        "{\"op\":\"ping\"}",
        "garbage",
        TEMPLATE,
        "{\"op\":\"stats\"}",
    ];
    let wire: Vec<u8> = lines
        .iter()
        .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
        .collect();
    let mut rng = Rng(0xfeed_beef_0000_0002);
    for _ in 0..50 {
        let mut chunks = VecDeque::new();
        let mut at = 0;
        while at < wire.len() {
            let take = 1 + rng.below(7.min(wire.len() - at));
            chunks.push_back(wire[at..at + take].to_vec());
            at += take;
        }
        let mut r = Script(chunks);
        let mut lr = LineReader::new(4096, Duration::from_secs(5));
        let mut got = Vec::new();
        loop {
            match lr.poll(&mut r).expect("scripted reads never fail") {
                LineRead::Line(l) => got.push(l),
                LineRead::Eof => break,
                LineRead::Idle => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, lines, "reassembly must be exact");
    }
}

#[test]
fn oversized_lines_reject_without_buffering() {
    // A 10 MiB line against a 4 KiB cap: the reader must report
    // TooLong without ever holding more than ~cap+chunk bytes, and the
    // next request on the same connection must still work.
    let mut wire = vec![b'x'; 10 << 20];
    wire.push(b'\n');
    wire.extend_from_slice(b"{\"op\":\"ping\"}\n");
    let chunks: VecDeque<Vec<u8>> = wire.chunks(4096).map(<[u8]>::to_vec).collect();
    let mut r = Script(chunks);
    let mut lr = LineReader::new(4096, Duration::from_secs(5));
    let mut events = Vec::new();
    loop {
        match lr.poll(&mut r).expect("scripted reads never fail") {
            LineRead::Eof => break,
            LineRead::Idle => {}
            ev => events.push(ev),
        }
    }
    assert_eq!(
        events,
        vec![
            LineRead::TooLong,
            LineRead::Line("{\"op\":\"ping\"}".into())
        ],
        "one rejection, then the connection keeps working"
    );
}
