//! The event-driven engine must be an *exact* optimization: for any
//! workload and mechanism, it produces a bit-identical [`SimReport`] to
//! the naive cycle-by-cycle stepper — only wall-clock fields (and the
//! scheduler diagnostics, which count implementation work rather than
//! architectural events) may differ.
//!
//! The same contract covers the indexed scheduler: every test runs the
//! full engine × scheduler-implementation matrix, so four configurations
//! must agree bit-for-bit, not two.

use crow_mem::SchedImpl;
use crow_sim::{Engine, FaultPlan, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

/// The engine × scheduler-implementation matrix every equivalence test
/// sweeps. The first entry is the reference everything else is
/// compared against.
const MATRIX: [(Engine, SchedImpl); 4] = [
    (Engine::Naive, SchedImpl::Linear),
    (Engine::Naive, SchedImpl::Indexed),
    (Engine::EventDriven, SchedImpl::Linear),
    (Engine::EventDriven, SchedImpl::Indexed),
];

/// Zeroes the fields excluded from the equivalence contract: wall-clock
/// measurements and the scheduler work counters (the whole point of the
/// indexed path is that those differ).
fn normalize(r: &mut crow_sim::SimReport) {
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
    r.sched = Default::default();
}

/// Runs one configuration under the full matrix and compares the
/// reports (normalized) against the naive/linear reference.
fn assert_equivalent(mechanism: Mechanism, app: &str, vrt: Option<u64>) {
    let profile = AppProfile::by_name(app).unwrap();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(mechanism);
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.vrt_interval_cycles = vrt;
        let mut sys = System::new(cfg, &[profile]);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged from {:?} for {mechanism:?} on {app}",
            MATRIX[i],
            MATRIX[0],
        );
    }
}

/// Zeroes only the wall-clock fields. Serial×parallel comparisons at a
/// *fixed* engine use this instead of [`normalize`]: the sharded engine
/// replays the exact per-channel skip/tick schedule, so even the
/// scheduler work counters must match bit-for-bit.
fn normalize_wall(r: &mut crow_sim::SimReport) {
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
}

/// Runs one configuration on a 4-channel platform under the full
/// engine × scheduler matrix, comparing each cell's 2/4/8-thread
/// sharded run against its own serial run — including the scheduler
/// diagnostics.
fn assert_parallel_equivalent(mechanism: Mechanism, apps: &[&str], vrt: Option<u64>) {
    let profiles: Vec<&AppProfile> = apps
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect();
    for (engine, sched_impl) in MATRIX {
        let mut run = |threads: u32| {
            let mut cfg = SystemConfig::quick_test(mechanism);
            cfg.channels = 4;
            cfg.engine = engine;
            cfg.mc.sched_impl = sched_impl;
            cfg.vrt_interval_cycles = vrt;
            cfg.threads = threads;
            let mut sys = System::new(cfg, &profiles);
            let mut r = sys.run(2_000_000);
            normalize_wall(&mut r);
            format!("{r:?}")
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                serial,
                run(threads),
                "{engine:?}/{sched_impl:?} with {threads} threads diverged from serial for {mechanism:?} on {apps:?}",
            );
        }
    }
}

#[test]
fn baseline_mcf_matches() {
    assert_equivalent(Mechanism::Baseline, "mcf", None);
}

#[test]
fn baseline_low_mpki_matches() {
    assert_equivalent(Mechanism::Baseline, "povray", None);
}

#[test]
fn crow_cache_mcf_matches() {
    assert_equivalent(Mechanism::crow_cache(8), "mcf", None);
}

#[test]
fn crow_cache_low_mpki_matches() {
    assert_equivalent(Mechanism::crow_cache(8), "povray", None);
}

#[test]
fn crow_combined_with_vrt_matches() {
    // VRT injections are scheduled by CPU-cycle count, so the skipper
    // must stop exactly at each injection boundary.
    assert_equivalent(Mechanism::crow_combined(), "libq", Some(100_000));
}

#[test]
fn fault_plan_under_both_engines_matches() {
    // Fault injections (VRT remaps, hammer bursts, bus drops) are
    // scheduled on CPU-cycle boundaries with a dedicated RNG, so all
    // four configurations must apply the exact same schedule —
    // including the validator's violation count and every fault
    // counter — and produce bit-identical reports.
    let profile = AppProfile::by_name("mcf").unwrap();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.validate_protocol = true;
        cfg.fault_plan = Some(FaultPlan::stress(0xFA17));
        let mut sys = System::new(cfg, &[profile]);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged under an active fault plan",
            MATRIX[i],
        );
    }
    assert!(
        reports[0].faults.total_injected() > 0,
        "the stress plan must actually inject: {:?}",
        reports[0].faults
    );
    assert!(reports[0].mc.bus_drops > 0, "drops must cost real slots");
    assert_eq!(reports[0].violations, 0, "faults must not break protocol");
}

#[test]
fn crow8_validated_run_is_violation_free_on_both_engines() {
    // Acceptance: a full CROW-8 run with the shadow validator attached
    // reports zero protocol violations on every engine × scheduler
    // combination.
    let profile = AppProfile::by_name("mcf").unwrap();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.validate_protocol = true;
        let mut sys = System::new(cfg, &[profile]);
        let r = sys
            .run_checked(30_000_000)
            .unwrap_or_else(|e| panic!("{engine:?}/{sched_impl:?}: {e}"));
        assert!(r.finished, "{engine:?}/{sched_impl:?} did not finish");
        assert_eq!(r.violations, 0);
        let observed: u64 = sys
            .controllers()
            .iter()
            .map(|mc| mc.channel().validator().expect("attached").observed())
            .sum();
        assert!(
            observed > 0,
            "{engine:?}/{sched_impl:?}: validator saw no commands"
        );
    }
}

#[test]
fn parallel_baseline_mcf_matches() {
    assert_parallel_equivalent(Mechanism::Baseline, &["mcf"], None);
}

#[test]
fn parallel_crow_cache_multicore_mix_matches() {
    assert_parallel_equivalent(
        Mechanism::crow_cache(8),
        &["mcf", "povray", "libq", "gcc"],
        None,
    );
}

#[test]
fn parallel_with_vrt_matches() {
    // VRT injections land on CPU-cycle boundaries, so the window
    // builder must close every shard window exactly at each boundary.
    assert_parallel_equivalent(Mechanism::crow_combined(), &["libq"], Some(100_000));
}

#[test]
fn parallel_random_driver_lockstep_fuzz() {
    // The `random` microbenchmark is the adversarial input for the
    // sharding protocol: uniformly random lines keep every channel's
    // queues churning, so the conservative occupancy model and the
    // completion pre-extraction are both exercised hard. Run it with
    // the shadow validator attached at 1/2/4/8 threads across several
    // seeds and demand bit-identical checked reports and a clean
    // oracle everywhere.
    let profile = AppProfile::by_name("random").unwrap();
    for seed in [0xC401u64, 0xC402, 0xC403] {
        let mut run = |threads: u32| {
            let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
            cfg.channels = 4;
            cfg.seed = seed;
            cfg.validate_protocol = true;
            cfg.threads = threads;
            let mut sys = System::new(cfg, &[profile, profile]);
            let mut r = sys
                .run_checked(2_000_000)
                .unwrap_or_else(|e| panic!("seed {seed:#x} threads {threads}: {e}"));
            assert_eq!(r.violations, 0, "seed {seed:#x} threads {threads}");
            normalize_wall(&mut r);
            format!("{r:?}")
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                serial,
                run(threads),
                "random-driver fuzz diverged at seed {seed:#x}, {threads} threads",
            );
        }
    }
}

#[test]
fn multicore_mix_matches() {
    let apps: Vec<&AppProfile> = ["mcf", "povray", "libq", "gcc"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        let mut sys = System::new(cfg, &apps);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged in the multicore mix",
            MATRIX[i],
        );
    }
}
