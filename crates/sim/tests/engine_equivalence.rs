//! The event-driven engine must be an *exact* optimization: for any
//! workload and mechanism, it produces a bit-identical [`SimReport`] to
//! the naive cycle-by-cycle stepper — only wall-clock fields (and the
//! scheduler diagnostics, which count implementation work rather than
//! architectural events) may differ.
//!
//! The same contract covers the indexed scheduler: every test runs the
//! full engine × scheduler-implementation matrix, so four configurations
//! must agree bit-for-bit, not two.

use crow_mem::SchedImpl;
use crow_sim::{Engine, FaultPlan, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

/// The engine × scheduler-implementation matrix every equivalence test
/// sweeps. The first entry is the reference everything else is
/// compared against.
const MATRIX: [(Engine, SchedImpl); 4] = [
    (Engine::Naive, SchedImpl::Linear),
    (Engine::Naive, SchedImpl::Indexed),
    (Engine::EventDriven, SchedImpl::Linear),
    (Engine::EventDriven, SchedImpl::Indexed),
];

/// Zeroes the fields excluded from the equivalence contract: wall-clock
/// measurements and the scheduler work counters (the whole point of the
/// indexed path is that those differ).
fn normalize(r: &mut crow_sim::SimReport) {
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
    r.sched = Default::default();
}

/// Runs one configuration under the full matrix and compares the
/// reports (normalized) against the naive/linear reference.
fn assert_equivalent(mechanism: Mechanism, app: &str, vrt: Option<u64>) {
    let profile = AppProfile::by_name(app).unwrap();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(mechanism);
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.vrt_interval_cycles = vrt;
        let mut sys = System::new(cfg, &[profile]);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged from {:?} for {mechanism:?} on {app}",
            MATRIX[i],
            MATRIX[0],
        );
    }
}

#[test]
fn baseline_mcf_matches() {
    assert_equivalent(Mechanism::Baseline, "mcf", None);
}

#[test]
fn baseline_low_mpki_matches() {
    assert_equivalent(Mechanism::Baseline, "povray", None);
}

#[test]
fn crow_cache_mcf_matches() {
    assert_equivalent(Mechanism::crow_cache(8), "mcf", None);
}

#[test]
fn crow_cache_low_mpki_matches() {
    assert_equivalent(Mechanism::crow_cache(8), "povray", None);
}

#[test]
fn crow_combined_with_vrt_matches() {
    // VRT injections are scheduled by CPU-cycle count, so the skipper
    // must stop exactly at each injection boundary.
    assert_equivalent(Mechanism::crow_combined(), "libq", Some(100_000));
}

#[test]
fn fault_plan_under_both_engines_matches() {
    // Fault injections (VRT remaps, hammer bursts, bus drops) are
    // scheduled on CPU-cycle boundaries with a dedicated RNG, so all
    // four configurations must apply the exact same schedule —
    // including the validator's violation count and every fault
    // counter — and produce bit-identical reports.
    let profile = AppProfile::by_name("mcf").unwrap();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.validate_protocol = true;
        cfg.fault_plan = Some(FaultPlan::stress(0xFA17));
        let mut sys = System::new(cfg, &[profile]);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged under an active fault plan",
            MATRIX[i],
        );
    }
    assert!(
        reports[0].faults.total_injected() > 0,
        "the stress plan must actually inject: {:?}",
        reports[0].faults
    );
    assert!(reports[0].mc.bus_drops > 0, "drops must cost real slots");
    assert_eq!(reports[0].violations, 0, "faults must not break protocol");
}

#[test]
fn crow8_validated_run_is_violation_free_on_both_engines() {
    // Acceptance: a full CROW-8 run with the shadow validator attached
    // reports zero protocol violations on every engine × scheduler
    // combination.
    let profile = AppProfile::by_name("mcf").unwrap();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        cfg.validate_protocol = true;
        let mut sys = System::new(cfg, &[profile]);
        let r = sys
            .run_checked(30_000_000)
            .unwrap_or_else(|e| panic!("{engine:?}/{sched_impl:?}: {e}"));
        assert!(r.finished, "{engine:?}/{sched_impl:?} did not finish");
        assert_eq!(r.violations, 0);
        let observed: u64 = sys
            .controllers()
            .iter()
            .map(|mc| mc.channel().validator().expect("attached").observed())
            .sum();
        assert!(
            observed > 0,
            "{engine:?}/{sched_impl:?}: validator saw no commands"
        );
    }
}

#[test]
fn multicore_mix_matches() {
    let apps: Vec<&AppProfile> = ["mcf", "povray", "libq", "gcc"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect();
    let mut reports = Vec::new();
    for (engine, sched_impl) in MATRIX {
        let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
        cfg.engine = engine;
        cfg.mc.sched_impl = sched_impl;
        let mut sys = System::new(cfg, &apps);
        let mut r = sys.run(2_000_000);
        normalize(&mut r);
        reports.push(r);
    }
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{r:?}"),
            "{:?} diverged in the multicore mix",
            MATRIX[i],
        );
    }
}
