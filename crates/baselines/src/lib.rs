//! # crow-baselines
//!
//! The two in-DRAM caching baselines the CROW paper compares against in
//! §8.1.4 (Fig. 11), built on the same device/controller substrate:
//!
//! * **TL-DRAM** (Tiered-Latency DRAM, Lee et al. HPCA 2013 \[58\]):
//!   isolation transistors split each subarray into a fast *near*
//!   segment and a slightly slower *far* segment. We model the near
//!   segment with the device's copy rows (same MRU caching management),
//!   activating hits as single near rows with the near-segment timings
//!   from the `crow-circuit` isolation-transistor model.
//! * **SALP-MASA** (Subarray-Level Parallelism, Kim et al. ISCA 2012
//!   \[53\]): every subarray keeps its local row buffer live, so each
//!   subarray acts as a one-row cache. Modeled with the device's
//!   subarray-parallelism mode; the energy cost of multiple live row
//!   buffers comes out of the `IDD3N` background uplift in
//!   `crow-energy`.
//!
//! This crate holds the configuration builders plus the area/energy
//! comparison metadata that Fig. 11's harness combines with simulation
//! results.

use crow_circuit::{DecoderAreaModel, SalpAreaModel, TlDramModel};
use crow_core::{CrowConfig, CrowSubstrate};
use crow_dram::{ActTimingMod, DramConfig};
use crow_mem::controller::CacheMode;
use crow_mem::{McConfig, MemController};

/// A TL-DRAM organization with `near_rows` near-segment rows per
/// subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlDramConfig {
    /// Near-segment rows per subarray.
    pub near_rows: u8,
}

impl TlDramConfig {
    /// The TL-DRAM-1 and TL-DRAM-8 points evaluated in Fig. 11.
    pub const PAPER_POINTS: [TlDramConfig; 2] =
        [TlDramConfig { near_rows: 1 }, TlDramConfig { near_rows: 8 }];

    /// Display label (`TL-DRAM-8`).
    pub fn label(&self) -> String {
        format!("TL-DRAM-{}", self.near_rows)
    }

    /// Near-segment activation timing modifier.
    pub fn near_mod(&self) -> ActTimingMod {
        let m = TlDramModel::calibrated();
        let trcd = m.near_trcd_ratio(u32::from(self.near_rows));
        let tras = m.near_tras_ratio(u32::from(self.near_rows));
        ActTimingMod {
            trcd,
            tras_full: tras,
            tras_early: tras,
            twr_full: tras.max(0.2),
            twr_early: tras.max(0.2),
        }
    }

    /// Far-segment activation timing modifier (slight penalty).
    pub fn far_mod(&self) -> ActTimingMod {
        let f = TlDramModel::calibrated().far_ratio();
        ActTimingMod {
            trcd: f,
            tras_full: f,
            tras_early: f,
            twr_full: f,
            twr_early: f,
        }
    }

    /// DRAM chip area overhead of this organization (paper: 6.9% for
    /// TL-DRAM-8 vs 0.48% for CROW-8).
    pub fn chip_area_overhead(&self) -> f64 {
        TlDramModel::calibrated().chip_area_overhead(u32::from(self.near_rows))
    }

    /// Builds the device configuration: the near segment is represented
    /// by copy rows.
    pub fn dram_config(&self, mut base: DramConfig) -> DramConfig {
        base.copy_rows_per_subarray = self.near_rows;
        base
    }

    /// Builds a controller in TL-DRAM mode over `base` (the CROW-table
    /// machinery manages the near segment as an MRU cache, as the paper
    /// does by reusing `ACT-c` for the far→near copy).
    pub fn controller(&self, mc: McConfig, base: DramConfig) -> MemController {
        let dram = self.dram_config(base);
        let crow_cfg = CrowConfig {
            banks: dram.banks * dram.ranks,
            subarrays_per_bank: dram.subarrays_per_bank(),
            rows_per_subarray: dram.rows_per_subarray,
            copy_rows: dram.copy_rows_per_subarray,
            share_factor: 1,
            cache: true,
            hammer: None,
            ideal: false,
        };
        let mut ctl = MemController::new(mc, dram, Some(CrowSubstrate::new(crow_cfg)));
        ctl.set_cache_mode(CacheMode::TlDram {
            near: self.near_mod(),
            far: self.far_mod(),
        });
        ctl
    }
}

/// A SALP-MASA organization with `subarrays` subarrays per bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalpConfig {
    /// Subarrays per bank (the baseline structure has 128).
    pub subarrays: u32,
    /// Open-page row policy (`SALP-N-O`).
    pub open_page: bool,
}

impl SalpConfig {
    /// The SALP points of Fig. 11 (64–256 subarrays, both policies).
    pub fn paper_points() -> Vec<SalpConfig> {
        let mut v = Vec::new();
        for &subarrays in &[128u32, 256] {
            for &open_page in &[false, true] {
                v.push(SalpConfig {
                    subarrays,
                    open_page,
                });
            }
        }
        v
    }

    /// Display label (`SALP-128-O`).
    pub fn label(&self) -> String {
        format!(
            "SALP-{}{}",
            self.subarrays,
            if self.open_page { "-O" } else { "" }
        )
    }

    /// Chip-area overhead (sense-amplifier duplication, §8.1.4).
    pub fn chip_area_overhead(&self) -> f64 {
        SalpAreaModel::calibrated().chip_area_overhead(self.subarrays)
    }

    /// Builds the device configuration: subarray-parallel mode with the
    /// requested subarray count.
    ///
    /// # Panics
    ///
    /// Panics if the subarray count does not divide the rows per bank.
    pub fn dram_config(&self, mut base: DramConfig) -> DramConfig {
        assert_eq!(
            base.rows_per_bank % self.subarrays,
            0,
            "subarrays must divide rows_per_bank"
        );
        base.subarray_parallelism = true;
        base.copy_rows_per_subarray = 0;
        base.rows_per_subarray = base.rows_per_bank / self.subarrays;
        base
    }

    /// Builds a SALP controller.
    pub fn controller(&self, mut mc: McConfig, base: DramConfig) -> MemController {
        if self.open_page {
            mc = mc.with_open_page();
        }
        MemController::new(mc, self.dram_config(base), None)
    }
}

/// One Fig. 11 comparison row: mechanism label, chip-area overhead, and
/// the CROW-table-equivalent controller storage (0 for SALP).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaComparison {
    /// Mechanism label.
    pub label: String,
    /// DRAM chip area overhead (fraction).
    pub chip_area: f64,
}

/// The static area comparison of Fig. 11b (CROW vs TL-DRAM vs SALP).
pub fn fig11_area_rows() -> Vec<AreaComparison> {
    let decoder = DecoderAreaModel::calibrated();
    let mut rows = vec![
        AreaComparison {
            label: "CROW-1".into(),
            chip_area: decoder.chip_overhead(1),
        },
        AreaComparison {
            label: "CROW-8".into(),
            chip_area: decoder.chip_overhead(8),
        },
    ];
    for t in TlDramConfig::PAPER_POINTS {
        rows.push(AreaComparison {
            label: t.label(),
            chip_area: t.chip_area_overhead(),
        });
    }
    for s in SalpConfig::paper_points() {
        if !s.open_page {
            rows.push(AreaComparison {
                label: s.label(),
                chip_area: s.chip_area_overhead(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crow_dram::DramConfig;
    use crow_mem::{MemRequest, ReqKind};

    #[test]
    fn tldram_near_is_much_faster_than_far() {
        let t = TlDramConfig { near_rows: 8 };
        let near = t.near_mod();
        let far = t.far_mod();
        assert!(near.trcd < 0.3);
        assert!(near.tras_full < 0.25);
        assert!(far.trcd > 1.0 && far.trcd < 1.1);
    }

    #[test]
    fn area_ordering_matches_paper() {
        // Paper: CROW-8 (0.48%) << TL-DRAM-8 (6.9%) << SALP-256 (28.9%).
        let rows = fig11_area_rows();
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .chip_area
        };
        assert!((get("CROW-8") - 0.0048).abs() < 1e-6);
        assert!((get("TL-DRAM-8") - 0.069).abs() < 0.002);
        assert!((get("SALP-256") - 0.289).abs() < 0.01);
        assert!(get("CROW-8") < get("TL-DRAM-8"));
        assert!(get("TL-DRAM-8") < get("SALP-256"));
    }

    #[test]
    fn tldram_controller_serves_requests() {
        let t = TlDramConfig { near_rows: 2 };
        let mut mc = t.controller(McConfig::paper_default(), DramConfig::tiny_test());
        let mut out = Vec::new();
        let mut now = 0u64;
        // Serialize: row 5 installs, row 7 forces it closed, row 5 again
        // must re-activate — as a near-segment hit.
        for (i, row) in [5u32, 7, 5, 7].iter().enumerate() {
            mc.try_enqueue(MemRequest::new(i as u64, ReqKind::Read, 0, 0, *row, 0, 0))
                .unwrap();
            let target = i + 1;
            while out.len() < target && now < 100_000 {
                mc.tick(now, &mut out);
                now += 1;
            }
        }
        assert_eq!(out.len(), 4);
        // Hits to row 5 after install activate the near row alone (ACT).
        let ch = mc.channel().stats();
        assert!(ch.issued(crow_dram::Command::ActC) >= 1, "install copies");
        assert!(ch.issued(crow_dram::Command::Act) >= 1, "near-row hits");
        assert_eq!(
            ch.issued(crow_dram::Command::ActT),
            0,
            "no ACT-t in TL mode"
        );
    }

    #[test]
    fn salp_controller_overlaps_subarrays() {
        let s = SalpConfig {
            subarrays: 8,
            open_page: true,
        };
        let mut mc = s.controller(McConfig::paper_default(), DramConfig::tiny_test());
        let mut out = Vec::new();
        // Rows in different subarrays of bank 0 (512/8 = 64 rows each).
        mc.try_enqueue(MemRequest::new(1, ReqKind::Read, 0, 0, 5, 0, 0))
            .unwrap();
        mc.try_enqueue(MemRequest::new(2, ReqKind::Read, 0, 0, 300, 0, 0))
            .unwrap();
        for now in 0..3000 {
            mc.tick(now, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(mc.stats().row_conflicts, 0, "no conflicts across subarrays");
    }

    #[test]
    fn salp_rejects_bad_geometry() {
        let s = SalpConfig {
            subarrays: 7,
            open_page: false,
        };
        let result = std::panic::catch_unwind(|| s.dram_config(DramConfig::tiny_test()));
        assert!(result.is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(TlDramConfig { near_rows: 8 }.label(), "TL-DRAM-8");
        assert_eq!(
            SalpConfig {
                subarrays: 128,
                open_page: true
            }
            .label(),
            "SALP-128-O"
        );
    }
}
