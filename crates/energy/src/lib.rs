//! # crow-energy
//!
//! DRAM energy accounting in the style of DRAMPower \[5\], which the CROW
//! paper uses to estimate DRAM energy. Energy is decomposed the standard
//! way (Micron TN-41-01 / DRAMPower methodology):
//!
//! * a **background** component drawn every cycle, whose level depends on
//!   how many row buffers are open (`IDD2N` precharge standby vs `IDD3N`
//!   active standby — the paper notes an idle LPDDR4 chip with one open
//!   bank draws 10.9% more current than with all banks closed, which is
//!   what makes the SALP baseline energy-hungry in §8.1.4);
//! * **incremental event energies** for `ACT`/`PRE` pairs, `RD`/`WR`
//!   bursts, and `REF` (which scales with chip density through `tRFC`).
//!
//! The CROW multiple-row-activation commands (`ACT-c`, `ACT-t`) consume
//! 5.8% more activation energy than a plain `ACT` (paper §6.2), supplied
//! by the `crow-circuit` power model through
//! [`EnergySpec::mra_act_factor`].
//!
//! ## Example
//!
//! ```
//! use crow_energy::{EnergyCounter, EnergyModel, EnergySpec};
//! use crow_dram::{Command, Timings};
//!
//! let model = EnergyModel::new(EnergySpec::lpddr4(), Timings::default());
//! let mut counter = EnergyCounter::new();
//! counter.on_command(&model, Command::Act);
//! counter.on_command(&model, Command::Rd);
//! counter.add_background(&model, 1000, 400);
//! assert!(counter.total_nj() > 0.0);
//! ```

use crow_dram::{Command, Timings};

/// LPDDR4 current/voltage specification (per-chip, milliamps and volts).
///
/// Values follow a Micron 8 Gb LPDDR4-3200 x16 datasheet \[73\], collapsed
/// to a single effective rail for simplicity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySpec {
    /// Effective supply voltage (V).
    pub vdd: f64,
    /// Activate-precharge cycling current (mA).
    pub idd0: f64,
    /// Precharge standby current (mA).
    pub idd2n: f64,
    /// Active standby current, one bank open (mA).
    pub idd3n: f64,
    /// Read burst current (mA).
    pub idd4r: f64,
    /// Write burst current (mA).
    pub idd4w: f64,
    /// Refresh burst current (mA).
    pub idd5: f64,
    /// Activation energy multiplier for `ACT-c`/`ACT-t` (paper §6.2:
    /// 1.058 for two-row activation).
    pub mra_act_factor: f64,
}

impl EnergySpec {
    /// The LPDDR4-3200 specification used throughout the evaluation.
    ///
    /// `IDD3N` is derived from the paper's observation that one open bank
    /// raises standby current by 10.9% over the all-banks-closed level.
    pub fn lpddr4() -> Self {
        let idd2n = 32.0;
        Self {
            vdd: 1.1,
            idd0: 64.0,
            idd2n,
            idd3n: idd2n * 1.109,
            idd4r: 230.0,
            idd4w: 215.0,
            idd5: 155.0,
            mra_act_factor: 1.058,
        }
    }
}

/// Converts (mA, ns) to nanojoules at a voltage.
fn nj(vdd: f64, ma: f64, ns: f64) -> f64 {
    // mA * V * ns = pJ; divide by 1000 for nJ.
    ma * vdd * ns / 1000.0
}

/// Per-command and background energy evaluator for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    spec: EnergySpec,
    timings: Timings,
    banks: u32,
}

impl EnergyModel {
    /// Builds a model from a current spec and the channel's timings
    /// (whose `tRFC` already reflects the chip density). Assumes the
    /// standard 8 banks; see [`EnergyModel::with_banks`].
    pub fn new(spec: EnergySpec, timings: Timings) -> Self {
        Self {
            spec,
            timings,
            banks: 8,
        }
    }

    /// Overrides the bank count (used to apportion per-bank refresh
    /// energy).
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks >= 1);
        self.banks = banks;
        self
    }

    /// The current specification.
    pub fn spec(&self) -> &EnergySpec {
        &self.spec
    }

    /// Incremental energy of one command, in nJ (0 for `PRE`, whose cost
    /// is folded into the activation pair energy).
    pub fn command_nj(&self, cmd: Command) -> f64 {
        let s = &self.spec;
        let t = &self.timings;
        let ns = |cycles: u32| f64::from(cycles) * t.t_ck_ns;
        match cmd {
            Command::Act => {
                nj(s.vdd, s.idd0 - s.idd3n, ns(t.tras)) + nj(s.vdd, s.idd0 - s.idd2n, ns(t.trp))
            }
            Command::ActC | Command::ActT => self.command_nj(Command::Act) * s.mra_act_factor,
            Command::Rd => nj(s.vdd, s.idd4r - s.idd3n, ns(t.tbl)),
            Command::Wr => nj(s.vdd, s.idd4w - s.idd3n, ns(t.tbl)),
            Command::Pre => 0.0,
            Command::Ref => nj(s.vdd, s.idd5 - s.idd2n, ns(t.trfc)),
            // One bank's share of the rows per command; same charge per
            // row as the all-bank refresh.
            Command::RefPb => nj(s.vdd, s.idd5 - s.idd2n, ns(t.trfc)) / f64::from(self.banks),
        }
    }

    /// Energy of one activate/precharge pair whose sense amplifiers drove
    /// restoration for `restore_cycles` (early-terminated restoration
    /// transfers proportionally less charge, paper §4.1.3; an `ACT-c`'s
    /// longer restoration transfers more). `mra` applies the two-row
    /// power uplift of §6.2.
    pub fn act_pair_nj(&self, restore_cycles: u64, mra: bool) -> f64 {
        let s = &self.spec;
        let t = &self.timings;
        let e = nj(s.vdd, s.idd0 - s.idd3n, restore_cycles as f64 * t.t_ck_ns)
            + nj(s.vdd, s.idd0 - s.idd2n, f64::from(t.trp) * t.t_ck_ns);
        if mra {
            e * s.mra_act_factor
        } else {
            e
        }
    }

    /// Background energy over `cycles` total cycles of which
    /// `open_buffer_cycles` is the time-integral of the number of open
    /// row buffers (so SALP's multiple live local row buffers, and longer
    /// open times in general, cost energy).
    pub fn background_nj(&self, cycles: u64, open_buffer_cycles: u64) -> f64 {
        let s = &self.spec;
        let t = &self.timings;
        nj(s.vdd, s.idd2n, cycles as f64 * t.t_ck_ns)
            + nj(
                s.vdd,
                s.idd3n - s.idd2n,
                open_buffer_cycles as f64 * t.t_ck_ns,
            )
    }
}

/// Accumulated energy for one channel, by component (nJ).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounter {
    /// Activation + precharge energy (all `ACT` flavours).
    pub act_nj: f64,
    /// Read burst energy.
    pub rd_nj: f64,
    /// Write burst energy.
    pub wr_nj: f64,
    /// Refresh energy.
    pub ref_nj: f64,
    /// Background (standby) energy.
    pub background_nj: f64,
}

impl EnergyCounter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one activate/precharge pair at precharge time (see
    /// [`EnergyModel::act_pair_nj`]).
    pub fn on_act_pair(&mut self, model: &EnergyModel, restore_cycles: u64, mra: bool) {
        self.act_nj += model.act_pair_nj(restore_cycles, mra);
    }

    /// Accounts one issued command.
    pub fn on_command(&mut self, model: &EnergyModel, cmd: Command) {
        let e = model.command_nj(cmd);
        match cmd {
            Command::Act | Command::ActC | Command::ActT => self.act_nj += e,
            Command::Rd => self.rd_nj += e,
            Command::Wr => self.wr_nj += e,
            Command::Ref | Command::RefPb => self.ref_nj += e,
            Command::Pre => {}
        }
    }

    /// Accounts background energy for an interval (see
    /// [`EnergyModel::background_nj`]).
    pub fn add_background(&mut self, model: &EnergyModel, cycles: u64, open_buffer_cycles: u64) {
        self.background_nj += model.background_nj(cycles, open_buffer_cycles);
    }

    /// Total energy, nJ.
    pub fn total_nj(&self) -> f64 {
        self.act_nj + self.rd_nj + self.wr_nj + self.ref_nj + self.background_nj
    }

    /// Fraction of total energy spent on refresh.
    pub fn refresh_fraction(&self) -> f64 {
        let t = self.total_nj();
        if t == 0.0 {
            0.0
        } else {
            self.ref_nj / t
        }
    }

    /// Merges another counter (e.g. across channels).
    pub fn merge(&mut self, o: &EnergyCounter) {
        self.act_nj += o.act_nj;
        self.rd_nj += o.rd_nj;
        self.wr_nj += o.wr_nj;
        self.ref_nj += o.ref_nj;
        self.background_nj += o.background_nj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crow_dram::SpeedBin;

    fn model() -> EnergyModel {
        EnergyModel::new(EnergySpec::lpddr4(), Timings::default())
    }

    #[test]
    fn command_energies_positive_and_ordered() {
        let m = model();
        let act = m.command_nj(Command::Act);
        let rd = m.command_nj(Command::Rd);
        let reff = m.command_nj(Command::Ref);
        assert!(act > 0.0 && rd > 0.0 && reff > 0.0);
        assert_eq!(m.command_nj(Command::Pre), 0.0);
        // A refresh (many rows) costs far more than one activation.
        assert!(reff > act);
    }

    #[test]
    fn mra_activation_costs_5_8_percent_more() {
        let m = model();
        let ratio = m.command_nj(Command::ActT) / m.command_nj(Command::Act);
        assert!((ratio - 1.058).abs() < 1e-9);
        assert_eq!(m.command_nj(Command::ActT), m.command_nj(Command::ActC));
    }

    #[test]
    fn refresh_energy_scales_with_density() {
        let e8 = EnergyModel::new(EnergySpec::lpddr4(), SpeedBin::lpddr4_3200().timings(8))
            .command_nj(Command::Ref);
        let e64 = EnergyModel::new(EnergySpec::lpddr4(), SpeedBin::lpddr4_3200().timings(64))
            .command_nj(Command::Ref);
        assert!(e64 > e8 * 2.0, "64 Gbit refresh {e64} vs 8 Gbit {e8}");
    }

    #[test]
    fn open_buffers_raise_background() {
        let m = model();
        let closed = m.background_nj(10_000, 0);
        let one_open = m.background_nj(10_000, 10_000);
        let eight_open = m.background_nj(10_000, 80_000);
        assert!(one_open > closed);
        // The paper's 10.9% uplift for one open bank.
        assert!((one_open / closed - 1.109).abs() < 1e-9);
        assert!(eight_open > one_open);
    }

    #[test]
    fn act_pair_energy_scales_with_restore_drive() {
        let m = model();
        let t = Timings::default();
        let full = m.act_pair_nj(u64::from(t.tras), false);
        let early = m.act_pair_nj(u64::from(t.tras) * 2 / 3, false);
        assert!(early < full, "early termination must cost less charge");
        // MRA uplift applies on top.
        let mra = m.act_pair_nj(u64::from(t.tras), true);
        assert!((mra / full - 1.058).abs() < 1e-9);
        // Consistent with the per-command estimate at nominal tRAS.
        assert!((full - m.command_nj(Command::Act)).abs() / full < 1e-6);
    }

    #[test]
    fn per_bank_refresh_energy_sums_to_all_bank() {
        let m = model().with_banks(8);
        let pb_total = m.command_nj(Command::RefPb) * 8.0;
        assert!((pb_total - m.command_nj(Command::Ref)).abs() < 1e-9);
        let m2 = model().with_banks(2);
        assert!((m2.command_nj(Command::RefPb) * 2.0 - m2.command_nj(Command::Ref)).abs() < 1e-9);
    }

    #[test]
    fn counter_accumulates_and_merges() {
        let m = model();
        let mut a = EnergyCounter::new();
        a.on_command(&m, Command::Act);
        a.on_command(&m, Command::Rd);
        a.on_command(&m, Command::Ref);
        a.add_background(&m, 100, 50);
        assert!(a.refresh_fraction() > 0.0 && a.refresh_fraction() < 1.0);
        let mut b = a;
        b.merge(&a);
        assert!((b.total_nj() - 2.0 * a.total_nj()).abs() < 1e-9);
    }
}
