//! DRAM geometry and organization configuration.

use crate::timing::{MraTimings, SpeedBin, Timings};

/// Geometry and organization of one DRAM channel.
///
/// The defaults mirror Table 2 of the CROW paper: LPDDR4-3200, one rank,
/// eight banks per rank, 64 Ki rows per bank, 512 rows per subarray (128
/// subarrays per bank), an 8 KiB row buffer, and eight copy rows per
/// subarray.
///
/// All counts must be powers of two; [`DramConfig::validate`] enforces this.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of ranks sharing the channel bus.
    pub ranks: u32,
    /// Number of banks per rank.
    pub banks: u32,
    /// Number of bank groups per rank (DDR4-style; 1 = no grouping, as
    /// in LPDDR4). Same-group commands obey the longer `tCCD_L`/`tRRD_L`.
    pub bank_groups: u32,
    /// Number of *regular* rows per bank.
    pub rows_per_bank: u32,
    /// Number of regular rows per subarray.
    pub rows_per_subarray: u32,
    /// Row buffer (row) size in bytes.
    pub row_bytes: u32,
    /// Size in bytes of one column access (one cache line).
    pub col_bytes: u32,
    /// Number of CROW copy rows per subarray (0 disables the substrate).
    pub copy_rows_per_subarray: u8,
    /// Chip density in gigabits; scales `tRFC` and refresh energy.
    pub density_gbit: u32,
    /// DRAM timing parameters, in memory-clock cycles.
    pub timings: Timings,
    /// Timing modifiers for the CROW multiple-row-activation commands.
    pub mra: MraTimings,
    /// When `true`, banks may hold one open row *per subarray*
    /// (SALP-MASA-style subarray-level parallelism). When `false`
    /// (commodity DRAM), at most one row may be open per bank.
    pub subarray_parallelism: bool,
    /// Extra command-bus cycles consumed by `ACT-c`/`ACT-t` to transfer the
    /// copy-row address (paper footnote 3). The paper assumes 1.
    pub mra_extra_cmd_cycles: u32,
}

impl DramConfig {
    /// The paper's Table 2 configuration for one channel of LPDDR4-3200.
    pub fn lpddr4_default() -> Self {
        Self {
            ranks: 1,
            banks: 8,
            bank_groups: 1,
            rows_per_bank: 65_536,
            rows_per_subarray: 512,
            row_bytes: 8192,
            col_bytes: 64,
            copy_rows_per_subarray: 8,
            density_gbit: 8,
            timings: SpeedBin::lpddr4_3200().timings(8),
            mra: MraTimings::paper_table1(),
            subarray_parallelism: false,
            mra_extra_cmd_cycles: 1,
        }
    }

    /// A DDR4-2400 organization: 16 banks in 4 bank groups, 64 ms
    /// refresh window, 2 ranks (the paper's mechanisms are not
    /// LPDDR4-specific, §7).
    pub fn ddr4_default() -> Self {
        Self {
            ranks: 2,
            banks: 16,
            bank_groups: 4,
            rows_per_bank: 32_768,
            rows_per_subarray: 512,
            row_bytes: 8192,
            col_bytes: 64,
            copy_rows_per_subarray: 8,
            density_gbit: 8,
            timings: SpeedBin::ddr4_2400().timings(8),
            mra: MraTimings::paper_operating_point(),
            subarray_parallelism: false,
            mra_extra_cmd_cycles: 1,
        }
    }

    /// A small geometry for fast unit tests: 2 banks, 8 subarrays of 64
    /// rows, 2 copy rows per subarray.
    pub fn tiny_test() -> Self {
        Self {
            ranks: 1,
            banks: 2,
            bank_groups: 1,
            rows_per_bank: 512,
            rows_per_subarray: 64,
            row_bytes: 1024,
            col_bytes: 64,
            copy_rows_per_subarray: 2,
            density_gbit: 8,
            timings: SpeedBin::lpddr4_3200().timings(8),
            mra: MraTimings::paper_table1(),
            subarray_parallelism: false,
            mra_extra_cmd_cycles: 1,
        }
    }

    /// Returns a copy of this configuration scaled to the given chip
    /// density (paper Fig. 13 sweeps 8, 16, 32, and 64 Gbit).
    ///
    /// Density scaling doubles the number of rows per bank per doubling and
    /// lengthens `tRFC` according to the speed-bin table.
    pub fn with_density(mut self, gbit: u32) -> Self {
        assert!(
            gbit.is_power_of_two() && (8..=64).contains(&gbit),
            "density must be 8, 16, 32, or 64 Gbit"
        );
        let scale = gbit / 8;
        self.rows_per_bank = 65_536 * scale;
        self.density_gbit = gbit;
        self.timings = SpeedBin::lpddr4_3200().timings(gbit);
        self
    }

    /// Returns a copy with `n` copy rows per subarray.
    pub fn with_copy_rows(mut self, n: u8) -> Self {
        self.copy_rows_per_subarray = n;
        self
    }

    /// Number of subarrays per bank.
    pub fn subarrays_per_bank(&self) -> u32 {
        self.rows_per_bank / self.rows_per_subarray
    }

    /// Number of column (cache-line) accesses per row.
    pub fn cols_per_row(&self) -> u32 {
        self.row_bytes / self.col_bytes
    }

    /// Total channel capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.ranks)
            * u64::from(self.banks)
            * u64::from(self.rows_per_bank)
            * u64::from(self.row_bytes)
    }

    /// The bank group of `bank` (banks are numbered group-major).
    pub fn bank_group_of(&self, bank: u32) -> u32 {
        bank / (self.banks / self.bank_groups)
    }

    /// The subarray index that contains regular row `row`.
    pub fn subarray_of(&self, row: u32) -> u32 {
        debug_assert!(row < self.rows_per_bank);
        row / self.rows_per_subarray
    }

    /// Fraction of storage capacity consumed by copy rows
    /// (paper: 8/512 = 1.6%).
    pub fn copy_row_capacity_overhead(&self) -> f64 {
        f64::from(self.copy_rows_per_subarray) / f64::from(self.rows_per_subarray)
    }

    /// Checks the structural invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant
    /// (non-power-of-two field, subarray larger than bank, etc.).
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |v: u32, name: &str| -> Result<(), String> {
            if v == 0 || !v.is_power_of_two() {
                Err(format!("{name} must be a nonzero power of two, got {v}"))
            } else {
                Ok(())
            }
        };
        pow2(self.ranks, "ranks")?;
        pow2(self.banks, "banks")?;
        pow2(self.bank_groups, "bank_groups")?;
        if self.bank_groups > self.banks {
            return Err("more bank groups than banks".into());
        }
        pow2(self.rows_per_bank, "rows_per_bank")?;
        pow2(self.rows_per_subarray, "rows_per_subarray")?;
        pow2(self.row_bytes, "row_bytes")?;
        pow2(self.col_bytes, "col_bytes")?;
        if self.rows_per_subarray > self.rows_per_bank {
            return Err("rows_per_subarray exceeds rows_per_bank".into());
        }
        if self.col_bytes > self.row_bytes {
            return Err("col_bytes exceeds row_bytes".into());
        }
        self.timings.validate()?;
        self.mra.validate()?;
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let c = DramConfig::lpddr4_default();
        c.validate().unwrap();
        assert_eq!(c.banks, 8);
        assert_eq!(c.subarrays_per_bank(), 128);
        assert_eq!(c.cols_per_row(), 128);
        // 8 banks * 64Ki rows * 8KiB = 4 GiB per channel.
        assert_eq!(c.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn ddr4_config_valid_with_bank_groups() {
        let c = DramConfig::ddr4_default();
        c.validate().unwrap();
        assert_eq!(c.bank_groups, 4);
        assert_eq!(c.bank_group_of(0), 0);
        assert_eq!(c.bank_group_of(3), 0);
        assert_eq!(c.bank_group_of(4), 1);
        assert_eq!(c.bank_group_of(15), 3);
        assert!(c.timings.tccd_l > c.timings.tccd);
    }

    #[test]
    fn copy_row_overhead_is_1_6_percent() {
        let c = DramConfig::lpddr4_default();
        let ov = c.copy_row_capacity_overhead();
        assert!((ov - 0.015625).abs() < 1e-12, "overhead {ov}");
    }

    #[test]
    fn density_scaling_grows_rows_and_trfc() {
        let c8 = DramConfig::lpddr4_default();
        let c64 = DramConfig::lpddr4_default().with_density(64);
        assert_eq!(c64.rows_per_bank, c8.rows_per_bank * 8);
        assert!(c64.timings.trfc > c8.timings.trfc);
        c64.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_panics() {
        let _ = DramConfig::lpddr4_default().with_density(12);
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut c = DramConfig::lpddr4_default();
        c.banks = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn subarray_of_maps_rows() {
        let c = DramConfig::lpddr4_default();
        assert_eq!(c.subarray_of(0), 0);
        assert_eq!(c.subarray_of(511), 0);
        assert_eq!(c.subarray_of(512), 1);
        assert_eq!(c.subarray_of(65_535), 127);
    }
}
