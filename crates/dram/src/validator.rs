//! Shadow protocol validator: an independent re-implementation of the
//! LPDDR4/CROW command-legality rules that observes an issued command
//! stream and reports violations as structured records.
//!
//! The validator deliberately shares **no state** with [`DramChannel`]
//! (crate::channel::DramChannel): it re-derives every deadline from the
//! raw command timestamps using its own copy of the configuration, so a
//! bookkeeping bug in the engine cannot hide from it. Unlike the engine,
//! which refuses illegal commands (`debug_assert!` in `issue`), the
//! validator *records* [`ProtocolViolation`]s and keeps tracking state,
//! so a long fuzz or fault-injection run yields a full violation report
//! instead of dying on the first offence.
//!
//! Each shadow deadline carries the [`TimingRule`] that established it,
//! so a violation names the specific JEDEC constraint that was broken
//! and the earliest cycle at which the command would have been legal.

use std::collections::VecDeque;

use crate::command::{ActKind, CmdDesc, Command, RowAddr};
use crate::config::DramConfig;
use crate::timing::scale_cycles;
use crate::Cycle;

/// The maximum number of violation records retained in full; beyond
/// this only the counters grow (a pathological run would otherwise
/// accumulate unbounded diagnostics).
pub const MAX_STORED_VIOLATIONS: usize = 32;

/// The specific timing constraint a deadline (and hence a violation)
/// derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingRule {
    /// Command-bus occupancy (one cycle, plus the extra copy-row address
    /// cycle for `ACT-c`/`ACT-t`).
    CmdBus,
    /// Activate-to-column delay.
    Trcd,
    /// Minimum row-open time before `PRE` (early-termination point for
    /// MRA activations).
    TrasEarly,
    /// Precharge-to-activate delay.
    Trp,
    /// Write recovery before `PRE`.
    Twr,
    /// Read-to-precharge delay.
    Trtp,
    /// Column-to-column spacing (any bank group).
    Tccd,
    /// Column-to-column spacing within a bank group.
    TccdL,
    /// Activate-to-activate spacing (any bank group).
    Trrd,
    /// Activate-to-activate spacing within a bank group.
    TrrdL,
    /// Four-activate window.
    Tfaw,
    /// Write-to-read turnaround.
    Twtr,
    /// Read-to-write data-bus turnaround.
    ReadToWrite,
    /// All-bank refresh cycle time.
    Trfc,
    /// Per-bank refresh cycle time.
    TrfcPb,
    /// Per-bank refresh to per-bank refresh spacing.
    Tpbr2pbr,
    /// Maximum allowed gap between refreshes of a rank (configured via
    /// [`ShadowValidator::set_max_ref_gap`]; disabled by default).
    RefInterval,
}

impl std::fmt::Display for TimingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TimingRule::CmdBus => "command bus",
            TimingRule::Trcd => "tRCD",
            TimingRule::TrasEarly => "tRAS",
            TimingRule::Trp => "tRP",
            TimingRule::Twr => "tWR",
            TimingRule::Trtp => "tRTP",
            TimingRule::Tccd => "tCCD",
            TimingRule::TccdL => "tCCD_L",
            TimingRule::Trrd => "tRRD",
            TimingRule::TrrdL => "tRRD_L",
            TimingRule::Tfaw => "tFAW",
            TimingRule::Twtr => "tWTR",
            TimingRule::ReadToWrite => "read-to-write turnaround",
            TimingRule::Trfc => "tRFC",
            TimingRule::TrfcPb => "tRFCpb",
            TimingRule::Tpbr2pbr => "tpbR2pbR",
            TimingRule::RefInterval => "refresh interval",
        };
        f.write_str(s)
    }
}

/// What went wrong with one observed command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A timing constraint was broken: the command issued before
    /// `earliest_legal`, and `rule` is the binding constraint.
    Timing {
        /// The constraint that set the violated deadline.
        rule: TimingRule,
        /// First cycle at which the command would have been legal
        /// (for [`TimingRule::RefInterval`]: the missed deadline).
        earliest_legal: Cycle,
    },
    /// The command does not fit the open/closed state of the device
    /// (e.g. `ACT` on an open bank, `RD` on a closed one).
    State(&'static str),
    /// The command addresses outside the configured geometry.
    Address(&'static str),
}

/// One protocol violation observed in the command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Cycle at which the offending command issued.
    pub cycle: Cycle,
    /// The command kind.
    pub cmd: Command,
    /// Target rank.
    pub rank: u32,
    /// Target bank.
    pub bank: u32,
    /// What was violated.
    pub kind: ViolationKind,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} rank {} bank {}: ",
            self.cycle, self.cmd, self.rank, self.bank
        )?;
        match self.kind {
            ViolationKind::Timing {
                rule,
                earliest_legal,
            } => write!(f, "{rule} violated (earliest legal cycle {earliest_legal})"),
            ViolationKind::State(s) => write!(f, "illegal state: {s}"),
            ViolationKind::Address(s) => write!(f, "bad address: {s}"),
        }
    }
}

/// A deadline together with the rule that established it, so violations
/// can name the binding constraint.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    at: Cycle,
    rule: TimingRule,
}

impl Deadline {
    fn new(rule: TimingRule) -> Self {
        Self { at: 0, rule }
    }

    /// Raises the deadline to `at` if later, adopting `rule`.
    fn raise(&mut self, at: Cycle, rule: TimingRule) {
        if at > self.at {
            self.at = at;
            self.rule = rule;
        }
    }
}

/// Tracks the latest (deadline, rule) pair seen while folding the
/// constraints that apply to one command.
#[derive(Debug, Clone, Copy)]
struct Binding {
    at: Cycle,
    rule: TimingRule,
}

impl Binding {
    fn start() -> Self {
        Self {
            at: 0,
            rule: TimingRule::CmdBus,
        }
    }

    fn fold(&mut self, d: Deadline) {
        if d.at > self.at {
            self.at = d.at;
            self.rule = d.rule;
        }
    }

    fn fold_at(&mut self, at: Cycle, rule: TimingRule) {
        if at > self.at {
            self.at = at;
            self.rule = rule;
        }
    }
}

/// Shadow of one activation (an open local row buffer).
#[derive(Debug, Clone, Copy)]
struct ShadowAct {
    /// Whether the activation opened a (regular, copy) pair — write
    /// recovery is longer when two rows must be restored.
    pair: bool,
    ready_rd: Deadline,
    ready_wr: Deadline,
    min_pre: Deadline,
}

/// Shadow of one subarray.
#[derive(Debug, Clone)]
struct ShadowSub {
    open: Option<ShadowAct>,
    next_act: Deadline,
}

/// Shadow of one bank.
#[derive(Debug, Clone)]
struct ShadowBank {
    subs: Vec<ShadowSub>,
    next_act: Deadline,
}

impl ShadowBank {
    fn any_open(&self) -> bool {
        self.subs.iter().any(|s| s.open.is_some())
    }

    /// The single open subarray of a commodity-mode bank, if any.
    fn open_subarray(&self) -> Option<u32> {
        self.subs
            .iter()
            .position(|s| s.open.is_some())
            .map(|i| i as u32)
    }
}

/// Shadow of one rank.
#[derive(Debug, Clone)]
struct ShadowRank {
    banks: Vec<ShadowBank>,
    next_act: Deadline,
    next_act_group: Vec<Deadline>,
    next_rd: Deadline,
    next_rd_group: Vec<Deadline>,
    next_wr: Deadline,
    next_wr_group: Vec<Deadline>,
    faw: VecDeque<Cycle>,
    ref_ready: Deadline,
    next_refpb: Deadline,
    /// Cycle of the last observed refresh (any kind), for the optional
    /// maximum-refresh-gap check.
    last_ref: Cycle,
}

impl ShadowRank {
    fn new(banks: u32, subarrays: u32, groups: u32) -> Self {
        let sub = ShadowSub {
            open: None,
            next_act: Deadline::new(TimingRule::Trp),
        };
        Self {
            banks: (0..banks)
                .map(|_| ShadowBank {
                    subs: vec![sub.clone(); subarrays as usize],
                    next_act: Deadline::new(TimingRule::Trp),
                })
                .collect(),
            next_act: Deadline::new(TimingRule::Trrd),
            next_act_group: vec![Deadline::new(TimingRule::TrrdL); groups as usize],
            next_rd: Deadline::new(TimingRule::Tccd),
            next_rd_group: vec![Deadline::new(TimingRule::TccdL); groups as usize],
            next_wr: Deadline::new(TimingRule::Tccd),
            next_wr_group: vec![Deadline::new(TimingRule::TccdL); groups as usize],
            faw: VecDeque::with_capacity(4),
            ref_ready: Deadline::new(TimingRule::Trp),
            next_refpb: Deadline::new(TimingRule::Tpbr2pbr),
            last_ref: 0,
        }
    }
}

/// An independent per-rank/bank protocol state machine that observes
/// issued commands and records violations instead of asserting.
///
/// Attach one to a channel with `DramChannel::attach_validator`, or
/// drive it standalone via [`ShadowValidator::observe`] to cross-check
/// an externally recorded command stream (that is how the mutation
/// tests prove a loosened constraint is caught).
#[derive(Debug, Clone)]
pub struct ShadowValidator {
    cfg: DramConfig,
    ranks: Vec<ShadowRank>,
    cmd_bus_free: Deadline,
    violations: Vec<ProtocolViolation>,
    total: u64,
    observed: u64,
    /// Maximum allowed gap between refreshes of a rank; `None` disables
    /// the check (the effective interval is controller policy, so the
    /// bound must come from above).
    max_ref_gap: Option<Cycle>,
}

impl ShadowValidator {
    /// Creates a validator for the given geometry, all banks closed.
    pub fn new(cfg: &DramConfig) -> Self {
        let ranks = (0..cfg.ranks)
            .map(|_| ShadowRank::new(cfg.banks, cfg.subarrays_per_bank(), cfg.bank_groups))
            .collect();
        Self {
            cfg: cfg.clone(),
            ranks,
            cmd_bus_free: Deadline::new(TimingRule::CmdBus),
            violations: Vec::new(),
            total: 0,
            observed: 0,
            max_ref_gap: None,
        }
    }

    /// Enables the maximum-refresh-gap check: any rank going longer than
    /// `gap` cycles without a `REF`/`REFpb` is reported as a
    /// [`TimingRule::RefInterval`] violation.
    pub fn set_max_ref_gap(&mut self, gap: Cycle) {
        self.max_ref_gap = Some(gap);
    }

    /// Number of commands observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total violations detected (including ones beyond the storage cap).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// The stored violation records (first [`MAX_STORED_VIOLATIONS`]).
    pub fn violations(&self) -> &[ProtocolViolation] {
        &self.violations
    }

    /// Whether no violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Panics with a formatted report if any violation was detected
    /// (test helper).
    ///
    /// # Panics
    ///
    /// If [`ShadowValidator::is_clean`] is `false`.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            let mut msg = format!(
                "shadow validator detected {} protocol violation(s) in {} commands:",
                self.total, self.observed
            );
            for v in &self.violations {
                msg.push_str("\n  ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
    }

    fn record(&mut self, cycle: Cycle, d: &CmdDesc, kind: ViolationKind) {
        self.total += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(ProtocolViolation {
                cycle,
                cmd: d.cmd,
                rank: d.rank,
                bank: d.bank,
                kind,
            });
        }
    }

    /// Runs end-of-stream checks (currently: the refresh-gap bound up to
    /// `now` for every rank). Call once after the final command.
    pub fn finish(&mut self, now: Cycle) {
        let Some(gap) = self.max_ref_gap else {
            return;
        };
        for r in 0..self.ranks.len() {
            let last = self.ranks[r].last_ref;
            if now.saturating_sub(last) > gap {
                let d = CmdDesc::refresh(r as u32);
                self.record(
                    now,
                    &d,
                    ViolationKind::Timing {
                        rule: TimingRule::RefInterval,
                        earliest_legal: last + gap,
                    },
                );
            }
        }
    }

    /// Functionally closes every open shadow row, mirroring the forced
    /// precharge the channel performs at sampling fast-forward
    /// boundaries. Each close is modeled at the earliest cycle its
    /// `tRAS`/`tWR` deadline allows (or `now` if already past), so the
    /// post-close timing state matches an issued `PRE`; no command is
    /// observed and no violation is recorded.
    pub fn force_close_all(&mut self, now: Cycle) {
        let trp = u64::from(self.cfg.timings.trp);
        let salp = self.cfg.subarray_parallelism;
        for rank in &mut self.ranks {
            for bank in &mut rank.banks {
                for sub in &mut bank.subs {
                    let Some(act) = sub.open.take() else {
                        continue;
                    };
                    let at = now.max(act.min_pre.at);
                    sub.next_act.raise(at + trp, TimingRule::Trp);
                    if !salp {
                        bank.next_act.raise(at + trp, TimingRule::Trp);
                    }
                    rank.ref_ready.raise(at + trp, TimingRule::Trp);
                }
            }
        }
    }

    /// Observes one issued command, checking address, state, and timing
    /// legality, then updates the shadow state.
    ///
    /// Timing violations are recorded but the command's state effects are
    /// still applied, so subsequent checks remain meaningful. State and
    /// address violations skip the state update (there is no coherent
    /// effect to apply).
    pub fn observe(&mut self, d: &CmdDesc, now: Cycle) {
        self.observed += 1;
        if let Err(reason) = self.validate_addr(d) {
            self.record(now, d, ViolationKind::Address(reason));
            return;
        }
        match d.cmd {
            Command::Act | Command::ActC | Command::ActT => self.observe_act(d, now),
            Command::Rd => self.observe_rd(d, now),
            Command::Wr => self.observe_wr(d, now),
            Command::Pre => self.observe_pre(d, now),
            Command::Ref => self.observe_ref(d, now),
            Command::RefPb => self.observe_refpb(d, now),
        }
    }

    fn check_binding(&mut self, d: &CmdDesc, now: Cycle, binding: Binding) {
        if binding.at > now {
            self.record(
                now,
                d,
                ViolationKind::Timing {
                    rule: binding.rule,
                    earliest_legal: binding.at,
                },
            );
        }
    }

    /// Occupies the command bus: one cycle, plus the extra copy-row
    /// address transfer for the MRA activations.
    fn occupy_bus(&mut self, d: &CmdDesc, now: Cycle) {
        let extra = if matches!(d.cmd, Command::ActC | Command::ActT) {
            u64::from(self.cfg.mra_extra_cmd_cycles)
        } else {
            0
        };
        self.cmd_bus_free.raise(now + 1 + extra, TimingRule::CmdBus);
    }

    fn observe_act(&mut self, d: &CmdDesc, now: Cycle) {
        let Some(kind) = d.act else {
            self.record(now, d, ViolationKind::State("activate without ActKind"));
            return;
        };
        let sa = kind.subarray(self.cfg.rows_per_subarray) as usize;
        let salp = self.cfg.subarray_parallelism;
        let group = self.cfg.bank_group_of(d.bank) as usize;
        {
            let bank = &self.ranks[d.rank as usize].banks[d.bank as usize];
            if bank.subs[sa].open.is_some() {
                self.record(now, d, ViolationKind::State("subarray already open"));
                return;
            }
            if !salp && bank.any_open() {
                self.record(now, d, ViolationKind::State("bank already has an open row"));
                return;
            }
        }
        let t = self.cfg.timings;
        let rank = &self.ranks[d.rank as usize];
        let bank = &rank.banks[d.bank as usize];
        let mut b = Binding::start();
        b.fold(self.cmd_bus_free);
        b.fold(bank.subs[sa].next_act);
        b.fold(rank.next_act);
        b.fold(rank.next_act_group[group]);
        if !salp {
            b.fold(bank.next_act);
        }
        if rank.faw.len() == 4 {
            b.fold_at(rank.faw[0] + u64::from(t.tfaw), TimingRule::Tfaw);
        }
        self.check_binding(d, now, b);

        // Apply state effects (even when the ACT was too early: the row
        // *is* open now, and later commands must be checked against it).
        let mut tmod = match kind {
            ActKind::Single(_) => crate::timing::ActTimingMod::identity(),
            ActKind::Copy { .. } => self.cfg.mra.act_c,
            ActKind::Twin { fully_restored, .. } => {
                if fully_restored {
                    self.cfg.mra.act_t_full
                } else {
                    self.cfg.mra.act_t_partial
                }
            }
        };
        if let Some(m) = d.act_mod {
            tmod = m;
        }
        let trcd_eff = u64::from(scale_cycles(t.trcd, tmod.trcd));
        let tras_early = u64::from(scale_cycles(t.tras, tmod.tras_early));
        let act = ShadowAct {
            pair: !matches!(kind, ActKind::Single(_)),
            ready_rd: Deadline {
                at: now + trcd_eff,
                rule: TimingRule::Trcd,
            },
            ready_wr: Deadline {
                at: now + trcd_eff,
                rule: TimingRule::Trcd,
            },
            min_pre: Deadline {
                at: now + tras_early,
                rule: TimingRule::TrasEarly,
            },
        };
        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        rank.banks[d.bank as usize].subs[sa].open = Some(act);
        rank.next_act
            .raise(now + u64::from(t.trrd), TimingRule::Trrd);
        rank.next_act_group[group].raise(now + u64::from(t.trrd_l), TimingRule::TrrdL);
        if rank.faw.len() == 4 {
            rank.faw.pop_front();
        }
        rank.faw.push_back(now);
    }

    /// Resolves the subarray a column/precharge command targets.
    fn resolve_open(&self, d: &CmdDesc) -> Result<usize, &'static str> {
        let bank = &self.ranks[d.rank as usize].banks[d.bank as usize];
        if let Some(sa) = d.subarray {
            let sa = sa as usize;
            if sa >= bank.subs.len() {
                return Err("subarray out of range");
            }
            if bank.subs[sa].open.is_some() {
                Ok(sa)
            } else {
                Err("target subarray has no open row")
            }
        } else {
            bank.open_subarray()
                .map(|s| s as usize)
                .ok_or("bank has no open row")
        }
    }

    fn observe_rd(&mut self, d: &CmdDesc, now: Cycle) {
        let sa = match self.resolve_open(d) {
            Ok(sa) => sa,
            Err(reason) => {
                self.record(now, d, ViolationKind::State(reason));
                return;
            }
        };
        let t = self.cfg.timings;
        let group = self.cfg.bank_group_of(d.bank) as usize;
        let rank = &self.ranks[d.rank as usize];
        let act = rank.banks[d.bank as usize].subs[sa]
            .open
            .as_ref()
            .expect("resolve_open verified an open row");
        let mut b = Binding::start();
        b.fold(self.cmd_bus_free);
        b.fold(act.ready_rd);
        b.fold(rank.next_rd);
        b.fold(rank.next_rd_group[group]);
        self.check_binding(d, now, b);

        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        let act = rank.banks[d.bank as usize].subs[sa]
            .open
            .as_mut()
            .expect("resolve_open verified an open row");
        act.min_pre.raise(now + u64::from(t.trtp), TimingRule::Trtp);
        rank.next_rd
            .raise(now + u64::from(t.tccd), TimingRule::Tccd);
        rank.next_rd_group[group].raise(now + u64::from(t.tccd_l), TimingRule::TccdL);
        let rtw = (now + u64::from(t.rl) + u64::from(t.tbl) + 2).saturating_sub(u64::from(t.wl));
        rank.next_wr.raise(rtw, TimingRule::ReadToWrite);
        rank.next_wr
            .raise(now + u64::from(t.tccd), TimingRule::Tccd);
    }

    fn observe_wr(&mut self, d: &CmdDesc, now: Cycle) {
        let sa = match self.resolve_open(d) {
            Ok(sa) => sa,
            Err(reason) => {
                self.record(now, d, ViolationKind::State(reason));
                return;
            }
        };
        let t = self.cfg.timings;
        let mra = self.cfg.mra;
        let group = self.cfg.bank_group_of(d.bank) as usize;
        let rank = &self.ranks[d.rank as usize];
        let act = rank.banks[d.bank as usize].subs[sa]
            .open
            .as_ref()
            .expect("resolve_open verified an open row");
        let pair = act.pair;
        let mut b = Binding::start();
        b.fold(self.cmd_bus_free);
        b.fold(act.ready_wr);
        b.fold(rank.next_wr);
        b.fold(rank.next_wr_group[group]);
        self.check_binding(d, now, b);

        let data_end = now + u64::from(t.wl) + u64::from(t.tbl);
        let twr_early = if pair {
            scale_cycles(t.twr, mra.act_t_full.twr_early)
        } else {
            t.twr
        };
        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        let act = rank.banks[d.bank as usize].subs[sa]
            .open
            .as_mut()
            .expect("resolve_open verified an open row");
        act.min_pre
            .raise(data_end + u64::from(twr_early), TimingRule::Twr);
        rank.next_wr
            .raise(now + u64::from(t.tccd), TimingRule::Tccd);
        rank.next_wr_group[group].raise(now + u64::from(t.tccd_l), TimingRule::TccdL);
        rank.next_rd
            .raise(data_end + u64::from(t.twtr), TimingRule::Twtr);
    }

    fn observe_pre(&mut self, d: &CmdDesc, now: Cycle) {
        let sa = match self.resolve_open(d) {
            Ok(sa) => sa,
            Err(reason) => {
                self.record(now, d, ViolationKind::State(reason));
                return;
            }
        };
        let t = self.cfg.timings;
        let salp = self.cfg.subarray_parallelism;
        let rank = &self.ranks[d.rank as usize];
        let act = rank.banks[d.bank as usize].subs[sa]
            .open
            .as_ref()
            .expect("resolve_open verified an open row");
        let mut b = Binding::start();
        b.fold(self.cmd_bus_free);
        b.fold(act.min_pre);
        self.check_binding(d, now, b);

        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        let bank = &mut rank.banks[d.bank as usize];
        bank.subs[sa].open = None;
        bank.subs[sa].next_act = Deadline {
            at: now + u64::from(t.trp),
            rule: TimingRule::Trp,
        };
        if !salp {
            bank.next_act.raise(now + u64::from(t.trp), TimingRule::Trp);
        }
        rank.ref_ready
            .raise(now + u64::from(t.trp), TimingRule::Trp);
    }

    fn observe_ref(&mut self, d: &CmdDesc, now: Cycle) {
        let t = self.cfg.timings;
        {
            let rank = &self.ranks[d.rank as usize];
            if rank.banks.iter().any(ShadowBank::any_open) {
                self.record(
                    now,
                    d,
                    ViolationKind::State("REF requires all banks closed"),
                );
                return;
            }
            let mut b = Binding::start();
            b.fold(self.cmd_bus_free);
            b.fold(rank.ref_ready);
            for bank in &rank.banks {
                b.fold_at(
                    bank.next_act.at.saturating_sub(u64::from(t.trp)),
                    bank.next_act.rule,
                );
            }
            self.check_binding(d, now, b);
        }
        self.check_ref_gap(d, now);
        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        let busy_until = now + u64::from(t.trfc);
        for bank in &mut rank.banks {
            bank.next_act.raise(busy_until, TimingRule::Trfc);
            for sub in &mut bank.subs {
                sub.next_act.raise(busy_until, TimingRule::Trfc);
            }
        }
        rank.last_ref = now;
    }

    fn observe_refpb(&mut self, d: &CmdDesc, now: Cycle) {
        let t = self.cfg.timings;
        {
            let rank = &self.ranks[d.rank as usize];
            let bank = &rank.banks[d.bank as usize];
            if bank.any_open() {
                self.record(
                    now,
                    d,
                    ViolationKind::State("REFpb requires the bank closed"),
                );
                return;
            }
            let mut b = Binding::start();
            b.fold(self.cmd_bus_free);
            b.fold(rank.next_refpb);
            b.fold_at(
                bank.next_act.at.saturating_sub(u64::from(t.trp)),
                bank.next_act.rule,
            );
            for sub in &bank.subs {
                b.fold_at(
                    sub.next_act.at.saturating_sub(u64::from(t.trp)),
                    sub.next_act.rule,
                );
            }
            self.check_binding(d, now, b);
        }
        self.check_ref_gap(d, now);
        self.occupy_bus(d, now);
        let rank = &mut self.ranks[d.rank as usize];
        let busy_until = now + u64::from(t.trfc_pb);
        let bank = &mut rank.banks[d.bank as usize];
        bank.next_act.raise(busy_until, TimingRule::TrfcPb);
        for sub in &mut bank.subs {
            sub.next_act.raise(busy_until, TimingRule::TrfcPb);
        }
        rank.next_refpb = Deadline {
            at: now + u64::from(t.tpbr2pbr),
            rule: TimingRule::Tpbr2pbr,
        };
        rank.last_ref = now;
    }

    /// Checks the optional refresh-gap bound for the target rank, then
    /// resets its reference point (the caller observed a refresh).
    fn check_ref_gap(&mut self, d: &CmdDesc, now: Cycle) {
        let Some(gap) = self.max_ref_gap else {
            return;
        };
        let last = self.ranks[d.rank as usize].last_ref;
        if now.saturating_sub(last) > gap {
            self.record(
                now,
                d,
                ViolationKind::Timing {
                    rule: TimingRule::RefInterval,
                    earliest_legal: last + gap,
                },
            );
        }
    }

    /// Validates command addressing against the geometry (mirror of the
    /// channel's check, returning the reason string).
    fn validate_addr(&self, d: &CmdDesc) -> Result<(), &'static str> {
        if d.rank >= self.cfg.ranks {
            return Err("rank out of range");
        }
        if d.cmd != Command::Ref && d.bank >= self.cfg.banks {
            return Err("bank out of range");
        }
        if let Some(kind) = d.act {
            let check_row = |r: u32| -> Result<(), &'static str> {
                if r >= self.cfg.rows_per_bank {
                    Err("row out of range")
                } else {
                    Ok(())
                }
            };
            let check_copy = |c: u8| -> Result<(), &'static str> {
                if c >= self.cfg.copy_rows_per_subarray {
                    Err("copy row out of range")
                } else {
                    Ok(())
                }
            };
            match kind {
                ActKind::Single(RowAddr::Regular(r)) => check_row(r)?,
                ActKind::Single(RowAddr::Copy { subarray, idx }) => {
                    if subarray >= self.cfg.subarrays_per_bank() {
                        return Err("subarray out of range");
                    }
                    check_copy(idx)?;
                }
                ActKind::Copy { src, copy } => {
                    check_row(src)?;
                    check_copy(copy)?;
                }
                ActKind::Twin { row, copy, .. } => {
                    check_row(row)?;
                    check_copy(copy)?;
                }
            }
        }
        if let Some(col) = d.col {
            if col >= self.cfg.cols_per_row() {
                return Err("column out of range");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CmdDesc;

    fn v() -> ShadowValidator {
        ShadowValidator::new(&DramConfig::tiny_test())
    }

    #[test]
    fn legal_sequence_is_clean() {
        let mut val = v();
        let t = DramConfig::tiny_test().timings;
        val.observe(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        val.observe(&CmdDesc::rd(0, 0, 3), u64::from(t.trcd));
        let pre_at = u64::from(t.tras).max(u64::from(t.trcd) + u64::from(t.trtp));
        val.observe(&CmdDesc::pre(0, 0), pre_at);
        val.finish(pre_at + 1);
        val.assert_clean();
        assert_eq!(val.observed(), 3);
    }

    #[test]
    fn early_read_names_trcd() {
        let mut val = v();
        let t = DramConfig::tiny_test().timings;
        val.observe(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        val.observe(&CmdDesc::rd(0, 0, 0), u64::from(t.trcd) - 1);
        assert_eq!(val.total_violations(), 1);
        let viol = val.violations()[0];
        assert_eq!(
            viol.kind,
            ViolationKind::Timing {
                rule: TimingRule::Trcd,
                earliest_legal: u64::from(t.trcd),
            }
        );
    }

    #[test]
    fn act_on_open_bank_is_state_violation() {
        let mut val = v();
        val.observe(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        val.observe(&CmdDesc::act(0, 0, ActKind::single(300)), 10_000);
        assert_eq!(val.total_violations(), 1);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::State("bank already has an open row")
        ));
    }

    #[test]
    fn rd_on_closed_bank_is_state_violation() {
        let mut val = v();
        val.observe(&CmdDesc::rd(0, 0, 0), 100);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::State("bank has no open row")
        ));
    }

    #[test]
    fn bad_address_reported() {
        let mut val = v();
        val.observe(&CmdDesc::act(0, 9, ActKind::single(0)), 0);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::Address("bank out of range")
        ));
    }

    #[test]
    fn early_pre_names_tras() {
        let mut val = v();
        let t = DramConfig::tiny_test().timings;
        val.observe(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        val.observe(&CmdDesc::pre(0, 0), u64::from(t.tras) - 1);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::Timing {
                rule: TimingRule::TrasEarly,
                ..
            }
        ));
    }

    #[test]
    fn early_act_after_pre_names_trp() {
        let mut val = v();
        let t = DramConfig::tiny_test().timings;
        val.observe(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let pre_at = u64::from(t.tras);
        val.observe(&CmdDesc::pre(0, 0), pre_at);
        val.observe(&CmdDesc::act(0, 0, ActKind::single(6)), pre_at + 1);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::Timing {
                rule: TimingRule::Trp,
                ..
            }
        ));
    }

    #[test]
    fn ref_gap_check_fires_only_when_enabled() {
        let mut val = v();
        val.finish(1_000_000);
        val.assert_clean();
        let mut val = v();
        val.set_max_ref_gap(10_000);
        val.finish(1_000_000);
        assert_eq!(val.total_violations(), 1);
        assert!(matches!(
            val.violations()[0].kind,
            ViolationKind::Timing {
                rule: TimingRule::RefInterval,
                ..
            }
        ));
    }

    #[test]
    fn violation_storage_is_capped() {
        let mut val = v();
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 10) {
            // RD on a closed bank is always a state violation.
            val.observe(&CmdDesc::rd(0, 0, 0), i);
        }
        assert_eq!(val.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(val.total_violations(), MAX_STORED_VIOLATIONS as u64 + 10);
    }

    #[test]
    fn display_formats() {
        let viol = ProtocolViolation {
            cycle: 7,
            cmd: Command::Rd,
            rank: 0,
            bank: 1,
            kind: ViolationKind::Timing {
                rule: TimingRule::Trcd,
                earliest_legal: 29,
            },
        };
        let s = viol.to_string();
        assert!(s.contains("tRCD") && s.contains("29") && s.contains("cycle 7"));
    }
}
