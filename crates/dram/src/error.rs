//! Error types for command legality checking.

use crate::Cycle;

/// Why a command cannot issue right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// All structural conditions hold but a timing constraint is pending;
    /// the command becomes legal at `ready_at`.
    TooEarly {
        /// First cycle at which the command may issue.
        ready_at: Cycle,
    },
    /// The device is in the wrong state for this command (e.g. `RD` with no
    /// open row, `ACT` while a row is open). The string names the violated
    /// condition.
    WrongState(&'static str),
    /// The command addresses a rank/bank/row outside the configured
    /// geometry.
    BadAddress(&'static str),
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssueError::TooEarly { ready_at } => {
                write!(f, "timing constraint pending until cycle {ready_at}")
            }
            IssueError::WrongState(s) => write!(f, "wrong device state: {s}"),
            IssueError::BadAddress(s) => write!(f, "bad address: {s}"),
        }
    }
}

impl std::error::Error for IssueError {}

/// A configuration failed validation. `what` names the config type so
/// the message reads the same as the old construction panics
/// (`invalid DramConfig: ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The configuration type that was rejected (e.g. `"DramConfig"`).
    pub what: &'static str,
    /// Human-readable description of the first violated invariant.
    pub reason: String,
}

impl ConfigError {
    /// Creates an error for configuration type `what`.
    pub fn new(what: &'static str, reason: impl Into<String>) -> Self {
        Self {
            what,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IssueError::TooEarly { ready_at: 42 };
        assert!(e.to_string().contains("42"));
        let e = IssueError::WrongState("row not open");
        assert!(e.to_string().contains("row not open"));
    }

    #[test]
    fn config_error_matches_legacy_panic_message() {
        let e = ConfigError::new("DramConfig", "banks must be a nonzero power of two, got 6");
        assert_eq!(
            e.to_string(),
            "invalid DramConfig: banks must be a nonzero power of two, got 6"
        );
    }
}
