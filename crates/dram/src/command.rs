//! The DRAM command set, including CROW's multiple-row-activation commands.

/// A DRAM command mnemonic.
///
/// `ActC` and `ActT` are the two commands CROW adds (paper §4.1.5); all
/// others are the standard LPDDR4 commands of paper §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Command {
    /// Activate (open) a row.
    Act,
    /// Activate-and-copy: open a regular row, then enable the copy-row
    /// wordline once the sense amplifiers latch, duplicating the row.
    ActC,
    /// Activate-two: simultaneously open a regular row and its duplicate
    /// copy row for reduced activation latency.
    ActT,
    /// Read a column of the open row.
    Rd,
    /// Write a column of the open row.
    Wr,
    /// Precharge (close) the open row.
    Pre,
    /// All-bank refresh.
    Ref,
    /// Per-bank refresh (LPDDR4 `REFpb`): refreshes one bank while the
    /// others remain accessible.
    RefPb,
}

impl Command {
    /// All commands, for stats tables and exhaustive iteration.
    pub const ALL: [Command; 8] = [
        Command::Act,
        Command::ActC,
        Command::ActT,
        Command::Rd,
        Command::Wr,
        Command::Pre,
        Command::Ref,
        Command::RefPb,
    ];

    /// Whether this command opens a row.
    pub fn is_activate(self) -> bool {
        matches!(self, Command::Act | Command::ActC | Command::ActT)
    }

    /// Whether this command transfers data on the data bus.
    pub fn is_column(self) -> bool {
        matches!(self, Command::Rd | Command::Wr)
    }

    /// Dense index for array-based per-command tables.
    pub fn index(self) -> usize {
        match self {
            Command::Act => 0,
            Command::ActC => 1,
            Command::ActT => 2,
            Command::Rd => 3,
            Command::Wr => 4,
            Command::Pre => 5,
            Command::Ref => 6,
            Command::RefPb => 7,
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Command::Act => "ACT",
            Command::ActC => "ACT-c",
            Command::ActT => "ACT-t",
            Command::Rd => "RD",
            Command::Wr => "WR",
            Command::Pre => "PRE",
            Command::Ref => "REF",
            Command::RefPb => "REFpb",
        };
        f.write_str(s)
    }
}

/// Address of one physical row inside a bank: either a regular row or a
/// copy row (copy rows have their own small decoder, paper §3.2, so they
/// are addressed as (subarray, index) rather than by a row number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddr {
    /// A regular row, numbered within the bank.
    Regular(u32),
    /// Copy row `idx` of `subarray`.
    Copy {
        /// Subarray index within the bank.
        subarray: u32,
        /// Copy-row index within the subarray.
        idx: u8,
    },
}

impl RowAddr {
    /// The subarray this row belongs to, given `rows_per_subarray`.
    pub fn subarray(&self, rows_per_subarray: u32) -> u32 {
        match *self {
            RowAddr::Regular(r) => r / rows_per_subarray,
            RowAddr::Copy { subarray, .. } => subarray,
        }
    }
}

/// What an activation opens, and with which timing flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Plain `ACT` of a single row (regular or copy; activating a remapped
    /// copy row under CROW-ref uses standard single-row timings).
    Single(RowAddr),
    /// `ACT-c`: open regular row `src` and duplicate it into copy row
    /// `copy` of the same subarray.
    Copy {
        /// Source regular row.
        src: u32,
        /// Destination copy-row index.
        copy: u8,
    },
    /// `ACT-t`: simultaneously open regular row `row` and copy row `copy`
    /// which hold the same data.
    Twin {
        /// The regular row of the duplicate pair.
        row: u32,
        /// The copy-row index of the duplicate pair.
        copy: u8,
        /// Whether the pair was fully restored when last precharged; the
        /// controller learns this from the CROW-table `isFullyRestored`
        /// bit (paper §4.1.4) and it selects the Table 1 timing row.
        fully_restored: bool,
    },
}

impl ActKind {
    /// Convenience constructor for a plain activation of a regular row.
    pub fn single(row: u32) -> Self {
        ActKind::Single(RowAddr::Regular(row))
    }

    /// The command mnemonic this activation issues.
    pub fn command(&self) -> Command {
        match self {
            ActKind::Single(_) => Command::Act,
            ActKind::Copy { .. } => Command::ActC,
            ActKind::Twin { .. } => Command::ActT,
        }
    }

    /// The subarray the activation targets.
    pub fn subarray(&self, rows_per_subarray: u32) -> u32 {
        match *self {
            ActKind::Single(addr) => addr.subarray(rows_per_subarray),
            ActKind::Copy { src, .. } => src / rows_per_subarray,
            ActKind::Twin { row, .. } => row / rows_per_subarray,
        }
    }
}

/// A fully-specified command ready for legality checking and issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdDesc {
    /// Command mnemonic.
    pub cmd: Command,
    /// Target rank.
    pub rank: u32,
    /// Target bank (ignored for `Ref`, which is all-bank).
    pub bank: u32,
    /// Activation details (for `Act`/`ActC`/`ActT`).
    pub act: Option<ActKind>,
    /// Column address (for `Rd`/`Wr`).
    pub col: Option<u32>,
    /// Target subarray (for `Pre` under subarray-level parallelism, and
    /// derived automatically for activations and column commands).
    pub subarray: Option<u32>,
    /// Overrides the activation timing modifier derived from the command
    /// flavour. Used by organizations whose latency differences come from
    /// the array structure rather than multiple-row activation (e.g. the
    /// TL-DRAM baseline's near/far segments, §8.1.4).
    pub act_mod: Option<crate::timing::ActTimingMod>,
}

impl CmdDesc {
    /// Builds an activation command of the appropriate flavour.
    pub fn act(rank: u32, bank: u32, kind: ActKind) -> Self {
        Self {
            cmd: kind.command(),
            rank,
            bank,
            act: Some(kind),
            col: None,
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a read of `col` from the open row of `bank`.
    pub fn rd(rank: u32, bank: u32, col: u32) -> Self {
        Self {
            cmd: Command::Rd,
            rank,
            bank,
            act: None,
            col: Some(col),
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a write of `col` to the open row of `bank`.
    pub fn wr(rank: u32, bank: u32, col: u32) -> Self {
        Self {
            cmd: Command::Wr,
            rank,
            bank,
            act: None,
            col: Some(col),
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a precharge of `bank` (closing its open row).
    pub fn pre(rank: u32, bank: u32) -> Self {
        Self {
            cmd: Command::Pre,
            rank,
            bank,
            act: None,
            col: None,
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a precharge of one subarray's row buffer (SALP mode).
    pub fn pre_subarray(rank: u32, bank: u32, subarray: u32) -> Self {
        Self {
            cmd: Command::Pre,
            rank,
            bank,
            act: None,
            col: None,
            subarray: Some(subarray),
            act_mod: None,
        }
    }

    /// Builds an all-bank refresh for `rank`.
    pub fn refresh(rank: u32) -> Self {
        Self {
            cmd: Command::Ref,
            rank,
            bank: 0,
            act: None,
            col: None,
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a per-bank refresh of `bank` (LPDDR4 `REFpb`).
    pub fn refresh_bank(rank: u32, bank: u32) -> Self {
        Self {
            cmd: Command::RefPb,
            rank,
            bank,
            act: None,
            col: None,
            subarray: None,
            act_mod: None,
        }
    }

    /// Builds a read targeting a specific subarray's open row (SALP mode).
    pub fn rd_subarray(rank: u32, bank: u32, subarray: u32, col: u32) -> Self {
        let mut d = Self::rd(rank, bank, col);
        d.subarray = Some(subarray);
        d
    }

    /// Builds a write targeting a specific subarray's open row (SALP mode).
    pub fn wr_subarray(rank: u32, bank: u32, subarray: u32, col: u32) -> Self {
        let mut d = Self::wr(rank, bank, col);
        d.subarray = Some(subarray);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn act_kind_commands() {
        assert_eq!(ActKind::single(3).command(), Command::Act);
        assert_eq!(ActKind::Copy { src: 3, copy: 0 }.command(), Command::ActC);
        assert_eq!(
            ActKind::Twin {
                row: 3,
                copy: 0,
                fully_restored: true
            }
            .command(),
            Command::ActT
        );
    }

    #[test]
    fn subarray_derivation() {
        let k = ActKind::Copy { src: 513, copy: 1 };
        assert_eq!(k.subarray(512), 1);
        let r = RowAddr::Copy {
            subarray: 7,
            idx: 2,
        };
        assert_eq!(r.subarray(512), 7);
    }

    #[test]
    fn command_properties() {
        assert!(Command::ActT.is_activate());
        assert!(!Command::Pre.is_activate());
        assert!(Command::Wr.is_column());
        // Indices are dense and unique.
        let mut seen = [false; 8];
        for c in Command::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Command::ActC.to_string(), "ACT-c");
        assert_eq!(Command::Ref.to_string(), "REF");
    }
}
