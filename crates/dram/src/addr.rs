//! Physical-address to DRAM-coordinate mapping.

use crate::config::DramConfig;

/// A physical byte address in the memory system.
pub type PhysAddr = u64;

/// Decoded DRAM coordinates of a cache-line-sized access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Regular row within the bank.
    pub row: u32,
    /// Column (cache-line slot) within the row.
    pub col: u32,
}

impl Addr {
    /// The subarray containing this address's row.
    pub fn subarray(&self, rows_per_subarray: u32) -> u32 {
        self.row / rows_per_subarray
    }
}

/// Bit-interleaving scheme, named by field order from most- to
/// least-significant (after the cache-line offset).
///
/// `RoBaRaCoCh` is the scheme Ramulator uses by default for multi-channel
/// systems: channel bits come from the lowest-order line-address bits so
/// consecutive cache lines stripe across channels, while row bits are at
/// the top so a row's columns stay together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapScheme {
    /// row : bank : rank : column : channel.
    #[default]
    RoBaRaCoCh,
    /// row : rank : bank : channel : column (channel stripes at row-buffer
    /// granularity; preserves more row locality per channel).
    RoRaBaChCo,
    /// channel : rank : bank : row : column (no channel interleaving;
    /// useful for single-channel studies).
    ChRaBaRoCo,
}

/// Maps physical addresses to DRAM coordinates and back.
///
/// The mapper owns the geometry (channel count plus the per-channel
/// [`DramConfig`] dimensions) so that `decode(encode(a)) == a` for every
/// in-range address, which the property tests verify.
#[derive(Debug, Clone)]
pub struct AddrMapper {
    scheme: MapScheme,
    channels: u32,
    ranks: u32,
    banks: u32,
    rows: u32,
    cols: u32,
    line_bytes: u32,
}

impl AddrMapper {
    /// Creates a mapper for `channels` channels of geometry `cfg`.
    pub fn new(scheme: MapScheme, channels: u32, cfg: &DramConfig) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channels must be a power of two"
        );
        Self {
            scheme,
            channels,
            ranks: cfg.ranks,
            banks: cfg.banks,
            rows: cfg.rows_per_bank,
            cols: cfg.cols_per_row(),
            line_bytes: cfg.col_bytes,
        }
    }

    /// Total mappable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks)
            * u64::from(self.banks)
            * u64::from(self.rows)
            * u64::from(self.cols)
            * u64::from(self.line_bytes)
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// Addresses beyond the configured capacity wrap (the simulator's
    /// page allocator never produces them, but synthetic streams might).
    pub fn decode(&self, pa: PhysAddr) -> Addr {
        let mut line = (pa / u64::from(self.line_bytes))
            % (self.capacity_bytes() / u64::from(self.line_bytes));
        let mut take = |n: u32| -> u32 {
            let v = (line % u64::from(n)) as u32;
            line /= u64::from(n);
            v
        };
        match self.scheme {
            MapScheme::RoBaRaCoCh => {
                let channel = take(self.channels);
                let col = take(self.cols);
                let rank = take(self.ranks);
                let bank = take(self.banks);
                let row = take(self.rows);
                Addr {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
            MapScheme::RoRaBaChCo => {
                let col = take(self.cols);
                let channel = take(self.channels);
                let bank = take(self.banks);
                let rank = take(self.ranks);
                let row = take(self.rows);
                Addr {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
            MapScheme::ChRaBaRoCo => {
                let col = take(self.cols);
                let row = take(self.rows);
                let bank = take(self.banks);
                let rank = take(self.ranks);
                let channel = take(self.channels);
                Addr {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
        }
    }

    /// Encodes DRAM coordinates back into a (line-aligned) physical
    /// address. Inverse of [`AddrMapper::decode`].
    pub fn encode(&self, a: Addr) -> PhysAddr {
        let mut line: u64 = 0;
        let mut put = |v: u32, n: u32| {
            debug_assert!(v < n, "field {v} out of range {n}");
            line = line * u64::from(n) + u64::from(v);
        };
        match self.scheme {
            MapScheme::RoBaRaCoCh => {
                put(a.row, self.rows);
                put(a.bank, self.banks);
                put(a.rank, self.ranks);
                put(a.col, self.cols);
                put(a.channel, self.channels);
            }
            MapScheme::RoRaBaChCo => {
                put(a.row, self.rows);
                put(a.rank, self.ranks);
                put(a.bank, self.banks);
                put(a.channel, self.channels);
                put(a.col, self.cols);
            }
            MapScheme::ChRaBaRoCo => {
                put(a.channel, self.channels);
                put(a.rank, self.ranks);
                put(a.bank, self.banks);
                put(a.row, self.rows);
                put(a.col, self.cols);
            }
        }
        line * u64::from(self.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn mapper(scheme: MapScheme) -> AddrMapper {
        AddrMapper::new(scheme, 4, &DramConfig::lpddr4_default())
    }

    #[test]
    fn consecutive_lines_stripe_channels_in_robaracoch() {
        let m = mapper(MapScheme::RoBaRaCoCh);
        let a0 = m.decode(0);
        let a1 = m.decode(64);
        let a2 = m.decode(128);
        assert_eq!(a0.channel, 0);
        assert_eq!(a1.channel, 1);
        assert_eq!(a2.channel, 2);
        assert_eq!(a0.row, a1.row);
    }

    #[test]
    fn roundtrip_all_schemes() {
        for scheme in [
            MapScheme::RoBaRaCoCh,
            MapScheme::RoRaBaChCo,
            MapScheme::ChRaBaRoCo,
        ] {
            let m = mapper(scheme);
            for pa in [0u64, 64, 4096, 1 << 20, (1 << 33) + 8 * 64] {
                let a = m.decode(pa);
                assert_eq!(m.encode(a), pa & !63, "scheme {scheme:?} pa {pa}");
            }
        }
    }

    #[test]
    fn capacity_matches_geometry() {
        let m = mapper(MapScheme::RoBaRaCoCh);
        assert_eq!(m.capacity_bytes(), 16 << 30);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let m = mapper(MapScheme::RoBaRaCoCh);
        let a = m.decode(0);
        let b = m.decode(m.capacity_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn fields_within_bounds() {
        let m = mapper(MapScheme::RoRaBaChCo);
        for i in 0..10_000u64 {
            let a = m.decode(i * 64 * 7919);
            assert!(a.channel < 4);
            assert!(a.rank < 1);
            assert!(a.bank < 8);
            assert!(a.row < 65_536);
            assert!(a.col < 128);
        }
    }
}
