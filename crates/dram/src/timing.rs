//! DRAM timing parameters: speed bins in nanoseconds and their conversion to
//! memory-clock cycles, plus the CROW multiple-row-activation timing
//! modifiers of paper Table 1.

/// A JEDEC-style speed bin: timing parameters in nanoseconds (or clocks
/// where the standard specifies clocks).
///
/// Values follow the LPDDR4-3200 numbers used in the paper's Table 2
/// (`tRCD`/`tRAS`/`tWR` = 18/42/18 ns → 29/67/29 cycles at 1600 MHz).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedBin {
    /// Bus clock period in nanoseconds (0.625 ns at 1600 MHz DDR-3200).
    pub t_ck_ns: f64,
    /// ACT to internal read/write delay (ns).
    pub trcd_ns: f64,
    /// Precharge latency (ns).
    pub trp_ns: f64,
    /// ACT to PRE minimum (full single-row restoration) (ns).
    pub tras_ns: f64,
    /// Write recovery: last write data to PRE (ns).
    pub twr_ns: f64,
    /// Read to PRE minimum (ns).
    pub trtp_ns: f64,
    /// ACT-to-ACT different banks, same rank (ns).
    pub trrd_ns: f64,
    /// Four-activate window (ns).
    pub tfaw_ns: f64,
    /// Write-to-read turnaround after last write data (ns).
    pub twtr_ns: f64,
    /// Read latency in clocks (RL).
    pub rl_ck: u32,
    /// Write latency in clocks (WL).
    pub wl_ck: u32,
    /// Burst occupancy of the data bus in clocks (BL16 DDR = 8).
    pub tbl_ck: u32,
    /// Column-to-column delay in clocks.
    pub tccd_ck: u32,
    /// Average refresh interval (ns); LPDDR4 refresh window is 32 ms over
    /// 8192 REF commands → 3906 ns.
    pub trefi_ns: f64,
    /// Same-bank-group column spacing in clocks (`tCCD_L`); equal to
    /// `tccd_ck` on standards without bank groups.
    pub tccd_l_ck: u32,
    /// Same-bank-group ACT spacing (ns, `tRRD_L`); equal to `trrd_ns`
    /// without bank groups.
    pub trrd_l_ns: f64,
    /// All-bank refresh busy time at 8 Gbit (ns); scaled with density by
    /// the historical ~1.4x-per-doubling trend.
    pub trfc8_ns: f64,
}

impl SpeedBin {
    /// LPDDR4-3200 speed bin (1600 MHz bus clock).
    pub fn lpddr4_3200() -> Self {
        Self {
            t_ck_ns: 0.625,
            trcd_ns: 18.0,
            trp_ns: 18.0,
            tras_ns: 42.0,
            twr_ns: 18.0,
            trtp_ns: 7.5,
            trrd_ns: 10.0,
            tfaw_ns: 40.0,
            twtr_ns: 10.0,
            rl_ck: 28,
            wl_ck: 14,
            tbl_ck: 8,
            tccd_ck: 8,
            trefi_ns: 3906.0,
            tccd_l_ck: 8,
            trrd_l_ns: 10.0,
            trfc8_ns: 280.0,
        }
    }

    /// DDR4-2400 speed bin (1200 MHz bus clock), with bank groups:
    /// column/activate spacing is tighter across groups (`tCCD_S`,
    /// `tRRD_S`) than within one (`tCCD_L`, `tRRD_L`).
    pub fn ddr4_2400() -> Self {
        Self {
            t_ck_ns: 0.833,
            trcd_ns: 13.32,
            trp_ns: 13.32,
            tras_ns: 32.0,
            twr_ns: 15.0,
            trtp_ns: 7.5,
            trrd_ns: 3.3, // tRRD_S (4 ck)
            tfaw_ns: 21.0,
            twtr_ns: 2.5, // tWTR_S
            rl_ck: 16,
            wl_ck: 12,
            tbl_ck: 4,  // BL8 DDR
            tccd_ck: 4, // tCCD_S
            trefi_ns: 7800.0,
            tccd_l_ck: 6,
            trrd_l_ns: 4.9, // tRRD_L (6 ck)
            trfc8_ns: 350.0,
        }
    }

    /// All-bank refresh cycle time for a given chip density, in ns
    /// (the LPDDR4 8/16 Gbit anchors; 32/64 Gbit are futuristic
    /// densities, paper Fig. 13, extrapolated on the historical ~1.4×
    /// per-doubling trend).
    pub fn trfc_ns(density_gbit: u32) -> f64 {
        Self::lpddr4_3200().trfc_scaled(density_gbit)
    }

    /// Density-scaled all-bank refresh time for this speed bin, ns.
    pub fn trfc_scaled(&self, density_gbit: u32) -> f64 {
        let factor = match density_gbit {
            0..=8 => 1.0,
            16 => 380.0 / 280.0,
            32 => 530.0 / 280.0,
            _ => 740.0 / 280.0,
        };
        self.trfc8_ns * factor
    }

    /// Converts this speed bin to integer clock-cycle [`Timings`] for the
    /// given chip density, rounding each nanosecond parameter *up*.
    pub fn timings(&self, density_gbit: u32) -> Timings {
        let ck = |ns: f64| -> u32 { (ns / self.t_ck_ns).ceil() as u32 };
        let trcd = ck(self.trcd_ns);
        let trp = ck(self.trp_ns);
        let tras = ck(self.tras_ns);
        Timings {
            t_ck_ns: self.t_ck_ns,
            trcd,
            trp,
            tras,
            trc: tras + trp,
            twr: ck(self.twr_ns),
            trtp: ck(self.trtp_ns),
            trrd: ck(self.trrd_ns),
            tfaw: ck(self.tfaw_ns),
            twtr: ck(self.twtr_ns),
            rl: self.rl_ck,
            wl: self.wl_ck,
            tbl: self.tbl_ck,
            tccd: self.tccd_ck,
            trefi: ck(self.trefi_ns),
            trfc: ck(self.trfc_scaled(density_gbit)),
            trfc_pb: ck(self.trfc_scaled(density_gbit) / 2.0),
            tpbr2pbr: ck(self.trfc_scaled(density_gbit) * 0.32),
            tccd_l: self.tccd_l_ck,
            trrd_l: ck(self.trrd_l_ns),
        }
    }
}

/// DRAM timing parameters in integer memory-clock cycles, as enforced by
/// the timing engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timings {
    /// Clock period in nanoseconds (for reporting only).
    pub t_ck_ns: f64,
    /// ACT → RD/WR.
    pub trcd: u32,
    /// PRE → ACT.
    pub trp: u32,
    /// ACT → PRE (full restoration).
    pub tras: u32,
    /// ACT → ACT same bank (`tRAS + tRP`).
    pub trc: u32,
    /// Last write data → PRE.
    pub twr: u32,
    /// RD → PRE.
    pub trtp: u32,
    /// ACT → ACT different bank, same rank.
    pub trrd: u32,
    /// Rolling four-activate window per rank.
    pub tfaw: u32,
    /// End of write burst → RD, same rank.
    pub twtr: u32,
    /// Read latency.
    pub rl: u32,
    /// Write latency.
    pub wl: u32,
    /// Data-bus burst occupancy.
    pub tbl: u32,
    /// Column command spacing.
    pub tccd: u32,
    /// Average refresh command interval.
    pub trefi: u32,
    /// All-bank refresh busy time.
    pub trfc: u32,
    /// Per-bank refresh busy time (LPDDR4 `tRFCpb`, roughly half the
    /// all-bank figure).
    pub trfc_pb: u32,
    /// Minimum spacing between per-bank refreshes (`tpbR2pbR`).
    pub tpbr2pbr: u32,
    /// Same-bank-group column spacing (`tCCD_L` >= `tccd`).
    pub tccd_l: u32,
    /// Same-bank-group ACT spacing (`tRRD_L` >= `trrd`).
    pub trrd_l: u32,
}

impl Timings {
    /// Checks internal consistency (e.g. `tRC = tRAS + tRP`).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.trc != self.tras + self.trp {
            return Err(format!(
                "tRC ({}) must equal tRAS + tRP ({})",
                self.trc,
                self.tras + self.trp
            ));
        }
        if self.tras < self.trcd {
            return Err("tRAS must cover tRCD".into());
        }
        if self.trefi <= self.trfc {
            return Err("tREFI must exceed tRFC".into());
        }
        if self.tccd_l < self.tccd || self.trrd_l < self.trrd {
            return Err("same-group spacings must be >= cross-group ones".into());
        }
        Ok(())
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.t_ck_ns
    }

    /// Converts a duration in nanoseconds to cycles, rounding up.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.t_ck_ns).ceil() as u64
    }
}

impl Default for Timings {
    fn default() -> Self {
        SpeedBin::lpddr4_3200().timings(8)
    }
}

/// Timing modifiers for one activation flavour, as fractional scale factors
/// applied to the baseline `tRCD`/`tRAS`/`tWR`.
///
/// A scale of `0.62` means "38% reduction"; `1.18` means "18% increase".
/// The `*_early` variants apply when charge restoration is terminated early
/// (paper §4.1.3); the `*_full` variants when restoration runs to
/// completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActTimingMod {
    /// Scale on `tRCD`.
    pub trcd: f64,
    /// Scale on `tRAS` when fully restoring the charge.
    pub tras_full: f64,
    /// Scale on `tRAS` when terminating restoration early (earliest legal
    /// PRE). Equal to `tras_full` when partial restoration is disabled.
    pub tras_early: f64,
    /// Scale on `tWR` when fully restoring.
    pub twr_full: f64,
    /// Scale on `tWR` when terminating write restoration early.
    pub twr_early: f64,
}

impl ActTimingMod {
    /// The identity modifier (plain single-row `ACT`).
    pub fn identity() -> Self {
        Self {
            trcd: 1.0,
            tras_full: 1.0,
            tras_early: 1.0,
            twr_full: 1.0,
            twr_early: 1.0,
        }
    }

    /// Checks that scales are positive and `early <= full`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("trcd", self.trcd),
            ("tras_full", self.tras_full),
            ("tras_early", self.tras_early),
            ("twr_full", self.twr_full),
            ("twr_early", self.twr_early),
        ] {
            if !(0.05..=4.0).contains(&v) {
                return Err(format!("{name} scale {v} out of sane range"));
            }
        }
        if self.tras_early > self.tras_full {
            return Err("tras_early must not exceed tras_full".into());
        }
        if self.twr_early > self.twr_full {
            return Err("twr_early must not exceed twr_full".into());
        }
        Ok(())
    }
}

/// The full set of multiple-row-activation timing modifiers (paper Table 1),
/// plus the switch controlling whether early restoration termination
/// (partial restoration, §4.1.3) is permitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MraTimings {
    /// `ACT-t` on a fully-restored regular/copy row pair.
    pub act_t_full: ActTimingMod,
    /// `ACT-t` on a partially-restored pair.
    pub act_t_partial: ActTimingMod,
    /// `ACT-c` (activate-and-copy).
    pub act_c: ActTimingMod,
    /// Whether the controller may precharge before full restoration.
    pub allow_partial_restore: bool,
}

impl MraTimings {
    /// The values of paper Table 1 (derived from the authors' SPICE model;
    /// our `crow-circuit` crate reproduces them analytically).
    pub fn paper_table1() -> Self {
        Self {
            act_t_full: ActTimingMod {
                trcd: 0.62,       // -38%
                tras_full: 0.93,  // -7%
                tras_early: 0.67, // -33%
                twr_full: 1.14,   // +14%
                twr_early: 0.87,  // -13%
            },
            act_t_partial: ActTimingMod {
                trcd: 0.79,       // -21%
                tras_full: 0.93,  // -7%
                tras_early: 0.75, // -25%
                twr_full: 1.14,   // +14%
                twr_early: 0.87,  // -13%
            },
            act_c: ActTimingMod {
                trcd: 1.0,        // unchanged
                tras_full: 1.18,  // +18%
                tras_early: 0.93, // -7%
                twr_full: 1.14,   // +14%
                twr_early: 0.87,  // -13%
            },
            allow_partial_restore: true,
        }
    }

    /// The evaluated CROW-cache operating point (paper §5.1): with early
    /// termination enabled the controller uses the −21% `tRCD` / −33% `tRAS`
    /// point for fully-restored pairs.
    ///
    /// Note the trade-off: committing to early termination costs `tRCD`
    /// (−21% instead of −38%) but buys a large `tRAS` cut.
    pub fn paper_operating_point() -> Self {
        let mut t = Self::paper_table1();
        t.act_t_full.trcd = 0.79; // -21%, the early-termination trade-off
        t
    }

    /// Modifiers with partial restoration disabled (ablation: isolate the
    /// contribution of §4.1.3). `tRAS`/`tWR` must always run to `*_full`.
    pub fn no_partial_restore() -> Self {
        let mut t = Self::paper_table1();
        t.allow_partial_restore = false;
        t.act_t_full.tras_early = t.act_t_full.tras_full;
        t.act_t_full.twr_early = t.act_t_full.twr_full;
        t.act_t_partial.tras_early = t.act_t_partial.tras_full;
        t.act_t_partial.twr_early = t.act_t_partial.twr_full;
        t.act_c.tras_early = t.act_c.tras_full;
        t.act_c.twr_early = t.act_c.twr_full;
        t
    }

    /// Validates every contained modifier.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid [`ActTimingMod`].
    pub fn validate(&self) -> Result<(), String> {
        self.act_t_full.validate()?;
        self.act_t_partial.validate()?;
        self.act_c.validate()?;
        Ok(())
    }
}

impl Default for MraTimings {
    fn default() -> Self {
        Self::paper_operating_point()
    }
}

/// Scales a cycle count by a factor, rounding up and never below 1.
pub(crate) fn scale_cycles(base: u32, scale: f64) -> u32 {
    ((f64::from(base) * scale).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cycle_counts_match_table2() {
        // Paper Table 2: tRCD/tRAS/tWR = 29 (18) / 67 (42) / 29 (18)
        // cycles (ns).
        let t = SpeedBin::lpddr4_3200().timings(8);
        assert_eq!(t.trcd, 29);
        assert_eq!(t.tras, 68); // ceil(42/0.625) = 67.2 -> 68; paper rounds to 67
        assert_eq!(t.twr, 29);
        assert_eq!(t.trp, 29);
        t.validate().unwrap();
    }

    #[test]
    fn trfc_monotone_in_density() {
        let mut prev = 0.0;
        for d in [8, 16, 32, 64] {
            let v = SpeedBin::trfc_ns(d);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn table1_deltas() {
        let m = MraTimings::paper_table1();
        m.validate().unwrap();
        assert!((m.act_t_full.trcd - 0.62).abs() < 1e-9);
        assert!((m.act_c.tras_full - 1.18).abs() < 1e-9);
    }

    #[test]
    fn operating_point_uses_relaxed_trcd() {
        let m = MraTimings::paper_operating_point();
        assert!((m.act_t_full.trcd - 0.79).abs() < 1e-9);
        assert!((m.act_t_full.tras_early - 0.67).abs() < 1e-9);
    }

    #[test]
    fn no_partial_restore_pins_early_to_full() {
        let m = MraTimings::no_partial_restore();
        assert!(!m.allow_partial_restore);
        assert_eq!(m.act_c.tras_early, m.act_c.tras_full);
        m.validate().unwrap();
    }

    #[test]
    fn scale_cycles_rounds_up_and_floors_at_one() {
        assert_eq!(scale_cycles(29, 0.62), 18);
        assert_eq!(scale_cycles(10, 0.01), 1);
        assert_eq!(scale_cycles(68, 1.18), 81);
    }

    #[test]
    fn ns_cycle_roundtrip() {
        let t = Timings::default();
        assert_eq!(t.ns_to_cycles(t.cycles_to_ns(120)), 120);
    }

    #[test]
    fn invalid_mod_rejected() {
        let mut m = ActTimingMod::identity();
        m.tras_early = 1.5;
        m.tras_full = 1.0;
        assert!(m.validate().is_err());
    }
}
