//! Functional data-integrity oracle.
//!
//! The oracle shadows the charge and content state of every row that a
//! command stream touches and flags the correctness hazards the CROW paper
//! identifies:
//!
//! * a **partially-restored** row must never be activated alone (paper
//!   §4.1.4 — this would read corrupted data);
//! * `ACT-t` must only pair a regular row with a copy row holding **the
//!   same data** (paper §3.1);
//! * `ACT-c` must not source from a partially-restored row.
//!
//! Content is tracked as opaque version tokens: a write mints a fresh
//! token for every open row, and `ACT-c` copies the source token to the
//! destination. Higher-level tests map tokens back to request streams.

use std::collections::HashMap;

use crate::bank::{OpenRow, RestoreState};
use crate::command::{ActKind, RowAddr};

/// Key identifying one physical row in the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RowKey {
    rank: u32,
    bank: u32,
    row: RowAddr,
}

#[derive(Debug, Clone, Copy)]
struct RowInfo {
    content: u64,
    restore: RestoreState,
}

/// Shadow model of row charge and content; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct DataOracle {
    rows: HashMap<RowKey, RowInfo>,
    next_token: u64,
    violations: Vec<String>,
    reads: u64,
    /// Subarray width; set by the channel on attach.
    rows_per_subarray: u32,
}

impl DataOracle {
    /// Creates an empty oracle; untouched rows are fully restored with
    /// unique initial content. Used standalone in tests with
    /// [`DataOracle::with_geometry`]; the channel attaches its own.
    pub fn new() -> Self {
        Self {
            rows_per_subarray: 512,
            ..Self::default()
        }
    }

    /// Creates an oracle for a given subarray width.
    pub fn with_geometry(rows_per_subarray: u32) -> Self {
        Self {
            rows_per_subarray,
            ..Self::default()
        }
    }

    /// Violations observed so far (empty means the stream is clean).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of reads observed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Panics with a report if any violation has been recorded.
    ///
    /// # Panics
    ///
    /// Panics if the command stream violated a data-integrity invariant.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "data-integrity violations: {:#?}",
            self.violations
        );
    }

    /// The current content token of a row (for test-side verification).
    pub fn content_of(&mut self, rank: u32, bank: u32, row: RowAddr) -> u64 {
        self.info(RowKey { rank, bank, row }).content
    }

    fn info(&mut self, key: RowKey) -> RowInfo {
        if let Some(i) = self.rows.get(&key) {
            return *i;
        }
        self.next_token += 1;
        let info = RowInfo {
            content: self.next_token,
            restore: RestoreState::Full,
        };
        self.rows.insert(key, info);
        info
    }

    fn set(&mut self, key: RowKey, info: RowInfo) {
        self.rows.insert(key, info);
    }

    fn copy_key(&self, rank: u32, bank: u32, regular_row: u32, idx: u8) -> RowKey {
        RowKey {
            rank,
            bank,
            row: RowAddr::Copy {
                subarray: regular_row / self.rows_per_subarray,
                idx,
            },
        }
    }

    /// Records an activation.
    pub(crate) fn on_act(&mut self, rank: u32, bank: u32, kind: ActKind) {
        match kind {
            ActKind::Single(addr) => {
                let info = self.info(RowKey {
                    rank,
                    bank,
                    row: addr,
                });
                if info.restore == RestoreState::Partial {
                    self.violations.push(format!(
                        "single ACT on partially-restored row {addr:?} (rank {rank}, bank {bank})"
                    ));
                }
            }
            ActKind::Copy { src, copy } => {
                let skey = RowKey {
                    rank,
                    bank,
                    row: RowAddr::Regular(src),
                };
                let sinfo = self.info(skey);
                if sinfo.restore == RestoreState::Partial {
                    self.violations.push(format!(
                        "ACT-c sourcing from partially-restored row {src} \
                         (rank {rank}, bank {bank})"
                    ));
                }
                // The copy completes during restoration: destination adopts
                // the source content.
                let dkey = self.copy_key(rank, bank, src, copy);
                self.set(
                    dkey,
                    RowInfo {
                        content: sinfo.content,
                        restore: RestoreState::Full,
                    },
                );
            }
            ActKind::Twin { row, copy, .. } => {
                let rkey = RowKey {
                    rank,
                    bank,
                    row: RowAddr::Regular(row),
                };
                let ckey = self.copy_key(rank, bank, row, copy);
                let rinfo = self.info(rkey);
                let cinfo = self.info(ckey);
                if rinfo.content != cinfo.content {
                    self.violations.push(format!(
                        "ACT-t on rows with different contents: regular {row} \
                         vs copy {copy} (rank {rank}, bank {bank})"
                    ));
                }
            }
        }
    }

    /// Records a write to the open row(s): both rows of a pair receive the
    /// same fresh content token.
    pub(crate) fn on_write(&mut self, rank: u32, bank: u32, open: OpenRow) {
        self.next_token += 1;
        let token = self.next_token;
        for key in self.keys_of(rank, bank, open) {
            let mut info = self.info(key);
            info.content = token;
            self.set(key, info);
        }
    }

    /// Records a precharge and the restoration outcome of the closed rows.
    pub(crate) fn on_pre(&mut self, rank: u32, bank: u32, open: OpenRow, restore: RestoreState) {
        for key in self.keys_of(rank, bank, open) {
            let mut info = self.info(key);
            info.restore = restore;
            self.set(key, info);
        }
    }

    /// Records a read (counted; content verification is caller-driven via
    /// [`DataOracle::content_of`]).
    pub(crate) fn note_read(&mut self, _rank: u32, _bank: u32) {
        self.reads += 1;
    }

    fn keys_of(&self, rank: u32, bank: u32, open: OpenRow) -> Vec<RowKey> {
        match open {
            OpenRow::Single(addr) => vec![RowKey {
                rank,
                bank,
                row: addr,
            }],
            OpenRow::Pair { row, copy } => vec![
                RowKey {
                    rank,
                    bank,
                    row: RowAddr::Regular(row),
                },
                self.copy_key(rank, bank, row, copy),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_act_on_partial_row_flagged() {
        let mut o = DataOracle::new();
        // Close row 5 partially restored.
        o.on_pre(
            0,
            0,
            OpenRow::Pair { row: 5, copy: 0 },
            RestoreState::Partial,
        );
        o.on_act(0, 0, ActKind::single(5));
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn act_t_after_act_c_is_clean() {
        let mut o = DataOracle::new();
        o.on_act(0, 0, ActKind::Copy { src: 9, copy: 1 });
        o.on_pre(0, 0, OpenRow::Pair { row: 9, copy: 1 }, RestoreState::Full);
        o.on_act(
            0,
            0,
            ActKind::Twin {
                row: 9,
                copy: 1,
                fully_restored: true,
            },
        );
        o.assert_clean();
    }

    #[test]
    fn act_t_without_prior_copy_flagged() {
        let mut o = DataOracle::new();
        o.on_act(
            0,
            0,
            ActKind::Twin {
                row: 9,
                copy: 1,
                fully_restored: true,
            },
        );
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn write_updates_both_rows_of_pair() {
        let mut o = DataOracle::new();
        o.on_act(0, 0, ActKind::Copy { src: 9, copy: 1 });
        o.on_write(0, 0, OpenRow::Pair { row: 9, copy: 1 });
        let r = o.content_of(0, 0, RowAddr::Regular(9));
        let c = o.content_of(
            0,
            0,
            RowAddr::Copy {
                subarray: 0,
                idx: 1,
            },
        );
        assert_eq!(r, c);
        // A later ACT-t stays clean because contents still match.
        o.on_pre(0, 0, OpenRow::Pair { row: 9, copy: 1 }, RestoreState::Full);
        o.on_act(
            0,
            0,
            ActKind::Twin {
                row: 9,
                copy: 1,
                fully_restored: true,
            },
        );
        o.assert_clean();
    }

    #[test]
    fn stale_copy_after_single_row_write_flagged() {
        let mut o = DataOracle::new();
        // Duplicate row 9, close fully restored.
        o.on_act(0, 0, ActKind::Copy { src: 9, copy: 0 });
        o.on_pre(0, 0, OpenRow::Pair { row: 9, copy: 0 }, RestoreState::Full);
        // Write row 9 alone (e.g. after the CROW-table entry was evicted).
        o.on_act(0, 0, ActKind::single(9));
        o.on_write(0, 0, OpenRow::Single(RowAddr::Regular(9)));
        o.on_pre(
            0,
            0,
            OpenRow::Single(RowAddr::Regular(9)),
            RestoreState::Full,
        );
        // ACT-t with the stale copy row must be flagged.
        o.on_act(
            0,
            0,
            ActKind::Twin {
                row: 9,
                copy: 0,
                fully_restored: true,
            },
        );
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn copy_rows_in_different_subarrays_are_distinct() {
        let mut o = DataOracle::with_geometry(64);
        o.on_act(0, 0, ActKind::Copy { src: 3, copy: 0 });
        o.on_act(0, 0, ActKind::Copy { src: 70, copy: 0 });
        let c0 = o.content_of(
            0,
            0,
            RowAddr::Copy {
                subarray: 0,
                idx: 0,
            },
        );
        let c1 = o.content_of(
            0,
            0,
            RowAddr::Copy {
                subarray: 1,
                idx: 0,
            },
        );
        assert_ne!(c0, c1);
        o.assert_clean();
    }
}
