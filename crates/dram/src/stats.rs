//! Per-channel command statistics.

use crate::command::Command;

/// Counters of commands issued on one channel, used by the energy model and
/// by experiment reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    issued: [u64; 8],
}

impl ChannelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one issue of `cmd`.
    pub fn record(&mut self, cmd: Command) {
        self.issued[cmd.index()] += 1;
    }

    /// Number of times `cmd` has issued.
    pub fn issued(&self, cmd: Command) -> u64 {
        self.issued[cmd.index()]
    }

    /// Total activations of any flavour (`ACT` + `ACT-c` + `ACT-t`).
    pub fn total_activations(&self) -> u64 {
        self.issued(Command::Act) + self.issued(Command::ActC) + self.issued(Command::ActT)
    }

    /// Total column accesses (`RD` + `WR`).
    pub fn total_column_accesses(&self) -> u64 {
        self.issued(Command::Rd) + self.issued(Command::Wr)
    }

    /// Total commands issued, of any kind.
    pub fn issued_total(&self) -> u64 {
        self.issued.iter().sum()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        for i in 0..self.issued.len() {
            self.issued[i] += other.issued[i];
        }
    }

    /// The raw per-command counters, indexed by [`Command::index`]
    /// (campaign journal serialization).
    pub fn snapshot(&self) -> [u64; 8] {
        self.issued
    }

    /// Rebuilds a counter set from a [`ChannelStats::snapshot`].
    pub fn from_snapshot(issued: [u64; 8]) -> Self {
        Self { issued }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = ChannelStats::new();
        s.record(Command::Act);
        s.record(Command::ActT);
        s.record(Command::Rd);
        s.record(Command::Rd);
        assert_eq!(s.issued(Command::Act), 1);
        assert_eq!(s.total_activations(), 2);
        assert_eq!(s.total_column_accesses(), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = ChannelStats::new();
        a.record(Command::Pre);
        let mut b = ChannelStats::new();
        b.record(Command::Pre);
        b.record(Command::Ref);
        a.merge(&b);
        assert_eq!(a.issued(Command::Pre), 2);
        assert_eq!(a.issued(Command::Ref), 1);
    }
}
