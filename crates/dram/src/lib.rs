//! # crow-dram
//!
//! A cycle-accurate LPDDR4 DRAM device and timing model, built from scratch
//! as the simulation substrate for the CROW reproduction (Hassan et al.,
//! *CROW: A Low-Cost Substrate for Improving DRAM Performance, Energy
//! Efficiency, and Reliability*, ISCA 2019).
//!
//! The crate models a DRAM **channel** as a hierarchy of ranks, banks, and
//! subarrays, enforcing all JEDEC-style timing constraints between commands
//! (`tRCD`, `tRAS`, `tRP`, `tWR`, `tRTP`, `tCCD`, `tRRD`, `tFAW`, `tWTR`,
//! `tREFI`, `tRFC`, read/write latencies and bus turnarounds). On top of the
//! standard command set (`ACT`, `RD`, `WR`, `PRE`, `REF`) it implements the
//! two multiple-row-activation commands that CROW introduces:
//!
//! * **`ACT-c`** (activate-and-copy): activates a regular row, then a copy
//!   row in the same subarray once the sense amplifiers have latched the
//!   data, duplicating the row RowClone-style (paper §4.1.1).
//! * **`ACT-t`** (activate-two): simultaneously activates a regular row and
//!   its duplicate copy row, reducing activation latency (paper §4.1.2).
//!
//! Timing deltas for these commands (paper Table 1) are configurable via
//! [`MraTimings`] and are derived analytically by the `crow-circuit` crate.
//!
//! The device also supports **subarray-level parallelism** (multiple live
//! local row buffers per bank) so that the SALP baseline of the paper's
//! §8.1.4 can be modeled with the same timing engine.
//!
//! An [`oracle::DataOracle`] can be attached to verify functional correctness
//! of every command stream: reads observe the latest write through any
//! CROW remapping/duplication, and a partially-restored row is never
//! activated as a single row (the data-corruption hazard of paper §4.1.4).
//!
//! ## Example
//!
//! ```
//! use crow_dram::{DramConfig, DramChannel, CmdDesc, ActKind, Command};
//!
//! let cfg = DramConfig::lpddr4_default();
//! let mut ch = DramChannel::new(cfg);
//! // Activate row 7 of bank 0 and read column 3.
//! let act = CmdDesc::act(0, 0, ActKind::single(7));
//! assert!(ch.check(&act, 0).is_ok());
//! ch.issue(&act, 0);
//! let rd = CmdDesc::rd(0, 0, 3);
//! let ready = ch.ready_at(&rd).unwrap();
//! ch.issue(&rd, ready);
//! assert_eq!(ch.stats().issued(Command::Rd), 1);
//! ```

pub mod addr;
pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod error;
pub mod oracle;
pub mod stats;
pub mod timing;
pub mod validator;

pub use addr::{Addr, AddrMapper, MapScheme, PhysAddr};
pub use bank::{Activation, BankState, OpenRow, RestoreState, SubarrayState};
pub use channel::DramChannel;
pub use command::{ActKind, CmdDesc, Command, RowAddr};
pub use config::DramConfig;
pub use error::{ConfigError, IssueError};
pub use oracle::DataOracle;
pub use stats::ChannelStats;
pub use timing::{ActTimingMod, MraTimings, SpeedBin, Timings};
pub use validator::{ProtocolViolation, ShadowValidator, TimingRule, ViolationKind};

/// A point in time, measured in memory-controller (DRAM bus) clock cycles.
pub type Cycle = u64;
