//! The DRAM channel: the timing engine that checks and applies every
//! command against the full LPDDR4 constraint set, including the CROW
//! multiple-row-activation flavours.

use std::cell::Cell;
use std::collections::VecDeque;

use crate::bank::{Activation, BankState, OpenRow, RestoreState};
use crate::command::{ActKind, CmdDesc, Command, RowAddr};
use crate::config::DramConfig;
use crate::error::{ConfigError, IssueError};
use crate::oracle::DataOracle;
use crate::stats::ChannelStats;
use crate::timing::scale_cycles;
use crate::validator::ShadowValidator;
use crate::Cycle;

/// Rank-level timing state.
#[derive(Debug, Clone)]
struct RankState {
    banks: Vec<BankState>,
    /// Earliest next activate anywhere in the rank (`tRRD_S`, `tFAW`).
    next_act: Cycle,
    /// Earliest next activate per bank group (`tRRD_L`).
    next_act_group: Vec<Cycle>,
    /// Earliest next `RD` (`tCCD_S`, write-to-read turnaround).
    next_rd: Cycle,
    /// Earliest next `RD` per bank group (`tCCD_L`).
    next_rd_group: Vec<Cycle>,
    /// Earliest next `WR` (`tCCD_S`, read-to-write turnaround).
    next_wr: Cycle,
    /// Earliest next `WR` per bank group (`tCCD_L`).
    next_wr_group: Vec<Cycle>,
    /// Issue times of the most recent activates, for `tFAW`.
    faw: VecDeque<Cycle>,
    /// Earliest cycle a `REF` may issue (`tRP` after the latest `PRE`).
    ref_ready: Cycle,
    /// Earliest next per-bank refresh (`tpbR2pbR`).
    next_refpb: Cycle,
}

impl RankState {
    fn new(banks: u32, subarrays: u32, groups: u32) -> Self {
        Self {
            banks: (0..banks).map(|_| BankState::new(subarrays)).collect(),
            next_act: 0,
            next_act_group: vec![0; groups as usize],
            next_rd: 0,
            next_rd_group: vec![0; groups as usize],
            next_wr: 0,
            next_wr_group: vec![0; groups as usize],
            faw: VecDeque::with_capacity(4),
            ref_ready: 0,
            next_refpb: 0,
        }
    }
}

/// A row that a `PRE` just closed, reported to the controller so it can
/// update CROW-table restoration state (paper §4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedRow {
    /// Subarray whose row buffer was precharged.
    pub subarray: u32,
    /// What was open.
    pub open: OpenRow,
    /// Whether the cells ended fully or partially restored.
    pub restore: RestoreState,
    /// How long the sense amplifiers drove restoration, in cycles
    /// (capped at the full-restoration point) — used by the energy model:
    /// early-terminated restoration transfers less charge (paper §4.1.3).
    pub restore_drive: u64,
}

/// Memoized answer of [`DramChannel::ready_at`] for one command, valid
/// only while no intervening `issue` has mutated timing state (tracked
/// by the channel's issue stamp). `ready_at` is a pure function of the
/// channel state, so replaying a cached answer is exact, not an
/// approximation — the memo only skips recomputation.
#[derive(Debug, Clone, Copy)]
struct ReadyMemo {
    cmd: CmdDesc,
    stamp: u64,
    ready: Cycle,
}

/// Side effects of issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IssueFx {
    /// Set by `PRE`: the row(s) that closed and their restoration outcome.
    pub closed: Option<ClosedRow>,
    /// Set by `RD`: the cycle at which the burst completes on the data bus.
    pub read_done: Option<Cycle>,
    /// Set by `WR`: the cycle at which the burst completes on the data bus.
    pub write_done: Option<Cycle>,
}

/// One DRAM channel: ranks of banks of subarrays, with full command
/// legality checking.
///
/// The controller drives the channel with a *check-then-issue* protocol:
/// [`DramChannel::ready_at`] reports the earliest legal issue cycle for a
/// command (or a structural error), and [`DramChannel::issue`] applies it.
/// `issue` debug-asserts legality, so any scheduler bug that would violate
/// a JEDEC timing constraint is caught in tests.
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    ranks: Vec<RankState>,
    /// Command bus occupancy: next free cycle.
    cmd_bus_free: Cycle,
    stats: ChannelStats,
    oracle: Option<DataOracle>,
    /// Optional shadow protocol validator cross-checking every issued
    /// command against an independent state machine.
    validator: Option<Box<ShadowValidator>>,
    /// Monotonic count of issued commands; bumping it invalidates every
    /// [`ReadyMemo`] at once.
    issue_stamp: u64,
    /// Per-(rank, bank) memo of the last `check` answer, so schedulers
    /// that re-poll the same head-of-queue command every cycle skip the
    /// full constraint walk until the next `issue`.
    ready_cache: Vec<Cell<Option<ReadyMemo>>>,
}

impl DramChannel {
    /// Creates a channel in the all-banks-closed state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`]; use
    /// [`DramChannel::try_new`] to handle the failure instead.
    pub fn new(cfg: DramConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(ch) => ch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a channel in the all-banks-closed state, validating the
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `cfg` fails [`DramConfig::validate`].
    pub fn try_new(cfg: DramConfig) -> Result<Self, ConfigError> {
        cfg.validate()
            .map_err(|reason| ConfigError::new("DramConfig", reason))?;
        let ranks = (0..cfg.ranks)
            .map(|_| RankState::new(cfg.banks, cfg.subarrays_per_bank(), cfg.bank_groups))
            .collect();
        let ready_cache = (0..cfg.ranks * cfg.banks)
            .map(|_| Cell::new(None))
            .collect();
        Ok(Self {
            cfg,
            ranks,
            cmd_bus_free: 0,
            stats: ChannelStats::new(),
            oracle: None,
            validator: None,
            issue_stamp: 0,
            ready_cache,
        })
    }

    /// Attaches a functional data-integrity oracle; every subsequent
    /// command is cross-checked (intended for tests).
    pub fn attach_oracle(&mut self) {
        self.oracle = Some(DataOracle::with_geometry(self.cfg.rows_per_subarray));
    }

    /// The attached oracle, if any.
    pub fn oracle(&self) -> Option<&DataOracle> {
        self.oracle.as_ref()
    }

    /// Mirrors one functional fast-forward activation into the attached
    /// oracle (no-op without one). Interval sampling advances the CROW
    /// table without issuing commands, so the data-movement side
    /// effects the detailed command stream would have carried — `ACT-c`
    /// content adoption, `ACT-t` content checks, the restoration
    /// outcome at the closing precharge — are replayed here to keep the
    /// oracle's shadow state consistent across sampled runs.
    pub fn warm_act(&mut self, rank: u32, bank: u32, kind: ActKind, restore: RestoreState) {
        let Some(o) = self.oracle.as_mut() else {
            return;
        };
        o.on_act(rank, bank, kind);
        let open = match kind {
            ActKind::Single(addr) => OpenRow::Single(addr),
            ActKind::Copy { src, copy } => OpenRow::Pair { row: src, copy },
            ActKind::Twin { row, copy, .. } => OpenRow::Pair { row, copy },
        };
        o.on_pre(rank, bank, open, restore);
    }

    /// Functionally closes every open row, as if the scheduler had
    /// issued a `PRE` to each at `now` (or at the earliest cycle its
    /// `tRAS`/`tWR` restore deadline allows, whichever is later). Used
    /// at sampling fast-forward boundaries: the functional advance
    /// mutates CROW-table state directly, and a stale open pair
    /// surviving from the drained segment would write through rows
    /// whose table entries no longer exist. The oracle, shadow
    /// validator, and timing memos are settled exactly as for issued
    /// precharges; returns one record per closed row so the controller
    /// can settle its own bookkeeping.
    pub fn close_all_open(&mut self, now: Cycle) -> Vec<(u32, u32, ClosedRow)> {
        let trp = u64::from(self.cfg.timings.trp);
        let salp = self.cfg.subarray_parallelism;
        let mut closed = Vec::new();
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            for (b, bank) in rank.banks.iter_mut().enumerate() {
                if bank.open_count == 0 {
                    continue;
                }
                for s in 0..bank.subarrays.len() {
                    let Some(act) = bank.subarrays[s].open.take() else {
                        continue;
                    };
                    let at = now.max(act.min_pre);
                    let restore = act.restored_if_closed_at(at);
                    let restore_drive = at.min(act.full_restore_at) - act.opened_at;
                    if let Some(o) = self.oracle.as_mut() {
                        o.on_pre(r as u32, b as u32, act.open, restore);
                    }
                    let sub = &mut bank.subarrays[s];
                    sub.next_act = sub.next_act.max(at + trp);
                    bank.open_count -= 1;
                    if !salp {
                        bank.next_act = bank.next_act.max(at + trp);
                    }
                    rank.ref_ready = rank.ref_ready.max(at + trp);
                    closed.push((
                        r as u32,
                        b as u32,
                        ClosedRow {
                            subarray: s as u32,
                            open: act.open,
                            restore,
                            restore_drive,
                        },
                    ));
                }
            }
        }
        if !closed.is_empty() {
            self.issue_stamp += 1;
            if let Some(v) = self.validator.as_mut() {
                v.force_close_all(now);
            }
        }
        closed
    }

    /// Attaches a shadow protocol validator; every subsequent command is
    /// cross-checked against an independent state machine and violations
    /// are recorded (never asserted).
    pub fn attach_validator(&mut self) {
        self.validator = Some(Box::new(ShadowValidator::new(&self.cfg)));
    }

    /// The attached shadow validator, if any.
    pub fn validator(&self) -> Option<&ShadowValidator> {
        self.validator.as_deref()
    }

    /// Mutable access to the attached shadow validator (e.g. to enable
    /// the refresh-gap check or run end-of-stream checks).
    pub fn validator_mut(&mut self) -> Option<&mut ShadowValidator> {
        self.validator.as_deref_mut()
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Command issue counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The open activation of `bank` (commodity mode: at most one).
    pub fn open_activation(&self, rank: u32, bank: u32) -> Option<(u32, &Activation)> {
        self.ranks[rank as usize].banks[bank as usize].open_activation()
    }

    /// The activation open in a specific subarray, if any.
    pub fn subarray_activation(&self, rank: u32, bank: u32, subarray: u32) -> Option<&Activation> {
        self.ranks[rank as usize].banks[bank as usize].subarrays[subarray as usize]
            .open
            .as_ref()
    }

    /// Number of open row buffers in `bank`.
    pub fn open_count(&self, rank: u32, bank: u32) -> u32 {
        self.ranks[rank as usize].banks[bank as usize].open_count
    }

    /// Whether every bank of `rank` is precharged (required before `REF`).
    pub fn all_banks_closed(&self, rank: u32) -> bool {
        self.ranks[rank as usize]
            .banks
            .iter()
            .all(|b| !b.any_open())
    }

    /// Earliest legal issue cycle for `d`, or a structural error if the
    /// device state cannot accept the command at any time.
    ///
    /// # Errors
    ///
    /// [`IssueError::WrongState`] if the command does not fit the current
    /// open/closed state; [`IssueError::BadAddress`] if it addresses
    /// outside the configured geometry.
    pub fn ready_at(&self, d: &CmdDesc) -> Result<Cycle, IssueError> {
        self.validate_addr(d)?;
        let rank = &self.ranks[d.rank as usize];
        let mut ready = self.cmd_bus_free;
        match d.cmd {
            Command::Act | Command::ActC | Command::ActT => {
                let kind = d
                    .act
                    .ok_or(IssueError::WrongState("activate without ActKind"))?;
                let sa = kind.subarray(self.cfg.rows_per_subarray);
                let bank = &rank.banks[d.bank as usize];
                let sa_state = &bank.subarrays[sa as usize];
                if sa_state.open.is_some() {
                    return Err(IssueError::WrongState("subarray already open"));
                }
                if !self.cfg.subarray_parallelism && bank.any_open() {
                    return Err(IssueError::WrongState("bank already has an open row"));
                }
                let group = self.cfg.bank_group_of(d.bank) as usize;
                ready = ready
                    .max(sa_state.next_act)
                    .max(rank.next_act)
                    .max(rank.next_act_group[group]);
                if !self.cfg.subarray_parallelism {
                    ready = ready.max(bank.next_act);
                }
                if rank.faw.len() == 4 {
                    ready = ready.max(rank.faw[0] + u64::from(self.cfg.timings.tfaw));
                }
            }
            Command::Rd | Command::Wr => {
                let (_, act) = self.resolve_open(d)?;
                let group = self.cfg.bank_group_of(d.bank) as usize;
                let col_ready = if d.cmd == Command::Rd {
                    act.ready_rd
                        .max(rank.next_rd)
                        .max(rank.next_rd_group[group])
                } else {
                    act.ready_wr
                        .max(rank.next_wr)
                        .max(rank.next_wr_group[group])
                };
                ready = ready.max(col_ready);
            }
            Command::Pre => {
                let (_, act) = self.resolve_open(d)?;
                ready = ready.max(act.min_pre);
            }
            Command::Ref => {
                if !self.all_banks_closed(d.rank) {
                    return Err(IssueError::WrongState("REF requires all banks closed"));
                }
                ready = ready.max(rank.ref_ready);
                for b in &rank.banks {
                    ready = ready.max(b.next_act.saturating_sub(u64::from(self.cfg.timings.trp)));
                }
            }
            Command::RefPb => {
                let bank = &rank.banks[d.bank as usize];
                if bank.any_open() {
                    return Err(IssueError::WrongState("REFpb requires the bank closed"));
                }
                ready = ready.max(rank.next_refpb).max(
                    bank.next_act
                        .saturating_sub(u64::from(self.cfg.timings.trp)),
                );
                for sa in &bank.subarrays {
                    ready = ready.max(sa.next_act.saturating_sub(u64::from(self.cfg.timings.trp)));
                }
            }
        }
        Ok(ready)
    }

    /// Checks whether `d` may issue at `now`.
    ///
    /// # Errors
    ///
    /// [`IssueError::TooEarly`] with the earliest legal cycle, or the
    /// structural errors of [`DramChannel::ready_at`].
    pub fn check(&self, d: &CmdDesc, now: Cycle) -> Result<(), IssueError> {
        let slot = (d.rank * self.cfg.banks + d.bank.min(self.cfg.banks - 1)) as usize;
        let ready = match self.ready_cache[slot].get() {
            Some(m) if m.stamp == self.issue_stamp && m.cmd == *d => m.ready,
            _ => {
                let ready = self.ready_at(d)?;
                self.ready_cache[slot].set(Some(ReadyMemo {
                    cmd: *d,
                    stamp: self.issue_stamp,
                    ready,
                }));
                ready
            }
        };
        if ready > now {
            Err(IssueError::TooEarly { ready_at: ready })
        } else {
            Ok(())
        }
    }

    /// Issues `d` at cycle `now`, updating all timing state.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the command is not legal at `now`
    /// (schedulers must call [`DramChannel::check`] first).
    pub fn issue(&mut self, d: &CmdDesc, now: Cycle) -> IssueFx {
        if let Some(v) = self.validator.as_deref_mut() {
            v.observe(d, now);
        }
        debug_assert!(
            self.check(d, now).is_ok(),
            "illegal issue of {:?} at {now}: {:?}",
            d,
            self.check(d, now)
        );
        self.issue_stamp += 1;
        self.stats.record(d.cmd);
        let extra = if matches!(d.cmd, Command::ActC | Command::ActT) {
            u64::from(self.cfg.mra_extra_cmd_cycles)
        } else {
            0
        };
        self.cmd_bus_free = now + 1 + extra;
        let t = self.cfg.timings;
        let mra = self.cfg.mra;
        let salp = self.cfg.subarray_parallelism;
        let mut fx = IssueFx::default();
        match d.cmd {
            Command::Act | Command::ActC | Command::ActT => {
                let kind = d.act.expect("activate without ActKind");
                let sa = kind.subarray(self.cfg.rows_per_subarray);
                let (open, mut tmod) = match kind {
                    ActKind::Single(addr) => (
                        OpenRow::Single(addr),
                        crate::timing::ActTimingMod::identity(),
                    ),
                    ActKind::Copy { src, copy } => (OpenRow::Pair { row: src, copy }, mra.act_c),
                    ActKind::Twin {
                        row,
                        copy,
                        fully_restored,
                    } => {
                        let m = if fully_restored {
                            mra.act_t_full
                        } else {
                            mra.act_t_partial
                        };
                        (OpenRow::Pair { row, copy }, m)
                    }
                };
                if let Some(m) = d.act_mod {
                    tmod = m;
                }
                let trcd_eff = u64::from(scale_cycles(t.trcd, tmod.trcd));
                let tras_early = u64::from(scale_cycles(t.tras, tmod.tras_early));
                let tras_full = u64::from(scale_cycles(t.tras, tmod.tras_full));
                let act = Activation {
                    open,
                    opened_at: now,
                    ready_rd: now + trcd_eff,
                    ready_wr: now + trcd_eff,
                    min_pre: now + tras_early,
                    full_restore_at: now + tras_full,
                    last_use: now,
                };
                if let Some(o) = self.oracle.as_mut() {
                    o.on_act(d.rank, d.bank, kind);
                }
                let group = self.cfg.bank_group_of(d.bank) as usize;
                let rank = &mut self.ranks[d.rank as usize];
                let bank = &mut rank.banks[d.bank as usize];
                bank.subarrays[sa as usize].open = Some(act);
                bank.open_count += 1;
                rank.next_act = rank.next_act.max(now + u64::from(t.trrd));
                rank.next_act_group[group] =
                    rank.next_act_group[group].max(now + u64::from(t.trrd_l));
                if rank.faw.len() == 4 {
                    rank.faw.pop_front();
                }
                rank.faw.push_back(now);
            }
            Command::Rd => {
                let (sa, _) = self.resolve_open(d).expect("RD without open row");
                let done = now + u64::from(t.rl) + u64::from(t.tbl);
                fx.read_done = Some(done);
                if let Some(o) = self.oracle.as_mut() {
                    o.note_read(d.rank, d.bank);
                }
                let group = self.cfg.bank_group_of(d.bank) as usize;
                let rank = &mut self.ranks[d.rank as usize];
                let act = rank.banks[d.bank as usize].subarrays[sa as usize]
                    .open
                    .as_mut()
                    .expect("resolved open row vanished");
                act.last_use = now;
                act.min_pre = act.min_pre.max(now + u64::from(t.trtp));
                rank.next_rd = rank.next_rd.max(now + u64::from(t.tccd));
                rank.next_rd_group[group] =
                    rank.next_rd_group[group].max(now + u64::from(t.tccd_l));
                // Read-to-write turnaround: write data may not be driven
                // until the read burst has left the bus.
                let rtw =
                    (now + u64::from(t.rl) + u64::from(t.tbl) + 2).saturating_sub(u64::from(t.wl));
                rank.next_wr = rank.next_wr.max(rtw).max(now + u64::from(t.tccd));
            }
            Command::Wr => {
                let (sa, act_ro) = self.resolve_open(d).expect("WR without open row");
                let open = act_ro.open;
                let data_end = now + u64::from(t.wl) + u64::from(t.tbl);
                fx.write_done = Some(data_end);
                // Write recovery scales with the MRA flavour: restoring two
                // cells takes longer (paper Table 1: tWR +14% full / -13%
                // early-terminated; identical for ACT-c and ACT-t).
                let (twr_early, twr_full) = match open {
                    OpenRow::Single(_) => (t.twr, t.twr),
                    OpenRow::Pair { .. } => (
                        scale_cycles(t.twr, mra.act_t_full.twr_early),
                        scale_cycles(t.twr, mra.act_t_full.twr_full),
                    ),
                };
                if let Some(o) = self.oracle.as_mut() {
                    o.on_write(d.rank, d.bank, open);
                }
                let group = self.cfg.bank_group_of(d.bank) as usize;
                let rank = &mut self.ranks[d.rank as usize];
                let act = rank.banks[d.bank as usize].subarrays[sa as usize]
                    .open
                    .as_mut()
                    .expect("resolved open row vanished");
                act.last_use = now;
                act.min_pre = act.min_pre.max(data_end + u64::from(twr_early));
                act.full_restore_at = act.full_restore_at.max(data_end + u64::from(twr_full));
                rank.next_wr = rank.next_wr.max(now + u64::from(t.tccd));
                rank.next_wr_group[group] =
                    rank.next_wr_group[group].max(now + u64::from(t.tccd_l));
                rank.next_rd = rank.next_rd.max(data_end + u64::from(t.twtr));
            }
            Command::Pre => {
                let (sa, act_ro) = self.resolve_open(d).expect("PRE without open row");
                let restore = act_ro.restored_if_closed_at(now);
                let open = act_ro.open;
                let restore_drive = now.min(act_ro.full_restore_at) - act_ro.opened_at;
                if let Some(o) = self.oracle.as_mut() {
                    o.on_pre(d.rank, d.bank, open, restore);
                }
                let rank = &mut self.ranks[d.rank as usize];
                let bank = &mut rank.banks[d.bank as usize];
                bank.subarrays[sa as usize].open = None;
                bank.subarrays[sa as usize].next_act = now + u64::from(t.trp);
                bank.open_count -= 1;
                if !salp {
                    bank.next_act = bank.next_act.max(now + u64::from(t.trp));
                }
                rank.ref_ready = rank.ref_ready.max(now + u64::from(t.trp));
                fx.closed = Some(ClosedRow {
                    subarray: sa,
                    open,
                    restore,
                    restore_drive,
                });
            }
            Command::Ref => {
                let rank = &mut self.ranks[d.rank as usize];
                let busy_until = now + u64::from(t.trfc);
                for bank in &mut rank.banks {
                    bank.next_act = bank.next_act.max(busy_until);
                    for s in &mut bank.subarrays {
                        s.next_act = s.next_act.max(busy_until);
                    }
                }
            }
            Command::RefPb => {
                let rank = &mut self.ranks[d.rank as usize];
                let busy_until = now + u64::from(t.trfc_pb);
                let bank = &mut rank.banks[d.bank as usize];
                bank.next_act = bank.next_act.max(busy_until);
                for s in &mut bank.subarrays {
                    s.next_act = s.next_act.max(busy_until);
                }
                rank.next_refpb = now + u64::from(t.tpbr2pbr);
            }
        }
        fx
    }

    /// Resolves the activation a column/precharge command targets.
    fn resolve_open(&self, d: &CmdDesc) -> Result<(u32, &Activation), IssueError> {
        let bank = &self.ranks[d.rank as usize].banks[d.bank as usize];
        if let Some(sa) = d.subarray {
            if sa as usize >= bank.subarrays.len() {
                return Err(IssueError::BadAddress("subarray out of range"));
            }
            bank.subarrays[sa as usize]
                .open
                .as_ref()
                .map(|a| (sa, a))
                .ok_or(IssueError::WrongState("target subarray has no open row"))
        } else {
            bank.open_activation()
                .ok_or(IssueError::WrongState("bank has no open row"))
        }
    }

    /// Validates command addressing against the geometry.
    fn validate_addr(&self, d: &CmdDesc) -> Result<(), IssueError> {
        if d.rank >= self.cfg.ranks {
            return Err(IssueError::BadAddress("rank out of range"));
        }
        if d.cmd != Command::Ref && d.bank >= self.cfg.banks {
            return Err(IssueError::BadAddress("bank out of range"));
        }
        if let Some(kind) = d.act {
            let check_row = |r: u32| -> Result<(), IssueError> {
                if r >= self.cfg.rows_per_bank {
                    Err(IssueError::BadAddress("row out of range"))
                } else {
                    Ok(())
                }
            };
            let check_copy = |c: u8| -> Result<(), IssueError> {
                if c >= self.cfg.copy_rows_per_subarray {
                    Err(IssueError::BadAddress("copy row out of range"))
                } else {
                    Ok(())
                }
            };
            match kind {
                ActKind::Single(RowAddr::Regular(r)) => check_row(r)?,
                ActKind::Single(RowAddr::Copy { subarray, idx }) => {
                    if subarray >= self.cfg.subarrays_per_bank() {
                        return Err(IssueError::BadAddress("subarray out of range"));
                    }
                    check_copy(idx)?;
                }
                ActKind::Copy { src, copy } => {
                    check_row(src)?;
                    check_copy(copy)?;
                }
                ActKind::Twin { row, copy, .. } => {
                    check_row(row)?;
                    check_copy(copy)?;
                }
            }
        }
        if let Some(col) = d.col {
            if col >= self.cfg.cols_per_row() {
                return Err(IssueError::BadAddress("column out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn ch() -> DramChannel {
        DramChannel::new(DramConfig::tiny_test())
    }

    #[test]
    fn act_then_rd_obeys_trcd() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let rd = CmdDesc::rd(0, 0, 0);
        assert_eq!(
            c.check(&rd, u64::from(t.trcd) - 1),
            Err(IssueError::TooEarly {
                ready_at: u64::from(t.trcd)
            })
        );
        assert!(c.check(&rd, u64::from(t.trcd)).is_ok());
    }

    #[test]
    fn act_on_open_bank_rejected_in_commodity_mode() {
        let mut c = ch();
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let act2 = CmdDesc::act(0, 0, ActKind::single(300));
        assert!(matches!(
            c.check(&act2, 10_000),
            Err(IssueError::WrongState(_))
        ));
    }

    #[test]
    fn salp_mode_allows_open_rows_in_different_subarrays() {
        let mut cfg = DramConfig::tiny_test();
        cfg.subarray_parallelism = true;
        let mut c = DramChannel::new(cfg);
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        // Row 300 lives in a different subarray (64 rows per subarray).
        let act2 = CmdDesc::act(0, 0, ActKind::single(300));
        let ready = c.ready_at(&act2).unwrap();
        assert_eq!(ready, u64::from(t.trrd));
        c.issue(&act2, ready);
        assert_eq!(c.open_count(0, 0), 2);
        // Same subarray still conflicts.
        let act3 = CmdDesc::act(0, 0, ActKind::single(6));
        assert!(matches!(
            c.check(&act3, 10_000),
            Err(IssueError::WrongState(_))
        ));
    }

    #[test]
    fn pre_before_tras_rejected() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let pre = CmdDesc::pre(0, 0);
        assert!(matches!(
            c.check(&pre, u64::from(t.tras) - 1),
            Err(IssueError::TooEarly { .. })
        ));
        assert!(c.check(&pre, u64::from(t.tras)).is_ok());
    }

    #[test]
    fn act_t_reduces_trcd() {
        let mut c = ch();
        let t = c.config().timings;
        let m = c.config().mra;
        c.issue(
            &CmdDesc::act(
                0,
                0,
                ActKind::Twin {
                    row: 5,
                    copy: 0,
                    fully_restored: true,
                },
            ),
            0,
        );
        let rd = CmdDesc::rd(0, 0, 0);
        let expect = u64::from(scale_cycles(t.trcd, m.act_t_full.trcd));
        assert_eq!(c.ready_at(&rd).unwrap(), expect);
        assert!(expect < u64::from(t.trcd));
    }

    #[test]
    fn early_pre_reports_partial_restore() {
        let mut c = ch();
        let t = c.config().timings;
        let m = c.config().mra;
        c.issue(
            &CmdDesc::act(
                0,
                0,
                ActKind::Twin {
                    row: 5,
                    copy: 0,
                    fully_restored: true,
                },
            ),
            0,
        );
        let min_pre = u64::from(scale_cycles(t.tras, m.act_t_full.tras_early));
        let fx = c.issue(&CmdDesc::pre(0, 0), min_pre);
        let closed = fx.closed.unwrap();
        assert_eq!(closed.restore, RestoreState::Partial);
        assert_eq!(closed.open, OpenRow::Pair { row: 5, copy: 0 });
    }

    #[test]
    fn late_pre_reports_full_restore() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::Copy { src: 5, copy: 1 }), 0);
        // ACT-c full restoration threshold is tRAS * 1.18.
        let full_at = u64::from(scale_cycles(t.tras, c.config().mra.act_c.tras_full));
        let fx = c.issue(&CmdDesc::pre(0, 0), full_at);
        assert_eq!(fx.closed.unwrap().restore, RestoreState::Full);
    }

    #[test]
    fn write_extends_restore_deadline() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let wr = CmdDesc::wr(0, 0, 2);
        let wr_at = c.ready_at(&wr).unwrap();
        c.issue(&wr, wr_at);
        let pre = CmdDesc::pre(0, 0);
        let expect = wr_at + u64::from(t.wl) + u64::from(t.tbl) + u64::from(t.twr);
        assert_eq!(c.ready_at(&pre).unwrap(), expect);
    }

    #[test]
    fn read_write_turnarounds_enforced() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        let rd = CmdDesc::rd(0, 0, 0);
        let rd_at = c.ready_at(&rd).unwrap();
        c.issue(&rd, rd_at);
        // Read-to-write: the write burst may not start until the read
        // burst has left the shared data bus.
        let wr = CmdDesc::wr(0, 0, 1);
        let expect_rtw = rd_at + u64::from(t.rl) + u64::from(t.tbl) + 2 - u64::from(t.wl);
        assert_eq!(c.ready_at(&wr).unwrap(), expect_rtw);
        let wr_at = c.ready_at(&wr).unwrap();
        c.issue(&wr, wr_at);
        // Write-to-read: tWTR after the write burst completes.
        let rd2 = CmdDesc::rd(0, 0, 2);
        let expect_wtr = wr_at + u64::from(t.wl) + u64::from(t.tbl) + u64::from(t.twtr);
        assert_eq!(c.ready_at(&rd2).unwrap(), expect_wtr);
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let cfg = DramConfig::tiny_test();
        let t = cfg.timings;
        let mut c = DramChannel::new(cfg);
        let mut first_act = None;
        // Activate banks 0 and 1, precharge, re-activate: 4 activations.
        for i in 0..4u32 {
            let bank = i % 2;
            let act = CmdDesc::act(0, bank, ActKind::single(i * 70));
            let at = c.ready_at(&act).unwrap();
            c.issue(&act, at);
            first_act.get_or_insert(at);
            let pre = CmdDesc::pre(0, bank);
            let pre_at = c.ready_at(&pre).unwrap();
            c.issue(&pre, pre_at);
        }
        // The 5th activation must wait for the FAW window from the 1st.
        let act5 = CmdDesc::act(0, 0, ActKind::single(400));
        let ready = c.ready_at(&act5).unwrap();
        assert!(ready >= first_act.unwrap() + u64::from(t.tfaw));
        assert_eq!(c.stats().total_activations(), 4);
    }

    #[test]
    fn bank_groups_enforce_tccd_l_within_and_tccd_s_across() {
        let mut cfg = crate::config::DramConfig::ddr4_default();
        cfg.ranks = 1;
        let t = cfg.timings;
        assert!(t.tccd_l > t.tccd);
        let mut c = DramChannel::new(cfg);
        // Open a row in banks 0 (group 0), 1 (group 0), and 4 (group 1).
        for bank in [0u32, 1, 4] {
            let act = CmdDesc::act(0, bank, ActKind::single(5));
            let at = c.ready_at(&act).unwrap();
            c.issue(&act, at);
        }
        // Wait until every opened row is past its own tRCD so the only
        // remaining constraint is column spacing.
        let warm = [0u32, 1, 4]
            .iter()
            .map(|&b| c.ready_at(&CmdDesc::rd(0, b, 0)).unwrap())
            .max()
            .unwrap();
        let rd0 = CmdDesc::rd(0, 0, 0);
        let at0 = c.ready_at(&rd0).unwrap().max(warm);
        c.issue(&rd0, at0);
        // Same group (bank 1): must wait tCCD_L.
        let rd_same = CmdDesc::rd(0, 1, 0);
        assert_eq!(c.ready_at(&rd_same).unwrap(), at0 + u64::from(t.tccd_l));
        // Different group (bank 4): only tCCD_S.
        let rd_cross = CmdDesc::rd(0, 4, 0);
        assert_eq!(c.ready_at(&rd_cross).unwrap(), at0 + u64::from(t.tccd));
    }

    #[test]
    fn bank_groups_enforce_trrd_l() {
        let mut cfg = crate::config::DramConfig::ddr4_default();
        cfg.ranks = 1;
        let t = cfg.timings;
        let mut c = DramChannel::new(cfg);
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        // Same group: tRRD_L; cross group: tRRD_S.
        let same = CmdDesc::act(0, 1, ActKind::single(5));
        let cross = CmdDesc::act(0, 4, ActKind::single(5));
        assert_eq!(c.ready_at(&same).unwrap(), u64::from(t.trrd_l));
        assert_eq!(c.ready_at(&cross).unwrap(), u64::from(t.trrd));
    }

    #[test]
    fn refresh_requires_closed_banks_and_blocks_activates() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        assert!(matches!(
            c.check(&CmdDesc::refresh(0), 10_000),
            Err(IssueError::WrongState(_))
        ));
        let pre_at = c.ready_at(&CmdDesc::pre(0, 0)).unwrap();
        c.issue(&CmdDesc::pre(0, 0), pre_at);
        let ref_at = c.ready_at(&CmdDesc::refresh(0)).unwrap();
        assert_eq!(ref_at, pre_at + u64::from(t.trp));
        c.issue(&CmdDesc::refresh(0), ref_at);
        let act = CmdDesc::act(0, 1, ActKind::single(0));
        assert_eq!(c.ready_at(&act).unwrap(), ref_at + u64::from(t.trfc));
    }

    #[test]
    fn per_bank_refresh_keeps_other_banks_usable() {
        let mut c = ch();
        let t = c.config().timings;
        // Refresh bank 0; bank 1 must accept an ACT during tRFCpb.
        let refpb = CmdDesc::refresh_bank(0, 0);
        assert!(c.check(&refpb, 0).is_ok());
        c.issue(&refpb, 0);
        let act_other = CmdDesc::act(0, 1, ActKind::single(3));
        assert!(c.check(&act_other, 1).is_ok(), "bank 1 usable during REFpb");
        // Bank 0 itself is busy until tRFCpb.
        let act_same = CmdDesc::act(0, 0, ActKind::single(3));
        assert_eq!(c.ready_at(&act_same).unwrap(), u64::from(t.trfc_pb));
        assert_eq!(c.stats().issued(Command::RefPb), 1);
    }

    #[test]
    fn per_bank_refresh_spacing_enforced() {
        let mut c = ch();
        let t = c.config().timings;
        c.issue(&CmdDesc::refresh_bank(0, 0), 0);
        let next = CmdDesc::refresh_bank(0, 1);
        assert_eq!(c.ready_at(&next).unwrap(), u64::from(t.tpbr2pbr));
    }

    #[test]
    fn per_bank_refresh_requires_closed_bank() {
        let mut c = ch();
        c.issue(&CmdDesc::act(0, 0, ActKind::single(5)), 0);
        assert!(matches!(
            c.check(&CmdDesc::refresh_bank(0, 0), 10_000),
            Err(IssueError::WrongState(_))
        ));
        // Other banks can still refresh.
        assert!(c.check(&CmdDesc::refresh_bank(0, 1), 10_000).is_ok());
    }

    #[test]
    fn bad_addresses_rejected() {
        let c = ch();
        assert!(matches!(
            c.ready_at(&CmdDesc::act(0, 9, ActKind::single(0))),
            Err(IssueError::BadAddress(_))
        ));
        assert!(matches!(
            c.ready_at(&CmdDesc::act(0, 0, ActKind::single(100_000))),
            Err(IssueError::BadAddress(_))
        ));
        assert!(matches!(
            c.ready_at(&CmdDesc::act(0, 0, ActKind::Copy { src: 0, copy: 9 })),
            Err(IssueError::BadAddress(_))
        ));
        assert!(matches!(
            c.ready_at(&CmdDesc::rd(0, 0, 1 << 20)),
            Err(IssueError::BadAddress(_))
        ));
    }

    #[test]
    fn rd_without_open_row_rejected() {
        let c = ch();
        assert!(matches!(
            c.ready_at(&CmdDesc::rd(0, 0, 0)),
            Err(IssueError::WrongState(_))
        ));
    }

    #[test]
    fn act_c_keeps_baseline_trcd_but_raises_tras() {
        let mut c = ch();
        let t = c.config().timings;
        let m = c.config().mra;
        c.issue(&CmdDesc::act(0, 0, ActKind::Copy { src: 5, copy: 0 }), 0);
        assert_eq!(
            c.ready_at(&CmdDesc::rd(0, 0, 0)).unwrap(),
            u64::from(t.trcd)
        );
        // Earliest PRE for ACT-c is the early-termination point (tRAS·0.93).
        let expect_pre = u64::from(scale_cycles(t.tras, m.act_c.tras_early));
        assert_eq!(c.ready_at(&CmdDesc::pre(0, 0)).unwrap(), expect_pre);
    }

    #[test]
    fn mra_commands_occupy_extra_command_bus_cycle() {
        let mut c = ch();
        c.issue(&CmdDesc::act(0, 0, ActKind::Copy { src: 5, copy: 0 }), 0);
        // Next command cannot issue at cycle 1 (bus busy with copy-row addr).
        let act2 = CmdDesc::act(0, 1, ActKind::single(0));
        assert!(c.ready_at(&act2).unwrap() >= 2);
    }
}
