//! Bank and subarray state: open-row tracking, per-activation timing
//! deadlines, and restoration progress.

use crate::command::RowAddr;
use crate::Cycle;

/// Restoration level of a row's cell charge when its activation closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestoreState {
    /// Charge fully restored; the row can be activated alone.
    Full,
    /// Restoration was terminated early (paper §4.1.3); the row pair holds
    /// just enough aggregate charge for the refresh window and **must** be
    /// re-activated with `ACT-t` (both rows together).
    Partial,
}

/// What is currently latched in a subarray's local row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenRow {
    /// A single row (regular or copy) opened with plain `ACT`.
    Single(RowAddr),
    /// A regular row and its duplicate copy row, opened together by
    /// `ACT-c` or `ACT-t`.
    Pair {
        /// The regular row.
        row: u32,
        /// The copy-row index within the subarray.
        copy: u8,
    },
}

impl OpenRow {
    /// Whether a column access intended for regular row `row` can be
    /// served from this open entry.
    pub fn serves_regular(&self, row: u32) -> bool {
        match *self {
            OpenRow::Single(RowAddr::Regular(r)) => r == row,
            OpenRow::Single(RowAddr::Copy { .. }) => false,
            OpenRow::Pair { row: r, .. } => r == row,
        }
    }

    /// Whether a column access intended for the given copy row can be
    /// served from this open entry.
    pub fn serves_copy(&self, subarray: u32, idx: u8, rows_per_subarray: u32) -> bool {
        match *self {
            OpenRow::Single(RowAddr::Copy {
                subarray: s,
                idx: i,
            }) => s == subarray && i == idx,
            OpenRow::Pair { row, copy } => row / rows_per_subarray == subarray && copy == idx,
            _ => false,
        }
    }

    /// The regular row involved, if any.
    pub fn regular_row(&self) -> Option<u32> {
        match *self {
            OpenRow::Single(RowAddr::Regular(r)) => Some(r),
            OpenRow::Pair { row, .. } => Some(row),
            _ => None,
        }
    }
}

/// A live activation in one subarray: the open row(s) and the timing
/// deadlines the engine derived when the activate issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activation {
    /// What is open.
    pub open: OpenRow,
    /// Cycle the activate command issued.
    pub opened_at: Cycle,
    /// Earliest cycle a `RD` may issue (activate + effective `tRCD`).
    pub ready_rd: Cycle,
    /// Earliest cycle a `WR` may issue.
    pub ready_wr: Cycle,
    /// Earliest legal `PRE` (effective early-termination `tRAS`, pushed
    /// later by `RD`/`WR` recovery constraints).
    pub min_pre: Cycle,
    /// If `PRE` issues at or after this cycle, the open row(s) are fully
    /// restored; earlier, they close partially restored.
    pub full_restore_at: Cycle,
    /// Cycle of the most recent column access, for row-buffer timeout
    /// policies.
    pub last_use: Cycle,
}

impl Activation {
    /// Whether precharging at `now` would leave the row(s) fully restored.
    pub fn restored_if_closed_at(&self, now: Cycle) -> RestoreState {
        if now >= self.full_restore_at {
            RestoreState::Full
        } else {
            RestoreState::Partial
        }
    }
}

/// Per-subarray state: the live activation (if any) and the earliest cycle
/// the subarray may activate again.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubarrayState {
    /// The live activation, if the local row buffer holds a row.
    pub open: Option<Activation>,
    /// Earliest next `ACT` to this subarray (after `PRE`+`tRP`, `REF`+`tRFC`,
    /// or same-subarray `tRC`).
    pub next_act: Cycle,
}

/// Per-bank state: all subarrays plus bank-global constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct BankState {
    /// One state per subarray.
    pub subarrays: Vec<SubarrayState>,
    /// Earliest next `ACT` anywhere in the bank (commodity DRAM: `tRP`
    /// after a `PRE`, `tRC` after an `ACT`, `tRFC` after `REF`).
    pub next_act: Cycle,
    /// Number of subarrays currently holding an open row.
    pub open_count: u32,
}

impl BankState {
    /// Creates a bank with `subarrays` closed subarrays.
    pub fn new(subarrays: u32) -> Self {
        Self {
            subarrays: vec![SubarrayState::default(); subarrays as usize],
            next_act: 0,
            open_count: 0,
        }
    }

    /// The single open activation of a commodity (non-SALP) bank, if any.
    pub fn open_activation(&self) -> Option<(u32, &Activation)> {
        self.subarrays
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.open.as_ref().map(|a| (i as u32, a)))
    }

    /// Mutable variant of [`BankState::open_activation`].
    pub fn open_activation_mut(&mut self) -> Option<(u32, &mut Activation)> {
        self.subarrays
            .iter_mut()
            .enumerate()
            .find_map(|(i, s)| s.open.as_mut().map(|a| (i as u32, a)))
    }

    /// Whether any subarray holds an open row.
    pub fn any_open(&self) -> bool {
        self.open_count > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_row_serving() {
        let pair = OpenRow::Pair { row: 520, copy: 3 };
        assert!(pair.serves_regular(520));
        assert!(!pair.serves_regular(521));
        assert!(pair.serves_copy(1, 3, 512));
        assert!(!pair.serves_copy(0, 3, 512));

        let single = OpenRow::Single(RowAddr::Regular(7));
        assert!(single.serves_regular(7));
        assert!(!single.serves_copy(0, 0, 512));

        let copy = OpenRow::Single(RowAddr::Copy {
            subarray: 2,
            idx: 1,
        });
        assert!(copy.serves_copy(2, 1, 512));
        assert!(!copy.serves_regular(2));
        assert_eq!(copy.regular_row(), None);
        assert_eq!(pair.regular_row(), Some(520));
    }

    #[test]
    fn restore_threshold() {
        let act = Activation {
            open: OpenRow::Pair { row: 1, copy: 0 },
            opened_at: 100,
            ready_rd: 120,
            ready_wr: 120,
            min_pre: 145,
            full_restore_at: 168,
            last_use: 100,
        };
        assert_eq!(act.restored_if_closed_at(150), RestoreState::Partial);
        assert_eq!(act.restored_if_closed_at(168), RestoreState::Full);
    }

    #[test]
    fn bank_open_tracking() {
        let mut b = BankState::new(4);
        assert!(b.open_activation().is_none());
        b.subarrays[2].open = Some(Activation {
            open: OpenRow::Single(RowAddr::Regular(9)),
            opened_at: 0,
            ready_rd: 0,
            ready_wr: 0,
            min_pre: 0,
            full_restore_at: 0,
            last_use: 0,
        });
        b.open_count = 1;
        let (sa, act) = b.open_activation().unwrap();
        assert_eq!(sa, 2);
        assert!(act.open.serves_regular(9));
        assert!(b.any_open());
    }
}
