//! Seeded randomized test: a randomized but *protocol-correct* driver
//! issues long interleaved command streams against the device. The device's
//! `ready_at` supplies legal issue times (and `issue` debug-asserts
//! legality, so any timing-engine inconsistency panics), while the
//! attached data-integrity oracle verifies the CROW content/charge
//! semantics end to end:
//!
//! * a partially-restored pair is only ever re-activated with `ACT-t`;
//! * `ACT-t` only pairs rows whose contents are in sync (the driver
//!   deliberately desynchronizes duplicates by writing through
//!   single-row activations, then must re-copy before pairing again);
//! * `ACT-c` never sources a partially-restored row.
//!
//! Every stream is additionally cross-checked by the shadow protocol
//! validator (an independent state machine), which must agree that the
//! stream is violation-free; a mutation test proves the validator
//! catches a deliberately loosened `tFAW`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crow_dram::{
    ActKind, CmdDesc, Command, DramChannel, DramConfig, OpenRow, RestoreState, RowAddr,
    ShadowValidator, TimingRule, ViolationKind,
};

#[derive(Debug, Clone, Copy, PartialEq)]
enum RowShadow {
    /// No duplicate; fully restored.
    Plain,
    /// Duplicated into copy row `idx`, contents in sync, fully restored.
    DupSynced { idx: u8 },
    /// Duplicated, contents in sync, pair partially restored (must ACT-t).
    DupPartial { idx: u8 },
    /// Duplicate exists but holds stale data (row was written alone).
    DupStale { idx: u8 },
}

#[derive(Debug, Clone, Copy)]
struct OpenShadow {
    row: u32,
    wrote: bool,
}

fn driver(ops: Vec<(u8, u8, u8, u8)>) {
    let cfg = DramConfig::tiny_test(); // 2 banks, 8 subarrays x 64 rows, 2 copy rows
    let rows_per_sa = cfg.rows_per_subarray;
    let tras_full_deadline = |ch: &DramChannel, rank: u32, bank: u32| {
        ch.open_activation(rank, bank)
            .map(|(_, a)| a.full_restore_at)
            .expect("bank open")
    };
    let mut ch = DramChannel::new(cfg);
    ch.attach_oracle();
    ch.attach_validator();
    let mut now: u64 = 0;
    let mut shadow: std::collections::HashMap<(u32, u32), RowShadow> =
        std::collections::HashMap::new();
    // Which regular row currently owns each copy-row slot.
    let mut slots: std::collections::HashMap<(u32, u32, u8), u32> =
        std::collections::HashMap::new();
    let mut open: [Option<OpenShadow>; 2] = [None, None];

    let issue_at = |ch: &mut DramChannel, d: &CmdDesc, now: &mut u64, at_least: u64| {
        let ready = ch.ready_at(d).unwrap_or_else(|e| panic!("{d:?}: {e}"));
        *now = (*now).max(ready).max(at_least);
        ch.issue(d, *now)
    };

    for (bank_sel, row_sel, col_sel, action) in ops {
        let bank = u32::from(bank_sel) % 2;
        // Keep rows within two subarrays to force copy-row contention.
        let row = u32::from(row_sel) % (2 * rows_per_sa);
        let col = u32::from(col_sel) % 16;
        now += 1;
        match open[bank as usize] {
            Some(os) => match action % 4 {
                // Column accesses to the open row.
                0 => {
                    let d = CmdDesc::rd(0, bank, col);
                    issue_at(&mut ch, &d, &mut now, 0);
                }
                1 => {
                    let d = CmdDesc::wr(0, bank, col);
                    issue_at(&mut ch, &d, &mut now, 0);
                    open[bank as usize].as_mut().expect("open").wrote = true;
                }
                // Precharge, sometimes waiting for full restoration.
                wait_full => {
                    let at_least = if wait_full == 3 {
                        tras_full_deadline(&ch, 0, bank)
                    } else {
                        0
                    };
                    let d = CmdDesc::pre(0, bank);
                    let fx = issue_at(&mut ch, &d, &mut now, at_least);
                    let closed = fx.closed.expect("PRE closes");
                    let key = (bank, os.row);
                    let entry = shadow.entry(key).or_insert(RowShadow::Plain);
                    match (closed.open, closed.restore) {
                        (OpenRow::Pair { copy, .. }, RestoreState::Full) => {
                            *entry = RowShadow::DupSynced { idx: copy };
                        }
                        (OpenRow::Pair { copy, .. }, RestoreState::Partial) => {
                            *entry = RowShadow::DupPartial { idx: copy };
                        }
                        (OpenRow::Single(RowAddr::Regular(_)), _) => {
                            // A single activation that wrote desyncs any
                            // duplicate.
                            if os.wrote {
                                if let RowShadow::DupSynced { idx } | RowShadow::DupStale { idx } =
                                    *entry
                                {
                                    *entry = RowShadow::DupStale { idx };
                                }
                            }
                        }
                        (OpenRow::Single(RowAddr::Copy { .. }), _) => {}
                    }
                    open[bank as usize] = None;
                }
            },
            None => {
                // Activate `row`, choosing a protocol-correct flavour.
                let state = *shadow.get(&(bank, row)).unwrap_or(&RowShadow::Plain);
                let copy_slot = (row / rows_per_sa) as u8 % 2;
                let kind = match state {
                    RowShadow::DupPartial { idx } => ActKind::Twin {
                        row,
                        copy: idx,
                        fully_restored: false,
                    },
                    RowShadow::DupSynced { idx } => {
                        if action % 2 == 0 {
                            ActKind::Twin {
                                row,
                                copy: idx,
                                fully_restored: true,
                            }
                        } else {
                            ActKind::single(row)
                        }
                    }
                    RowShadow::DupStale { .. } | RowShadow::Plain => {
                        // (Re-)copying steals the slot from its current
                        // owner — legal only if the owner is fully
                        // restored (the controller's restore-before-evict
                        // rule, paper Sec. 4.1.4). Our driver simply
                        // declines the copy when the owner is partial.
                        let sa = row / rows_per_sa;
                        let owner = slots.get(&(bank, sa, copy_slot)).copied();
                        let owner_partial = owner.is_some_and(|o| {
                            matches!(shadow.get(&(bank, o)), Some(RowShadow::DupPartial { .. }))
                        });
                        if action % 3 == 0 && !owner_partial {
                            ActKind::Copy {
                                src: row,
                                copy: copy_slot,
                            }
                        } else {
                            ActKind::single(row)
                        }
                    }
                };
                let d = CmdDesc::act(0, bank, kind);
                issue_at(&mut ch, &d, &mut now, 0);
                if matches!(kind, ActKind::Copy { .. }) {
                    let sa = row / rows_per_sa;
                    // Demote the displaced owner: its duplicate is gone.
                    if let Some(prev) = slots.insert((bank, sa, copy_slot), row) {
                        if prev != row {
                            shadow.insert((bank, prev), RowShadow::Plain);
                        }
                    }
                    shadow.insert((bank, row), RowShadow::DupSynced { idx: copy_slot });
                }
                open[bank as usize] = Some(OpenShadow { row, wrote: false });
            }
        }
    }
    // Close everything and verify the oracle.
    for bank in 0..2u32 {
        if open[bank as usize].is_some() {
            let d = CmdDesc::pre(0, bank);
            let ready = ch.ready_at(&d).expect("pre legal");
            now = now.max(ready);
            ch.issue(&d, now);
        }
    }
    let refresh = CmdDesc::refresh(0);
    let ready = ch.ready_at(&refresh).expect("refresh legal");
    ch.issue(&refresh, now.max(ready));
    ch.oracle().expect("attached").assert_clean();
    let validator = ch.validator().expect("attached");
    assert_eq!(
        validator.observed(),
        ch.stats().issued_total(),
        "validator saw every issued command"
    );
    validator.assert_clean();
    assert_eq!(
        ch.stats().total_activations() + ch.stats().issued(Command::Pre) + 1,
        ch.stats().total_activations() * 2 + 1,
        "every activation was precharged exactly once"
    );
}

#[test]
fn random_protocol_streams_stay_legal_and_clean() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xD8A3 ^ case.wrapping_mul(0x9e37_79b9));
        let n_ops = rng.gen_range(1usize..400);
        let ops: Vec<(u8, u8, u8, u8)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(0u8..=255),
                    rng.gen_range(0u8..=255),
                    rng.gen_range(0u8..=255),
                    rng.gen_range(0u8..=255),
                )
            })
            .collect();
        driver(ops);
    }
}

/// Mutation test: run a channel whose `tFAW` has been deliberately
/// loosened (a seeded timing-engine bug) and cross-check the issued
/// stream with a standalone validator built from the *correct* spec.
/// The validator must flag the activation that the buggy engine let
/// through, naming the tFAW rule and the true earliest-legal cycle.
#[test]
fn mutation_loosened_tfaw_is_caught() {
    // Eight banks with a short tRRD so four activations land inside the
    // FAW window (tiny_test's 2 banks with tRC 97 never stress tFAW).
    let mut strict_cfg = DramConfig::tiny_test();
    strict_cfg.banks = 8;
    strict_cfg.timings.trrd = 4;
    strict_cfg.timings.trrd_l = 4;
    let tfaw = u64::from(strict_cfg.timings.tfaw);
    let mut loose_cfg = strict_cfg.clone();
    loose_cfg.timings.tfaw = 16; // mutated: window shrunk to 4 * tRRD
    assert!(
        loose_cfg.validate().is_ok(),
        "the mutation must survive config validation to be a fair seed"
    );

    let mut ch = DramChannel::new(loose_cfg);
    let mut strict = ShadowValidator::new(&strict_cfg);
    let mut acts = Vec::new();
    for bank in 0..5u32 {
        let d = CmdDesc::act(0, bank, ActKind::single(0));
        let at = ch.ready_at(&d).expect("act legal under loose timing");
        ch.issue(&d, at);
        strict.observe(&d, at);
        acts.push(at);
    }
    // The loose engine paces ACTs by tRRD alone; the 5th lands at 16,
    // well inside the real 4-activate window.
    assert_eq!(acts, vec![0, 4, 8, 12, 16]);
    assert_eq!(strict.total_violations(), 1, "exactly the 5th ACT flagged");
    assert_eq!(
        strict.violations()[0].kind,
        ViolationKind::Timing {
            rule: TimingRule::Tfaw,
            earliest_legal: tfaw,
        }
    );

    // Control: the same stream is clean against the loosened spec, so
    // the violation above is attributable to the mutation alone.
    let mut loose_val = ShadowValidator::new(ch.config());
    for (bank, at) in acts.iter().enumerate() {
        loose_val.observe(&CmdDesc::act(0, bank as u32, ActKind::single(0)), *at);
    }
    loose_val.assert_clean();
}

#[test]
fn long_deterministic_stream() {
    // A fixed long stream as a regression companion (runs in debug CI
    // with the issue-time legality debug-asserts active).
    let ops: Vec<(u8, u8, u8, u8)> = (0..3000u32)
        .map(|i| {
            (
                (i % 7) as u8,
                (i.wrapping_mul(2654435761) >> 8) as u8,
                (i % 13) as u8,
                (i.wrapping_mul(40503) >> 4) as u8,
            )
        })
        .collect();
    driver(ops);
}
