//! # crow-mem
//!
//! The DRAM memory controller of the CROW reproduction: request queues,
//! FR-FCFS(-Cap) scheduling, row-buffer management policies, refresh
//! scheduling, and the integration point where the CROW substrate's
//! activation decisions (`ACT` / `ACT-c` / `ACT-t` / remapped copy-row
//! activation) are turned into DRAM commands.
//!
//! One [`MemController`] drives one [`crow_dram::DramChannel`]. The paper's
//! Table 2 controller is the default configuration: 64-entry read/write
//! queues, the FR-FCFS-Cap scheduler of footnote 6, and the 75 ns
//! timeout-based row-buffer policy of footnote 7.
//!
//! The controller also performs CROW's two maintenance flows:
//!
//! * **restore-before-evict** (paper §4.1.4): before evicting a
//!   partially-restored row from the CROW-table, it issues an `ACT-t`
//!   honouring the default `tRAS` followed by a `PRE`;
//! * **RowHammer victim copies** (paper §4.3): on detector alarms it
//!   issues `ACT-c` to move victim rows to copy rows.
//!
//! ## Example
//!
//! ```
//! use crow_dram::DramConfig;
//! use crow_mem::{McConfig, MemController, MemRequest, ReqKind};
//!
//! let mut mc = MemController::new(McConfig::paper_default(), DramConfig::tiny_test(), None);
//! mc.try_enqueue(MemRequest::new(1, ReqKind::Read, 0, 0, 5, 0, 0)).unwrap();
//! let mut done = Vec::new();
//! for now in 0..200 {
//!     mc.tick(now, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

pub mod config;
pub mod controller;
pub mod error;
pub mod request;
pub mod sched;
pub mod stats;

pub use config::{McConfig, Mitigation, RowPolicy, SchedImpl, SchedKind};
pub use controller::{DramEvent, MemController};
pub use error::McError;
pub use request::{Completion, MemRequest, ReqKind};
pub use sched::SchedStats;
pub use stats::McStats;
