//! Memory-controller statistics.

/// Number of power-of-two latency buckets tracked (bucket `i` holds
/// latencies in `[2^i, 2^(i+1))` memory cycles; the last bucket is
/// open-ended).
pub const LATENCY_BUCKETS: usize = 16;

/// Counters for one controller (one channel).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McStats {
    /// Reads serviced (data returned).
    pub reads: u64,
    /// Writes serviced (burst issued).
    pub writes: u64,
    /// Column accesses served from an already-open row.
    pub row_hits: u64,
    /// Activations issued on a closed bank/subarray.
    pub row_misses: u64,
    /// Precharges forced by a conflicting request.
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Requests rejected because a queue was full.
    pub rejections: u64,
    /// Sum of read latencies (arrival to data completion), cycles.
    pub read_latency_sum: u64,
    /// Maximum single read latency, cycles.
    pub read_latency_max: u64,
    /// Activations issued solely to fully restore an eviction victim
    /// (paper §4.1.1/§8.1.1 overhead).
    pub restore_activations: u64,
    /// RowHammer victim copy activations.
    pub hammer_copies: u64,
    /// Scheduling opportunities lost to injected command-bus drops
    /// (fault harness).
    pub bus_drops: u64,
    /// Neighbor-row refreshes issued by a PARA/TRR mitigation baseline.
    pub neighbor_refreshes: u64,
    /// Log2-bucketed read-latency histogram (memory cycles).
    pub latency_hist: [u64; LATENCY_BUCKETS],
}

impl McStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read latency into the histogram.
    pub fn record_latency(&mut self, cycles: u64) {
        let bucket = (64 - cycles.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.latency_hist[bucket] += 1;
    }

    /// Approximate latency percentile (upper bound of the bucket holding
    /// the `p`-quantile; `p` in (0, 1]). Returns 0 with no samples.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p) && p > 0.0, "p must be in (0, 1]");
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (p * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.latency_hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Mean read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Row-buffer hit rate over column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Merges another counter set.
    pub fn merge(&mut self, o: &McStats) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.row_conflicts += o.row_conflicts;
        self.refreshes += o.refreshes;
        self.rejections += o.rejections;
        self.read_latency_sum += o.read_latency_sum;
        self.read_latency_max = self.read_latency_max.max(o.read_latency_max);
        self.restore_activations += o.restore_activations;
        self.hammer_copies += o.hammer_copies;
        self.bus_drops += o.bus_drops;
        self.neighbor_refreshes += o.neighbor_refreshes;
        for (a, b) in self.latency_hist.iter_mut().zip(&o.latency_hist) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = McStats {
            reads: 4,
            read_latency_sum: 400,
            row_hits: 3,
            row_misses: 1,
            ..McStats::new()
        };
        assert!((s.avg_read_latency() - 100.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(McStats::new().avg_read_latency(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut s = McStats::new();
        for lat in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            s.record_latency(lat);
        }
        // 1 -> bucket 0; 2,3 -> bucket 1; 100 -> bucket 6; 5000 -> bucket 12.
        assert_eq!(s.latency_hist[0], 1);
        assert_eq!(s.latency_hist[1], 2);
        assert_eq!(s.latency_hist[6], 6);
        assert_eq!(s.latency_hist[12], 1);
        // Median lands in the 100s bucket (upper bound 128).
        assert_eq!(s.latency_percentile(0.5), 128);
        // Tail reaches the 5000 sample.
        assert_eq!(s.latency_percentile(1.0), 8192);
        assert_eq!(McStats::new().latency_percentile(0.99), 0);
    }

    #[test]
    fn merge_takes_max_latency() {
        let mut a = McStats {
            read_latency_max: 10,
            ..McStats::new()
        };
        let b = McStats {
            read_latency_max: 99,
            reads: 1,
            ..McStats::new()
        };
        a.merge(&b);
        assert_eq!(a.read_latency_max, 99);
        assert_eq!(a.reads, 1);
    }
}
