//! The memory controller: request scheduling, row-buffer policy, refresh,
//! and CROW command integration for one DRAM channel.

use std::collections::VecDeque;

use crow_core::{ActDecision, CrowSubstrate};
use crow_dram::channel::IssueFx;
use crow_dram::{
    ActKind, ActTimingMod, CmdDesc, Command, Cycle, DramChannel, DramConfig, OpenRow, RestoreState,
    RowAddr,
};
use crow_energy::{EnergyCounter, EnergyModel, EnergySpec};

use crate::config::{McConfig, Mitigation, RowPolicy, SchedImpl, SchedKind};
use crate::error::McError;
use crate::request::{Completion, MemRequest, ReqKind};
use crate::sched::{Cursor, QueueIndex, SchedStats, Wake, MISS_STREAM};
use crate::stats::McStats;

/// How CROW-table hits and misses translate into DRAM commands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheMode {
    /// CROW semantics: hits use `ACT-t`, installs use `ACT-c` (paper §4.1).
    Crow,
    /// TL-DRAM semantics (§8.1.4 baseline): hits activate the near-segment
    /// row alone with near timings; ordinary activations pay the far-
    /// segment penalty. Timing-only model (contents are not tracked).
    TlDram {
        /// Near-segment activation timings.
        near: ActTimingMod,
        /// Far-segment activation timings.
        far: ActTimingMod,
    },
}

/// A physical DRAM event observed at the controller's single command
/// chokepoint, for consumers that model cell-level disturbance (the
/// simulator's RowHammer flip model). Only recorded when the event log
/// is enabled ([`MemController::enable_event_log`]); zero cost otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramEvent {
    /// A regular row was opened (plain `ACT`, the regular half of an
    /// `ACT-t` pair, or the source row of an `ACT-c` copy). The
    /// activation disturbs physical neighbours and re-establishes the
    /// row's own charge.
    Act {
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
        /// The regular row opened.
        row: u32,
    },
    /// All-bank refresh command (`REF`) on a rank: one more slice of
    /// every bank's rows had its charge re-established.
    RefAll {
        /// Refreshed rank.
        rank: u32,
    },
    /// Per-bank refresh command (`REFpb`).
    RefBank {
        /// Refreshed rank.
        rank: u32,
        /// Refreshed bank.
        bank: u32,
    },
}

/// Why a maintenance row copy is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyPurpose {
    /// RowHammer victim protection (paper §4.3).
    Hammer,
    /// Runtime weak-row remap after a VRT discovery (paper §4.2.3).
    WeakRow,
}

/// A pending maintenance `ACT-c` (RowHammer victim or VRT weak row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyOp {
    rank: u32,
    bank: u32,
    subarray: u32,
    row: u32,
    purpose: CopyPurpose,
}

/// The memory controller for one channel.
///
/// Drive it by calling [`MemController::tick`] once per memory-clock
/// cycle; at most one DRAM command issues per tick (the command bus is a
/// single slot). Completed reads are appended to the caller's completion
/// buffer.
#[derive(Debug, Clone)]
pub struct MemController {
    cfg: McConfig,
    dram_cfg: DramConfig,
    channel: DramChannel,
    crow: Option<CrowSubstrate>,
    mode: CacheMode,
    energy_model: EnergyModel,
    energy_events: EnergyCounter,
    bg_cycles: u64,
    bg_open_cycles: u64,
    /// Functional-touch counter driving the deterministic restore-
    /// truncation model of [`MemController::warm_touch`].
    warm_touches: u64,
    stats: McStats,
    read_q: Vec<MemRequest>,
    write_q: Vec<MemRequest>,
    inflight: Vec<(Cycle, Completion)>,
    copy_ops: VecDeque<CopyOp>,
    /// Subarrays holding a maintenance activation that must reach full
    /// restoration before `PRE` (restore-before-evict / hammer copies).
    forced_restore: Vec<(u32, u32, u32)>,
    /// Open activations, for O(open) policy scans: (rank, bank, subarray).
    open_list: Vec<(u32, u32, u32)>,
    /// Which request id opened each subarray (for hit/miss accounting).
    opener: std::collections::HashMap<(u32, u32, u32), u64>,
    /// Column commands served since activation, per subarray (for the
    /// FR-FCFS cap).
    served: std::collections::HashMap<(u32, u32, u32), u32>,
    next_ref: Vec<Cycle>,
    refresh_pending: Vec<bool>,
    /// Round-robin bank counter for per-bank refresh.
    refresh_bank: Vec<u32>,
    drain_writes: bool,
    /// Armed by [`MemController::drop_next_issue`] (fault harness): the
    /// next scheduling opportunity is lost as if the command bus dropped
    /// the command.
    drop_pending: bool,
    /// Reusable candidate buffer for refresh-drain scans, so the per-tick
    /// hot path performs no heap allocation in steady state.
    scratch_open: Vec<(u32, u32, u32)>,
    /// Reusable FR-FCFS candidate-order buffer (same rationale).
    scratch_order: Vec<(u8, Cycle, usize)>,
    /// Scheduler work counters (see [`SchedStats`]).
    sched: SchedStats,
    /// Per-(rank,bank) read-queue index ([`SchedImpl::Indexed`] only).
    rd_index: QueueIndex,
    /// Write-queue counterpart of `rd_index`.
    wr_index: QueueIndex,
    /// Monotonic stamp of scheduler-visible mutations (issues, queue
    /// changes, maintenance pops, refresh flags, injections). Readiness
    /// and wake-hint memos are valid only while their stored stamp
    /// still matches.
    sched_epoch: u64,
    /// Per-queue, per-(rank,bank) memoized earliest cycle at which any
    /// of the bank's queued candidates could issue, as (epoch, cycle);
    /// written only by a scan that attempted every candidate of the
    /// bank and issued nothing.
    bank_ready: [Vec<(u64, Cycle)>; 2],
    /// Written by a tick that issued nothing: while the stamped epoch
    /// matches, no tick strictly before the stored cycle can issue.
    wake_hint: Option<(u64, Cycle)>,
    /// Maintained count of set `refresh_pending` flags (replaces the
    /// per-tick `iter().any()` scan).
    refresh_pending_count: u32,
    /// Reusable merge-cursor buffer for indexed selection.
    scratch_cursors: Vec<Cursor>,
    /// Reusable per-bank readiness-bound accumulator.
    scratch_bounds: Vec<(u32, Cycle)>,
    /// Recycled hit-sublist storage for bucket rebuilds.
    stream_pool: Vec<Vec<(Cycle, u32)>>,
    /// Pending PARA/TRR neighbor refreshes: (rank, bank, row), served as
    /// fully-restoring maintenance activations between demand requests.
    neighbor_ops: VecDeque<(u32, u32, u32)>,
    /// Per-(rank,bank) TRR sampler tables: (row, count), evict-min.
    trr_tables: Vec<Vec<(u32, u32)>>,
    /// SplitMix64 state for the PARA coin; seedable for determinism
    /// across channels ([`MemController::set_mitigation_seed`]).
    mitigation_rng: u64,
    /// Physical event log for the disturbance model (None = disabled).
    event_log: Option<Vec<DramEvent>>,
}

impl MemController {
    /// Creates a controller over a fresh channel.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid; use
    /// [`MemController::try_new`] to handle the failure instead.
    pub fn new(cfg: McConfig, dram_cfg: DramConfig, crow: Option<CrowSubstrate>) -> Self {
        match Self::try_new(cfg, dram_cfg, crow) {
            Ok(mc) => mc,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a controller over a fresh channel, validating both
    /// configurations.
    ///
    /// # Errors
    ///
    /// [`McError`] if either configuration fails validation.
    pub fn try_new(
        cfg: McConfig,
        dram_cfg: DramConfig,
        crow: Option<CrowSubstrate>,
    ) -> Result<Self, McError> {
        cfg.validate()
            .map_err(|reason| McError::Config(crow_dram::ConfigError::new("McConfig", reason)))?;
        let channel = DramChannel::try_new(dram_cfg.clone()).map_err(McError::Dram)?;
        let energy_model =
            EnergyModel::new(EnergySpec::lpddr4(), dram_cfg.timings).with_banks(dram_cfg.banks);
        let trefi = u64::from(dram_cfg.timings.trefi);
        let ranks = dram_cfg.ranks as usize;
        let slots = (dram_cfg.ranks * dram_cfg.banks) as usize;
        Ok(Self {
            cfg,
            dram_cfg,
            channel,
            crow,
            mode: CacheMode::Crow,
            energy_model,
            energy_events: EnergyCounter::new(),
            bg_cycles: 0,
            bg_open_cycles: 0,
            warm_touches: 0,
            stats: McStats::new(),
            // Pre-size to the configured caps: the steady-state hot path
            // performs no queue reallocation.
            read_q: Vec::with_capacity(cfg.read_q),
            write_q: Vec::with_capacity(cfg.write_q),
            inflight: Vec::with_capacity(cfg.read_q),
            copy_ops: VecDeque::with_capacity(16),
            forced_restore: Vec::new(),
            open_list: Vec::new(),
            opener: std::collections::HashMap::new(),
            served: std::collections::HashMap::new(),
            next_ref: vec![trefi; ranks],
            refresh_pending: vec![false; ranks],
            refresh_bank: vec![0; ranks],
            drain_writes: false,
            drop_pending: false,
            scratch_open: Vec::new(),
            scratch_order: Vec::with_capacity(cfg.read_q.max(cfg.write_q)),
            sched: SchedStats::new(),
            rd_index: QueueIndex::new(slots),
            wr_index: QueueIndex::new(slots),
            sched_epoch: 1,
            bank_ready: [vec![(0, 0); slots], vec![(0, 0); slots]],
            wake_hint: None,
            refresh_pending_count: 0,
            scratch_cursors: Vec::new(),
            scratch_bounds: Vec::new(),
            stream_pool: Vec::new(),
            neighbor_ops: VecDeque::new(),
            trr_tables: vec![Vec::new(); slots],
            mitigation_rng: 0x2545_F491_4F6C_DD1D,
            event_log: None,
        })
    }

    /// Reseeds the PARA mitigation coin (call before simulation starts;
    /// give each channel a distinct seed for independent streams).
    pub fn set_mitigation_seed(&mut self, seed: u64) {
        // SplitMix64 state must be nonzero-ish only for xorshift; the
        // golden-ratio increment makes any seed (incl. 0) fine.
        self.mitigation_rng = seed;
    }

    /// Enables recording of physical [`DramEvent`]s at the command
    /// chokepoint (used by the simulator's RowHammer flip model).
    pub fn enable_event_log(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// Drains recorded physical events into `out` (order preserved).
    /// No-op when the log is disabled.
    pub fn drain_events(&mut self, out: &mut Vec<DramEvent>) {
        if let Some(log) = self.event_log.as_mut() {
            out.append(log);
        }
    }

    /// Next PARA coin: SplitMix64 step.
    fn next_mitigation_rand(&mut self) -> u64 {
        self.mitigation_rng = self.mitigation_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.mitigation_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Switches hit/miss translation (TL-DRAM baseline support).
    pub fn set_cache_mode(&mut self, mode: CacheMode) {
        self.mode = mode;
        self.invalidate_classification();
    }

    /// Records a mutation that may change any bucket's hit/miss
    /// classification (mode switches, external CROW-table access).
    fn invalidate_classification(&mut self) {
        self.bump_epoch();
        self.rd_index.mark_all_stale();
        self.wr_index.mark_all_stale();
    }

    /// Records a scheduler-visible mutation: readiness and wake-hint
    /// memos computed before this point are dead.
    fn bump_epoch(&mut self) {
        self.sched_epoch += 1;
    }

    fn use_index(&self) -> bool {
        self.cfg.sched_impl == SchedImpl::Indexed
    }

    fn slot_of(&self, rank: u32, bank: u32) -> usize {
        (rank * self.dram_cfg.banks + bank) as usize
    }

    fn kind_ix(kind: ReqKind) -> usize {
        match kind {
            ReqKind::Read => 0,
            ReqKind::Write => 1,
        }
    }

    fn index(&self, kind: ReqKind) -> &QueueIndex {
        match kind {
            ReqKind::Read => &self.rd_index,
            ReqKind::Write => &self.wr_index,
        }
    }

    fn index_mut(&mut self, kind: ReqKind) -> &mut QueueIndex {
        match kind {
            ReqKind::Read => &mut self.rd_index,
            ReqKind::Write => &mut self.wr_index,
        }
    }

    /// Whether any scheduling flow could want the command bus.
    fn has_pending_work(&self) -> bool {
        !self.read_q.is_empty()
            || !self.write_q.is_empty()
            || !self.copy_ops.is_empty()
            || !self.forced_restore.is_empty()
            || !self.neighbor_ops.is_empty()
            || self.drop_pending
            || self.refresh_pending_count > 0
    }

    /// Attaches the data-integrity oracle to the underlying channel.
    pub fn attach_oracle(&mut self) {
        self.channel.attach_oracle();
    }

    /// Attaches the shadow protocol validator to the underlying channel
    /// and, when refresh is enabled, arms its refresh-gap bound from the
    /// controller's effective interval (with generous slack for JEDEC
    /// postponement — the bound catches a *lost* refresh stream, not a
    /// briefly deferred one).
    pub fn attach_validator(&mut self) {
        self.channel.attach_validator();
        if self.cfg.refresh {
            let slack = u64::from(self.cfg.max_postponed_refreshes) + 4;
            let gap = self.trefi_eff() * slack + u64::from(self.dram_cfg.timings.trfc);
            if let Some(v) = self.channel.validator_mut() {
                v.set_max_ref_gap(gap);
            }
        }
    }

    /// Runs the shadow validator's end-of-stream checks (e.g. the
    /// refresh-gap bound up to `now`). No-op without a validator.
    pub fn finish_validation(&mut self, now: Cycle) {
        if let Some(v) = self.channel.validator_mut() {
            v.finish(now);
        }
    }

    /// The underlying DRAM channel (for stats and oracle inspection).
    pub fn channel(&self) -> &DramChannel {
        &self.channel
    }

    /// The CROW substrate, if configured.
    pub fn crow(&self) -> Option<&CrowSubstrate> {
        self.crow.as_ref()
    }

    /// Mutable CROW substrate access (boot-time CROW-ref installation).
    pub fn crow_mut(&mut self) -> Option<&mut CrowSubstrate> {
        // The caller may install remaps that change hit classification.
        self.invalidate_classification();
        self.crow.as_mut()
    }

    /// Controller statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// Scheduler work counters.
    pub fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Total DRAM energy so far (events + background).
    pub fn energy(&self) -> EnergyCounter {
        let mut e = self.energy_events;
        e.add_background(&self.energy_model, self.bg_cycles, self.bg_open_cycles);
        e
    }

    /// Number of requests queued or in flight.
    pub fn pending(&self) -> usize {
        self.read_q.len()
            + self.write_q.len()
            + self.inflight.len()
            + self.copy_ops.len()
            + self.neighbor_ops.len()
    }

    /// In-flight read completions and the cycles they come due.
    pub fn inflight(&self) -> &[(Cycle, Completion)] {
        &self.inflight
    }

    /// Requests currently occupying the read queue.
    pub fn read_q_len(&self) -> usize {
        self.read_q.len()
    }

    /// Requests currently occupying the write queue.
    pub fn write_q_len(&self) -> usize {
        self.write_q.len()
    }

    /// Whether the read queue can accept a request.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_q
    }

    /// Whether the write queue can accept a request.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_q
    }

    /// Enqueues a request, stamping its arrival time.
    ///
    /// # Errors
    ///
    /// Returns the request back if the target queue is full (the caller
    /// must retry later; the rejection is counted).
    pub fn try_enqueue(&mut self, mut req: MemRequest) -> Result<(), MemRequest> {
        let ok = match req.kind {
            ReqKind::Read => self.can_accept_read(),
            ReqKind::Write => self.can_accept_write(),
        };
        if !ok {
            self.stats.rejections += 1;
            return Err(req);
        }
        req.arrival = self.bg_cycles;
        let slot = self.slot_of(req.rank, req.bank);
        let use_index = self.use_index();
        match req.kind {
            ReqKind::Read => {
                self.read_q.push(req);
                if use_index {
                    self.rd_index
                        .on_push(slot, req.arrival, (self.read_q.len() - 1) as u32);
                }
            }
            ReqKind::Write => {
                self.write_q.push(req);
                if use_index {
                    self.wr_index
                        .on_push(slot, req.arrival, (self.write_q.len() - 1) as u32);
                }
            }
        }
        self.bump_epoch();
        Ok(())
    }

    /// `swap_remove` on a request queue, keeping the bank index
    /// consistent: the removed entry leaves its bucket and the element
    /// moved into the vacated position is re-keyed.
    fn q_swap_remove(&mut self, kind: ReqKind, idx: usize) -> MemRequest {
        let use_index = self.use_index();
        let banks = self.dram_cfg.banks;
        let (q, index) = match kind {
            ReqKind::Read => (&mut self.read_q, &mut self.rd_index),
            ReqKind::Write => (&mut self.write_q, &mut self.wr_index),
        };
        let old_last = (q.len() - 1) as u32;
        let removed = q.swap_remove(idx);
        if use_index {
            let slot = (removed.rank * banks + removed.bank) as usize;
            index.remove(slot, removed.arrival, idx as u32);
            if idx < q.len() {
                let moved = q[idx];
                let mslot = (moved.rank * banks + moved.bank) as usize;
                index.reposition(mslot, moved.arrival, old_last, idx as u32);
            }
        }
        removed
    }

    /// Advances the controller by one memory-clock cycle, issuing at most
    /// one DRAM command and delivering completed reads into `out`.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        // Background accounting.
        self.bg_cycles += 1;
        self.bg_open_cycles += self.open_list.len() as u64;
        // Deliver finished reads.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, c) = self.inflight.swap_remove(i);
                out.push(c);
            } else {
                i += 1;
            }
        }
        // Refresh scheduling, with optional JEDEC postponement: while
        // demand requests are queued, up to `max_postponed_refreshes` due
        // refreshes may be deferred; the debt is repaid when the queues
        // drain (or immediately once the cap is reached).
        if self.cfg.refresh {
            let busy = !self.read_q.is_empty() || !self.write_q.is_empty();
            let trefi = self.trefi_eff();
            for rank in 0..self.dram_cfg.ranks as usize {
                if now >= self.next_ref[rank] && !self.refresh_pending[rank] {
                    let debt = (now - self.next_ref[rank]) / trefi;
                    if !busy || debt >= u64::from(self.cfg.max_postponed_refreshes) {
                        self.refresh_pending[rank] = true;
                        self.refresh_pending_count += 1;
                        self.bump_epoch();
                    }
                }
            }
        }
        self.issue_one(now);
    }

    /// A conservative lower bound on the next cycle at which
    /// [`MemController::tick`] could have any observable effect beyond
    /// background accounting. Alias of [`MemController::min_wakeup`].
    pub fn next_event_at(&self, now: Cycle) -> Cycle {
        self.min_wakeup(now)
    }

    /// The earliest cycle at which a tick could have any observable
    /// effect beyond background accounting: deliver a completion,
    /// schedule or issue a refresh, serve queued work, or close a row
    /// under the row policy.
    ///
    /// With queued work and the indexed scheduler, the bound comes from
    /// the wake hint the last (issue-less) tick recorded — the minimum
    /// retry cycle over every failed issue flow — so the event engine
    /// can skip dead cycles even under load. The hint is epoch-stamped:
    /// any scheduler-visible mutation since it was computed degrades
    /// the bound to `now + 1`.
    ///
    /// The event-driven engine may replace every tick strictly before
    /// the returned cycle with [`MemController::skip_idle`]; the bound
    /// is invalidated by anything that mutates the controller (a tick
    /// or an enqueue), after which it must be recomputed. Always
    /// `> now`.
    pub fn min_wakeup(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        for &(at, _) in &self.inflight {
            next = next.min(at);
        }
        if self.cfg.refresh {
            let busy = !self.read_q.is_empty() || !self.write_q.is_empty();
            let postpone = u64::from(self.cfg.max_postponed_refreshes) * self.trefi_eff();
            for (rank, &at) in self.next_ref.iter().enumerate() {
                if self.refresh_pending[rank] {
                    // Already pending: the refresh flow's wake notes (or
                    // the pending-work fallback below) bound it.
                    continue;
                }
                // Ticks set the flag at `next_ref` when idle; while
                // demand requests are queued, exactly when the
                // postponement debt reaches the cap.
                next = next.min(if busy { at + postpone } else { at });
            }
        }
        if self.has_pending_work() {
            match self.wake_hint {
                Some((stamp, at)) if stamp == self.sched_epoch => next = next.min(at),
                _ => return now + 1,
            }
        } else if !self.open_list.is_empty() {
            match self.cfg.policy {
                RowPolicy::OpenPage => {}
                RowPolicy::ClosedPage => return now + 1,
                RowPolicy::Timeout { cycles } => {
                    for &(r, b, s) in &self.open_list {
                        if let Some(act) = self.channel.subarray_activation(r, b, s) {
                            next = next.min(act.last_use + cycles);
                        }
                    }
                }
            }
        }
        next.max(now + 1)
    }

    /// Advances background accounting over `cycles` idle memory cycles in
    /// one step, exactly as that many no-op [`MemController::tick`] calls
    /// would (the open-row set cannot change while no command issues).
    pub fn skip_idle(&mut self, cycles: u64) {
        self.bg_cycles += cycles;
        self.bg_open_cycles += cycles * self.open_list.len() as u64;
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            self.sched.wakeup_skips += cycles;
        }
    }

    /// Fraction of functional activations whose modeled precharge cuts
    /// the pair restore short: one in `RESTORE_TRUNCATION_DEN`. Under
    /// detailed simulation the truncation rate is set by bank-conflict
    /// pressure (a conflicting request closes the row before the
    /// restore completes); measured across the bench workloads it sits
    /// between ~6% (omnetpp) and ~20% (random), so the functional model
    /// uses a deterministic 1-in-5 marking. (Calibrating the ratio from
    /// the measured windows' pair-precharge mix was tried and measured
    /// *worse*: windows under-observe the truncation pressure their own
    /// presence creates, and the short first segment seeds the largest
    /// fast-forward stretch with a noisy ratio.) A counter, not an RNG,
    /// keeps sampled reports bit-identical across engines/schedulers.
    const RESTORE_TRUNCATION_DEN: u64 = 5;

    /// Functionally advances address-indexed CROW-table state for one
    /// would-be activation of `row`, with no timing, commands, or
    /// queueing. The sampling fast-forward calls this for every LLC
    /// miss it replays so the table's install/eviction/LRU dynamics
    /// (and hence steady-state restore pressure) evolve across skipped
    /// instructions just as they would under detailed simulation. The
    /// precharge outcome follows the deterministic restore-truncation
    /// model above. Row-buffer and scheduler state are untouched; the
    /// detailed warmup preceding each measured window rebuilds those.
    /// CROW cache statistics (lookups, installs, evictions) advance
    /// with the table, so a sampled report's CROW counters reflect the
    /// whole run, not just the measured windows.
    pub fn warm_touch(&mut self, rank: u32, bank: u32, row: u32) {
        let sa = self.subarray_of(row);
        let cb = self.crow_bank(rank, bank);
        let rows_per_subarray = self.dram_cfg.rows_per_subarray;
        self.warm_touches += 1;
        let restored = !self
            .warm_touches
            .is_multiple_of(Self::RESTORE_TRUNCATION_DEN);
        let Some(crow) = self.crow.as_mut() else {
            return;
        };
        // The data-integrity oracle (when attached) shadows row contents
        // from the observed command stream, and a functional advance
        // issues no commands — so the activations modeled here are
        // buffered and replayed into the oracle below, carrying the
        // ACT-c content adoption and pair-restore outcomes the detailed
        // stream would have.
        let mut mirror: Option<Vec<(ActKind, RestoreState)>> =
            self.channel.oracle().is_some().then(Vec::new);
        let pre = if restored {
            RestoreState::Full
        } else {
            RestoreState::Partial
        };
        match crow.decide(cb, sa, row) {
            ActDecision::Normal => {
                crow.on_precharge(cb, sa, row, restored);
                if let Some(m) = mirror.as_mut() {
                    m.push((ActKind::Single(RowAddr::Regular(row)), RestoreState::Full));
                }
            }
            ActDecision::RemappedSingle { copy } => {
                crow.on_precharge(cb, sa, row, restored);
                if let Some(m) = mirror.as_mut() {
                    // Single-row activations always restore fully; only
                    // ACT-t pair restores can be truncated.
                    m.push((
                        ActKind::Single(RowAddr::Copy {
                            subarray: sa,
                            idx: copy,
                        }),
                        RestoreState::Full,
                    ));
                }
            }
            // A re-activation of a resident pair re-drives the restore;
            // the same truncation model decides whether it completes.
            ActDecision::Twin {
                copy,
                fully_restored,
            } => {
                crow.on_precharge(cb, sa, row, restored);
                if let Some(m) = mirror.as_mut() {
                    m.push((
                        ActKind::Twin {
                            row,
                            copy,
                            fully_restored,
                        },
                        pre,
                    ));
                }
            }
            ActDecision::CopyInstall { copy } => {
                crow.commit_install(cb, sa, row, copy);
                crow.on_precharge(cb, sa, row, restored);
                if let Some(m) = mirror.as_mut() {
                    m.push((ActKind::Copy { src: row, copy }, pre));
                }
            }
            ActDecision::RestoreFirst {
                copy, victim_row, ..
            } => {
                // Detailed simulation would restore the victim with a
                // forced activation, then install over it on retry.
                crow.on_precharge(cb, victim_row / rows_per_subarray, victim_row, true);
                if let Some(m) = mirror.as_mut() {
                    m.push((
                        ActKind::Twin {
                            row: victim_row,
                            copy,
                            fully_restored: false,
                        },
                        RestoreState::Full,
                    ));
                }
                if let ActDecision::CopyInstall { copy } = crow.decide(cb, sa, row) {
                    crow.commit_install(cb, sa, row, copy);
                    if let Some(m) = mirror.as_mut() {
                        m.push((ActKind::Copy { src: row, copy }, pre));
                    }
                }
                crow.on_precharge(cb, sa, row, restored);
            }
        }
        if let Some(events) = mirror {
            for (kind, restore) in events {
                self.channel.warm_act(rank, bank, kind, restore);
            }
        }
    }

    /// Functionally precharges every open row. Called at sampling
    /// fast-forward boundaries, after the drain has emptied the
    /// queues: the fast-forward mutates CROW-table install/evict state
    /// directly, so an open pair left over from the drained segment
    /// must not survive it — a later write through the stale open row
    /// would bypass the table. Settles the same per-close bookkeeping
    /// as a scheduled `PRE` (restore outcome into the CROW table,
    /// restoration-drive energy, tracking lists), then invalidates the
    /// scheduler memos.
    pub fn quiesce_open_rows(&mut self, now: Cycle) {
        let closed = self.channel.close_all_open(now);
        if closed.is_empty() {
            return;
        }
        for (rank, bank, c) in closed {
            self.energy_events
                .on_command(&self.energy_model, Command::Pre);
            let mra = matches!(c.open, OpenRow::Pair { .. });
            self.energy_events
                .on_act_pair(&self.energy_model, c.restore_drive, mra);
            let key = (rank, bank, c.subarray);
            Self::drop_tracking_entry(&mut self.open_list, key);
            Self::drop_tracking_entry(&mut self.forced_restore, key);
            self.opener.remove(&key);
            if let (Some(crow), OpenRow::Pair { row, .. }) = (self.crow.as_mut(), c.open) {
                let cb = rank * self.dram_cfg.banks + bank;
                crow.on_precharge(cb, c.subarray, row, c.restore == RestoreState::Full);
            }
        }
        self.bump_epoch();
    }

    /// The effective refresh interval (honours CROW-ref's extension).
    fn trefi_eff(&self) -> u64 {
        let mult = self.crow.as_ref().map_or(1, |c| c.refresh_multiplier());
        let base = u64::from(self.dram_cfg.timings.trefi) * u64::from(mult);
        if self.cfg.per_bank_refresh {
            // One bank per command: commands come `banks`x as often.
            (base / u64::from(self.dram_cfg.banks)).max(1)
        } else {
            base
        }
    }

    fn subarray_of(&self, row: u32) -> u32 {
        row / self.dram_cfg.rows_per_subarray
    }

    /// CROW-table bank index: ranks get disjoint bank ranges so multi-rank
    /// channels never alias table entries.
    fn crow_bank(&self, rank: u32, bank: u32) -> u32 {
        rank * self.dram_cfg.banks + bank
    }

    /// Whether the open activation (if any) in the request's subarray can
    /// serve it, accounting for CROW remaps/duplicates.
    fn serving_activation(&self, req: &MemRequest) -> bool {
        let sa = self.subarray_of(req.row);
        let Some(act) = self.channel.subarray_activation(req.rank, req.bank, sa) else {
            return false;
        };
        if act.open.serves_regular(req.row) {
            return true;
        }
        if let Some(crow) = &self.crow {
            let cb = self.crow_bank(req.rank, req.bank);
            if let Some((way, _)) = crow.table().lookup(cb, sa, req.row) {
                return act
                    .open
                    .serves_copy(sa, way, self.dram_cfg.rows_per_subarray);
            }
        }
        false
    }

    /// Issues at most one command this cycle, recording a wake hint for
    /// the event-driven engine when nothing could issue.
    fn issue_one(&mut self, now: Cycle) {
        self.wake_hint = None;
        if self.drop_pending {
            // Injected command-bus drop: whatever would have issued this
            // cycle is lost; the scheduler retries next tick.
            self.drop_pending = false;
            self.stats.bus_drops += 1;
            self.bump_epoch();
            return;
        }
        let mut wake = Wake::new();
        let issued = self.try_refresh(now, &mut wake)
            || self.try_forced_restore_pre(now, &mut wake)
            || self.try_maintenance_copy(now, &mut wake)
            || self.try_neighbor_refresh(now, &mut wake)
            || self.try_serve_queues(now, &mut wake)
            || self.try_policy_pre(now, &mut wake);
        if !issued && self.use_index() {
            // Every flow reached this tick noted its earliest retry
            // cycle (timing failures) or depends only on state that
            // cannot change without bumping the epoch; ticks strictly
            // before the minimum provably repeat the same failures.
            self.wake_hint = Some((self.sched_epoch, wake.at));
        }
    }

    /// Refresh flow: drain open rows of a pending rank, then issue `REF`
    /// (or drain only the target bank and issue `REFpb` in per-bank mode).
    fn try_refresh(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        for rank in 0..self.dram_cfg.ranks {
            if !self.refresh_pending[rank as usize] {
                continue;
            }
            if self.cfg.per_bank_refresh {
                let bank = self.refresh_bank[rank as usize] % self.dram_cfg.banks;
                if self.channel.open_count(rank, bank) == 0 {
                    let d = CmdDesc::refresh_bank(rank, bank);
                    match self.channel.check(&d, now) {
                        Ok(()) => {
                            self.issue(&d, now, None);
                            self.stats.refreshes += 1;
                            self.refresh_pending[rank as usize] = false;
                            self.refresh_pending_count -= 1;
                            self.refresh_bank[rank as usize] = (bank + 1) % self.dram_cfg.banks;
                            self.next_ref[rank as usize] += self.trefi_eff();
                            if bank == self.dram_cfg.banks - 1 {
                                if let Some(crow) = self.crow.as_mut() {
                                    crow.on_refresh();
                                }
                            }
                            self.trr_flush(rank, Some(bank));
                            return true;
                        }
                        Err(e) => {
                            wake.note_err(&e);
                            return false;
                        }
                    }
                }
                // Precharge only the target bank's open rows.
                let mut candidates = std::mem::take(&mut self.scratch_open);
                candidates.clear();
                candidates.extend(
                    self.open_list
                        .iter()
                        .copied()
                        .filter(|&(r, b, _)| r == rank && b == bank),
                );
                let mut issued = false;
                for &(r, b, sa) in &candidates {
                    let full = self.forced_restore.contains(&(r, b, sa));
                    if self.try_pre_subarray(now, r, b, sa, full, wake) {
                        issued = true;
                        break;
                    }
                }
                self.scratch_open = candidates;
                return issued;
            }
            if self.channel.all_banks_closed(rank) {
                let d = CmdDesc::refresh(rank);
                match self.channel.check(&d, now) {
                    Ok(()) => {
                        self.issue(&d, now, None);
                        self.stats.refreshes += 1;
                        self.refresh_pending[rank as usize] = false;
                        self.refresh_pending_count -= 1;
                        self.next_ref[rank as usize] += self.trefi_eff();
                        if let Some(crow) = self.crow.as_mut() {
                            // Refresh resets RowHammer disturbance.
                            crow.on_refresh();
                        }
                        self.trr_flush(rank, None);
                        return true;
                    }
                    Err(e) => {
                        wake.note_err(&e);
                        return false;
                    }
                }
            }
            // Precharge open rows of this rank (oldest-opened first).
            let mut candidates = std::mem::take(&mut self.scratch_open);
            candidates.clear();
            candidates.extend(
                self.open_list
                    .iter()
                    .copied()
                    .filter(|&(r, _, _)| r == rank),
            );
            candidates.sort_by_key(|&(r, b, s)| {
                self.channel
                    .subarray_activation(r, b, s)
                    .map_or(u64::MAX, |a| a.opened_at)
            });
            let mut issued = false;
            for &(r, b, s) in &candidates {
                let full = self.forced_restore.contains(&(r, b, s));
                if self.try_pre_subarray(now, r, b, s, full, wake) {
                    issued = true;
                    break;
                }
            }
            self.scratch_open = candidates;
            return issued;
        }
        false
    }

    /// Precharges one subarray if legal; `full_restore` delays the `PRE`
    /// until the open pair is fully restored.
    fn try_pre_subarray(
        &mut self,
        now: Cycle,
        rank: u32,
        bank: u32,
        sa: u32,
        full_restore: bool,
        wake: &mut Wake,
    ) -> bool {
        let Some(act) = self.channel.subarray_activation(rank, bank, sa) else {
            return false;
        };
        if full_restore && now < act.full_restore_at {
            wake.note(act.full_restore_at);
            return false;
        }
        let d = if self.dram_cfg.subarray_parallelism {
            CmdDesc::pre_subarray(rank, bank, sa)
        } else {
            CmdDesc::pre(rank, bank)
        };
        match self.channel.check(&d, now) {
            Ok(()) => {
                self.issue(&d, now, None);
                true
            }
            Err(e) => {
                wake.note_err(&e);
                false
            }
        }
    }

    /// Precharges maintenance activations that reached full restoration.
    fn try_forced_restore_pre(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        for i in 0..self.forced_restore.len() {
            let (rank, bank, sa) = self.forced_restore[i];
            if self.try_pre_subarray(now, rank, bank, sa, true, wake) {
                return true;
            }
        }
        false
    }

    /// Queues a runtime weak-row remap (VRT discovery, paper §4.2.3):
    /// the row's data will be copied to a strong copy row with `ACT-c`
    /// and subsequent activations redirected there.
    pub fn remap_weak_row(&mut self, bank: u32, row: u32) {
        self.remap_weak_row_in_rank(0, bank, row);
    }

    /// [`MemController::remap_weak_row`] for a specific rank.
    pub fn remap_weak_row_in_rank(&mut self, rank: u32, bank: u32, row: u32) {
        let subarray = self.subarray_of(row);
        self.copy_ops.push_back(CopyOp {
            rank,
            bank,
            subarray,
            row,
            purpose: CopyPurpose::WeakRow,
        });
        self.bump_epoch();
    }

    /// Injects `burst` RowHammer-style disturbance activations of `row`
    /// (fault harness): the detector observes them as aggressor
    /// activations, and any victims it flags are queued for `ACT-c`
    /// protection copies exactly as on the demand path. Returns the
    /// number of victim copies queued (0 without a CROW substrate or a
    /// configured detector).
    pub fn inject_disturbance(
        &mut self,
        rank: u32,
        bank: u32,
        row: u32,
        burst: u32,
        now: Cycle,
    ) -> u32 {
        let cb = self.crow_bank(rank, bank);
        let mut victims = Vec::new();
        {
            let Some(crow) = self.crow.as_mut() else {
                return 0;
            };
            for _ in 0..burst {
                victims.extend(crow.hammer_check(cb, row, now));
            }
        }
        let queued = victims.len() as u32;
        for victim in victims {
            let subarray = self.subarray_of(victim);
            self.copy_ops.push_back(CopyOp {
                rank,
                bank,
                subarray,
                row: victim,
                purpose: CopyPurpose::Hammer,
            });
        }
        // The detector advanced (and copies may be queued): any memoized
        // wake bound is stale.
        self.bump_epoch();
        queued
    }

    /// Arms a transient command-bus drop (fault harness): the next
    /// scheduling opportunity issues nothing and the lost cycle is
    /// counted in [`McStats::bus_drops`].
    pub fn drop_next_issue(&mut self) {
        self.drop_pending = true;
        self.bump_epoch();
    }

    /// Starts a pending maintenance copy (RowHammer victim or VRT weak
    /// row) when its bank is free.
    fn try_maintenance_copy(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        let Some(&op) = self.copy_ops.front() else {
            return false;
        };
        if self.refresh_pending[op.rank as usize] {
            return false;
        }
        let Some(crow) = self.crow.as_mut() else {
            // Popping changes what the next tick attempts.
            self.copy_ops.pop_front();
            self.bump_epoch();
            wake.note(now + 1);
            return false;
        };
        // Reserve a way. For a hammer victim with no way available, the
        // victim stays unprotected (the detector will fire again); for a
        // weak row, the chip must fall back to the default refresh
        // interval (paper §4.2.1).
        let cb = op.rank * self.dram_cfg.banks + op.bank;
        let way = match op.purpose {
            CopyPurpose::Hammer => crow.commit_hammer_remap(cb, op.subarray, op.row),
            CopyPurpose::WeakRow => crow.remap_weak_row_runtime(cb, op.subarray, op.row),
        };
        let Some(way) = way else {
            if op.purpose == CopyPurpose::WeakRow {
                crow.ref_fallback();
            }
            self.copy_ops.pop_front();
            self.bump_epoch();
            wake.note(now + 1);
            return false;
        };
        let d = CmdDesc::act(
            op.rank,
            op.bank,
            ActKind::Copy {
                src: op.row,
                copy: way,
            },
        );
        match self.channel.check(&d, now) {
            Ok(()) => {
                self.issue(&d, now, None);
                if op.purpose == CopyPurpose::Hammer {
                    self.stats.hammer_copies += 1;
                }
                self.forced_restore.push((op.rank, op.bank, op.subarray));
                self.copy_ops.pop_front();
                true
            }
            Err(e) => {
                // Roll back the reservation; retry next cycle.
                let crow = self.crow.as_mut().expect("checked above");
                match op.purpose {
                    CopyPurpose::Hammer => crow.undo_hammer_remap(cb, op.subarray, way),
                    CopyPurpose::WeakRow => crow.undo_runtime_remap(cb, op.subarray, way),
                }
                wake.note_err(&e);
                false
            }
        }
    }

    /// The in-subarray neighbours of `row` (clamped: rows at subarray
    /// edges border sense-amplifier stripes, not other rows).
    fn neighbor_rows(&self, row: u32) -> [Option<u32>; 2] {
        let rps = self.dram_cfg.rows_per_subarray;
        let sa = row / rps;
        let lo = sa * rps;
        let hi = lo + rps - 1;
        [(row > lo).then(|| row - 1), (row < hi).then(|| row + 1)]
    }

    /// Queues a PARA/TRR neighbor refresh (bounded; overflow is dropped —
    /// the mitigation is best-effort and the next sample re-arms it).
    fn queue_neighbor_refresh(&mut self, rank: u32, bank: u32, row: u32) {
        const NEIGHBOR_Q_CAP: usize = 64;
        if self.neighbor_ops.len() >= NEIGHBOR_Q_CAP {
            return;
        }
        self.neighbor_ops.push_back((rank, bank, row));
        self.bump_epoch();
    }

    /// PARA/TRR observation of a demand activation of a regular row.
    fn observe_demand_act(&mut self, rank: u32, bank: u32, row: u32) {
        match self.cfg.mitigation {
            Mitigation::None => {}
            Mitigation::Para { hazard } => {
                let r = self.next_mitigation_rand();
                if r.is_multiple_of(u64::from(hazard)) {
                    let [below, above] = self.neighbor_rows(row);
                    // An independent bit picks the side; fall back to the
                    // other side at subarray edges.
                    let pick = if (r >> 32) & 1 == 0 {
                        below.or(above)
                    } else {
                        above.or(below)
                    };
                    if let Some(n) = pick {
                        self.queue_neighbor_refresh(rank, bank, n);
                    }
                }
            }
            Mitigation::Trr { entries, .. } => {
                let slot = self.slot_of(rank, bank);
                let table = &mut self.trr_tables[slot];
                if let Some(e) = table.iter_mut().find(|e| e.0 == row) {
                    e.1 += 1;
                } else if table.len() < entries as usize {
                    table.push((row, 1));
                } else {
                    // Evict the min-count entry; ties break on the
                    // smallest row so the choice is deterministic.
                    let mut m = 0;
                    for i in 1..table.len() {
                        if table[i].1 < table[m].1
                            || (table[i].1 == table[m].1 && table[i].0 < table[m].0)
                        {
                            m = i;
                        }
                    }
                    table[m] = (row, 1);
                }
            }
        }
    }

    /// TRR refresh hook: queue neighbor refreshes for every sampled row
    /// that reached the threshold, then clear the sampled tables (`bank`
    /// = `None` for an all-bank `REF`, the bank for `REFpb`).
    fn trr_flush(&mut self, rank: u32, bank: Option<u32>) {
        let Mitigation::Trr { threshold, .. } = self.cfg.mitigation else {
            return;
        };
        let banks: Vec<u32> = match bank {
            Some(b) => vec![b],
            None => (0..self.dram_cfg.banks).collect(),
        };
        for b in banks {
            let slot = self.slot_of(rank, b);
            let mut table = std::mem::take(&mut self.trr_tables[slot]);
            for &(row, count) in &table {
                if count >= threshold {
                    for n in self.neighbor_rows(row).into_iter().flatten() {
                        self.queue_neighbor_refresh(rank, b, n);
                    }
                }
            }
            table.clear();
            self.trr_tables[slot] = table;
        }
    }

    /// Serves one pending PARA/TRR neighbor refresh: a fully-restoring
    /// activation of the victim row, issued when its bank is closed and
    /// precharged by the forced-restore flow once restoration completes.
    fn try_neighbor_refresh(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        let Some(&(rank, bank, row)) = self.neighbor_ops.front() else {
            return false;
        };
        if self.refresh_pending[rank as usize] {
            return false;
        }
        if self.channel.open_count(rank, bank) != 0 {
            // Bank busy: the open set cannot change without an issue
            // (which bumps the epoch), so no wake bound is needed.
            return false;
        }
        let d = CmdDesc::act(rank, bank, ActKind::single(row));
        match self.channel.check(&d, now) {
            Ok(()) => {
                self.issue(&d, now, None);
                self.stats.neighbor_refreshes += 1;
                let sa = self.subarray_of(row);
                self.forced_restore.push((rank, bank, sa));
                self.neighbor_ops.pop_front();
                true
            }
            Err(e) => {
                wake.note_err(&e);
                false
            }
        }
    }

    /// Main request scheduling: pick the highest-priority issuable command
    /// from the active queue.
    fn try_serve_queues(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        // Write drain hysteresis.
        if self.write_q.len() >= self.cfg.wr_high {
            self.drain_writes = true;
        } else if self.write_q.len() <= self.cfg.wr_low {
            self.drain_writes = false;
        }
        let use_writes = self.drain_writes || self.read_q.is_empty();
        if use_writes && !self.write_q.is_empty() {
            self.serve_from(now, ReqKind::Write, wake)
        } else if !self.read_q.is_empty() {
            self.serve_from(now, ReqKind::Read, wake)
        } else {
            false
        }
    }

    /// Picks the FR-FCFS(-Cap) candidate order and issues the first
    /// legal command. Both implementations attempt candidates in the
    /// identical (priority, arrival, queue-position) order.
    fn serve_from(&mut self, now: Cycle, kind: ReqKind, wake: &mut Wake) -> bool {
        match self.cfg.sched_impl {
            SchedImpl::Linear => self.serve_from_linear(now, kind, wake),
            SchedImpl::Indexed => self.serve_from_indexed(now, kind, wake),
        }
    }

    /// Reference implementation: scan the whole queue, sort, attempt.
    fn serve_from_linear(&mut self, now: Cycle, kind: ReqKind, wake: &mut Wake) -> bool {
        // Candidate order: (priority, arrival, index).
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        let q = match kind {
            ReqKind::Read => &self.read_q,
            ReqKind::Write => &self.write_q,
        };
        for (i, req) in q.iter().enumerate() {
            let hit = self.serving_activation(req);
            let prio = match self.cfg.sched {
                SchedKind::Fcfs => 1,
                SchedKind::FrFcfs => u8::from(!hit),
                SchedKind::FrFcfsCap { cap } => {
                    let sa = self.subarray_of(req.row);
                    let count = self
                        .served
                        .get(&(req.rank, req.bank, sa))
                        .copied()
                        .unwrap_or(0);
                    u8::from(!(hit && count < cap))
                }
            };
            order.push((prio, req.arrival, i));
        }
        order.sort_unstable();
        self.sched.scanned += order.len() as u64;
        let mut issued = false;
        for &(_, _, idx) in &order {
            if self.try_serve_request(now, kind, idx, wake) {
                self.sched.picks += 1;
                issued = true;
                break;
            }
        }
        self.scratch_order = order;
        issued
    }

    /// Indexed implementation: k-way merge over per-bank hit sublists
    /// and miss lists, skipping banks whose memoized readiness bound
    /// proves every candidate still fails (DESIGN.md §3.13).
    fn serve_from_indexed(&mut self, now: Cycle, kind: ReqKind, wake: &mut Wake) -> bool {
        let banks = self.dram_cfg.banks;
        let slots = (self.dram_cfg.ranks * banks) as usize;
        let ki = Self::kind_ix(kind);
        let mut cursors = std::mem::take(&mut self.scratch_cursors);
        let mut bounds = std::mem::take(&mut self.scratch_bounds);
        cursors.clear();
        bounds.clear();
        for slot in 0..slots {
            if self.index(kind).bucket(slot).cands.is_empty() {
                continue;
            }
            let rank = slot as u32 / banks;
            let bank = slot as u32 % banks;
            // Refresh hold-back: the linear scan rejects these candidates
            // without side effects, so skipping them wholesale is
            // equivalent (the pending flag flips only with an epoch bump).
            if self.refresh_pending[rank as usize]
                && (!self.cfg.per_bank_refresh || bank == self.refresh_bank[rank as usize] % banks)
            {
                continue;
            }
            // Readiness fast path: while the epoch is unchanged the
            // memoized bound is exact, so a future bound means every
            // candidate of this bank fails this tick exactly as before.
            let (stamp, ready) = self.bank_ready[ki][slot];
            if stamp == self.sched_epoch && ready > now {
                wake.note(ready);
                self.sched.fastpath_skips += 1;
                continue;
            }
            self.ensure_bucket_fresh(kind, slot);
            let b = self.index(kind).bucket(slot);
            for (si, (sa, sub)) in b.hits.iter().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                // One priority per hit sublist: `served` is constant
                // during the scan, so the whole sublist shares it.
                let prio = match self.cfg.sched {
                    SchedKind::Fcfs => 1,
                    SchedKind::FrFcfs => 0,
                    SchedKind::FrFcfsCap { cap } => {
                        let count = self.served.get(&(rank, bank, *sa)).copied().unwrap_or(0);
                        u8::from(count >= cap)
                    }
                };
                cursors.push(Cursor {
                    prio,
                    slot: slot as u32,
                    stream: si as u32,
                    next: 0,
                });
            }
            if !b.miss.is_empty() {
                cursors.push(Cursor {
                    prio: 1,
                    slot: slot as u32,
                    stream: MISS_STREAM,
                    next: 0,
                });
            }
            bounds.push((slot as u32, Cycle::MAX));
        }
        let mut issued = false;
        loop {
            // Smallest (priority, arrival, position) across stream heads:
            // identical to the linear scan's sorted order (keys are
            // unique because positions are).
            let mut best: Option<((u8, Cycle, u32), usize)> = None;
            for (ci, c) in cursors.iter().enumerate() {
                let Some((arrival, pos)) = self.stream_head(kind, c) else {
                    continue;
                };
                let key = (c.prio, arrival, pos);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, ci));
                }
            }
            let Some(((_, _, pos), ci)) = best else {
                break;
            };
            self.sched.scanned += 1;
            let mut attempt = Wake::new();
            if self.try_serve_request(now, kind, pos as usize, &mut attempt) {
                self.sched.picks += 1;
                issued = true;
                break;
            }
            wake.merge(&attempt);
            let slot = cursors[ci].slot;
            if let Some(e) = bounds.iter_mut().find(|e| e.0 == slot) {
                e.1 = e.1.min(attempt.at);
            }
            cursors[ci].next += 1;
        }
        if !issued {
            // Every participating bank was attempted to exhaustion:
            // memoize its earliest possible issue cycle under this epoch.
            for &(slot, bound) in &bounds {
                self.bank_ready[ki][slot as usize] = (self.sched_epoch, bound);
            }
        }
        self.scratch_cursors = cursors;
        self.scratch_bounds = bounds;
        issued
    }

    /// The next unconsumed (arrival, position) of a merge cursor.
    fn stream_head(&self, kind: ReqKind, c: &Cursor) -> Option<(Cycle, u32)> {
        let b = self.index(kind).bucket(c.slot as usize);
        let sub = if c.stream == MISS_STREAM {
            &b.miss
        } else {
            &b.hits[c.stream as usize].1
        };
        sub.get(c.next as usize).copied()
    }

    /// Rebuilds `slot`'s hit/miss split if a bank-state change
    /// invalidated it since the last scan.
    fn ensure_bucket_fresh(&mut self, kind: ReqKind, slot: usize) {
        if self.index(kind).bucket(slot).fresh {
            return;
        }
        let mut b = std::mem::take(self.index_mut(kind).bucket_mut(slot));
        let mut pool = std::mem::take(&mut self.stream_pool);
        b.clear_split(&mut pool);
        for i in 0..b.cands.len() {
            let (arrival, pos) = b.cands[i];
            let req = match kind {
                ReqKind::Read => self.read_q[pos as usize],
                ReqKind::Write => self.write_q[pos as usize],
            };
            if self.serving_activation(&req) {
                b.hit_push(self.subarray_of(req.row), (arrival, pos), &mut pool);
            } else {
                b.miss.push((arrival, pos));
            }
        }
        b.fresh = true;
        self.sched.scanned += b.cands.len() as u64;
        self.sched.rebuilds += 1;
        self.stream_pool = pool;
        *self.index_mut(kind).bucket_mut(slot) = b;
    }

    /// Attempts to advance one request: column access if its row is open,
    /// otherwise activate (via the CROW decision) or precharge a
    /// conflicting row.
    fn try_serve_request(
        &mut self,
        now: Cycle,
        kind: ReqKind,
        idx: usize,
        wake: &mut Wake,
    ) -> bool {
        let req = match kind {
            ReqKind::Read => self.read_q[idx],
            ReqKind::Write => self.write_q[idx],
        };
        // While a refresh is draining this rank, hold back the affected
        // requests so the refresh cannot be starved: the whole rank for
        // all-bank refresh, only the target bank in per-bank mode.
        if self.refresh_pending[req.rank as usize] {
            let blocked = if self.cfg.per_bank_refresh {
                req.bank == self.refresh_bank[req.rank as usize] % self.dram_cfg.banks
            } else {
                true
            };
            if blocked {
                return false;
            }
        }
        let sa = self.subarray_of(req.row);
        if self.serving_activation(&req) {
            return self.try_column(now, kind, idx, wake);
        }
        // Row not open. In a maintenance window, leave the bank alone.
        if self.forced_restore.contains(&(req.rank, req.bank, sa)) {
            return false;
        }
        let sa_open = self
            .channel
            .subarray_activation(req.rank, req.bank, sa)
            .is_some();
        let bank_conflict =
            !self.dram_cfg.subarray_parallelism && self.channel.open_count(req.rank, req.bank) > 0;
        if sa_open || bank_conflict {
            // Conflict: close the blocking row (the open subarray).
            let victim_sa = if sa_open {
                sa
            } else {
                self.channel
                    .open_activation(req.rank, req.bank)
                    .map(|(s, _)| s)
                    .expect("bank_conflict implies an open activation")
            };
            if self
                .forced_restore
                .contains(&(req.rank, req.bank, victim_sa))
            {
                return false;
            }
            if self.try_pre_subarray(now, req.rank, req.bank, victim_sa, false, wake) {
                self.stats.row_conflicts += 1;
                return true;
            }
            return false;
        }
        // Bank/subarray closed: activate, honouring the CROW decision.
        self.try_activate(now, &req, wake)
    }

    /// Issues the activation for a request, consulting the CROW substrate.
    fn try_activate(&mut self, now: Cycle, req: &MemRequest, wake: &mut Wake) -> bool {
        let sa = self.subarray_of(req.row);
        let cb = self.crow_bank(req.rank, req.bank);
        let decision = self
            .crow
            .as_ref()
            .map_or(ActDecision::Normal, |c| c.peek(cb, sa, req.row));
        let mut restore_sa = None;
        let (kind, act_mod, is_restore) = match decision {
            ActDecision::Normal => {
                let far = match self.mode {
                    CacheMode::TlDram { far, .. } => Some(far),
                    CacheMode::Crow => None,
                };
                (ActKind::single(req.row), far, false)
            }
            ActDecision::RemappedSingle { copy } => (
                ActKind::Single(RowAddr::Copy {
                    subarray: sa,
                    idx: copy,
                }),
                None,
                false,
            ),
            ActDecision::Twin {
                copy,
                fully_restored,
            } => match self.mode {
                CacheMode::Crow => (
                    ActKind::Twin {
                        row: req.row,
                        copy,
                        fully_restored,
                    },
                    None,
                    false,
                ),
                CacheMode::TlDram { near, .. } => (
                    ActKind::Single(RowAddr::Copy {
                        subarray: sa,
                        idx: copy,
                    }),
                    Some(near),
                    false,
                ),
            },
            ActDecision::CopyInstall { copy } => {
                (ActKind::Copy { src: req.row, copy }, None, false)
            }
            ActDecision::RestoreFirst {
                copy, victim_row, ..
            } => {
                // The victim may live in a *different* subarray of the
                // shared CROW-table set (paper §6.1); ensure it is the
                // one whose activation we hold open for full restore.
                restore_sa = Some(self.subarray_of(victim_row));
                (
                    ActKind::Twin {
                        row: victim_row,
                        copy,
                        fully_restored: false,
                    },
                    None,
                    true,
                )
            }
        };
        let mut d = CmdDesc::act(req.rank, req.bank, kind);
        d.act_mod = act_mod;
        if let Err(e) = self.channel.check(&d, now) {
            wake.note_err(&e);
            return false;
        }
        self.issue(&d, now, None);
        // Commit the decision (stats, LRU, installs) now that it issued.
        if let Some(crow) = self.crow.as_mut() {
            match crow.decide(cb, sa, req.row) {
                ActDecision::CopyInstall { copy } => {
                    crow.commit_install(cb, sa, req.row, copy);
                }
                ActDecision::RestoreFirst { .. } => {
                    self.stats.restore_activations += 1;
                }
                _ => {}
            }
            // Feed the RowHammer detector with the aggressor row.
            for victim in crow.hammer_check(cb, req.row, now) {
                self.copy_ops.push_back(CopyOp {
                    rank: req.rank,
                    bank: req.bank,
                    subarray: self.subarray_of(victim),
                    row: victim,
                    purpose: CopyPurpose::Hammer,
                });
            }
        }
        // PARA/TRR mitigation baselines sample demand activations.
        self.observe_demand_act(req.rank, req.bank, req.row);
        if is_restore {
            self.forced_restore
                .push((req.rank, req.bank, restore_sa.unwrap_or(sa)));
        } else {
            self.stats.row_misses += 1;
            self.opener.insert((req.rank, req.bank, sa), req.id);
        }
        self.served.insert((req.rank, req.bank, sa), 0);
        true
    }

    /// Issues the column command for a request whose row is open.
    fn try_column(&mut self, now: Cycle, kind: ReqKind, idx: usize, wake: &mut Wake) -> bool {
        let req = match kind {
            ReqKind::Read => self.read_q[idx],
            ReqKind::Write => self.write_q[idx],
        };
        let sa = self.subarray_of(req.row);
        let d = match (kind, self.dram_cfg.subarray_parallelism) {
            (ReqKind::Read, false) => CmdDesc::rd(req.rank, req.bank, req.col),
            (ReqKind::Read, true) => CmdDesc::rd_subarray(req.rank, req.bank, sa, req.col),
            (ReqKind::Write, false) => CmdDesc::wr(req.rank, req.bank, req.col),
            (ReqKind::Write, true) => CmdDesc::wr_subarray(req.rank, req.bank, sa, req.col),
        };
        if let Err(e) = self.channel.check(&d, now) {
            wake.note_err(&e);
            return false;
        }
        let fx = self.issue(&d, now, Some(req.row));
        *self.served.entry((req.rank, req.bank, sa)).or_insert(0) += 1;
        // Hit/miss accounting: the request that opened the row already
        // counted a miss.
        match self.opener.get(&(req.rank, req.bank, sa)) {
            Some(&id) if id == req.id => {
                self.opener.remove(&(req.rank, req.bank, sa));
            }
            _ => self.stats.row_hits += 1,
        }
        match kind {
            ReqKind::Read => {
                let req = self.q_swap_remove(ReqKind::Read, idx);
                let done = fx.read_done.expect("RD returns completion time");
                let latency = done.saturating_sub(req.arrival);
                self.stats.reads += 1;
                self.stats.read_latency_sum += latency;
                self.stats.read_latency_max = self.stats.read_latency_max.max(latency);
                self.stats.record_latency(latency);
                self.inflight.push((
                    done,
                    Completion {
                        id: req.id,
                        core: req.core,
                        done,
                        latency,
                        is_prefetch: req.is_prefetch,
                    },
                ));
            }
            ReqKind::Write => {
                self.q_swap_remove(ReqKind::Write, idx);
                self.stats.writes += 1;
            }
        }
        true
    }

    /// Row-buffer policy precharges (timeout / closed-page).
    fn try_policy_pre(&mut self, now: Cycle, wake: &mut Wake) -> bool {
        let timeout = match self.cfg.policy {
            RowPolicy::OpenPage => return false,
            RowPolicy::Timeout { cycles } => Some(cycles),
            RowPolicy::ClosedPage => None,
        };
        for i in 0..self.open_list.len() {
            let (rank, bank, sa) = self.open_list[i];
            if self.forced_restore.contains(&(rank, bank, sa)) {
                continue;
            }
            let (last_use, open) = {
                let Some(act) = self.channel.subarray_activation(rank, bank, sa) else {
                    continue;
                };
                (act.last_use, act.open)
            };
            if let Some(t) = timeout {
                if now.saturating_sub(last_use) < t {
                    wake.note(last_use + t);
                    continue;
                }
            }
            // Any queued request served by this activation keeps it open.
            // (The `wanted` predicate is time-independent, so rows skipped
            // here impose no wake bound.)
            let wanted = if self.use_index() {
                self.wanted_indexed(rank, bank, sa)
            } else {
                self.read_q.iter().chain(self.write_q.iter()).any(|r| {
                    r.rank == rank
                        && r.bank == bank
                        && self.subarray_of(r.row) == sa
                        && (open.serves_regular(r.row) || self.serving_activation(r))
                })
            };
            if wanted {
                continue;
            }
            if self.try_pre_subarray(now, rank, bank, sa, false, wake) {
                return true;
            }
        }
        false
    }

    /// Index-backed `wanted` test for the row policy: the activation in
    /// (rank, bank, sa) serves some queued request iff either queue's
    /// hit sublist for that subarray is non-empty. (The linear scan's
    /// `serves_regular` disjunct is subsumed: an open activation always
    /// serves its own regular row, so such a request classifies as a
    /// hit in exactly this sublist.)
    fn wanted_indexed(&mut self, rank: u32, bank: u32, sa: u32) -> bool {
        let slot = self.slot_of(rank, bank);
        for kind in [ReqKind::Read, ReqKind::Write] {
            if self.index(kind).bucket(slot).cands.is_empty() {
                continue;
            }
            self.ensure_bucket_fresh(kind, slot);
            if self
                .index(kind)
                .bucket(slot)
                .hits
                .iter()
                .any(|(s, sub)| *s == sa && !sub.is_empty())
            {
                return true;
            }
        }
        false
    }

    /// Issues a checked command, updating energy, stats, open-row
    /// tracking, and CROW restoration state.
    fn issue(&mut self, d: &CmdDesc, now: Cycle, _touch_row: Option<u32>) -> IssueFx {
        let fx = self.channel.issue(d, now);
        self.bump_epoch();
        if let Some(log) = self.event_log.as_mut() {
            match d.cmd {
                Command::Act | Command::ActC | Command::ActT => {
                    // The regular row whose cells this activation opens
                    // (copy-row-only activations disturb no regular row).
                    let row = match d.act {
                        Some(ActKind::Single(RowAddr::Regular(r))) => Some(r),
                        Some(ActKind::Single(RowAddr::Copy { .. })) => None,
                        Some(ActKind::Copy { src, .. }) => Some(src),
                        Some(ActKind::Twin { row, .. }) => Some(row),
                        None => None,
                    };
                    if let Some(row) = row {
                        log.push(DramEvent::Act {
                            rank: d.rank,
                            bank: d.bank,
                            row,
                        });
                    }
                }
                Command::Ref => log.push(DramEvent::RefAll { rank: d.rank }),
                Command::RefPb => log.push(DramEvent::RefBank {
                    rank: d.rank,
                    bank: d.bank,
                }),
                Command::Pre | Command::Rd | Command::Wr => {}
            }
        }
        if self.use_index() {
            // The bank's row state (and with it hit/miss classification)
            // may have changed; refresh commands touch the whole rank.
            match d.cmd {
                Command::Ref | Command::RefPb => {
                    let lo = self.slot_of(d.rank, 0);
                    for slot in lo..lo + self.dram_cfg.banks as usize {
                        self.rd_index.mark_stale(slot);
                        self.wr_index.mark_stale(slot);
                    }
                }
                _ => {
                    let slot = self.slot_of(d.rank, d.bank);
                    self.rd_index.mark_stale(slot);
                    self.wr_index.mark_stale(slot);
                }
            }
        }
        // Activation energy is accounted at PRE time, when the actual
        // restoration-drive duration is known (early termination
        // transfers less charge).
        if !d.cmd.is_activate() {
            self.energy_events.on_command(&self.energy_model, d.cmd);
        }
        match d.cmd {
            Command::Act | Command::ActC | Command::ActT => {
                let kind = d.act.expect("activation has kind");
                let sa = kind.subarray(self.dram_cfg.rows_per_subarray);
                self.open_list.push((d.rank, d.bank, sa));
            }
            Command::Pre => {
                if let Some(closed) = fx.closed {
                    let mra = matches!(closed.open, OpenRow::Pair { .. });
                    self.energy_events
                        .on_act_pair(&self.energy_model, closed.restore_drive, mra);
                    let key = (d.rank, d.bank, closed.subarray);
                    Self::drop_tracking_entry(&mut self.open_list, key);
                    Self::drop_tracking_entry(&mut self.forced_restore, key);
                    self.opener.remove(&key);
                    let cb = d.rank * self.dram_cfg.banks + d.bank;
                    if let (Some(crow), OpenRow::Pair { row, .. }) =
                        (self.crow.as_mut(), closed.open)
                    {
                        crow.on_precharge(
                            cb,
                            closed.subarray,
                            row,
                            closed.restore == RestoreState::Full,
                        );
                    }
                }
            }
            Command::Ref | Command::RefPb => {}
            Command::Rd | Command::Wr => {}
        }
        fx
    }

    /// Drops every entry equal to `key` from a (rank, bank, subarray)
    /// tracking list (open rows, forced restores).
    fn drop_tracking_entry(list: &mut Vec<(u32, u32, u32)>, key: (u32, u32, u32)) {
        list.retain(|&e| e != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crow_core::{CrowConfig, CrowSubstrate};
    use crow_dram::DramConfig;

    fn run(mc: &mut MemController, cycles: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for now in 0..cycles {
            mc.tick(now, &mut out);
        }
        out
    }

    fn baseline_mc() -> MemController {
        let mut cfg = DramConfig::tiny_test();
        cfg.copy_rows_per_subarray = 0;
        MemController::new(McConfig::paper_default(), cfg, None)
    }

    fn crow_mc() -> MemController {
        let dram = DramConfig::tiny_test();
        let crow = CrowSubstrate::new(CrowConfig::tiny_test());
        let mut mc = MemController::new(McConfig::paper_default(), dram, Some(crow));
        mc.attach_oracle();
        mc
    }

    fn read(id: u64, bank: u32, row: u32, col: u32) -> MemRequest {
        MemRequest::new(id, ReqKind::Read, 0, bank, row, col, 0)
    }

    #[test]
    fn single_read_completes() {
        let mut mc = baseline_mc();
        mc.try_enqueue(read(1, 0, 5, 3)).unwrap();
        let done = run(&mut mc, 300);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert!(done[0].latency > 0);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().row_hits, 0);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn row_hits_counted_for_same_row() {
        let mut mc = baseline_mc();
        for i in 0..4 {
            mc.try_enqueue(read(i, 0, 5, i as u32)).unwrap();
        }
        let done = run(&mut mc, 500);
        assert_eq!(done.len(), 4);
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().row_hits, 3);
    }

    #[test]
    fn conflicting_rows_precharge() {
        let mut mc = baseline_mc();
        mc.try_enqueue(read(1, 0, 5, 0)).unwrap();
        mc.try_enqueue(read(2, 0, 200, 0)).unwrap();
        let done = run(&mut mc, 1000);
        assert_eq!(done.len(), 2);
        assert!(mc.stats().row_conflicts >= 1);
        assert_eq!(mc.stats().row_misses, 2);
    }

    #[test]
    fn writes_drain_via_watermarks() {
        let mut mc = baseline_mc();
        for i in 0..50 {
            mc.try_enqueue(MemRequest::new(
                i,
                ReqKind::Write,
                0,
                0,
                5,
                i as u32 % 16,
                0,
            ))
            .unwrap();
        }
        run(&mut mc, 4000);
        assert_eq!(mc.stats().writes, 50);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn fr_fcfs_cap_eventually_serves_the_conflicting_row() {
        // A stream of row-5 hits plus one old row-200 request: with the
        // cap, the conflicting request is served after at most `cap`
        // column commands once it is oldest; uncapped FR-FCFS keeps
        // prioritizing hits as long as any are present.
        let serve_order = |sched| {
            let mut cfg = McConfig::paper_default();
            cfg.sched = sched;
            let mut dram = DramConfig::tiny_test();
            dram.copy_rows_per_subarray = 0;
            let mut mc = MemController::new(cfg, dram, None);
            mc.try_enqueue(read(0, 0, 200, 0)).unwrap(); // oldest, other row
            for i in 1..=12u64 {
                mc.try_enqueue(read(i, 0, 5, (i % 16) as u32)).unwrap();
            }
            let mut out = Vec::new();
            let mut now = 0;
            while out.len() < 13 && now < 100_000 {
                mc.tick(now, &mut out);
                now += 1;
            }
            out.iter().position(|c| c.id == 0).expect("req 0 served")
        };
        let capped = serve_order(SchedKind::FrFcfsCap { cap: 4 });
        let uncapped = serve_order(SchedKind::FrFcfs);
        assert!(capped <= 5, "cap bounds starvation: position {capped}");
        assert!(
            uncapped >= capped,
            "uncapped ({uncapped}) should serve the conflict no sooner than capped ({capped})"
        );
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut mc = baseline_mc();
        let mut rejected = 0;
        for i in 0..100 {
            if mc.try_enqueue(read(i, 0, 5, 0)).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 100 - 64);
        assert_eq!(mc.stats().rejections, 36);
    }

    #[test]
    fn refresh_issues_periodically() {
        let mut mc = baseline_mc();
        let trefi = u64::from(mc.channel().config().timings.trefi);
        run(&mut mc, trefi * 4 + 100);
        assert!(mc.stats().refreshes >= 3, "{}", mc.stats().refreshes);
    }

    #[test]
    fn per_bank_refresh_mode_issues_refpb() {
        let mut cfg = McConfig::paper_default();
        cfg.per_bank_refresh = true;
        let mut dram = DramConfig::tiny_test();
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(cfg, dram, None);
        let trefi = u64::from(mc.channel().config().timings.trefi);
        run(&mut mc, trefi * 4 + 100);
        let st = mc.channel().stats();
        assert_eq!(st.issued(Command::Ref), 0);
        // One REFpb every tREFI/banks: roughly banks x as many commands.
        assert!(
            st.issued(Command::RefPb) >= 6,
            "REFpb count {}",
            st.issued(Command::RefPb)
        );
    }

    #[test]
    fn per_bank_refresh_total_energy_close_to_all_bank() {
        let mk = |per_bank: bool| {
            let mut cfg = McConfig::paper_default();
            cfg.per_bank_refresh = per_bank;
            let mut dram = DramConfig::tiny_test();
            dram.copy_rows_per_subarray = 0;
            let mut mc = MemController::new(cfg, dram, None);
            let trefi = u64::from(mc.channel().config().timings.trefi);
            run(&mut mc, trefi * 16);
            mc.energy().ref_nj
        };
        let ab = mk(false);
        let pb = mk(true);
        assert!(ab > 0.0 && pb > 0.0);
        let ratio = pb / ab;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn refresh_postponement_defers_under_load_but_repays_debt() {
        let mk = |postpone: u32| {
            let mut cfg = McConfig::paper_default();
            cfg.max_postponed_refreshes = postpone;
            let mut dram = DramConfig::tiny_test();
            dram.copy_rows_per_subarray = 0;
            MemController::new(cfg, dram, None)
        };
        let trefi = u64::from(DramConfig::tiny_test().timings.trefi);
        // Keep a burst of requests queued across several tREFI periods.
        let run_burst = |mc: &mut MemController| -> (u64, usize) {
            let mut out = Vec::new();
            let mut id = 0u64;
            for now in 0..trefi * 4 {
                if mc.can_accept_read() && now % 50 == 0 {
                    let row = ((id * 97) % 512) as u32;
                    mc.try_enqueue(read(id, (id % 2) as u32, row, 0)).ok();
                    id += 1;
                }
                mc.tick(now, &mut out);
            }
            (mc.stats().refreshes, out.len())
        };
        let mut strict = mk(0);
        let (refs_strict, _) = run_burst(&mut strict);
        let mut flexible = mk(8);
        let (refs_flex, _) = run_burst(&mut flexible);
        assert!(
            refs_strict >= 3,
            "strict must refresh on schedule: {refs_strict}"
        );
        assert!(
            refs_flex < refs_strict,
            "postponement defers refreshes under load: {refs_flex} vs {refs_strict}"
        );
        // Once traffic stops, the debt is repaid: total refreshes catch up.
        let mut out = Vec::new();
        for now in trefi * 4..trefi * 12 {
            flexible.tick(now, &mut out);
        }
        assert!(
            flexible.stats().refreshes >= refs_strict,
            "debt repaid: {} vs {refs_strict}",
            flexible.stats().refreshes
        );
    }

    #[test]
    fn refresh_can_be_disabled() {
        let mut cfg = McConfig::paper_default();
        cfg.refresh = false;
        let mut dram = DramConfig::tiny_test();
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(cfg, dram, None);
        let trefi = u64::from(mc.channel().config().timings.trefi);
        run(&mut mc, trefi * 3);
        assert_eq!(mc.stats().refreshes, 0);
    }

    #[test]
    fn crow_cache_hit_uses_act_t() {
        let mut mc = crow_mc();
        mc.try_enqueue(read(1, 0, 5, 0)).unwrap();
        run(&mut mc, 500);
        // First access installs via ACT-c.
        assert_eq!(mc.channel().stats().issued(Command::ActC), 1);
        mc.try_enqueue(read(2, 0, 5, 1)).unwrap();
        run(&mut mc, 500);
        assert_eq!(mc.channel().stats().issued(Command::ActT), 1);
        let crow = mc.crow().unwrap();
        assert_eq!(crow.stats().cache_hits, 1);
        assert_eq!(crow.stats().cache_installs, 1);
        mc.channel().oracle().unwrap().assert_clean();
    }

    #[test]
    fn crow_faster_than_baseline_on_reuse() {
        // Interleave two conflicting rows so every access re-activates;
        // CROW-cache should serve the re-activations faster.
        let mut base = baseline_mc();
        let mut crow = crow_mc();
        for mc in [&mut base, &mut crow] {
            let mut id = 0;
            let mut out = Vec::new();
            let mut now = 0u64;
            // Warm both rows.
            for _ in 0..20 {
                for row in [5u32, 200] {
                    mc.try_enqueue(read(id, 0, row, (id % 8) as u32)).unwrap();
                    id += 1;
                    // Let the request finish before the next (serialized).
                    let target = out.len() + 1;
                    while out.len() < target && now < 2_000_000 {
                        mc.tick(now, &mut out);
                        now += 1;
                    }
                }
            }
        }
        let base_lat = base.stats().avg_read_latency();
        let crow_lat = crow.stats().avg_read_latency();
        assert!(
            crow_lat < base_lat,
            "CROW latency {crow_lat} should beat baseline {base_lat}"
        );
        crow.channel().oracle().unwrap().assert_clean();
    }

    #[test]
    fn restore_before_evict_flow() {
        // 2 copy rows per subarray. Keep the bank contended so precharges
        // happen at the earliest legal point (before full restoration),
        // leaving cached pairs partially restored; the third distinct row
        // must then trigger the restore-before-evict flow of §4.1.4.
        let mut mc = crow_mc();
        let mut out = Vec::new();
        let mut id = 0u64;
        let mut now = 0u64;
        // Alternate among three rows of subarray 0 with the queue kept
        // non-empty, so each activation is closed early by the conflict.
        for round in 0..30 {
            for row in [1u32, 2, 3] {
                mc.try_enqueue(read(id, 0, row, (round % 8) as u32))
                    .unwrap();
                id += 1;
            }
            for _ in 0..400 {
                mc.tick(now, &mut out);
                now += 1;
            }
        }
        while mc.pending() > 0 && now < 2_000_000 {
            mc.tick(now, &mut out);
            now += 1;
        }
        assert_eq!(out.len() as u64, id);
        let crow_stats = *mc.crow().unwrap().stats();
        assert!(crow_stats.cache_installs >= 3);
        assert!(
            crow_stats.restore_evictions >= 1,
            "expected restore-before-evict events, stats: {crow_stats:?}"
        );
        assert!(mc.stats().restore_activations >= 1);
        mc.channel().oracle().unwrap().assert_clean();
    }

    #[test]
    fn crow_ref_redirects_and_halves_refresh() {
        use crow_core::RetentionProfile;
        let dram = DramConfig::tiny_test();
        let mut crow_cfg = CrowConfig::tiny_test();
        crow_cfg.cache = false;
        let mut crow = CrowSubstrate::new(crow_cfg);
        let weak = RetentionProfile::FixedPerSubarray { n: 1 }.generate(2, 8, 64, 2, 9);
        let remapped = crow.install_ref_plan(&weak);
        assert!(remapped > 0);
        let mut mc = MemController::new(McConfig::paper_default(), dram, Some(crow));
        let (b, sa, weak_row) = weak.iter_regular().next().unwrap();
        mc.try_enqueue(MemRequest::new(1, ReqKind::Read, 0, b, weak_row, 0, 0))
            .unwrap();
        let trefi = u64::from(mc.channel().config().timings.trefi);
        let done = run(&mut mc, trefi * 8);
        assert_eq!(done.len(), 1);
        assert_eq!(mc.crow().unwrap().stats().ref_redirects, 1);
        let _ = sa;
        // Extended interval: roughly half the refreshes of the baseline
        // over the same window.
        let mut base = baseline_mc();
        run(&mut base, trefi * 8);
        assert!(
            mc.stats().refreshes < base.stats().refreshes,
            "extended {} vs base {}",
            mc.stats().refreshes,
            base.stats().refreshes
        );
    }

    #[test]
    fn salp_mode_overlaps_subarrays() {
        let mut dram = DramConfig::tiny_test();
        dram.subarray_parallelism = true;
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(McConfig::paper_default().with_open_page(), dram, None);
        // Two rows in different subarrays of the same bank.
        mc.try_enqueue(read(1, 0, 5, 0)).unwrap();
        mc.try_enqueue(read(2, 0, 300, 0)).unwrap();
        let done = run(&mut mc, 1000);
        assert_eq!(done.len(), 2);
        // No conflict precharge was needed.
        assert_eq!(mc.stats().row_conflicts, 0);
    }

    #[test]
    fn energy_accumulates() {
        let mut mc = baseline_mc();
        mc.try_enqueue(read(1, 0, 5, 0)).unwrap();
        run(&mut mc, 1000);
        let e = mc.energy();
        assert!(e.act_nj > 0.0);
        assert!(e.rd_nj > 0.0);
        assert!(e.background_nj > 0.0);
    }

    #[test]
    fn try_new_reports_invalid_configs() {
        let mut bad_mc = McConfig::paper_default();
        bad_mc.read_q = 0;
        let err = MemController::try_new(bad_mc, DramConfig::tiny_test(), None).unwrap_err();
        assert!(err.to_string().contains("invalid McConfig"));
        let mut bad_dram = DramConfig::tiny_test();
        bad_dram.banks = 6;
        let err = MemController::try_new(McConfig::paper_default(), bad_dram, None).unwrap_err();
        assert!(err.to_string().contains("invalid DramConfig"));
    }

    #[test]
    fn injected_bus_drop_loses_one_cycle_and_is_counted() {
        let mut mc = baseline_mc();
        mc.try_enqueue(read(1, 0, 5, 3)).unwrap();
        let mut reference = baseline_mc();
        reference.try_enqueue(read(1, 0, 5, 3)).unwrap();
        mc.drop_next_issue();
        let done = run(&mut mc, 300);
        let done_ref = run(&mut reference, 300);
        assert_eq!(mc.stats().bus_drops, 1);
        assert_eq!(reference.stats().bus_drops, 0);
        assert_eq!(done.len(), 1);
        // The dropped cycle delays the ACT by exactly one cycle.
        assert_eq!(done[0].latency, done_ref[0].latency + 1);
    }

    #[test]
    fn injected_disturbance_queues_hammer_copies() {
        let mut crow_cfg = CrowConfig::tiny_test();
        crow_cfg.hammer = Some(crow_core::HammerConfig {
            threshold: 4,
            window_cycles: 1_000_000,
        });
        let dram = DramConfig::tiny_test();
        let mut mc = MemController::new(
            McConfig::paper_default(),
            dram,
            Some(CrowSubstrate::new(crow_cfg)),
        );
        // A burst below threshold flags nothing.
        assert_eq!(mc.inject_disturbance(0, 0, 10, 3, 0), 0);
        // Crossing the threshold flags both neighbours.
        assert_eq!(mc.inject_disturbance(0, 0, 10, 1, 1), 2);
        // The controller protects the victims with ACT-c copies.
        let _ = run(&mut mc, 1000);
        assert_eq!(mc.stats().hammer_copies, 2);
        // No substrate: injection is a no-op.
        let mut plain = baseline_mc();
        assert_eq!(plain.inject_disturbance(0, 0, 10, 100, 0), 0);
    }

    #[test]
    fn validator_stays_clean_across_controller_traffic() {
        let mut mc = crow_mc();
        mc.attach_validator();
        for i in 0..32 {
            let _ = mc.try_enqueue(read(i, (i % 2) as u32, (i * 37 % 128) as u32, 0));
        }
        let _ = run(&mut mc, 20_000);
        let v = mc.channel().validator().expect("attached");
        assert!(v.observed() > 0);
        v.assert_clean();
    }

    #[test]
    fn fcfs_serves_in_order_across_rows() {
        let mut cfg = McConfig::paper_default();
        cfg.sched = SchedKind::Fcfs;
        let mut dram = DramConfig::tiny_test();
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(cfg, dram, None);
        mc.try_enqueue(read(1, 0, 5, 0)).unwrap();
        mc.try_enqueue(read(2, 0, 200, 0)).unwrap();
        mc.try_enqueue(read(3, 0, 5, 1)).unwrap();
        let done = run(&mut mc, 2000);
        assert_eq!(done.len(), 3);
    }
}
