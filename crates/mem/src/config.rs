//! Memory-controller configuration.

/// Request scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// First-come first-served (no row-hit prioritization).
    Fcfs,
    /// First-ready FCFS: row hits first, then oldest.
    FrFcfs,
    /// FR-FCFS with a cap on column commands served per activation
    /// (paper footnote 6; improves fairness and average performance).
    FrFcfsCap {
        /// Maximum column commands serviced per row activation before
        /// hits lose their priority.
        cap: u32,
    },
}

/// Candidate-selection implementation. Both produce bit-identical
/// command streams (the indexed path reproduces the linear scan's
/// (priority, arrival, queue-position) order exactly); they differ only
/// in work per tick and in how far the event-driven engine can skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedImpl {
    /// Per-(rank,bank) request buckets with row-hit sublists and a
    /// memoized per-bank readiness cache: O(banks) selection plus wake
    /// hints that let the engine skip dead cycles under load.
    Indexed,
    /// The reference O(queue) scan over the whole queue every tick.
    Linear,
}

/// In-controller RowHammer mitigation baselines (evaluated against the
/// CROW §4.3 remapping mechanism by the `hammer` figure family).
///
/// Both baselines issue *neighbor refreshes*: fully-restoring activations
/// of the rows physically adjacent to a suspected aggressor, scheduled as
/// maintenance work between demand requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// No in-controller mitigation.
    None,
    /// PARA (Kim et al., ISCA 2014): on every demand activation, with
    /// probability `1/hazard`, refresh one of the two adjacent rows
    /// (chosen uniformly). Stateless; protection is probabilistic.
    Para {
        /// Inverse per-activation refresh probability (e.g. 500 ⇒ p=0.002).
        hazard: u32,
    },
    /// A TRR-like sampler: a small per-bank counter table tracks the most
    /// frequently activated rows (evict-min when full, mirroring
    /// `crow_core::RowHammerGuard`); at each refresh command, rows whose
    /// count reached `threshold` get both neighbors refreshed and the
    /// bank's table is cleared.
    Trr {
        /// Counter-table entries per bank.
        entries: u32,
        /// Activation count at which a tracked row is treated as an
        /// aggressor on the next refresh.
        threshold: u32,
    },
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPolicy {
    /// Close an open row after it has been idle for `cycles` with no
    /// queued requests to it (paper footnote 7: 75 ns).
    Timeout {
        /// Idle threshold in memory-clock cycles.
        cycles: u64,
    },
    /// Keep rows open until a conflict forces a precharge.
    OpenPage,
    /// Precharge as soon as no queued request targets the open row.
    ClosedPage,
}

/// Memory-controller configuration (paper Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Read queue capacity.
    pub read_q: usize,
    /// Write queue capacity.
    pub write_q: usize,
    /// Scheduling discipline.
    pub sched: SchedKind,
    /// Candidate-selection implementation (identical command streams;
    /// see [`SchedImpl`]).
    pub sched_impl: SchedImpl,
    /// Row-buffer policy.
    pub policy: RowPolicy,
    /// Write-drain high watermark: entering drain mode.
    pub wr_high: usize,
    /// Write-drain low watermark: leaving drain mode.
    pub wr_low: usize,
    /// Issue refresh commands (disabled for the "no refresh" ideal of
    /// paper Fig. 14).
    pub refresh: bool,
    /// Use LPDDR4 per-bank refresh (`REFpb`) instead of all-bank `REF`:
    /// one bank refreshes every `tREFI/banks` while the others keep
    /// serving requests.
    pub per_bank_refresh: bool,
    /// JEDEC refresh flexibility: defer up to this many due refreshes
    /// while demand requests are queued, catching up when the queues
    /// drain (0 = refresh strictly on schedule). The standards allow up
    /// to 8.
    pub max_postponed_refreshes: u32,
    /// In-controller RowHammer mitigation baseline (PARA / TRR-like).
    pub mitigation: Mitigation,
}

impl McConfig {
    /// Paper Table 2: 64-entry queues, FR-FCFS-Cap, 75 ns timeout policy.
    pub fn paper_default() -> Self {
        Self {
            read_q: 64,
            write_q: 64,
            sched: SchedKind::FrFcfsCap { cap: 4 },
            sched_impl: SchedImpl::Indexed,
            // 75 ns at 0.625 ns/cycle = 120 cycles.
            policy: RowPolicy::Timeout { cycles: 120 },
            wr_high: 48,
            wr_low: 16,
            refresh: true,
            per_bank_refresh: false,
            max_postponed_refreshes: 0,
            mitigation: Mitigation::None,
        }
    }

    /// Returns a copy with a RowHammer mitigation baseline enabled.
    pub fn with_mitigation(mut self, mitigation: Mitigation) -> Self {
        self.mitigation = mitigation;
        self
    }

    /// Returns a copy using the open-page policy (SALP-`N`-O in §8.1.4).
    pub fn with_open_page(mut self) -> Self {
        self.policy = RowPolicy::OpenPage;
        self
    }

    /// Returns a copy with a different scheduler.
    pub fn with_sched(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// Returns a copy with a different candidate-selection
    /// implementation (equivalence testing / benchmarking).
    pub fn with_sched_impl(mut self, sched_impl: SchedImpl) -> Self {
        self.sched_impl = sched_impl;
        self
    }

    /// Validates watermark and capacity relations.
    ///
    /// # Errors
    ///
    /// Describes the violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.read_q == 0 || self.write_q == 0 {
            return Err("queues must be nonempty".into());
        }
        if self.wr_low >= self.wr_high {
            return Err("wr_low must be below wr_high".into());
        }
        if self.wr_high > self.write_q {
            return Err("wr_high exceeds write queue capacity".into());
        }
        if let SchedKind::FrFcfsCap { cap } = self.sched {
            if cap == 0 {
                return Err("FR-FCFS cap must be nonzero".into());
            }
        }
        if self.max_postponed_refreshes > 8 {
            return Err("JEDEC allows postponing at most 8 refreshes".into());
        }
        match self.mitigation {
            Mitigation::None => {}
            Mitigation::Para { hazard } => {
                if hazard == 0 {
                    return Err("PARA hazard (inverse probability) must be nonzero".into());
                }
            }
            Mitigation::Trr { entries, threshold } => {
                if entries == 0 || threshold == 0 {
                    return Err("TRR entries and threshold must be nonzero".into());
                }
            }
        }
        Ok(())
    }
}

impl Default for McConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = McConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.sched, SchedKind::FrFcfsCap { cap: 4 });
        assert_eq!(c.policy, RowPolicy::Timeout { cycles: 120 });
    }

    #[test]
    fn invalid_watermarks_rejected() {
        let mut c = McConfig::paper_default();
        c.wr_low = c.wr_high;
        assert!(c.validate().is_err());
        let mut c = McConfig::paper_default();
        c.wr_high = c.write_q + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mitigation_parameters_validated() {
        let c = McConfig::paper_default().with_mitigation(Mitigation::Para { hazard: 0 });
        assert!(c.validate().is_err());
        let c = McConfig::paper_default().with_mitigation(Mitigation::Trr {
            entries: 0,
            threshold: 4,
        });
        assert!(c.validate().is_err());
        let c = McConfig::paper_default().with_mitigation(Mitigation::Para { hazard: 500 });
        c.validate().unwrap();
    }

    #[test]
    fn builders_apply() {
        let c = McConfig::paper_default()
            .with_open_page()
            .with_sched(SchedKind::Fcfs);
        assert_eq!(c.policy, RowPolicy::OpenPage);
        assert_eq!(c.sched, SchedKind::Fcfs);
    }
}
