//! Scheduler index structures and diagnostics.
//!
//! The controller's linear FR-FCFS scan visits every queued request on
//! every tick. The indexed implementation ([`crate::config::SchedImpl::
//! Indexed`]) keeps one [`BankBucket`] per (rank, bank) and queue: the
//! bucket's candidate list is maintained incrementally on enqueue and
//! dequeue, and its split into row-hit sublists (keyed by subarray) and
//! a row-miss list is rebuilt lazily, only after a command to that bank
//! invalidated the classification. Candidate selection then becomes a
//! k-way merge over per-bank sublists in the *exact* (priority, arrival,
//! queue-position) order the linear scan produces, so both
//! implementations issue bit-identical command streams (DESIGN.md
//! §3.13 has the argument).
//!
//! On top of the buckets, the controller memoizes a per-bank readiness
//! bound (`bank_ready`): when a full scan issues nothing, each
//! participating bank records the earliest cycle any of its candidates
//! could issue, stamped with the scheduler epoch. While the epoch is
//! unchanged, later ticks skip those banks entirely, and the minimum
//! over all recorded bounds becomes the controller-level wake hint that
//! lets the event-driven engine skip dead cycles even under load.

use crow_dram::{Cycle, IssueError};

/// Scheduler work counters, observable per [`SimReport`] and in
/// campaign `.summary.json` output. Diagnostic: like the wall-clock
/// fields they are *not* part of the cross-engine equivalence contract
/// (engines and scheduler implementations legitimately differ here).
///
/// [`SimReport`]: ../../crow_sim/struct.SimReport.html
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Commands issued from the request queues (scheduler picks).
    pub picks: u64,
    /// Candidates examined across all scans (classification during
    /// bucket rebuilds plus merge attempts, or full linear-scan visits).
    pub scanned: u64,
    /// Banks skipped by the memoized readiness bound without touching
    /// any of their candidates.
    pub fastpath_skips: u64,
    /// Lazy hit/miss bucket rebuilds.
    pub rebuilds: u64,
    /// Memory cycles the event engine skipped while requests were
    /// queued (possible only through the indexed wake hint).
    pub wakeup_skips: u64,
}

impl SchedStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another controller's counters.
    pub fn merge(&mut self, other: &SchedStats) {
        self.picks += other.picks;
        self.scanned += other.scanned;
        self.fastpath_skips += other.fastpath_skips;
        self.rebuilds += other.rebuilds;
        self.wakeup_skips += other.wakeup_skips;
    }

    /// Average candidates examined per issued command (0 when nothing
    /// was picked).
    pub fn scanned_per_pick(&self) -> f64 {
        if self.picks == 0 {
            0.0
        } else {
            self.scanned as f64 / self.picks as f64
        }
    }
}

/// Accumulates the earliest cycle at which any failed issue attempt of
/// the current tick could succeed. `Cycle::MAX` means no reached code
/// path imposed a time bound (state-dependent failures are covered by
/// the epoch invalidation instead).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Wake {
    /// Minimum retry cycle noted so far.
    pub at: Cycle,
}

impl Wake {
    pub fn new() -> Self {
        Self { at: Cycle::MAX }
    }

    /// Notes that a failed attempt becomes retriable at `at`.
    pub fn note(&mut self, at: Cycle) {
        self.at = self.at.min(at);
    }

    /// Notes a timing failure; structural (`WrongState`/`BadAddress`)
    /// failures carry no bound — they can only flip through a command
    /// issue or an enqueue, both of which bump the scheduler epoch.
    pub fn note_err(&mut self, e: &IssueError) {
        if let IssueError::TooEarly { ready_at } = e {
            self.note(*ready_at);
        }
    }

    pub fn merge(&mut self, other: &Wake) {
        self.at = self.at.min(other.at);
    }
}

/// Stream id of the row-miss sublist in a [`Cursor`] (hit sublists use
/// their position in [`BankBucket::hits`]).
pub(crate) const MISS_STREAM: u32 = u32::MAX;

/// One merge cursor over a bucket sublist during indexed selection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cursor {
    /// Scheduling priority of every candidate in the sublist (0 = row
    /// hit under the discipline's rules, 1 otherwise).
    pub prio: u8,
    /// Bucket slot (`rank * banks + bank`).
    pub slot: u32,
    /// Sublist: an index into `hits`, or [`MISS_STREAM`].
    pub stream: u32,
    /// Next unconsumed element of the sublist.
    pub next: u32,
}

/// Per-(rank, bank) candidate bucket of one request queue.
#[derive(Debug, Clone, Default)]
pub(crate) struct BankBucket {
    /// Live queue positions of this bank's requests as
    /// (arrival, position) pairs, kept sorted — the linear scan's exact
    /// intra-priority tie-break.
    pub cands: Vec<(Cycle, u32)>,
    /// Whether `hits`/`miss` reflect the bank's current row state.
    pub fresh: bool,
    /// Row-hit sublists keyed by subarray (candidates the subarray's
    /// open activation can serve), each sorted like `cands`.
    pub hits: Vec<(u32, Vec<(Cycle, u32)>)>,
    /// Candidates not served by any open activation, sorted likewise.
    pub miss: Vec<(Cycle, u32)>,
}

impl BankBucket {
    /// Drops the hit/miss split, recycling sublist storage into `pool`.
    pub fn clear_split(&mut self, pool: &mut Vec<Vec<(Cycle, u32)>>) {
        for (_, mut v) in self.hits.drain(..) {
            v.clear();
            pool.push(v);
        }
        self.miss.clear();
    }

    /// Appends a candidate to the hit sublist of subarray `sa`.
    pub fn hit_push(&mut self, sa: u32, entry: (Cycle, u32), pool: &mut Vec<Vec<(Cycle, u32)>>) {
        if let Some((_, v)) = self.hits.iter_mut().find(|(s, _)| *s == sa) {
            v.push(entry);
            return;
        }
        let mut v = pool.pop().unwrap_or_default();
        v.push(entry);
        self.hits.push((sa, v));
    }
}

/// One request queue's bank index: a [`BankBucket`] per (rank, bank).
#[derive(Debug, Clone, Default)]
pub(crate) struct QueueIndex {
    buckets: Vec<BankBucket>,
}

impl QueueIndex {
    pub fn new(slots: usize) -> Self {
        Self {
            buckets: (0..slots).map(|_| BankBucket::default()).collect(),
        }
    }

    pub fn bucket(&self, slot: usize) -> &BankBucket {
        &self.buckets[slot]
    }

    pub fn bucket_mut(&mut self, slot: usize) -> &mut BankBucket {
        &mut self.buckets[slot]
    }

    /// Records a push to the back of the queue. Arrival stamps are
    /// non-decreasing and the position is the queue's maximum, so
    /// appending keeps the bucket sorted.
    pub fn on_push(&mut self, slot: usize, arrival: Cycle, pos: u32) {
        let b = &mut self.buckets[slot];
        debug_assert!(b.cands.last().is_none_or(|&last| last < (arrival, pos)));
        b.cands.push((arrival, pos));
        b.fresh = false;
    }

    /// Removes the entry `(arrival, pos)` from `slot`.
    pub fn remove(&mut self, slot: usize, arrival: Cycle, pos: u32) {
        let b = &mut self.buckets[slot];
        match b.cands.binary_search(&(arrival, pos)) {
            Ok(i) => {
                b.cands.remove(i);
            }
            Err(_) => debug_assert!(false, "bank index lost entry ({arrival}, {pos})"),
        }
        b.fresh = false;
    }

    /// Re-keys the entry a queue `swap_remove` moved from the back
    /// (`old_pos`) into the vacated position (`new_pos`).
    pub fn reposition(&mut self, slot: usize, arrival: Cycle, old_pos: u32, new_pos: u32) {
        let b = &mut self.buckets[slot];
        match b.cands.binary_search(&(arrival, old_pos)) {
            Ok(i) => {
                b.cands.remove(i);
            }
            Err(_) => debug_assert!(false, "bank index lost entry ({arrival}, {old_pos})"),
        }
        let at = match b.cands.binary_search(&(arrival, new_pos)) {
            Ok(i) | Err(i) => i,
        };
        b.cands.insert(at, (arrival, new_pos));
        b.fresh = false;
    }

    /// Marks one bucket's hit/miss split stale (bank state changed).
    pub fn mark_stale(&mut self, slot: usize) {
        self.buckets[slot].fresh = false;
    }

    /// Marks every bucket stale (global state change, e.g. a CROW-table
    /// mutation through external access).
    pub fn mark_all_stale(&mut self) {
        for b in &mut self.buckets {
            b.fresh = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_ratio() {
        let mut a = SchedStats {
            picks: 2,
            scanned: 10,
            ..SchedStats::new()
        };
        let b = SchedStats {
            picks: 3,
            scanned: 5,
            fastpath_skips: 7,
            rebuilds: 1,
            wakeup_skips: 9,
        };
        a.merge(&b);
        assert_eq!(a.picks, 5);
        assert_eq!(a.scanned, 15);
        assert_eq!(a.fastpath_skips, 7);
        assert_eq!(a.wakeup_skips, 9);
        assert!((a.scanned_per_pick() - 3.0).abs() < 1e-12);
        assert_eq!(SchedStats::new().scanned_per_pick(), 0.0);
    }

    #[test]
    fn wake_tracks_minimum_and_ignores_structural_errors() {
        let mut w = Wake::new();
        assert_eq!(w.at, Cycle::MAX);
        w.note_err(&IssueError::WrongState("no open row"));
        assert_eq!(w.at, Cycle::MAX);
        w.note_err(&IssueError::TooEarly { ready_at: 90 });
        w.note(120);
        assert_eq!(w.at, 90);
        let mut other = Wake::new();
        other.note(50);
        w.merge(&other);
        assert_eq!(w.at, 50);
    }

    #[test]
    fn index_maintains_sorted_candidates_across_swap_remove() {
        let mut ix = QueueIndex::new(2);
        // Queue: pos0(bank0,t5) pos1(bank1,t6) pos2(bank0,t7).
        ix.on_push(0, 5, 0);
        ix.on_push(1, 6, 1);
        ix.on_push(0, 7, 2);
        // swap_remove(0): pos2 moves to pos0.
        ix.remove(0, 5, 0);
        ix.reposition(0, 7, 2, 0);
        assert_eq!(ix.bucket(0).cands, vec![(7, 0)]);
        assert_eq!(ix.bucket(1).cands, vec![(6, 1)]);
        assert!(!ix.bucket(0).fresh);
    }

    #[test]
    fn bucket_split_recycles_storage() {
        let mut b = BankBucket::default();
        let mut pool = Vec::new();
        b.hit_push(3, (10, 0), &mut pool);
        b.hit_push(3, (11, 1), &mut pool);
        b.hit_push(4, (12, 2), &mut pool);
        assert_eq!(b.hits.len(), 2);
        b.clear_split(&mut pool);
        assert_eq!(pool.len(), 2);
        assert!(b.hits.is_empty());
        b.hit_push(5, (13, 0), &mut pool);
        assert_eq!(pool.len(), 1, "sublist storage reused");
    }
}
