//! Error types for controller construction.

use crow_dram::ConfigError;

/// Why a [`crate::MemController`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// The controller configuration failed validation.
    Config(ConfigError),
    /// The DRAM configuration failed validation.
    Dram(ConfigError),
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McError::Config(e) | McError::Dram(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Config(e) | McError::Dram(e) => Some(e),
        }
    }
}

impl From<ConfigError> for McError {
    fn from(e: ConfigError) -> Self {
        McError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_text() {
        let e = McError::Config(ConfigError::new("McConfig", "read_q must be nonzero"));
        assert_eq!(e.to_string(), "invalid McConfig: read_q must be nonzero");
    }
}
