//! Randomized cross-check of the indexed scheduler against the linear
//! reference: two controllers (identical configuration except for
//! `sched_impl`) are driven in lockstep with the same mixed
//! read/write/maintenance-copy request stream and must produce
//! bit-identical completions, controller statistics, and DRAM command
//! streams, with the shadow protocol validator and data-integrity
//! oracle attached and clean on both sides.

use crow_core::{CrowConfig, CrowSubstrate};
use crow_dram::DramConfig;
use crow_mem::{
    Completion, McConfig, MemController, MemRequest, ReqKind, RowPolicy, SchedImpl, SchedKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn controller(cfg: McConfig, dram: DramConfig, with_crow: bool) -> MemController {
    let crow = with_crow.then(|| CrowSubstrate::new(CrowConfig::tiny_test()));
    let mut mc = MemController::new(cfg, dram, crow);
    mc.attach_validator();
    if with_crow {
        mc.attach_oracle();
    }
    mc
}

fn fingerprint(mc: &MemController) -> String {
    format!(
        "{:?}|{:?}|{:?}",
        mc.stats(),
        mc.channel().stats(),
        mc.crow().map(|c| *c.stats())
    )
}

/// Drives both controllers of `pair` through `requests` mixed requests
/// plus periodic weak-row remaps and hammer disturbance injections,
/// asserting identical behavior throughout and at drain.
fn drive(pair: &mut [MemController; 2], requests: usize, seed: u64, label: &str) {
    let dram = DramConfig::tiny_test();
    let (ranks, banks, rows) = (dram.ranks, dram.banks, dram.rows_per_bank);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sent = 0usize;
    let mut now = 0u64;
    let mut id = 0u64;
    let mut out_a: Vec<Completion> = Vec::new();
    let mut out_b: Vec<Completion> = Vec::new();
    while sent < requests || pair[0].pending() > 0 || pair[1].pending() > 0 {
        if sent < requests {
            for _ in 0..rng.gen_range(1..=3usize) {
                if sent >= requests {
                    break;
                }
                let kind = if rng.gen_bool(0.65) {
                    ReqKind::Read
                } else {
                    ReqKind::Write
                };
                let rank = rng.gen_range(0..ranks);
                let bank = rng.gen_range(0..banks);
                // Skewed row distribution: mostly a hot set (row hits and
                // conflicts within a subarray), sometimes anywhere.
                let row = if rng.gen_bool(0.7) {
                    rng.gen_range(0..4u32)
                } else {
                    rng.gen_range(0..rows)
                };
                let req = MemRequest::new(id, kind, rank, bank, row, rng.gen_range(0..16u32), 0);
                let ra = pair[0].try_enqueue(req);
                let rb = pair[1].try_enqueue(req);
                assert_eq!(
                    ra.is_ok(),
                    rb.is_ok(),
                    "{label}: acceptance diverged at request {id}"
                );
                if ra.is_err() {
                    break;
                }
                sent += 1;
                id += 1;
            }
            // Occasional maintenance traffic, applied to both sides.
            if sent % 701 == 700 {
                let row = rng.gen_range(0..rows);
                for mc in pair.iter_mut() {
                    mc.remap_weak_row_in_rank(0, 0, row);
                }
            }
            if sent % 997 == 996 {
                let row = rng.gen_range(0..rows);
                let a = pair[0].inject_disturbance(0, 1, row, 8, now);
                let b = pair[1].inject_disturbance(0, 1, row, 8, now);
                assert_eq!(a, b, "{label}: disturbance outcome diverged");
            }
        }
        for _ in 0..rng.gen_range(1..40usize) {
            pair[0].tick(now, &mut out_a);
            pair[1].tick(now, &mut out_b);
            assert_eq!(out_a, out_b, "{label}: completions diverged at cycle {now}");
            out_a.clear();
            out_b.clear();
            now += 1;
        }
        assert_eq!(
            fingerprint(&pair[0]),
            fingerprint(&pair[1]),
            "{label}: state diverged by cycle {now}"
        );
        assert!(now < 100_000_000, "{label}: queues did not drain");
    }
    for mc in pair.iter_mut() {
        mc.finish_validation(now);
    }
    for (side, mc) in pair.iter().enumerate() {
        let v = mc.channel().validator().expect("validator attached");
        assert!(v.observed() > 0);
        v.assert_clean();
        if let Some(o) = mc.channel().oracle() {
            o.assert_clean();
        }
        assert!(side <= 1);
    }
    assert_eq!(
        fingerprint(&pair[0]),
        fingerprint(&pair[1]),
        "{label}: final state diverged"
    );
}

fn pair_for(cfg: McConfig, with_crow: bool) -> [MemController; 2] {
    let dram = DramConfig::tiny_test();
    [
        controller(
            cfg.with_sched_impl(SchedImpl::Indexed),
            dram.clone(),
            with_crow,
        ),
        controller(cfg.with_sched_impl(SchedImpl::Linear), dram, with_crow),
    ]
}

/// The headline fuzz cross-check: ≥10k mixed requests across the row
/// policy × scheduler matrix, indexed vs. linear, CROW attached.
#[test]
fn indexed_matches_linear_across_policy_and_sched_matrix() {
    let policies = [
        RowPolicy::Timeout { cycles: 120 },
        RowPolicy::OpenPage,
        RowPolicy::ClosedPage,
    ];
    let scheds = [
        SchedKind::FrFcfsCap { cap: 4 },
        SchedKind::FrFcfs,
        SchedKind::Fcfs,
    ];
    let mut total = 0usize;
    for (pi, &policy) in policies.iter().enumerate() {
        for (si, &sched) in scheds.iter().enumerate() {
            // The paper-default combination carries the bulk of the
            // request budget; every other combination gets a slice.
            let n = if pi == 0 && si == 0 { 4_000 } else { 800 };
            let mut cfg = McConfig::paper_default();
            cfg.policy = policy;
            cfg.sched = sched;
            let label = format!("{policy:?}/{sched:?}");
            let mut pair = pair_for(cfg, true);
            drive(&mut pair, n, 0x5EED_0000 + (pi * 3 + si) as u64, &label);
            // The indexed side must actually use its fast paths on the
            // dense default combination (otherwise this test proves
            // nothing about the optimised code).
            if pi == 0 && si == 0 {
                let s = pair[0].sched_stats();
                assert!(s.picks > 0);
                assert!(s.fastpath_skips > 0, "readiness cache never engaged: {s:?}");
            }
            total += n;
        }
    }
    assert!(total >= 10_000, "fuzz volume too small: {total}");
}

/// Per-bank refresh exercises the bank-granular hold-back skip in the
/// indexed selector.
#[test]
fn indexed_matches_linear_under_per_bank_refresh() {
    let mut cfg = McConfig::paper_default();
    cfg.per_bank_refresh = true;
    cfg.max_postponed_refreshes = 4;
    let mut pair = pair_for(cfg, true);
    drive(&mut pair, 1_200, 0xBA7E, "per-bank-refresh");
}

/// Without CROW the copy-op path degenerates (ops are popped unserved);
/// the two implementations must still agree.
#[test]
fn indexed_matches_linear_without_crow() {
    let mut pair = pair_for(McConfig::paper_default(), false);
    pair[0].remap_weak_row(0, 7);
    pair[1].remap_weak_row(0, 7);
    drive(&mut pair, 1_000, 0xD1CE, "no-crow");
}
