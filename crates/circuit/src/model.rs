//! The calibrated charge-sharing / restoration model and its derived
//! multiple-row-activation timings (paper §5, Table 1, Fig. 5).

/// Electrical and calibration parameters of the analytical DRAM model.
///
/// The defaults come from [`CircuitParams::calibrated`], which solves the
/// free constants so that the N=1 and N=2 operating points reproduce the
/// paper's SPICE-derived Table 1 anchors exactly (see the crate docs for
/// the calibration scheme). All voltages in volts, times in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitParams {
    /// Supply voltage.
    pub vdd: f64,
    /// Cell-to-bitline capacitance ratio `Cc/Cb`.
    pub r_cap: f64,
    /// Sense-amplifier settling time constant.
    pub tau_sense_ns: f64,
    /// Bitline swing at which the row buffer is ready to access.
    pub v_ready: f64,
    /// Cell voltage reached by a *full* restoration.
    pub v_full: f64,
    /// Cell voltage of the paper's early-termination operating point.
    pub v_early: f64,
    /// Restoration time constant for `Cb` alone (scaled by `1 + N·r_cap`).
    pub tau_restore_ns: f64,
    /// Write-restoration time constant for `Cb` alone.
    pub tau_write_ns: f64,
    /// Write path fixed overhead.
    pub write_offset_ns: f64,
    /// Cell voltage reached by a full *write* restoration.
    pub v_full_write: f64,
    /// Extra time `ACT-c` spends enabling the copy-row wordline after the
    /// sense amplifiers latch (paper §4.1.1).
    pub copy_enable_ns: f64,
    /// Baseline (N=1) `tRCD` in ns.
    pub trcd1_ns: f64,
    /// Baseline `tRAS` in ns.
    pub tras1_ns: f64,
    /// Baseline `tWR` in ns.
    pub twr1_ns: f64,
}

impl CircuitParams {
    /// Solves the model constants against the paper's Table 1 anchors:
    ///
    /// * `tRCD(2)/tRCD(1) = 0.62` and restore-time growth
    ///   `(tRAS(2)−tRCD(2))/(tRAS(1)−tRCD(1)) = 27.9/24` pin the
    ///   capacitance ratio, sense constants, and restore constants;
    /// * the early-termination pair (`tRCD′ = 0.79`, `tRAS′ = 0.67`) pins
    ///   the truncation voltage and the restore trajectory;
    /// * `tWR` anchors (`+14%` full, `−13%` early) pin the write path;
    /// * `ACT-c` `tRAS = +18%` pins the copy-wordline enable overhead.
    ///
    /// A short fixed-point iteration reconciles the restored cell voltage
    /// used for sensing with the restore-completion voltage.
    pub fn calibrated() -> Self {
        let vdd = 1.1_f64;
        let v0 = vdd / 2.0;
        let trcd1 = 18.0_f64;
        let tras1 = 42.0_f64;
        let twr1 = 18.0_f64;
        let trcd2 = 0.62 * trcd1;
        let trest1 = tras1 - trcd1;
        let trest2 = 0.93 * tras1 - trcd2;
        // (1 + 2r)/(1 + r) = trest2/trest1.
        let ratio = trest2 / trest1;
        let r = (ratio - 1.0) / (2.0 - ratio);

        let mut v_cell_full = vdd;
        let (mut v_ready, mut tau_sense, mut v_early, mut tau_restore2, mut v_full);
        let mut iter = 0;
        loop {
            let dv1 = r / (1.0 + r) * (v_cell_full - v0);
            let dv2 = 2.0 * r / (1.0 + 2.0 * r) * (v_cell_full - v0);
            let big_r = trcd1 / trcd2;
            let x = (dv1.ln() - big_r * dv2.ln()) / (1.0 - big_r);
            v_ready = x.exp();
            tau_sense = trcd1 / (v_ready / dv1).ln();
            // Early anchor: tRCD(2, v_early) = 0.79 · tRCD(1).
            let dv_e = v_ready * (-0.79 * trcd1 / tau_sense).exp();
            v_early = v0 + dv_e / (2.0 * r / (1.0 + 2.0 * r));
            // Steady-state early-terminated tRAS on a *partially-restored*
            // pair (Table 1: −25%): sense at the degraded swing (tRCD −21%)
            // plus the truncated restore. Anchoring here makes the
            // fully-restored early tRAS (−33%) fall out as a prediction.
            let trest2_early = 0.75 * tras1 - 0.79 * trcd1;
            tau_restore2 = trest2_early / (v0 / (vdd - v_early)).ln();
            v_full = vdd - v0 * (-trest2 / tau_restore2).exp();
            iter += 1;
            if (v_full - v_cell_full).abs() < 1e-13 || iter > 200 {
                break;
            }
            v_cell_full = v_full;
        }
        let tau_restore = tau_restore2 / (1.0 + 2.0 * r);

        // Write path: t_wr(N, v) = w0 + tau_w·(1+N·r)·ln(vdd/(vdd−v)).
        let tw2f = 1.14 * twr1;
        let tw2e = 0.87 * twr1;
        let k = (tw2f - twr1) / r; // tau_w · L_full
        let l_early = (vdd / (vdd - v_early)).ln();
        let tau_write = (tw2e - twr1 + (1.0 + r) * k) / ((1.0 + 2.0 * r) * l_early);
        let l_full = k / tau_write;
        let v_full_write = vdd * (1.0 - (-l_full).exp());
        let write_offset = twr1 - (1.0 + r) * k;

        // ACT-c: tRAS = tRCD(1) + copy_enable + t_rest(2, v_full) = 1.18·tRAS(1).
        let copy_enable = 1.18 * tras1 - trcd1 - trest2;

        Self {
            vdd,
            r_cap: r,
            tau_sense_ns: tau_sense,
            v_ready,
            v_full,
            v_early,
            tau_restore_ns: tau_restore,
            tau_write_ns: tau_write,
            write_offset_ns: write_offset,
            v_full_write,
            copy_enable_ns: copy_enable,
            trcd1_ns: trcd1,
            tras1_ns: tras1,
            twr1_ns: twr1,
        }
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Full-restoration timing ratios for `N` simultaneously-activated rows,
/// normalized to the N=1 baseline (the series of paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MraPoint {
    /// Number of simultaneously-activated rows.
    pub n: u32,
    /// `tRCD(N)/tRCD(1)`.
    pub trcd_ratio: f64,
    /// `tRAS(N)/tRAS(1)` (full restoration).
    pub tras_ratio: f64,
    /// Restoration-time ratio (the restore phase alone).
    pub trestore_ratio: f64,
    /// `tWR(N)/tWR(1)` (full restoration).
    pub twr_ratio: f64,
}

/// Table 1-shaped derived ratios (see [`CircuitModel::derived_table1`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedMods {
    /// Scale on `tRCD`.
    pub trcd: f64,
    /// Scale on `tRAS`, full restoration.
    pub tras_full: f64,
    /// Scale on `tRAS`, early termination.
    pub tras_early: f64,
    /// Scale on `tWR`, full restoration.
    pub twr_full: f64,
    /// Scale on `tWR`, early termination.
    pub twr_early: f64,
}

/// The analytically derived equivalent of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedTable1 {
    /// `ACT-t` on a fully-restored pair.
    pub act_t_full: DerivedMods,
    /// `ACT-t` on a partially-restored pair.
    pub act_t_partial: DerivedMods,
    /// `ACT-c`.
    pub act_c: DerivedMods,
}

/// The calibrated analytical circuit model (see the crate docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CircuitModel {
    params: CircuitParams,
}

impl CircuitModel {
    /// A model calibrated to the paper's Table 1 anchors.
    pub fn calibrated() -> Self {
        Self {
            params: CircuitParams::calibrated(),
        }
    }

    /// A model with explicit parameters (used by the Monte-Carlo engine).
    pub fn with_params(params: CircuitParams) -> Self {
        Self { params }
    }

    /// The model parameters.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// Bitline voltage swing after charge sharing with `n` cells charged
    /// to `v_cell`.
    pub fn delta_v(&self, n: u32, v_cell: f64) -> f64 {
        let p = &self.params;
        let nr = f64::from(n) * p.r_cap;
        nr / (1.0 + nr) * (v_cell - p.vdd / 2.0)
    }

    /// Time for the sense amplifiers to reach the ready-to-access state
    /// (`tRCD`), in ns.
    pub fn sense_time_ns(&self, n: u32, v_cell: f64) -> f64 {
        let dv = self.delta_v(n, v_cell);
        assert!(dv > 0.0, "cell voltage must exceed the bitline reference");
        self.params.tau_sense_ns * (self.params.v_ready / dv).ln()
    }

    /// Time for the sense amplifier to drive `n` cells from the sensing
    /// level up to `v_end`, in ns.
    pub fn restore_time_ns(&self, n: u32, v_end: f64) -> f64 {
        let p = &self.params;
        let v0 = p.vdd / 2.0;
        assert!(
            v_end > v0 && v_end < p.vdd,
            "v_end must lie in (Vdd/2, Vdd)"
        );
        p.tau_restore_ns * (1.0 + f64::from(n) * p.r_cap) * (v0 / (p.vdd - v_end)).ln()
    }

    /// Write-recovery time to charge `n` cells to `v_end` after a write,
    /// in ns.
    pub fn write_time_ns(&self, n: u32, v_end: f64) -> f64 {
        let p = &self.params;
        assert!(v_end > 0.0 && v_end < p.vdd);
        p.write_offset_ns
            + p.tau_write_ns * (1.0 + f64::from(n) * p.r_cap) * (p.vdd / (p.vdd - v_end)).ln()
    }

    /// The minimum truncation voltage that still meets the retention
    /// target: `n` partially-charged cells must present at least the
    /// sense swing of one fully-charged cell at the end of the refresh
    /// window (leakage decay factors cancel, so the bound is static).
    pub fn retention_min_v_end(&self, n: u32) -> f64 {
        let p = &self.params;
        let v0 = p.vdd / 2.0;
        let full_margin = self.delta_v(1, p.v_full);
        let nr = f64::from(n) * p.r_cap;
        v0 + full_margin * (1.0 + nr) / nr
    }

    /// Full-restoration timing ratios for `n` rows (one point of Fig. 5).
    pub fn mra_point(&self, n: u32) -> MraPoint {
        let p = &self.params;
        let trcd = self.sense_time_ns(n, p.v_full);
        let trest = self.restore_time_ns(n, p.v_full);
        let twr = self.write_time_ns(n, p.v_full_write);
        let trest1 = self.restore_time_ns(1, p.v_full);
        MraPoint {
            n,
            trcd_ratio: trcd / p.trcd1_ns,
            tras_ratio: (trcd + trest) / p.tras1_ns,
            trestore_ratio: trest / trest1,
            twr_ratio: twr / p.twr1_ns,
        }
    }

    /// The Fig. 5 sweep: ratios for `n = 1..=n_max` rows.
    pub fn mra_sweep(&self, n_max: u32) -> Vec<MraPoint> {
        (1..=n_max).map(|n| self.mra_point(n)).collect()
    }

    /// Derives the Table 1 equivalent from the model.
    ///
    /// The `tRCD`, full-restoration `tRAS`/`tWR`, and the fully-restored
    /// early-termination `tRAS` reproduce the paper exactly (they are
    /// calibration anchors); the remaining early-termination entries are
    /// model predictions that land within a few percent of the paper
    /// (documented in `EXPERIMENTS.md`).
    pub fn derived_table1(&self) -> DerivedTable1 {
        let p = &self.params;
        let trcd_full = self.sense_time_ns(2, p.v_full);
        let trcd_partial = self.sense_time_ns(2, p.v_early);
        let trest_full = self.restore_time_ns(2, p.v_full);
        let trest_early = self.restore_time_ns(2, p.v_early);
        let twr_full = self.write_time_ns(2, p.v_full_write);
        let twr_early = self.write_time_ns(2, p.v_early);
        let tras = |sense: f64, rest: f64| (sense + rest) / p.tras1_ns;
        let act_t_full = DerivedMods {
            trcd: trcd_full / p.trcd1_ns,
            tras_full: tras(trcd_full, trest_full),
            tras_early: tras(trcd_full, trest_early),
            twr_full: twr_full / p.twr1_ns,
            twr_early: twr_early / p.twr1_ns,
        };
        let act_t_partial = DerivedMods {
            trcd: trcd_partial / p.trcd1_ns,
            tras_full: tras(trcd_partial, trest_full),
            tras_early: tras(trcd_partial, trest_early),
            twr_full: twr_full / p.twr1_ns,
            twr_early: twr_early / p.twr1_ns,
        };
        let act_c = DerivedMods {
            trcd: 1.0,
            tras_full: tras(p.trcd1_ns + p.copy_enable_ns, trest_full),
            tras_early: tras(p.trcd1_ns + p.copy_enable_ns, trest_early),
            twr_full: twr_full / p.twr1_ns,
            twr_early: twr_early / p.twr1_ns,
        };
        DerivedTable1 {
            act_t_full,
            act_t_partial,
            act_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn calibration_is_physical() {
        let p = CircuitParams::calibrated();
        assert!(p.r_cap > 0.1 && p.r_cap < 0.3, "r_cap {}", p.r_cap);
        assert!(p.v_ready > 0.0 && p.v_ready < p.vdd);
        assert!(p.v_full > p.vdd * 0.85 && p.v_full < p.vdd);
        assert!(p.v_early > p.vdd / 2.0 && p.v_early < p.v_full);
        assert!(p.tau_sense_ns > 0.0 && p.tau_restore_ns > 0.0);
        assert!(p.write_offset_ns >= 0.0);
        assert!(p.copy_enable_ns > 0.0);
    }

    #[test]
    fn anchors_reproduce_table1_exactly() {
        let m = CircuitModel::calibrated();
        let t = m.derived_table1();
        // Calibration anchors: exact to numerical precision.
        assert!(
            close(t.act_t_full.trcd, 0.62, 1e-6),
            "{}",
            t.act_t_full.trcd
        );
        assert!(close(t.act_t_full.tras_full, 0.93, 1e-6));
        assert!(close(t.act_t_full.twr_full, 1.14, 1e-6));
        assert!(close(t.act_t_full.twr_early, 0.87, 1e-6));
        assert!(close(t.act_t_partial.trcd, 0.79, 1e-6));
        assert!(close(t.act_t_partial.tras_early, 0.75, 1e-6));
        assert!(close(t.act_c.trcd, 1.0, 1e-9));
        assert!(close(t.act_c.tras_full, 1.18, 1e-6));
    }

    #[test]
    fn predictions_land_near_table1() {
        let m = CircuitModel::calibrated();
        let t = m.derived_table1();
        // Model predictions (not anchors): paper values −33% and −7%.
        assert!(
            close(t.act_t_full.tras_early, 0.67, 0.02),
            "{}",
            t.act_t_full.tras_early
        );
        assert!(
            close(t.act_c.tras_early, 0.93, 0.02),
            "{}",
            t.act_c.tras_early
        );
    }

    #[test]
    fn fig5_trcd_monotone_decreasing_with_diminishing_returns() {
        let m = CircuitModel::calibrated();
        let sweep = m.mra_sweep(9);
        assert!(close(sweep[0].trcd_ratio, 1.0, 1e-9));
        for w in sweep.windows(2) {
            assert!(w[1].trcd_ratio < w[0].trcd_ratio);
        }
        // Diminishing returns: each extra row buys less.
        for w in sweep.windows(3) {
            let d1 = w[0].trcd_ratio - w[1].trcd_ratio;
            let d2 = w[1].trcd_ratio - w[2].trcd_ratio;
            assert!(d2 < d1, "gains must shrink: {d1} vs {d2}");
        }
    }

    #[test]
    fn fig5_restore_grows_and_tras_crosses_over() {
        let m = CircuitModel::calibrated();
        let sweep = m.mra_sweep(9);
        for w in sweep.windows(2) {
            assert!(w[1].trestore_ratio > w[0].trestore_ratio);
            assert!(w[1].twr_ratio > w[0].twr_ratio);
        }
        // Paper: tRAS dips slightly for small N, then rises for N >= 5.
        assert!(sweep[1].tras_ratio < 1.0);
        assert!(
            sweep[8].tras_ratio > sweep[1].tras_ratio,
            "tRAS must eventually rise"
        );
    }

    #[test]
    fn retention_bound_loosens_with_more_rows() {
        let m = CircuitModel::calibrated();
        let v2 = m.retention_min_v_end(2);
        let v4 = m.retention_min_v_end(4);
        let v8 = m.retention_min_v_end(8);
        assert!(v2 > v4 && v4 > v8, "{v2} {v4} {v8}");
        // The paper's N=2 operating point must satisfy the bound.
        assert!(m.params().v_early >= v2, "{} < {v2}", m.params().v_early);
    }

    #[test]
    fn retention_bound_for_single_row_forbids_truncation() {
        let m = CircuitModel::calibrated();
        // One row cannot be truncated below the full level.
        assert!(m.retention_min_v_end(1) >= m.params().v_full - 1e-9);
    }

    #[test]
    #[should_panic(expected = "v_end")]
    fn restore_time_rejects_bad_voltage() {
        let m = CircuitModel::calibrated();
        let _ = m.restore_time_ns(2, 0.3);
    }
}
