//! Monte-Carlo process-variation analysis (paper §5: 10⁴ iterations with
//! 5% margins on every circuit parameter, worst case selected).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{CircuitModel, CircuitParams};

/// Summary of a Monte-Carlo timing distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSummary {
    /// Value of the unperturbed model.
    pub nominal_ns: f64,
    /// Worst (largest) value across all draws — the value a manufacturer
    /// would rate the part for.
    pub worst_ns: f64,
    /// Mean across draws.
    pub mean_ns: f64,
    /// Standard deviation across draws.
    pub std_ns: f64,
    /// Number of draws.
    pub iterations: u32,
}

/// Monte-Carlo engine: perturbs every electrical parameter of a
/// [`CircuitParams`] by a uniform ±margin and recomputes a timing
/// quantity per draw.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    base: CircuitParams,
    margin: f64,
    iterations: u32,
    seed: u64,
}

impl MonteCarlo {
    /// The paper's setup: 10⁴ iterations, 5% margins.
    pub fn paper_setup(base: CircuitParams) -> Self {
        Self {
            base,
            margin: 0.05,
            iterations: 10_000,
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the iteration count (tests use fewer draws).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Overrides the per-parameter margin.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!((0.0..0.5).contains(&margin));
        self.margin = margin;
        self
    }

    /// Overrides the RNG seed (runs are deterministic for a given seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn perturbed(&self, rng: &mut StdRng) -> CircuitParams {
        let mut p = self.base.clone();
        let m = self.margin;
        fn jitter(rng: &mut StdRng, m: f64, v: f64) -> f64 {
            v * (1.0 + rng.gen_range(-m..=m))
        }
        p.r_cap = jitter(rng, m, p.r_cap);
        p.tau_sense_ns = jitter(rng, m, p.tau_sense_ns);
        p.tau_restore_ns = jitter(rng, m, p.tau_restore_ns);
        p.tau_write_ns = jitter(rng, m, p.tau_write_ns);
        p.write_offset_ns = jitter(rng, m, p.write_offset_ns);
        p.copy_enable_ns = jitter(rng, m, p.copy_enable_ns);
        // Voltages move together with the supply (common-mode), plus an
        // independent sense-reference perturbation.
        let vscale = 1.0 + rng.gen_range(-m..=m);
        p.vdd *= vscale;
        p.v_full *= vscale;
        p.v_early *= vscale;
        p.v_full_write *= vscale;
        p.v_ready = jitter(rng, m, p.v_ready * vscale);
        p
    }

    /// Runs the analysis for a timing quantity extracted by `f` from a
    /// perturbed model (ns).
    pub fn run<F>(&self, f: F) -> McSummary
    where
        F: Fn(&CircuitModel) -> f64,
    {
        let nominal = f(&CircuitModel::with_params(self.base.clone()));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut worst = f64::MIN;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..self.iterations {
            let model = CircuitModel::with_params(self.perturbed(&mut rng));
            let v = f(&model);
            worst = worst.max(v);
            sum += v;
            sumsq += v * v;
        }
        let n = f64::from(self.iterations);
        let mean = sum / n;
        let var = (sumsq / n - mean * mean).max(0.0);
        McSummary {
            nominal_ns: nominal,
            worst_ns: worst,
            mean_ns: mean,
            std_ns: var.sqrt(),
            iterations: self.iterations,
        }
    }

    /// Worst-case `tRCD` for `n`-row activation at the full restore level.
    pub fn worst_trcd(&self, n: u32) -> McSummary {
        self.run(|m| m.sense_time_ns(n, m.params().v_full))
    }

    /// Worst-case `tRAS` (sense + full restore) for `n` rows.
    pub fn worst_tras(&self, n: u32) -> McSummary {
        self.run(|m| {
            m.sense_time_ns(n, m.params().v_full) + m.restore_time_ns(n, m.params().v_full)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MonteCarlo {
        MonteCarlo::paper_setup(CircuitParams::calibrated()).with_iterations(2000)
    }

    #[test]
    fn worst_exceeds_nominal_but_stays_bounded() {
        let s = mc().worst_trcd(1);
        assert!(s.worst_ns >= s.nominal_ns);
        assert!(
            s.worst_ns <= s.nominal_ns * 1.5,
            "worst {} nominal {}",
            s.worst_ns,
            s.nominal_ns
        );
        assert!(s.std_ns > 0.0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = mc().with_seed(7).worst_tras(2);
        let b = mc().with_seed(7).worst_tras(2);
        assert_eq!(a, b);
        let c = mc().with_seed(8).worst_tras(2);
        assert_ne!(a.worst_ns, c.worst_ns);
    }

    #[test]
    fn worst_case_ratio_tracks_nominal_ratio() {
        // The Table 1 ratios are preserved under common-mode variation:
        // worst(2)/worst(1) stays near nominal(2)/nominal(1).
        let m = mc();
        let t1 = m.worst_trcd(1);
        let t2 = m.worst_trcd(2);
        let worst_ratio = t2.worst_ns / t1.worst_ns;
        let nominal_ratio = t2.nominal_ns / t1.nominal_ns;
        assert!(
            (worst_ratio - nominal_ratio).abs() < 0.08,
            "worst {worst_ratio} vs nominal {nominal_ratio}"
        );
    }

    #[test]
    fn zero_margin_collapses_to_nominal() {
        let s = MonteCarlo::paper_setup(CircuitParams::calibrated())
            .with_iterations(10)
            .with_margin(0.0)
            .worst_trcd(2);
        assert!((s.worst_ns - s.nominal_ns).abs() < 1e-9);
        assert!(s.std_ns < 1e-9);
    }
}
