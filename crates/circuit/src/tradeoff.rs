//! The `tRCD` vs `tRAS` early-termination trade-off curves of paper Fig. 6.

use crate::model::CircuitModel;

/// One point of a trade-off curve: the normalized `tRAS` achieved by
/// truncating restoration at some voltage, and the normalized `tRCD` the
/// *next* activation of the partially-restored rows pays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Truncation voltage (cell volts).
    pub v_end: f64,
    /// `tRAS` normalized to the single-row baseline.
    pub tras_norm: f64,
    /// Next-activation `tRCD` normalized to the single-row baseline.
    pub trcd_norm: f64,
}

/// A full trade-off curve for one row-activation count.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffCurve {
    /// Number of simultaneously-activated rows.
    pub n: u32,
    /// Points ordered from full restoration (rightmost, longest `tRAS`)
    /// to the retention-constrained minimum.
    pub points: Vec<TradeoffPoint>,
}

impl TradeoffCurve {
    /// Sweeps the truncation voltage from full restoration down to the
    /// retention bound, producing `steps + 1` points.
    ///
    /// For `n = 1` the retention bound forbids truncation and the curve
    /// degenerates to the single full-restoration point, matching the
    /// paper's observation that the trade-off only exists under
    /// multiple-row activation.
    pub fn sweep(model: &CircuitModel, n: u32, steps: u32) -> Self {
        let p = model.params();
        let v_hi = p.v_full;
        let v_lo = model.retention_min_v_end(n).min(v_hi);
        let count = if (v_hi - v_lo) < 1e-12 { 0 } else { steps };
        let points = (0..=count)
            .map(|i| {
                let v_end = v_hi - (v_hi - v_lo) * f64::from(i) / f64::from(steps.max(1));
                let trcd_next = model.sense_time_ns(n, v_end);
                // Steady state: the activation itself also sees cells at
                // v_end, so its sense phase uses the degraded swing.
                let tras = trcd_next + model.restore_time_ns(n, v_end);
                TradeoffPoint {
                    v_end,
                    tras_norm: tras / p.tras1_ns,
                    trcd_norm: trcd_next / p.trcd1_ns,
                }
            })
            .collect();
        Self { n, points }
    }

    /// The point on the curve with the smallest `tRAS` whose `tRCD`
    /// penalty stays at or below `max_trcd_norm`.
    pub fn best_under_trcd(&self, max_trcd_norm: f64) -> Option<TradeoffPoint> {
        self.points
            .iter()
            .filter(|pt| pt.trcd_norm <= max_trcd_norm + 1e-12)
            .min_by(|a, b| a.tras_norm.total_cmp(&b.tras_norm))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_trades_tras_for_trcd() {
        let m = CircuitModel::calibrated();
        let c = TradeoffCurve::sweep(&m, 2, 32);
        assert_eq!(c.points.len(), 33);
        for w in c.points.windows(2) {
            // Deeper truncation: shorter tRAS, longer next tRCD.
            assert!(w[1].tras_norm < w[0].tras_norm);
            assert!(w[1].trcd_norm > w[0].trcd_norm);
        }
    }

    #[test]
    fn more_rows_shift_the_curve_down() {
        // Paper Fig. 6: for the same tRAS reduction, more rows pay less
        // tRCD (and can truncate deeper).
        let m = CircuitModel::calibrated();
        let c2 = TradeoffCurve::sweep(&m, 2, 64);
        let c4 = TradeoffCurve::sweep(&m, 4, 64);
        let t2 = c2.best_under_trcd(0.85).unwrap();
        let t4 = c4.best_under_trcd(0.85).unwrap();
        assert!(
            t4.tras_norm < t2.tras_norm,
            "{} vs {}",
            t4.tras_norm,
            t2.tras_norm
        );
    }

    #[test]
    fn single_row_curve_degenerates() {
        let m = CircuitModel::calibrated();
        let c = TradeoffCurve::sweep(&m, 1, 32);
        assert_eq!(c.points.len(), 1);
        assert!((c.points[0].trcd_norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paper_operating_point_lies_on_the_n2_curve() {
        let m = CircuitModel::calibrated();
        let c = TradeoffCurve::sweep(&m, 2, 256);
        // Find the point nearest tRCD' = 0.79; in the steady state its
        // tRAS is the Table 1 partially-restored value (−25%).
        let pt = c
            .points
            .iter()
            .min_by(|a, b| {
                (a.trcd_norm - 0.79)
                    .abs()
                    .total_cmp(&(b.trcd_norm - 0.79).abs())
            })
            .unwrap();
        assert!((pt.tras_norm - 0.75).abs() < 0.02, "{}", pt.tras_norm);
    }

    #[test]
    fn best_under_trcd_respects_bound() {
        let m = CircuitModel::calibrated();
        let c = TradeoffCurve::sweep(&m, 2, 64);
        let pt = c.best_under_trcd(0.7).unwrap();
        assert!(pt.trcd_norm <= 0.7 + 1e-9);
        assert!(c.best_under_trcd(0.0).is_none());
    }
}
