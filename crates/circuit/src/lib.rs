//! # crow-circuit
//!
//! An analytical circuit-level DRAM model that substitutes for the SPICE
//! simulations of the CROW paper (§5). The original work modeled a 22 nm
//! DRAM cell array with PTM low-power transistors and ran 10⁴ Monte-Carlo
//! iterations with 5% parameter margins; we reproduce the same *derived
//! quantities* with a calibrated capacitor-divider + RC-settling model:
//!
//! * **Charge sharing**: activating `N` rows that store the same data
//!   drives the bitline with `N` cell capacitors, enlarging the sense
//!   swing `ΔV(N) = N·Cc/(Cb + N·Cc) · (V_cell − V_bl)` and shrinking the
//!   sense time logarithmically — this yields the tRCD reduction of
//!   Fig. 5a (−38% at N=2).
//! * **Restoration**: the sense amplifier re-charges `Cb + N·Cc` through
//!   its output resistance, so restore time grows with `N` (Fig. 5b) and
//!   `tWR` rises (+14% at N=2).
//! * **Early termination** (paper §4.1.3): truncating restoration at a
//!   voltage `V_end < V_full` trades a shorter `tRAS` for a longer next
//!   `tRCD`, producing the trade-off curves of Fig. 6; a retention
//!   constraint (aggregate charge of `N` partially-charged cells must
//!   match one full cell at the end of the refresh window) bounds the
//!   truncation.
//! * **Monte-Carlo variation**: every electrical parameter is drawn with
//!   a ±5% margin for 10⁴ iterations and worst-case timings are selected,
//!   mirroring the paper's methodology.
//!
//! The model is *calibrated*: free constants are solved so that the N=1
//! and N=2 operating points equal the paper's Table 1 exactly, and all
//! other points (N = 3..9, the full trade-off curves) are genuine model
//! predictions whose shapes the tests check against Fig. 5/6.
//!
//! The crate also carries the area/power models of §6 (copy-row decoder
//! area, MRA activation power, CROW-table SRAM access time — a CACTI
//! substitute) and the TL-DRAM / SALP area-and-timing models used by the
//! paper's §8.1.4 comparison.
//!
//! ## Example
//!
//! ```
//! use crow_circuit::CircuitModel;
//!
//! let model = CircuitModel::calibrated();
//! let t = model.mra_point(2);
//! assert!((t.trcd_ratio - 0.62).abs() < 0.01); // Table 1: tRCD −38%
//! ```

pub mod area;
pub mod mc;
pub mod model;
pub mod power;
pub mod salp;
pub mod sram;
pub mod tldram;
pub mod tradeoff;

pub use area::DecoderAreaModel;
pub use mc::{McSummary, MonteCarlo};
pub use model::{CircuitModel, CircuitParams, MraPoint};
pub use power::ActivationPowerModel;
pub use salp::SalpAreaModel;
pub use sram::SramModel;
pub use tldram::TlDramModel;
pub use tradeoff::{TradeoffCurve, TradeoffPoint};
