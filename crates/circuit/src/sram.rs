//! SRAM access-time and area model for the CROW-table — a closed-form
//! CACTI substitute (paper §6.1 evaluates the table with CACTI 6.0 and
//! finds a 0.14 ns access time for the 11.3 KiB table).

/// Closed-form SRAM model: access time grows with the square root of the
/// array size (wordline/bitline RC), area linearly with bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Fixed decode + sense latency, ns.
    pub base_ns: f64,
    /// Per-sqrt(bit) wire latency, ns.
    pub wire_ns_per_sqrt_bit: f64,
    /// Area per bit, µm².
    pub um2_per_bit: f64,
}

impl SramModel {
    /// Calibrated so an 11.3 KiB table (the paper's single-channel
    /// CROW-table) is accessed in 0.14 ns.
    pub fn calibrated() -> Self {
        let bits: f64 = 11.3 * 1024.0 * 8.0;
        let base = 0.06;
        Self {
            base_ns: base,
            wire_ns_per_sqrt_bit: (0.14 - base) / bits.sqrt(),
            // 22 nm 6T SRAM cell ~0.1 µm² plus periphery.
            um2_per_bit: 0.15,
        }
    }

    /// Access time for an SRAM of `bits` bits, ns.
    pub fn access_ns(&self, bits: u64) -> f64 {
        self.base_ns + self.wire_ns_per_sqrt_bit * (bits as f64).sqrt()
    }

    /// Area of an SRAM of `bits` bits, µm².
    pub fn area_um2(&self, bits: u64) -> f64 {
        self.um2_per_bit * bits as f64
    }
}

impl Default for SramModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crow_table_access_matches_paper() {
        let m = SramModel::calibrated();
        let bits = (11.3 * 1024.0 * 8.0) as u64;
        assert!((m.access_ns(bits) - 0.14).abs() < 1e-3);
    }

    #[test]
    fn access_time_grows_sublinearly() {
        let m = SramModel::calibrated();
        let t1 = m.access_ns(1 << 14);
        let t4 = m.access_ns(1 << 16);
        assert!(t4 > t1);
        assert!(t4 < t1 * 4.0);
    }

    #[test]
    fn area_is_linear() {
        let m = SramModel::calibrated();
        assert!((m.area_um2(2000) - 2.0 * m.area_um2(1000)).abs() < 1e-9);
    }
}
