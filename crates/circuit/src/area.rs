//! Copy-row decoder area model (paper Fig. 7 right, §6.2).

/// Transistor-count-based area model for the small CROW decoder that
/// drives the copy rows of one subarray, plus the derived DRAM-chip
/// overhead.
///
/// Calibrated to the paper's reported values: an 8-copy-row decoder
/// occupies 9.6 µm² while the 512-row regular local decoder occupies
/// 200.9 µm², giving +4.8% decoder area and 0.48% whole-chip overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderAreaModel {
    /// Fixed area of the copy decoder (predecode + control), µm².
    pub fixed_um2: f64,
    /// Per-wordline-driver area, µm².
    pub per_row_um2: f64,
    /// Area of the regular 512-row local row decoder, µm².
    pub regular_decoder_um2: f64,
    /// Fraction of DRAM chip area occupied by local row decoders.
    pub decoder_chip_fraction: f64,
}

impl DecoderAreaModel {
    /// The paper-calibrated model.
    pub fn calibrated() -> Self {
        // fixed + 8 * per_row = 9.6 µm²; wordline drivers dominate, so we
        // apportion ~8% to fixed predecode.
        let fixed = 0.8;
        let per_row = (9.6 - fixed) / 8.0;
        // Chip overhead: 4.778% decoder growth -> 0.48% chip growth, so
        // decoders are ~10% of chip area.
        let regular = 200.9;
        let decoder_fraction = 0.0048 / ((fixed + 8.0 * per_row) / regular);
        Self {
            fixed_um2: fixed,
            per_row_um2: per_row,
            regular_decoder_um2: regular,
            decoder_chip_fraction: decoder_fraction,
        }
    }

    /// Area of a copy-row decoder for `n` copy rows, µm².
    pub fn copy_decoder_um2(&self, n: u8) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.fixed_um2 + f64::from(n) * self.per_row_um2
    }

    /// Decoder-area overhead relative to the regular local decoder.
    pub fn decoder_overhead(&self, n: u8) -> f64 {
        self.copy_decoder_um2(n) / self.regular_decoder_um2
    }

    /// Whole-DRAM-chip area overhead for `n` copy rows per subarray.
    ///
    /// Note this is the *logic* overhead only; the storage capacity the
    /// copy rows consume (1.6% for CROW-8) is tracked separately by
    /// `DramConfig::copy_row_capacity_overhead`.
    pub fn chip_overhead(&self, n: u8) -> f64 {
        self.decoder_overhead(n) * self.decoder_chip_fraction
    }

    /// The Fig. 7 (right) series for `n = 1..=n_max` copy rows.
    pub fn sweep(&self, n_max: u8) -> Vec<(u8, f64)> {
        (1..=n_max).map(|n| (n, self.decoder_overhead(n))).collect()
    }
}

impl Default for DecoderAreaModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crow8_matches_paper() {
        let m = DecoderAreaModel::calibrated();
        assert!((m.copy_decoder_um2(8) - 9.6).abs() < 1e-9);
        let dec = m.decoder_overhead(8);
        assert!((dec - 0.0478).abs() < 0.001, "decoder overhead {dec}");
        let chip = m.chip_overhead(8);
        assert!((chip - 0.0048).abs() < 1e-6, "chip overhead {chip}");
    }

    #[test]
    fn area_grows_with_copy_rows() {
        let m = DecoderAreaModel::calibrated();
        let s = m.sweep(16);
        for w in s.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(m.copy_decoder_um2(0), 0.0);
    }

    #[test]
    fn crow256_still_cheap_relative_to_regular_decoder() {
        // Fig. 8 evaluates CROW-256; its decoder approaches the regular
        // decoder's size but the chip overhead stays in single digits.
        let m = DecoderAreaModel::calibrated();
        assert!(m.chip_overhead(255) < 0.15);
    }
}
