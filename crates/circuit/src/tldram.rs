//! TL-DRAM (Tiered-Latency DRAM, Lee et al. HPCA 2013) circuit model,
//! used for the paper's §8.1.4 comparison.
//!
//! TL-DRAM inserts an isolation transistor on each bitline, splitting the
//! subarray into a *near* segment (few rows, short bitline, low latency)
//! and a *far* segment (slightly higher latency than commodity DRAM due
//! to the transistor's added resistance/capacitance).

/// Timing and area model for a TL-DRAM organization with a configurable
/// near-segment size.
///
/// Calibrated to the CROW paper's circuit results: an 8-row near segment
/// is accessed with −73% `tRCD` and −80% `tRAS`, and the isolation
/// transistors cost 6.9% DRAM chip area (§8.1.4, Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlDramModel {
    /// Rows per subarray in the baseline organization.
    pub rows_per_subarray: u32,
    /// Fixed per-bitline sense overhead as a fraction of full-bitline
    /// latency (keeps near-segment latency from reaching zero).
    pub sense_floor: f64,
    /// Relative `tRCD`/`tRAS` penalty of the far segment.
    pub far_penalty: f64,
    /// Chip-area overhead of the isolation transistors (independent of
    /// the near-segment size).
    pub isolation_area_overhead: f64,
}

impl TlDramModel {
    /// The paper-calibrated model for 512-row subarrays.
    pub fn calibrated() -> Self {
        // Near-segment latency ~ floor + (1-floor) * (rows_near / rows).
        // Calibrate the floor so an 8-row segment gives tRCD -73%:
        // 0.27 = floor + (1-floor) * 8/512  =>  floor = (0.27 - 8/512)/(1 - 8/512).
        let frac: f64 = 8.0 / 512.0;
        let floor = (0.27 - frac) / (1.0 - frac);
        Self {
            rows_per_subarray: 512,
            sense_floor: floor,
            far_penalty: 0.02,
            isolation_area_overhead: 0.069,
        }
    }

    /// Near-segment `tRCD` as a fraction of baseline, for a near segment
    /// of `rows` rows.
    pub fn near_trcd_ratio(&self, rows: u32) -> f64 {
        let frac = f64::from(rows) / f64::from(self.rows_per_subarray);
        (self.sense_floor + (1.0 - self.sense_floor) * frac).min(1.0)
    }

    /// Near-segment `tRAS` as a fraction of baseline.
    ///
    /// Restoration benefits even more from the short bitline than sensing
    /// does (the sense amp drives far less capacitance), hence the deeper
    /// −80% reduction at 8 rows.
    pub fn near_tras_ratio(&self, rows: u32) -> f64 {
        // Same functional form with a lower floor, calibrated to -80% at 8.
        let frac: f64 = 8.0 / f64::from(self.rows_per_subarray);
        let floor = (0.20 - frac) / (1.0 - frac);
        let f = f64::from(rows) / f64::from(self.rows_per_subarray);
        (floor + (1.0 - floor) * f).min(1.0)
    }

    /// Far-segment `tRCD`/`tRAS` multiplier (> 1).
    pub fn far_ratio(&self) -> f64 {
        1.0 + self.far_penalty
    }

    /// DRAM chip area overhead for a TL-DRAM organization with `rows`
    /// near rows per subarray. Dominated by the per-bitline isolation
    /// transistor; near-segment size adds only decoder latches.
    pub fn chip_area_overhead(&self, rows: u32) -> f64 {
        self.isolation_area_overhead + f64::from(rows) * 1e-5
    }
}

impl Default for TlDramModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_row_segment_matches_paper() {
        let m = TlDramModel::calibrated();
        assert!((m.near_trcd_ratio(8) - 0.27).abs() < 1e-9);
        assert!((m.near_tras_ratio(8) - 0.20).abs() < 1e-9);
        assert!((m.chip_area_overhead(8) - 0.069).abs() < 0.001);
    }

    #[test]
    fn larger_near_segments_are_slower() {
        let m = TlDramModel::calibrated();
        assert!(m.near_trcd_ratio(1) < m.near_trcd_ratio(8));
        assert!(m.near_trcd_ratio(8) < m.near_trcd_ratio(64));
        assert!(m.near_trcd_ratio(512) <= 1.0);
    }

    #[test]
    fn far_segment_pays_a_small_penalty() {
        let m = TlDramModel::calibrated();
        assert!(m.far_ratio() > 1.0 && m.far_ratio() < 1.1);
    }
}
