//! SALP (Subarray-Level Parallelism, Kim et al. ISCA 2012) area model for
//! the paper's §8.1.4 comparison.

/// Chip-area model for SALP-MASA as a function of subarrays per bank.
///
/// SALP's dominant cost is *sense amplifiers*: halving the subarray size
/// (doubling the subarray count) duplicates every local row buffer.
/// Calibrated to the paper's reported overheads: SALP-128 (the baseline
/// structure plus MASA latches) costs 0.6%, SALP-256 costs 28.9%, and
/// SALP-512 costs 84.5% chip area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalpAreaModel {
    /// Subarrays per bank in the baseline organization.
    pub baseline_subarrays: u32,
    /// MASA control overhead (latches, designated-bit wiring).
    pub masa_overhead: f64,
    /// Chip-area fraction of one full complement of sense amplifiers.
    pub sense_amp_fraction: f64,
}

impl SalpAreaModel {
    /// The paper-calibrated model for a 128-subarray baseline bank.
    pub fn calibrated() -> Self {
        // overhead(ns) = masa + sense_frac * (ns/128 - 1):
        //   overhead(128) = 0.006, overhead(256) = 0.289.
        Self {
            baseline_subarrays: 128,
            masa_overhead: 0.006,
            sense_amp_fraction: 0.289 - 0.006,
        }
    }

    /// Chip-area overhead of a SALP organization with `subarrays` per
    /// bank (must be >= the baseline count).
    pub fn chip_area_overhead(&self, subarrays: u32) -> f64 {
        assert!(
            subarrays >= self.baseline_subarrays,
            "SALP cannot have fewer subarrays than the baseline"
        );
        let extra = f64::from(subarrays) / f64::from(self.baseline_subarrays) - 1.0;
        self.masa_overhead + self.sense_amp_fraction * extra
    }
}

impl Default for SalpAreaModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_anchors() {
        let m = SalpAreaModel::calibrated();
        assert!((m.chip_area_overhead(128) - 0.006).abs() < 1e-9);
        assert!((m.chip_area_overhead(256) - 0.289).abs() < 1e-9);
        // SALP-512 is a prediction; the paper reports 84.5%.
        let v = m.chip_area_overhead(512);
        assert!((v - 0.845).abs() < 0.05, "SALP-512 overhead {v}");
    }

    #[test]
    #[should_panic(expected = "fewer subarrays")]
    fn rejects_sub_baseline_counts() {
        let _ = SalpAreaModel::calibrated().chip_area_overhead(64);
    }
}
