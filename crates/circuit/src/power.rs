//! Activation power overhead of multiple-row activation (paper Fig. 7,
//! left; §6.2).

/// Models activation power as a fixed bitline/periphery component plus a
/// per-row component (wordline drive + cell restoration charge).
///
/// Calibrated so that two-row activation consumes +5.8% power over a
/// single-row `ACT` (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationPowerModel {
    /// Per-extra-row energy as a fraction of the single-row fixed energy.
    pub row_fraction: f64,
}

impl ActivationPowerModel {
    /// The paper-calibrated model (+5.8% at N=2).
    pub fn calibrated() -> Self {
        // ratio(2) = (1 + 2f) / (1 + f) = 1.058  =>  f = 0.058 / 0.942.
        let target = 1.058;
        Self {
            row_fraction: (target - 1.0) / (2.0 - target),
        }
    }

    /// Power of an `N`-row activation relative to a single-row `ACT`.
    pub fn overhead_ratio(&self, n: u32) -> f64 {
        assert!(n >= 1);
        let f = self.row_fraction;
        (1.0 + f64::from(n) * f) / (1.0 + f)
    }

    /// The Fig. 7 (left) series for `n = 1..=n_max`.
    pub fn sweep(&self, n_max: u32) -> Vec<(u32, f64)> {
        (1..=n_max).map(|n| (n, self.overhead_ratio(n))).collect()
    }
}

impl Default for ActivationPowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_row_overhead_is_5_8_percent() {
        let m = ActivationPowerModel::calibrated();
        assert!((m.overhead_ratio(2) - 1.058).abs() < 1e-9);
        assert!((m.overhead_ratio(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_grows_with_rows() {
        let m = ActivationPowerModel::calibrated();
        let sweep = m.sweep(9);
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // Nine rows cost well under 2x a single activation.
        assert!(sweep[8].1 < 1.6);
    }
}
