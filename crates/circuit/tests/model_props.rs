//! Seeded randomized tests for the analytical circuit model: the
//! physical monotonicities must hold not just at the calibrated point
//! but across the whole Monte-Carlo perturbation envelope.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crow_circuit::{CircuitModel, CircuitParams, TradeoffCurve};

fn perturbed(rng: &mut StdRng, f: impl Fn(&mut CircuitParams, f64)) -> CircuitModel {
    let eps = rng.gen_range(-0.05f64..0.05);
    let mut p = CircuitParams::calibrated();
    f(&mut p, eps);
    CircuitModel::with_params(p)
}

#[test]
fn sense_time_improves_with_more_rows_under_variation() {
    let mut rng = StdRng::seed_from_u64(0x5E25E);
    for _ in 0..64 {
        let m = perturbed(&mut rng, |p, e| p.r_cap *= 1.0 + e);
        let n = rng.gen_range(1u32..9);
        let p = m.params().clone();
        let a = m.sense_time_ns(n, p.v_full);
        let b = m.sense_time_ns(n + 1, p.v_full);
        assert!(b < a, "tRCD must fall with extra rows: {a} vs {b}");
        assert!(a > 0.0);
    }
}

#[test]
fn restore_time_grows_with_rows_and_depth() {
    let mut rng = StdRng::seed_from_u64(0x8E5708E);
    for _ in 0..64 {
        let m = perturbed(&mut rng, |p, e| p.tau_restore_ns *= 1.0 + e);
        let n = rng.gen_range(1u32..9);
        let p = m.params().clone();
        assert!(m.restore_time_ns(n + 1, p.v_full) > m.restore_time_ns(n, p.v_full));
        assert!(m.restore_time_ns(n, p.v_full) > m.restore_time_ns(n, p.v_early));
    }
}

#[test]
fn tradeoff_curve_stays_monotone_under_variation() {
    let mut rng = StdRng::seed_from_u64(0x78ADE0FF);
    for _ in 0..64 {
        let m = perturbed(&mut rng, |p, e| p.v_ready *= 1.0 + e / 2.0);
        let n = rng.gen_range(2u32..9);
        let c = TradeoffCurve::sweep(&m, n, 16);
        // The next-activation tRCD penalty grows strictly with deeper
        // truncation. Total tRAS = sense + restore may turn back *up* at
        // extreme truncation depths (the degraded sense swing eventually
        // outweighs the restore saving), so the guaranteed property is
        // that some truncation beats full restoration, not monotonicity.
        for w in c.points.windows(2) {
            assert!(w[1].trcd_norm > w[0].trcd_norm);
        }
        let first = c.points.first().expect("nonempty").tras_norm;
        let best = c
            .points
            .iter()
            .map(|p| p.tras_norm)
            .fold(f64::MAX, f64::min);
        assert!(best < first, "truncation must be able to shorten tRAS");
    }
}

#[test]
fn retention_bound_is_monotone_in_rows() {
    let mut rng = StdRng::seed_from_u64(0x8E7E0710);
    for _ in 0..64 {
        let m = perturbed(&mut rng, |p, e| p.v_full *= 1.0 + e / 10.0);
        let n = rng.gen_range(2u32..9);
        assert!(m.retention_min_v_end(n + 1) < m.retention_min_v_end(n));
        let vdd = m.params().vdd;
        assert!(m.retention_min_v_end(n) > vdd / 2.0);
    }
}

#[test]
fn write_time_grows_with_rows() {
    let mut rng = StdRng::seed_from_u64(0x3817E);
    for _ in 0..64 {
        let m = perturbed(&mut rng, |p, e| p.tau_write_ns *= 1.0 + e);
        let n = rng.gen_range(1u32..9);
        let p = m.params().clone();
        assert!(m.write_time_ns(n + 1, p.v_full_write) > m.write_time_ns(n, p.v_full_write));
    }
}
