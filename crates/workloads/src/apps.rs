//! The 44-application workload suite plus the two microbenchmarks.
//!
//! Names follow the paper's suite (SPEC CPU2006, TPC, STREAM,
//! MediaBench). Each profile carries the target LLC MPKI (which places
//! the app in the paper's L/M/H intensity classes) and a cold-region
//! pattern chosen to match the app's qualitative row-buffer behaviour
//! (e.g. `libq`/`h264-dec` are memory-intensive *streaming* apps with
//! high row locality — the paper notes exactly this pair benefits less
//! from CROW-cache, §8.1.1).

use crow_cpu::trace::TraceSource;

use crate::gen::{GenParams, Pattern, SyntheticTrace};

/// Memory-intensity class (paper §7): `L` < 1 MPKI, `M` in [1, 10),
/// `H` ≥ 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Low intensity.
    L,
    /// Medium intensity.
    M,
    /// High intensity.
    H,
}

/// A named application profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Application name (paper suite).
    pub name: &'static str,
    /// Intensity class.
    pub class: Class,
    /// Target LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of accesses to the cold (missing) region.
    pub cold_frac: f64,
    /// Store fraction.
    pub write_frac: f64,
    /// Cold-region pattern.
    pub pattern: Pattern,
    /// Cold footprint in MiB.
    pub footprint_mib: u32,
}

const fn reuse(pages: u32, switch_prob: f64) -> Pattern {
    Pattern::PageReuse {
        pages,
        switch_prob,
        refresh_prob: 0.01,
    }
}

const fn app(
    name: &'static str,
    class: Class,
    mpki: f64,
    cold_frac: f64,
    write_frac: f64,
    pattern: Pattern,
    footprint_mib: u32,
) -> AppProfile {
    AppProfile {
        name,
        class,
        mpki,
        cold_frac,
        write_frac,
        pattern,
        footprint_mib,
    }
}

/// The full 44-application suite.
pub static APPS: &[AppProfile] = &[
    // --- SPEC CPU2006 (29) ---
    app("astar", Class::M, 4.5, 0.5, 0.20, reuse(64, 0.6), 128),
    app(
        "bwaves",
        Class::H,
        18.0,
        0.9,
        0.25,
        Pattern::Sequential,
        256,
    ),
    app("bzip2", Class::M, 3.1, 0.5, 0.30, reuse(48, 0.4), 128),
    app("cactusADM", Class::M, 5.2, 0.5, 0.30, reuse(32, 0.3), 128),
    app("calculix", Class::L, 0.6, 0.3, 0.20, reuse(16, 0.3), 64),
    app("dealII", Class::M, 1.4, 0.5, 0.20, reuse(32, 0.4), 128),
    app("gamess", Class::L, 0.05, 0.3, 0.15, reuse(8, 0.2), 64),
    app("gcc", Class::M, 2.1, 0.5, 0.25, reuse(64, 0.5), 128),
    app("GemsFDTD", Class::H, 18.0, 0.8, 0.30, reuse(96, 0.4), 256),
    app("gobmk", Class::L, 0.4, 0.3, 0.20, reuse(16, 0.3), 64),
    app("gromacs", Class::L, 0.7, 0.3, 0.20, reuse(16, 0.3), 64),
    app("h264ref", Class::L, 0.5, 0.3, 0.20, reuse(12, 0.25), 64),
    app("hmmer", Class::M, 1.2, 0.5, 0.15, reuse(8, 0.2), 128),
    app("lbm", Class::H, 32.0, 0.95, 0.40, Pattern::Sequential, 256),
    app(
        "leslie3d",
        Class::H,
        13.0,
        0.85,
        0.30,
        Pattern::Sequential,
        256,
    ),
    app("libq", Class::H, 25.4, 1.0, 0.10, Pattern::Sequential, 256),
    app("mcf", Class::H, 66.9, 0.85, 0.15, reuse(512, 0.8), 512),
    app("milc", Class::H, 26.0, 0.8, 0.30, reuse(128, 0.5), 256),
    app("namd", Class::L, 0.08, 0.3, 0.15, reuse(8, 0.2), 64),
    app("omnetpp", Class::H, 21.0, 0.8, 0.25, reuse(256, 0.7), 256),
    app("perlbench", Class::L, 0.8, 0.3, 0.25, reuse(24, 0.4), 64),
    app("povray", Class::L, 0.04, 0.3, 0.15, reuse(8, 0.2), 64),
    app("sjeng", Class::L, 0.4, 0.3, 0.20, reuse(16, 0.35), 64),
    app("soplex", Class::H, 27.0, 0.8, 0.20, reuse(64, 0.4), 256),
    app("sphinx3", Class::H, 12.0, 0.75, 0.10, reuse(48, 0.35), 256),
    app("tonto", Class::L, 0.3, 0.3, 0.20, reuse(12, 0.25), 64),
    app("wrf", Class::M, 6.2, 0.5, 0.30, reuse(32, 0.3), 128),
    app("xalancbmk", Class::M, 2.8, 0.5, 0.20, reuse(128, 0.6), 128),
    app("zeusmp", Class::M, 4.9, 0.5, 0.30, reuse(24, 0.3), 128),
    // --- TPC (4) ---
    app("tpcc64", Class::H, 10.5, 0.8, 0.35, reuse(512, 0.85), 512),
    app("tpch2", Class::H, 14.0, 0.8, 0.15, reuse(128, 0.5), 256),
    app("tpch6", Class::H, 20.0, 0.9, 0.10, Pattern::Sequential, 256),
    app("tpch17", Class::M, 5.5, 0.5, 0.15, reuse(96, 0.5), 128),
    // --- STREAM (4) ---
    app(
        "stream-add",
        Class::H,
        30.0,
        1.0,
        0.33,
        Pattern::Sequential,
        256,
    ),
    app(
        "stream-copy",
        Class::H,
        28.0,
        1.0,
        0.50,
        Pattern::Sequential,
        256,
    ),
    app(
        "stream-scale",
        Class::H,
        28.0,
        1.0,
        0.50,
        Pattern::Sequential,
        256,
    ),
    app(
        "stream-triad",
        Class::H,
        31.0,
        1.0,
        0.33,
        Pattern::Sequential,
        256,
    ),
    // --- MediaBench (7) ---
    app("h264-enc", Class::L, 0.8, 0.3, 0.30, reuse(16, 0.25), 64),
    app(
        "h264-dec",
        Class::H,
        11.0,
        0.9,
        0.30,
        Pattern::Sequential,
        128,
    ),
    app("jp2-encode", Class::M, 4.2, 0.5, 0.30, reuse(16, 0.2), 128),
    app("jp2-decode", Class::M, 3.6, 0.5, 0.30, reuse(16, 0.2), 128),
    app("mpeg2-enc", Class::M, 1.8, 0.5, 0.30, reuse(16, 0.25), 128),
    app("mpeg2-dec", Class::L, 0.6, 0.3, 0.25, reuse(12, 0.25), 64),
    app("adpcm", Class::L, 0.1, 0.3, 0.15, reuse(8, 0.2), 64),
];

/// The `random` microbenchmark of \[75\]: random lines, very limited
/// row-level locality.
pub static RANDOM: AppProfile = app(
    "random",
    Class::H,
    80.0,
    1.0,
    0.20,
    Pattern::UniformRandom,
    512,
);

/// The `streaming` microbenchmark of \[75\]: contiguous accesses spaced
/// far enough apart that the timeout policy closes the row in between.
pub static STREAMING: AppProfile = app(
    "streaming",
    Class::M,
    2.5,
    1.0,
    0.20,
    Pattern::Sequential,
    256,
);

impl AppProfile {
    /// All 44 suite applications.
    pub fn all() -> &'static [AppProfile] {
        APPS
    }

    /// The applications of one intensity class.
    pub fn by_class(class: Class) -> Vec<&'static AppProfile> {
        APPS.iter().filter(|a| a.class == class).collect()
    }

    /// Finds a profile by name (including `random` / `streaming`).
    pub fn by_name(name: &str) -> Option<&'static AppProfile> {
        if name == "random" {
            return Some(&RANDOM);
        }
        if name == "streaming" {
            return Some(&STREAMING);
        }
        APPS.iter().find(|a| a.name == name)
    }

    /// Derives the generator parameters that hit the target MPKI: with
    /// one access per record and `cold_frac` of them missing,
    /// `MPKI ≈ 1000·cold_frac/(bubbles+1)`.
    pub fn gen_params(&self) -> GenParams {
        let bubbles = ((1000.0 * self.cold_frac / self.mpki) - 1.0).round();
        GenParams {
            bubbles: bubbles.clamp(0.0, 1_000_000.0) as u32,
            cold_frac: self.cold_frac,
            write_frac: self.write_frac,
            footprint: u64::from(self.footprint_mib) << 20,
            hot_bytes: 1 << 20,
            pattern: self.pattern,
        }
    }

    /// Builds the endless trace for this application.
    pub fn trace(&self, seed: u64) -> Box<dyn TraceSource> {
        // Mix the app name into the seed so co-scheduled copies of
        // different apps never correlate.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        Box::new(SyntheticTrace::new(self.gen_params(), seed ^ h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_44_unique_apps() {
        assert_eq!(APPS.len(), 44);
        let names: HashSet<_> = APPS.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 44);
    }

    #[test]
    fn classes_match_mpki_bands() {
        for a in APPS {
            match a.class {
                Class::L => assert!(a.mpki < 1.0, "{}", a.name),
                Class::M => assert!((1.0..10.0).contains(&a.mpki), "{}", a.name),
                Class::H => assert!(a.mpki >= 10.0, "{}", a.name),
            }
        }
        // The paper's classification needs all three classes populated.
        assert!(!AppProfile::by_class(Class::L).is_empty());
        assert!(!AppProfile::by_class(Class::M).is_empty());
        assert!(!AppProfile::by_class(Class::H).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(AppProfile::by_name("mcf").unwrap().class, Class::H);
        assert_eq!(AppProfile::by_name("random").unwrap().name, "random");
        assert_eq!(AppProfile::by_name("streaming").unwrap().name, "streaming");
        assert!(AppProfile::by_name("quake").is_none());
    }

    #[test]
    fn gen_params_valid_for_every_app() {
        for a in APPS.iter().chain([&RANDOM, &STREAMING]) {
            a.gen_params().validate().unwrap_or_else(|e| {
                panic!("{}: {e}", a.name);
            });
        }
    }

    #[test]
    fn bubble_derivation_tracks_mpki() {
        let libq = AppProfile::by_name("libq").unwrap().gen_params();
        let mcf = AppProfile::by_name("mcf").unwrap().gen_params();
        let povray = AppProfile::by_name("povray").unwrap().gen_params();
        // Higher MPKI → fewer bubbles between accesses.
        assert!(mcf.bubbles < libq.bubbles);
        assert!(libq.bubbles < povray.bubbles);
    }

    #[test]
    fn traces_differ_across_apps_with_same_seed() {
        let mut a = AppProfile::by_name("mcf").unwrap().trace(1);
        let mut b = AppProfile::by_name("milc").unwrap().trace(1);
        let same = (0..200)
            .filter(|_| a.next_entry() == b.next_entry())
            .count();
        assert!(same < 50);
    }
}
