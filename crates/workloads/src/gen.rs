//! The synthetic trace generator.

use crow_cpu::trace::{MemAccess, TraceEntry, TraceSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cold-region access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// March sequentially through the footprint line by line (STREAM-like:
    /// maximal row locality, no LLC reuse).
    Sequential,
    /// Cycle through a working set of `pages` 4 KiB pages, walking each
    /// page's lines in order and switching pages with `switch_prob`
    /// (models the recently-accessed-row reuse that CROW-cache exploits).
    PageReuse {
        /// Active pages in the working set.
        pages: u32,
        /// Probability of moving to another active page per access.
        switch_prob: f64,
        /// Probability of replacing an active page with a fresh one.
        refresh_prob: f64,
    },
    /// Uniformly random lines over the footprint (the `random`
    /// microbenchmark \[75\]).
    UniformRandom,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Non-memory instructions between accesses (mean; jittered ±50%).
    pub bubbles: u32,
    /// Fraction of accesses that go to the cold region (the rest hit a
    /// small LLC-resident hot set).
    pub cold_frac: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Cold-region size in bytes.
    pub footprint: u64,
    /// Hot-set size in bytes (must fit comfortably in the LLC).
    pub hot_bytes: u64,
    /// Cold-region pattern.
    pub pattern: Pattern,
}

impl GenParams {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Describes the violated range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.cold_frac) || !(0.0..=1.0).contains(&self.write_frac) {
            return Err("fractions must be in [0, 1]".into());
        }
        if self.footprint < 1 << 20 {
            return Err("footprint must be at least 1 MiB".into());
        }
        if self.hot_bytes < 4096 {
            return Err("hot set must hold at least one page".into());
        }
        if let Pattern::PageReuse {
            pages,
            switch_prob,
            refresh_prob,
        } = self.pattern
        {
            if pages == 0 {
                return Err("page working set must be nonempty".into());
            }
            if !(0.0..=1.0).contains(&switch_prob) || !(0.0..=1.0).contains(&refresh_prob) {
                return Err("probabilities must be in [0, 1]".into());
            }
        }
        Ok(())
    }
}

const LINE: u64 = 64;
const PAGE: u64 = 4096;
const LINES_PER_PAGE: u64 = PAGE / LINE;

/// Virtual address-space layout: hot set at the bottom, cold region above.
const COLD_BASE: u64 = 1 << 32;

/// An endless, deterministic trace over the synthetic address space.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    p: GenParams,
    rng: StdRng,
    /// Sequential cursor (lines).
    seq: u64,
    /// Active pages (page numbers within the cold region).
    active_pages: Vec<u64>,
    /// Current page index into `active_pages` and line cursor within it.
    cur_page: usize,
    cur_line: u64,
}

impl SyntheticTrace {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    pub fn new(p: GenParams, seed: u64) -> Self {
        if let Err(e) = p.validate() {
            panic!("invalid GenParams: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let cold_pages = p.footprint / PAGE;
        let active_pages = match p.pattern {
            Pattern::PageReuse { pages, .. } => {
                (0..pages).map(|_| rng.gen_range(0..cold_pages)).collect()
            }
            _ => Vec::new(),
        };
        Self {
            p,
            rng,
            seq: 0,
            active_pages,
            cur_page: 0,
            cur_line: 0,
        }
    }

    fn cold_addr(&mut self) -> u64 {
        let cold_pages = self.p.footprint / PAGE;
        match self.p.pattern {
            Pattern::Sequential => {
                let lines = self.p.footprint / LINE;
                let a = COLD_BASE + (self.seq % lines) * LINE;
                self.seq += 1;
                a
            }
            Pattern::UniformRandom => {
                let lines = self.p.footprint / LINE;
                COLD_BASE + self.rng.gen_range(0..lines) * LINE
            }
            Pattern::PageReuse {
                switch_prob,
                refresh_prob,
                ..
            } => {
                if self.rng.gen_bool(refresh_prob) {
                    let idx = self.rng.gen_range(0..self.active_pages.len());
                    self.active_pages[idx] = self.rng.gen_range(0..cold_pages);
                }
                if self.rng.gen_bool(switch_prob) {
                    self.cur_page = self.rng.gen_range(0..self.active_pages.len());
                }
                let page = self.active_pages[self.cur_page];
                let a = COLD_BASE + page * PAGE + (self.cur_line % LINES_PER_PAGE) * LINE;
                self.cur_line += 1;
                a
            }
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn snapshot_words(&self) -> Option<Vec<u64>> {
        // `GenParams` are reconstructed by the caller (they are pure
        // configuration); the mutable state is the RNG stream plus the
        // pattern cursors.
        let s = self.rng.state();
        let mut w = vec![
            s[0],
            s[1],
            s[2],
            s[3],
            self.seq,
            self.cur_page as u64,
            self.cur_line,
            self.active_pages.len() as u64,
        ];
        w.extend_from_slice(&self.active_pages);
        Some(w)
    }

    fn restore_words(&mut self, words: &[u64]) -> bool {
        if words.len() < 8 {
            return false;
        }
        let n = words[7] as usize;
        if words.len() != 8 + n || n != self.active_pages.len() {
            return false;
        }
        let cur_page = words[5] as usize;
        if n > 0 && cur_page >= n {
            return false;
        }
        self.rng = StdRng::from_state([words[0], words[1], words[2], words[3]]);
        self.seq = words[4];
        self.cur_page = cur_page;
        self.cur_line = words[6];
        self.active_pages.copy_from_slice(&words[8..]);
        true
    }

    fn next_entry(&mut self) -> TraceEntry {
        let jitter = if self.p.bubbles > 1 {
            self.rng.gen_range(0..=self.p.bubbles)
        } else {
            self.p.bubbles
        };
        let bubbles = (self.p.bubbles / 2) + jitter;
        let vaddr = if self.rng.gen_bool(self.p.cold_frac) {
            self.cold_addr()
        } else {
            let hot_lines = self.p.hot_bytes / LINE;
            self.rng.gen_range(0..hot_lines) * LINE
        };
        let is_write = self.rng.gen_bool(self.p.write_frac);
        TraceEntry {
            bubbles,
            access: Some(MemAccess { vaddr, is_write }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pattern: Pattern) -> GenParams {
        GenParams {
            bubbles: 10,
            cold_frac: 0.5,
            write_frac: 0.25,
            footprint: 64 << 20,
            hot_bytes: 1 << 20,
            pattern,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SyntheticTrace::new(params(Pattern::UniformRandom), 5);
        let mut b = SyntheticTrace::new(params(Pattern::UniformRandom), 5);
        for _ in 0..1000 {
            assert_eq!(a.next_entry(), b.next_entry());
        }
        let mut c = SyntheticTrace::new(params(Pattern::UniformRandom), 6);
        let same = (0..1000)
            .filter(|_| a.next_entry() == c.next_entry())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let p = params(Pattern::UniformRandom);
        let mut t = SyntheticTrace::new(p, 1);
        for _ in 0..10_000 {
            let e = t.next_entry();
            let a = e.access.unwrap().vaddr;
            if a >= COLD_BASE {
                assert!(a < COLD_BASE + p.footprint);
            } else {
                assert!(a < p.hot_bytes);
            }
        }
    }

    #[test]
    fn sequential_pattern_strides_lines() {
        let mut p = params(Pattern::Sequential);
        p.cold_frac = 1.0;
        let mut t = SyntheticTrace::new(p, 1);
        let a0 = t.next_entry().access.unwrap().vaddr;
        let a1 = t.next_entry().access.unwrap().vaddr;
        let a2 = t.next_entry().access.unwrap().vaddr;
        assert_eq!(a1 - a0, 64);
        assert_eq!(a2 - a1, 64);
    }

    #[test]
    fn page_reuse_concentrates_on_working_set() {
        let mut p = params(Pattern::PageReuse {
            pages: 8,
            switch_prob: 0.3,
            refresh_prob: 0.0,
        });
        p.cold_frac = 1.0;
        let mut t = SyntheticTrace::new(p, 2);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..10_000 {
            pages.insert(t.next_entry().access.unwrap().vaddr / PAGE);
        }
        assert!(pages.len() <= 8, "pages {}", pages.len());
    }

    #[test]
    fn refresh_prob_rotates_working_set() {
        let mut p = params(Pattern::PageReuse {
            pages: 4,
            switch_prob: 0.5,
            refresh_prob: 0.05,
        });
        p.cold_frac = 1.0;
        let mut t = SyntheticTrace::new(p, 3);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..10_000 {
            pages.insert(t.next_entry().access.unwrap().vaddr / PAGE);
        }
        assert!(pages.len() > 20, "pages {}", pages.len());
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut p = params(Pattern::UniformRandom);
        p.write_frac = 0.3;
        let mut t = SyntheticTrace::new(p, 4);
        let writes = (0..10_000)
            .filter(|_| t.next_entry().access.unwrap().is_write)
            .count();
        assert!((2500..3500).contains(&writes), "writes {writes}");
    }

    #[test]
    fn mean_bubbles_near_parameter() {
        let p = params(Pattern::UniformRandom);
        let mut t = SyntheticTrace::new(p, 5);
        let total: u64 = (0..10_000).map(|_| u64::from(t.next_entry().bubbles)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((8.0..12.0).contains(&mean), "mean bubbles {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid GenParams")]
    fn bad_params_rejected() {
        let mut p = params(Pattern::UniformRandom);
        p.cold_frac = 1.5;
        let _ = SyntheticTrace::new(p, 0);
    }
}
