//! Multi-programmed four-core workload groups (paper §7: eight groups of
//! 20 mixes each, named by the intensity classes of their members, e.g.
//! `LLHH` = two low-intensity plus two high-intensity applications).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::{AppProfile, Class};

/// The eight four-core mix groups evaluated in the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixGroup {
    /// Four low-intensity applications.
    Llll,
    /// Three low, one high.
    Lllh,
    /// Two low, two medium.
    Llmm,
    /// Two low, two high.
    Llhh,
    /// Four medium.
    Mmmm,
    /// Two medium, two high.
    Mmhh,
    /// One low, three high.
    Lhhh,
    /// Four high-intensity applications.
    Hhhh,
}

impl MixGroup {
    /// All groups, in increasing aggregate intensity.
    pub const ALL: [MixGroup; 8] = [
        MixGroup::Llll,
        MixGroup::Lllh,
        MixGroup::Llmm,
        MixGroup::Llhh,
        MixGroup::Mmmm,
        MixGroup::Mmhh,
        MixGroup::Lhhh,
        MixGroup::Hhhh,
    ];

    /// The class of each of the four cores.
    pub fn classes(self) -> [Class; 4] {
        use Class::{H, L, M};
        match self {
            MixGroup::Llll => [L, L, L, L],
            MixGroup::Lllh => [L, L, L, H],
            MixGroup::Llmm => [L, L, M, M],
            MixGroup::Llhh => [L, L, H, H],
            MixGroup::Mmmm => [M, M, M, M],
            MixGroup::Mmhh => [M, M, H, H],
            MixGroup::Lhhh => [L, H, H, H],
            MixGroup::Hhhh => [H, H, H, H],
        }
    }

    /// The paper's group label (`LLHH` style).
    pub fn label(self) -> &'static str {
        match self {
            MixGroup::Llll => "LLLL",
            MixGroup::Lllh => "LLLH",
            MixGroup::Llmm => "LLMM",
            MixGroup::Llhh => "LLHH",
            MixGroup::Mmmm => "MMMM",
            MixGroup::Mmhh => "MMHH",
            MixGroup::Lhhh => "LHHH",
            MixGroup::Hhhh => "HHHH",
        }
    }
}

/// Draws `count` random four-application mixes for a group (the paper
/// uses 20 per group). Deterministic per seed.
pub fn mixes_for_group(group: MixGroup, count: usize, seed: u64) -> Vec<[&'static AppProfile; 4]> {
    let mut rng = StdRng::seed_from_u64(seed ^ (group as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let pools: [Vec<&'static AppProfile>; 3] = [
        AppProfile::by_class(Class::L),
        AppProfile::by_class(Class::M),
        AppProfile::by_class(Class::H),
    ];
    let pool_of = |c: Class| -> &Vec<&'static AppProfile> {
        match c {
            Class::L => &pools[0],
            Class::M => &pools[1],
            Class::H => &pools[2],
        }
    };
    (0..count)
        .map(|_| {
            let classes = group.classes();
            let mut mix = [pools[0][0]; 4];
            for (slot, &c) in classes.iter().enumerate() {
                let pool = pool_of(c);
                mix[slot] = pool[rng.gen_range(0..pool.len())];
            }
            mix
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_respect_class_slots() {
        for group in MixGroup::ALL {
            let mixes = mixes_for_group(group, 20, 1);
            assert_eq!(mixes.len(), 20);
            for mix in mixes {
                for (app, class) in mix.iter().zip(group.classes()) {
                    assert_eq!(app.class, class, "group {group:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic_and_group_dependent() {
        let a = mixes_for_group(MixGroup::Llhh, 5, 7);
        let b = mixes_for_group(MixGroup::Llhh, 5, 7);
        let names = |m: &Vec<[&AppProfile; 4]>| -> Vec<&str> {
            m.iter().flat_map(|x| x.iter().map(|a| a.name)).collect()
        };
        assert_eq!(names(&a), names(&b));
        let c = mixes_for_group(MixGroup::Llhh, 5, 8);
        assert_ne!(names(&a), names(&c));
    }

    #[test]
    fn labels_match_classes() {
        assert_eq!(MixGroup::Hhhh.label(), "HHHH");
        assert_eq!(MixGroup::Llmm.label(), "LLMM");
        assert_eq!(MixGroup::ALL.len(), 8);
    }
}
