//! # crow-workloads
//!
//! Deterministic synthetic workload generators standing in for the Pin
//! traces of the paper's methodology (§7: 44 applications from SPEC
//! CPU2006, TPC, STREAM, and MediaBench, plus the `random` and
//! `streaming` microbenchmarks of \[75\]).
//!
//! We cannot redistribute SPEC traces, so each application is modeled by
//! a seeded generator that reproduces the two first-order statistics the
//! CROW mechanisms are sensitive to:
//!
//! * **memory intensity** (LLC misses per kilo-instruction — the paper's
//!   L/M/H classification), controlled by the bubble count between
//!   accesses and the fraction of accesses falling outside the
//!   LLC-resident hot set;
//! * **in-DRAM locality** (how soon and how often recently-activated
//!   rows are re-activated — what the CROW-table hit rate measures),
//!   controlled by the size of the active-page working set and the
//!   page-switch probability.
//!
//! Patterns: [`Pattern::Sequential`] streams through memory
//! (high row locality, every line new to the LLC — STREAM, `libq`),
//! [`Pattern::PageReuse`] cycles a working set of hot pages (pointer-ish
//! irregular apps with medium/high reuse — `mcf`, `omnetpp`), and
//! [`Pattern::UniformRandom`] touches lines uniformly (the `random`
//! microbenchmark; worst case for CROW-cache).
//!
//! ## Example
//!
//! ```
//! use crow_workloads::AppProfile;
//!
//! let mcf = AppProfile::by_name("mcf").unwrap();
//! let mut trace = mcf.trace(42);
//! // Traces are endless and deterministic per seed.
//! let e = trace.next_entry();
//! assert!(e.instruction_count() >= 1);
//! ```

pub mod apps;
pub mod gen;
pub mod mixes;

pub use apps::{AppProfile, Class};
pub use gen::{GenParams, Pattern, SyntheticTrace};
pub use mixes::{mixes_for_group, MixGroup};
