//! Criterion microbenchmarks for the hot data structures of the
//! simulation stack: CROW-table operations, the DRAM timing engine,
//! address mapping, LLC accesses, the circuit model, and trace
//! generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use crow_circuit::CircuitModel;
use crow_core::{CrowConfig, CrowSubstrate};
use crow_cpu::{AccessKind, Llc};
use crow_dram::{ActKind, AddrMapper, CmdDesc, DramChannel, DramConfig, MapScheme};
use crow_workloads::AppProfile;

fn bench_crow_table(c: &mut Criterion) {
    let mut s = CrowSubstrate::new(CrowConfig::paper_default());
    // Pre-populate a few subarrays.
    for row in 0..64u32 {
        if let crow_core::ActDecision::CopyInstall { copy } = s.decide(0, row % 8, row) {
            s.commit_install(0, row % 8, row, copy);
        }
    }
    let mut row = 0u32;
    c.bench_function("crow_table_peek", |b| {
        b.iter(|| {
            row = (row + 1) % 64;
            black_box(s.peek(0, row % 8, row))
        })
    });
}

fn bench_timing_engine(c: &mut Criterion) {
    let cfg = DramConfig::lpddr4_default();
    c.bench_function("dram_act_rd_pre_cycle", |b| {
        let mut ch = DramChannel::new(cfg.clone());
        let mut now = 0u64;
        let _ = now;
        b.iter(|| {
            let act = CmdDesc::act(0, 0, ActKind::single(5));
            now = ch.ready_at(&act).unwrap();
            ch.issue(&act, now);
            let rd = CmdDesc::rd(0, 0, 3);
            let t = ch.ready_at(&rd).unwrap();
            ch.issue(&rd, t);
            let pre = CmdDesc::pre(0, 0);
            let t = ch.ready_at(&pre).unwrap();
            ch.issue(&pre, t);
            black_box(t)
        })
    });
}

fn bench_addr_map(c: &mut Criterion) {
    let m = AddrMapper::new(MapScheme::RoBaRaCoCh, 4, &DramConfig::lpddr4_default());
    let mut pa = 0u64;
    c.bench_function("addr_decode", |b| {
        b.iter(|| {
            pa = pa.wrapping_add(0x1_2345_6740);
            black_box(m.decode(pa))
        })
    });
}

fn bench_llc(c: &mut Criterion) {
    let mut llc = Llc::new(8 << 20, 8);
    let mut a = 0u64;
    c.bench_function("llc_access", |b| {
        b.iter(|| {
            a = a.wrapping_add(4096 + 64);
            black_box(llc.access(a % (64 << 20), AccessKind::Read))
        })
    });
}

fn bench_circuit(c: &mut Criterion) {
    c.bench_function("circuit_calibration", |b| {
        b.iter(|| black_box(CircuitModel::calibrated()))
    });
    let m = CircuitModel::calibrated();
    c.bench_function("circuit_mra_sweep", |b| b.iter(|| black_box(m.mra_sweep(9))));
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut t = AppProfile::by_name("mcf").unwrap().trace(7);
    c.bench_function("trace_next_entry", |b| b.iter(|| black_box(t.next_entry())));
}

criterion_group!(
    benches,
    bench_crow_table,
    bench_timing_engine,
    bench_addr_map,
    bench_llc,
    bench_circuit,
    bench_trace_gen
);
criterion_main!(benches);
