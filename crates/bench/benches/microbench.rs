//! Microbenchmarks for the hot data structures of the simulation stack:
//! CROW-table operations, the DRAM timing engine, address mapping, LLC
//! accesses, the circuit model, and trace generation.
//!
//! Plain timing harness (`harness = false`): criterion is unavailable in
//! the offline build environment. Run with `cargo bench --bench
//! microbench`; each benchmark reports ns/iter over a fixed iteration
//! count after a warmup pass.

use std::hint::black_box;
use std::time::Instant;

use crow_circuit::CircuitModel;
use crow_core::{CrowConfig, CrowSubstrate};
use crow_cpu::{AccessKind, Llc};
use crow_dram::{ActKind, AddrMapper, CmdDesc, DramChannel, DramConfig, MapScheme};
use crow_workloads::AppProfile;

fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    // Warmup.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<28} {per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn bench_crow_table() {
    let mut s = CrowSubstrate::new(CrowConfig::paper_default());
    // Pre-populate a few subarrays.
    for row in 0..64u32 {
        if let crow_core::ActDecision::CopyInstall { copy } = s.decide(0, row % 8, row) {
            s.commit_install(0, row % 8, row, copy);
        }
    }
    let mut row = 0u32;
    bench("crow_table_peek", 1_000_000, || {
        row = (row + 1) % 64;
        black_box(s.peek(0, row % 8, row));
    });
}

fn bench_timing_engine() {
    let cfg = DramConfig::lpddr4_default();
    let mut ch = DramChannel::new(cfg);
    bench("dram_act_rd_pre_cycle", 200_000, || {
        let act = CmdDesc::act(0, 0, ActKind::single(5));
        let now = ch.ready_at(&act).unwrap();
        ch.issue(&act, now);
        let rd = CmdDesc::rd(0, 0, 3);
        let t = ch.ready_at(&rd).unwrap();
        ch.issue(&rd, t);
        let pre = CmdDesc::pre(0, 0);
        let t = ch.ready_at(&pre).unwrap();
        ch.issue(&pre, t);
        black_box(t);
    });
}

fn bench_addr_map() {
    let m = AddrMapper::new(MapScheme::RoBaRaCoCh, 4, &DramConfig::lpddr4_default());
    let mut pa = 0u64;
    bench("addr_decode", 2_000_000, || {
        pa = pa.wrapping_add(0x1_2345_6740);
        black_box(m.decode(pa));
    });
}

fn bench_llc() {
    let mut llc = Llc::new(8 << 20, 8);
    let mut a = 0u64;
    bench("llc_access", 1_000_000, || {
        a = a.wrapping_add(4096 + 64);
        black_box(llc.access(a % (64 << 20), AccessKind::Read));
    });
}

fn bench_circuit() {
    bench("circuit_calibration", 2_000, || {
        black_box(CircuitModel::calibrated());
    });
    let m = CircuitModel::calibrated();
    bench("circuit_mra_sweep", 10_000, || {
        black_box(m.mra_sweep(9));
    });
}

fn bench_trace_gen() {
    let mut t = AppProfile::by_name("mcf").unwrap().trace(7);
    bench("trace_next_entry", 2_000_000, || {
        black_box(t.next_entry());
    });
}

fn main() {
    bench_crow_table();
    bench_timing_engine();
    bench_addr_map();
    bench_llc();
    bench_circuit();
    bench_trace_gen();
}
