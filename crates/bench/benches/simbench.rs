//! End-to-end simulation throughput benchmarks: how fast the full
//! system simulates one application under each mechanism, and the raw
//! controller command rate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use crow_mem::{McConfig, MemController, MemRequest, ReqKind};
use crow_sim::{Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

fn bench_full_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_30k_insts");
    group.sample_size(10);
    for mech in [
        Mechanism::Baseline,
        Mechanism::crow_cache(8),
        Mechanism::crow_combined(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mech.label()),
            &mech,
            |b, &mech| {
                let app = AppProfile::by_name("mcf").unwrap();
                b.iter(|| {
                    let cfg = SystemConfig::quick_test(mech);
                    let mut sys = System::new(cfg, &[app]);
                    black_box(sys.run(20_000_000))
                })
            },
        );
    }
    group.finish();
}

fn bench_controller_stream(c: &mut Criterion) {
    c.bench_function("controller_1k_random_reads", |b| {
        b.iter(|| {
            let mut dram = crow_dram::DramConfig::tiny_test();
            dram.copy_rows_per_subarray = 0;
            let mut mc = MemController::new(McConfig::paper_default(), dram, None);
            let mut out = Vec::new();
            let mut next = 0u64;
            let mut now = 0u64;
            while out.len() < 1000 {
                if mc.can_accept_read() && next < 1000 {
                    let row = (next * 97) % 512;
                    let bank = (next * 13) % 2;
                    mc.try_enqueue(MemRequest::new(
                        next,
                        ReqKind::Read,
                        0,
                        bank as u32,
                        row as u32,
                        (next % 16) as u32,
                        0,
                    ))
                    .ok();
                    next += 1;
                }
                mc.tick(now, &mut out);
                now += 1;
            }
            black_box(now)
        })
    });
}

criterion_group!(benches, bench_full_system, bench_controller_stream);
criterion_main!(benches);
