//! End-to-end simulation throughput benchmarks: how fast the full
//! system simulates one application under each mechanism, and the raw
//! controller command rate.
//!
//! Plain timing harness (`harness = false`): criterion is unavailable in
//! the offline build environment. Run with `cargo bench --bench
//! simbench`.

use std::hint::black_box;
use std::time::Instant;

use crow_mem::{McConfig, MemController, MemRequest, ReqKind};
use crow_sim::{Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<36} {per_iter:>10.2} ms/iter   ({iters} iters)");
}

fn bench_full_system() {
    for mech in [
        Mechanism::Baseline,
        Mechanism::crow_cache(8),
        Mechanism::crow_combined(),
    ] {
        let app = AppProfile::by_name("mcf").unwrap();
        bench(&format!("system_30k_insts/{}", mech.label()), 10, || {
            let cfg = SystemConfig::quick_test(mech);
            let mut sys = System::new(cfg, &[app]);
            black_box(sys.run(20_000_000));
        });
    }
}

fn bench_controller_stream() {
    bench("controller_1k_random_reads", 50, || {
        let mut dram = crow_dram::DramConfig::tiny_test();
        dram.copy_rows_per_subarray = 0;
        let mut mc = MemController::new(McConfig::paper_default(), dram, None);
        let mut out = Vec::new();
        let mut next = 0u64;
        let mut now = 0u64;
        while out.len() < 1000 {
            if mc.can_accept_read() && next < 1000 {
                let row = (next * 97) % 512;
                let bank = (next * 13) % 2;
                mc.try_enqueue(MemRequest::new(
                    next,
                    ReqKind::Read,
                    0,
                    bank as u32,
                    row as u32,
                    (next % 16) as u32,
                    0,
                ))
                .ok();
                next += 1;
            }
            mc.tick(now, &mut out);
            now += 1;
        }
        black_box(now);
    });
}

fn main() {
    bench_full_system();
    bench_controller_stream();
}
