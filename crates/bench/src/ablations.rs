//! Ablation studies over the design choices the paper (and our
//! reproduction) bakes in:
//!
//! * **partial restoration** (paper §4.1.3) — CROW-cache with and
//!   without early restoration termination, isolating how much of the
//!   speedup comes from the relaxed `tRAS`;
//! * **scheduler** — FCFS vs FR-FCFS vs FR-FCFS-Cap (paper footnote 6
//!   claims Cap beats plain FR-FCFS on average);
//! * **row-buffer policy** — timeout (footnote 7) vs open-page vs
//!   closed-page;
//! * **CROW-table sharing factor** (paper §6.1: sharing 4 subarrays per
//!   entry set costs ~1% average speedup);
//! * **address interleaving** — channel-striped vs row-contiguous maps.

use crow_dram::MraTimings;
use crow_mem::{RowPolicy, SchedKind};
use crow_sim::metrics::geomean;
use crow_sim::{run_with_config, Mechanism, Scale, SystemConfig};

use crate::perf_figs::mix_id;
use crate::util::{fig_apps, heading, speedup1, FigCampaign, Table};

/// Partial-restoration ablation: CROW-8 with the paper operating point
/// vs CROW-8 restricted to full restoration.
pub fn partial_restore(scale: Scale) -> String {
    let apps = fig_apps();
    #[derive(Clone, Copy)]
    enum Variant {
        Baseline,
        Full,
        Partial,
    }
    let mut camp = FigCampaign::new("ablation_partial_restore", scale);
    let mut jobs = Vec::new();
    for &app in &apps {
        for (tag, v) in [
            ("base", Variant::Baseline),
            ("full", Variant::Full),
            ("partial", Variant::Partial),
        ] {
            jobs.push((format!("{}/{tag}", app.name), (app, v)));
        }
    }
    let reports = camp.run(jobs, |&(app, v), scale| {
        let mech = match v {
            Variant::Baseline => Mechanism::Baseline,
            _ => Mechanism::crow_cache(8),
        };
        let mut cfg = SystemConfig::paper_default(mech);
        if matches!(v, Variant::Full) {
            // Full-restoration-only MRA timings, and Table 1's full
            // tRCD reduction (-38%) since the trade-off is not taken.
            cfg.mra_override = Some(MraTimings::no_partial_restore());
        }
        Ok(run_with_config(cfg, &[app], scale))
    });
    let mut tab = Table::new(vec!["app", "full-restore only", "with partial restore"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (app, row) in apps.iter().zip(reports.chunks(3)) {
        let sp_full = speedup1(&row[1], &row[0]);
        let sp_part = speedup1(&row[2], &row[0]);
        cols[0].push(sp_full);
        cols[1].push(sp_part);
        tab.row(vec![
            app.name.to_string(),
            format!("{sp_full:.3}"),
            format!("{sp_part:.3}"),
        ]);
    }
    tab.row(vec![
        "geomean".to_string(),
        format!("{:.3}", geomean(&cols[0])),
        format!("{:.3}", geomean(&cols[1])),
    ]);
    let mut out = heading("Ablation: partial restoration (paper Sec. 4.1.3)");
    out.push_str(&tab.render());
    out.push_str("\n(partial restoration relaxes tRAS by 33% on ACT-t at a 17-point tRCD cost)\n");
    out.push_str(&camp.finish());
    out
}

/// Scheduler ablation under four-core contention (single-core queues are
/// too shallow for scheduling to matter).
pub fn scheduler(scale: Scale) -> String {
    use crow_workloads::{mixes_for_group, MixGroup};
    let mixes = mixes_for_group(MixGroup::Hhhh, scale.mixes_per_group.max(2), 81);
    let scheds = [
        ("FCFS", SchedKind::Fcfs),
        ("FR-FCFS", SchedKind::FrFcfs),
        ("FR-FCFS-Cap4", SchedKind::FrFcfsCap { cap: 4 }),
        ("FR-FCFS-Cap16", SchedKind::FrFcfsCap { cap: 16 }),
    ];
    let mut camp = FigCampaign::new("ablation_scheduler", scale);
    let mut jobs = Vec::new();
    for mix in &mixes {
        for &(name, s) in &scheds {
            jobs.push((format!("{}/{name}", mix_id(mix)), (mix.to_vec(), s)));
        }
    }
    let reports = camp.run(jobs, |(apps, sched), scale| {
        let mut cfg = SystemConfig::paper_default(Mechanism::Baseline);
        cfg.mc = cfg.mc.with_sched(*sched);
        Ok(run_with_config(cfg, apps, scale))
    });
    let mut tab = Table::new(vec![
        "scheduler",
        "throughput vs FCFS",
        "max read latency (rel)",
    ]);
    for (k, (name, _)) in scheds.iter().enumerate() {
        let ratios: Vec<f64> = reports
            .chunks(scheds.len())
            .map(|c| c[k].ipc_sum() / c[0].ipc_sum())
            .collect();
        let lat: Vec<f64> = reports
            .chunks(scheds.len())
            .map(|c| c[k].mc.read_latency_max as f64 / c[0].mc.read_latency_max.max(1) as f64)
            .collect();
        tab.row(vec![
            (*name).to_string(),
            format!("{:.3}", geomean(&ratios)),
            format!("{:.2}", lat.iter().sum::<f64>() / lat.len() as f64),
        ]);
    }
    let mut out = heading("Ablation: request scheduler (baseline DRAM, 4-core HHHH)");
    out.push_str(&tab.render());
    out.push_str(
        "\n(the Cap bounds how long a streaming row can starve others: it trades a\n\
         little throughput for tail latency, per the fairness argument of footnote 6)\n",
    );
    out.push_str(&camp.finish());
    out
}

/// Row-buffer-policy ablation on the baseline system.
pub fn row_policy(scale: Scale) -> String {
    let apps = fig_apps();
    let policies = [
        ("timeout-75ns", RowPolicy::Timeout { cycles: 120 }),
        ("open-page", RowPolicy::OpenPage),
        ("closed-page", RowPolicy::ClosedPage),
    ];
    let mut camp = FigCampaign::new("ablation_row_policy", scale);
    let mut jobs = Vec::new();
    for &app in &apps {
        for &(name, p) in &policies {
            jobs.push((format!("{}/{name}", app.name), (app, p)));
        }
    }
    let reports = camp.run(jobs, |&(app, policy), scale| {
        let mut cfg = SystemConfig::paper_default(Mechanism::Baseline);
        cfg.mc.policy = policy;
        Ok(run_with_config(cfg, &[app], scale))
    });
    let mut tab = Table::new(vec![
        "policy",
        "geomean IPC vs timeout",
        "avg energy vs timeout",
    ]);
    for (k, (name, _)) in policies.iter().enumerate() {
        let ratios: Vec<f64> = reports
            .chunks(policies.len())
            .map(|c| c[k].ipc[0] / c[0].ipc[0])
            .collect();
        let energy: Vec<f64> = reports
            .chunks(policies.len())
            .map(|c| c[k].energy.total_nj() / c[0].energy.total_nj())
            .collect();
        tab.row(vec![
            (*name).to_string(),
            format!("{:.3}", geomean(&ratios)),
            format!("{:.3}", energy.iter().sum::<f64>() / energy.len() as f64),
        ]);
    }
    let mut out = heading("Ablation: row-buffer policy (baseline DRAM)");
    out.push_str(&tab.render());
    out.push_str(&camp.finish());
    out
}

/// CROW-table sharing-factor sweep (paper §6.1).
pub fn table_sharing(scale: Scale) -> String {
    let apps = fig_apps();
    let factors = [1u32, 2, 4, 8];
    let mut camp = FigCampaign::new("ablation_table_sharing", scale);
    let mut jobs = Vec::new();
    for &app in &apps {
        jobs.push((format!("{}/base", app.name), (app, None)));
        for &f in &factors {
            jobs.push((format!("{}/share{f}", app.name), (app, Some(f))));
        }
    }
    let reports = camp.run(jobs, |&(app, factor), scale| {
        let mech = match factor {
            None => Mechanism::Baseline,
            Some(share_factor) => Mechanism::CrowCache {
                copy_rows: 8,
                share_factor,
            },
        };
        Ok(run_with_config(
            SystemConfig::paper_default(mech),
            &[app],
            scale,
        ))
    });
    let stride = factors.len() + 1;
    let mut tab = Table::new(vec![
        "sharing factor",
        "geomean speedup",
        "avg hit rate",
        "table KB",
    ]);
    for (k, &f) in factors.iter().enumerate() {
        let sp: Vec<f64> = reports
            .chunks(stride)
            .map(|c| speedup1(&c[k + 1], &c[0]))
            .collect();
        let hit: Vec<f64> = reports
            .chunks(stride)
            .map(|c| c[k + 1].crow_hit_rate())
            .collect();
        let storage = crow_core::overhead::crow_table_storage(512, 2, 8, 1024 / f);
        tab.row(vec![
            format!("{f}"),
            format!("{:.3}", geomean(&sp)),
            format!("{:.2}", hit.iter().sum::<f64>() / hit.len() as f64),
            format!("{:.1}", storage.total_bytes / 1000.0),
        ]);
    }
    let mut out = heading("Ablation: CROW-table entry sharing (paper Sec. 6.1)");
    out.push_str(&tab.render());
    out.push_str("\npaper: sharing across 4 subarrays drops average speedup 7.1% -> 6.1%\n");
    out.push_str(&camp.finish());
    out
}

/// Refresh-granularity ablation: all-bank `REF` vs LPDDR4 per-bank
/// `REFpb` (an extension beyond the paper's evaluation; per-bank refresh
/// hides refresh latency behind accesses to other banks, which matters
/// more at high densities where `tRFC` is long).
pub fn refresh_granularity(scale: Scale) -> String {
    use crow_workloads::{mixes_for_group, MixGroup};
    let mixes = mixes_for_group(MixGroup::Hhhh, scale.mixes_per_group.max(2), 82);
    let mut tab = Table::new(vec![
        "density",
        "per-bank speedup",
        "per-bank energy",
        "with CROW-ref: per-bank speedup",
    ]);
    let mut camp = FigCampaign::new("ablation_refresh_granularity", scale);
    for density in [8u32, 64] {
        let mut jobs = Vec::new();
        for mix in &mixes {
            for (mech, pb) in [
                (Mechanism::Baseline, false),
                (Mechanism::Baseline, true),
                (Mechanism::crow_ref(), false),
                (Mechanism::crow_ref(), true),
            ] {
                let id = format!(
                    "d{density}/{}/{}{}",
                    mix_id(mix),
                    mech.label(),
                    if pb { "+pb" } else { "" }
                );
                jobs.push((id, (mix.to_vec(), mech, pb)));
            }
        }
        let reports = camp.run(jobs, move |(apps, mech, pb), scale| {
            let mut cfg = SystemConfig::paper_default(*mech).with_density(density);
            cfg.mc.per_bank_refresh = *pb;
            Ok(run_with_config(cfg, apps, scale))
        });
        let mut sp = Vec::new();
        let mut en = Vec::new();
        let mut sp_ref = Vec::new();
        for c in reports.chunks(4) {
            sp.push(c[1].ipc_sum() / c[0].ipc_sum());
            en.push(c[1].energy.total_nj() / c[0].energy.total_nj());
            sp_ref.push(c[3].ipc_sum() / c[2].ipc_sum());
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        tab.row(vec![
            format!("{density} Gbit"),
            format!("{:.3}", avg(&sp)),
            format!("{:.3}", avg(&en)),
            format!("{:.3}", avg(&sp_ref)),
        ]);
    }
    let mut out = heading("Ablation: per-bank vs all-bank refresh (4-core HHHH)");
    out.push_str(&tab.render());
    out.push_str(
        "\n(per-bank refresh helps at 8 Gbit where tRFCpb << tREFIpb; at the\n\
         extrapolated 64 Gbit timings tRFCpb approaches the per-bank slot, so a\n\
         bank is almost always refreshing and the benefit evaporates -- another\n\
         angle on the paper's point that refresh overhead scales unfavourably\n\
         with density, and on why CROW-ref's halved rate matters)\n",
    );
    out.push_str(&camp.finish());
    out
}

/// DRAM-standard comparison (extension): the same CROW mechanisms on the
/// LPDDR4-3200 paper platform vs a DDR4-2400 platform with bank groups
/// and two ranks (the paper notes its mechanisms are not LPDDR4-specific).
pub fn standards(scale: Scale) -> String {
    let apps = fig_apps();
    #[derive(Clone, Copy)]
    enum Std {
        Lpddr4,
        Ddr4,
    }
    let mechs = [
        Mechanism::Baseline,
        Mechanism::crow_cache(8),
        Mechanism::crow_combined(),
    ];
    let mut camp = FigCampaign::new("ablation_standards", scale);
    let mut jobs = Vec::new();
    for &app in &apps {
        for (tag, std) in [("lpddr4", Std::Lpddr4), ("ddr4", Std::Ddr4)] {
            for &mech in &mechs {
                let id = format!("{}/{tag}/{}", app.name, mech.label());
                jobs.push((id, (app, std, mech)));
            }
        }
    }
    let reports = camp.run(jobs, |&(app, std, mech), scale| {
        let cfg = match std {
            Std::Lpddr4 => SystemConfig::paper_default(mech),
            Std::Ddr4 => SystemConfig::ddr4(mech),
        };
        Ok(run_with_config(cfg, &[app], scale))
    });
    let mut tab = Table::new(vec!["standard", "CROW-8 speedup", "CROW-8+ref speedup"]);
    for (k, name) in [(0usize, "LPDDR4-3200"), (1, "DDR4-2400")] {
        let base_idx = k * mechs.len();
        let sp_cache: Vec<f64> = reports
            .chunks(2 * mechs.len())
            .map(|c| speedup1(&c[base_idx + 1], &c[base_idx]))
            .collect();
        let sp_comb: Vec<f64> = reports
            .chunks(2 * mechs.len())
            .map(|c| speedup1(&c[base_idx + 2], &c[base_idx]))
            .collect();
        tab.row(vec![
            name.to_string(),
            format!("{:.3}", geomean(&sp_cache)),
            format!("{:.3}", geomean(&sp_comb)),
        ]);
    }
    let mut out = heading("Ablation: DRAM standard (CROW on LPDDR4 vs DDR4)");
    out.push_str(&tab.render());
    out.push_str(
        "\n(DDR4's shorter tRCD/tRAS and 64 ms refresh window shrink both of\n\
         CROW's targets, so gains are smaller but remain positive)\n",
    );
    out.push_str(&camp.finish());
    out
}

/// Address-interleaving ablation.
pub fn mapping(scale: Scale) -> String {
    use crow_dram::MapScheme;
    let apps = fig_apps();
    let schemes = [
        ("RoBaRaCoCh", MapScheme::RoBaRaCoCh),
        ("RoRaBaChCo", MapScheme::RoRaBaChCo),
    ];
    let mut camp = FigCampaign::new("ablation_mapping", scale);
    let mut jobs = Vec::new();
    for &app in &apps {
        for &(name, s) in &schemes {
            jobs.push((format!("{}/{name}", app.name), (app, s)));
        }
    }
    let reports = camp.run(jobs, |&(app, scheme), scale| {
        let mut cfg = SystemConfig::paper_default(Mechanism::Baseline);
        cfg.scheme = scheme;
        Ok(run_with_config(cfg, &[app], scale))
    });
    let mut tab = Table::new(vec!["scheme", "geomean IPC vs RoBaRaCoCh"]);
    for (k, (name, _)) in schemes.iter().enumerate() {
        let ratios: Vec<f64> = reports
            .chunks(schemes.len())
            .map(|c| c[k].ipc[0] / c[0].ipc[0])
            .collect();
        tab.row(vec![
            (*name).to_string(),
            format!("{:.3}", geomean(&ratios)),
        ]);
    }
    let mut out = heading("Ablation: address interleaving (baseline DRAM)");
    out.push_str(&tab.render());
    out.push_str(&camp.finish());
    out
}

#[cfg(test)]
mod tests {

    #[test]
    fn sharing_table_math_in_report() {
        // Static part of the sharing report: storage shrinks with factor.
        let a = crow_core::overhead::crow_table_storage(512, 2, 8, 1024);
        let b = crow_core::overhead::crow_table_storage(512, 2, 8, 256);
        assert!(b.total_bits * 4 == a.total_bits);
    }
}
