//! Regenerates every table and figure, printing and archiving the
//! results under `results/`. Simulation sections run as supervised
//! campaigns with durable journals under `results/campaign/`, so an
//! interrupted regeneration picks up where it left off:
//!
//! ```sh
//! cargo run -p crow-bench --release --bin all            # fresh run
//! cargo run -p crow-bench --release --bin all -- --resume
//! ```
//!
//! `--timeout SECS` and `--retries N` set the per-job deadline and
//! retry budget (equivalently `CROW_TIMEOUT_SECS` / `CROW_RETRIES`;
//! `--resume` is `CROW_RESUME=1`).
use crow_bench::util::scale_from_env_or_exit;
use std::time::Instant;

type Section = (&'static str, Box<dyn Fn() -> String>);

fn usage() -> ! {
    eprintln!(
        "usage: all [--resume] [--timeout SECS] [--retries N] [--only SECTION] [--sample SPEC]\n\
         \x20  --sample SPEC runs every simulation section under interval\n\
         \x20    sampling (SPEC is `default` or `WINDOW:WARMUP:FF`,\n\
         \x20    instructions per core; equivalently CROW_SAMPLE). Sampled\n\
         \x20    campaigns journal under distinct fingerprints, so full and\n\
         \x20    sampled figure sets never collide."
    );
    std::process::exit(2);
}

fn main() {
    let mut only: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        // The campaign knobs travel by environment so the figure
        // functions (and their FigCampaign constructors) see them.
        match flag.as_str() {
            "--resume" => std::env::set_var("CROW_RESUME", "1"),
            "--timeout" => std::env::set_var("CROW_TIMEOUT_SECS", val("--timeout")),
            "--retries" => std::env::set_var("CROW_RETRIES", val("--retries")),
            "--only" => only = Some(val("--only")),
            "--sample" => {
                let spec = val("--sample");
                // Validate eagerly: a malformed spec is a diagnostic
                // exit here, not a late failure inside every section.
                if let Err(e) = crow_sim::sampling::SamplePlan::parse(&spec) {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                std::env::set_var("CROW_SAMPLE", spec);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let scale = scale_from_env_or_exit();
    let sections: Vec<Section> = vec![
        ("table1", Box::new(crow_bench::circuit_figs::table1)),
        ("fig5", Box::new(crow_bench::circuit_figs::fig5)),
        ("fig6", Box::new(crow_bench::circuit_figs::fig6)),
        ("fig7", Box::new(crow_bench::circuit_figs::fig7)),
        ("overheads", Box::new(crow_bench::circuit_figs::overheads)),
        ("fig8", Box::new(move || crow_bench::perf_figs::fig8(scale))),
        ("fig9", Box::new(move || crow_bench::perf_figs::fig9(scale))),
        (
            "fig10",
            Box::new(move || crow_bench::perf_figs::fig10(scale)),
        ),
        (
            "fig11",
            Box::new(move || crow_bench::compare_figs::fig11(scale)),
        ),
        (
            "fig12",
            Box::new(move || crow_bench::compare_figs::fig12(scale)),
        ),
        (
            "fig13",
            Box::new(move || crow_bench::refresh_figs::fig13(scale)),
        ),
        (
            "fig14",
            Box::new(move || crow_bench::refresh_figs::fig14(scale)),
        ),
        (
            "hammer",
            Box::new(move || crow_bench::hammer_figs::hammer(scale)),
        ),
        (
            "ablation_partial_restore",
            Box::new(move || crow_bench::ablations::partial_restore(scale)),
        ),
        (
            "ablation_scheduler",
            Box::new(move || crow_bench::ablations::scheduler(scale)),
        ),
        (
            "ablation_row_policy",
            Box::new(move || crow_bench::ablations::row_policy(scale)),
        ),
        (
            "ablation_table_sharing",
            Box::new(move || crow_bench::ablations::table_sharing(scale)),
        ),
        (
            "ablation_refresh_granularity",
            Box::new(move || crow_bench::ablations::refresh_granularity(scale)),
        ),
        (
            "ablation_standards",
            Box::new(move || crow_bench::ablations::standards(scale)),
        ),
        (
            "ablation_mapping",
            Box::new(move || crow_bench::ablations::mapping(scale)),
        ),
    ];
    crow_sim::campaign::ensure_dir(std::path::Path::new("results")).ok();
    let mut combined = String::new();
    for (name, f) in sections {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let t = Instant::now();
        let text = f();
        println!("{text}");
        eprintln!("[{name}: {:.1?}]", t.elapsed());
        std::fs::write(format!("results/{name}.txt"), &text).ok();
        combined.push_str(&text);
    }
    std::fs::write("results/all.txt", combined).ok();
}
