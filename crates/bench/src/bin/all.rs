//! Regenerates every table and figure, printing and archiving the
//! results under `results/`.
use crow_sim::Scale;
use std::time::Instant;

type Section = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    let scale = Scale::from_env();
    let sections: Vec<Section> = vec![
        ("table1", Box::new(crow_bench::circuit_figs::table1)),
        ("fig5", Box::new(crow_bench::circuit_figs::fig5)),
        ("fig6", Box::new(crow_bench::circuit_figs::fig6)),
        ("fig7", Box::new(crow_bench::circuit_figs::fig7)),
        ("overheads", Box::new(crow_bench::circuit_figs::overheads)),
        ("fig8", Box::new(move || crow_bench::perf_figs::fig8(scale))),
        ("fig9", Box::new(move || crow_bench::perf_figs::fig9(scale))),
        (
            "fig10",
            Box::new(move || crow_bench::perf_figs::fig10(scale)),
        ),
        (
            "fig11",
            Box::new(move || crow_bench::compare_figs::fig11(scale)),
        ),
        (
            "fig12",
            Box::new(move || crow_bench::compare_figs::fig12(scale)),
        ),
        (
            "fig13",
            Box::new(move || crow_bench::refresh_figs::fig13(scale)),
        ),
        (
            "fig14",
            Box::new(move || crow_bench::refresh_figs::fig14(scale)),
        ),
        (
            "ablation_partial_restore",
            Box::new(move || crow_bench::ablations::partial_restore(scale)),
        ),
        (
            "ablation_scheduler",
            Box::new(move || crow_bench::ablations::scheduler(scale)),
        ),
        (
            "ablation_row_policy",
            Box::new(move || crow_bench::ablations::row_policy(scale)),
        ),
        (
            "ablation_table_sharing",
            Box::new(move || crow_bench::ablations::table_sharing(scale)),
        ),
        (
            "ablation_refresh_granularity",
            Box::new(move || crow_bench::ablations::refresh_granularity(scale)),
        ),
        (
            "ablation_standards",
            Box::new(move || crow_bench::ablations::standards(scale)),
        ),
        (
            "ablation_mapping",
            Box::new(move || crow_bench::ablations::mapping(scale)),
        ),
    ];
    std::fs::create_dir_all("results").ok();
    let mut combined = String::new();
    for (name, f) in sections {
        let t = Instant::now();
        let text = f();
        println!("{text}");
        eprintln!("[{name}: {:.1?}]", t.elapsed());
        std::fs::write(format!("results/{name}.txt"), &text).ok();
        combined.push_str(&text);
    }
    std::fs::write("results/all.txt", combined).ok();
}
