//! Simulation-speed benchmark: runs the same workloads under the naive
//! stepper, the event-driven engine with the linear-scan scheduler
//! (the previous generation), and the event-driven engine with the
//! indexed scheduler, reporting simulated CPU cycles per wall-clock
//! second and writing `BENCH_simspeed.json`.
//!
//! ```sh
//! cargo run -p crow-bench --release --bin simspeed
//! ```

use std::fmt::Write as _;

use crow_mem::SchedImpl;
use crow_sim::{Engine, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

struct Case {
    app: &'static str,
    mechanism: Mechanism,
}

struct Row {
    label: String,
    naive_cps: f64,
    linear_cps: f64,
    event_cps: f64,
    naive_wall: f64,
    linear_wall: f64,
    event_wall: f64,
    cycles: u64,
}

/// The three configurations each case is timed under: the naive
/// cycle-by-cycle stepper, the event-driven engine with the linear-scan
/// scheduler (the previous fast path, kept as the reference), and the
/// event-driven engine with the indexed scheduler (the current default).
const CONFIGS: [(Engine, SchedImpl); 3] = [
    (Engine::Naive, SchedImpl::Indexed),
    (Engine::EventDriven, SchedImpl::Linear),
    (Engine::EventDriven, SchedImpl::Indexed),
];

fn measure_once(
    case: &Case,
    engine: Engine,
    sched_impl: SchedImpl,
    max_cycles: u64,
) -> (f64, f64, u64) {
    let app = AppProfile::by_name(case.app).unwrap();
    let mut cfg = SystemConfig::quick_test(case.mechanism);
    cfg.cpu.target_insts = 200_000;
    cfg.engine = engine;
    cfg.mc.sched_impl = sched_impl;
    let mut sys = System::new(cfg, &[app]);
    let r = sys.run(max_cycles);
    (r.sim_cycles_per_sec, r.wall_seconds, r.cpu_cycles)
}

/// Best of `reps` runs: wall-clock measurements on a shared host are
/// noisy in one direction only (interference slows a run down), so the
/// fastest repetition is the least-perturbed one.
fn measure(
    case: &Case,
    engine: Engine,
    sched_impl: SchedImpl,
    max_cycles: u64,
    reps: u32,
) -> (f64, f64, u64) {
    let mut best = (0.0f64, f64::INFINITY, 0u64);
    for _ in 0..reps {
        let r = measure_once(case, engine, sched_impl, max_cycles);
        if r.0 > best.0 {
            best = r;
        }
    }
    best
}

fn main() {
    let cases = [
        Case {
            app: "povray", // low MPKI: long mechanical bubble streams
            mechanism: Mechanism::Baseline,
        },
        Case {
            app: "povray",
            mechanism: Mechanism::crow_cache(8),
        },
        Case {
            app: "mcf", // high MPKI: the engine must not lose ground
            mechanism: Mechanism::Baseline,
        },
        Case {
            app: "mcf",
            mechanism: Mechanism::crow_cache(8),
        },
        Case {
            app: "omnetpp", // mcf-like pointer chasing: dense queues
            mechanism: Mechanism::Baseline,
        },
        Case {
            app: "random", // synthetic random-access stress: worst-case locality
            mechanism: Mechanism::Baseline,
        },
    ];
    let max_cycles = 50_000_000;

    let mut rows = Vec::new();
    for case in &cases {
        // Warm up the page cache / branch predictors with a short run of
        // each configuration before timing.
        for (engine, sched_impl) in CONFIGS {
            measure(case, engine, sched_impl, 100_000, 1);
        }
        let (naive_cps, naive_wall, cycles) =
            measure(case, CONFIGS[0].0, CONFIGS[0].1, max_cycles, 3);
        let (linear_cps, linear_wall, ln_cycles) =
            measure(case, CONFIGS[1].0, CONFIGS[1].1, max_cycles, 3);
        let (event_cps, event_wall, ev_cycles) =
            measure(case, CONFIGS[2].0, CONFIGS[2].1, max_cycles, 3);
        assert_eq!(
            cycles, ln_cycles,
            "configurations simulated different spans"
        );
        assert_eq!(
            cycles, ev_cycles,
            "configurations simulated different spans"
        );
        rows.push(Row {
            label: format!("{}/{}", case.app, case.mechanism.label()),
            naive_cps,
            linear_cps,
            event_cps,
            naive_wall,
            linear_wall,
            event_wall,
            cycles,
        });
    }

    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>8}",
        "case", "naive cyc/s", "linear cyc/s", "event cyc/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.2}x",
            r.label,
            r.naive_cps,
            r.linear_cps,
            r.event_cps,
            r.event_cps / r.naive_cps
        );
    }

    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"cpu_cycles\": {}, \
             \"naive_cycles_per_sec\": {:.1}, \"linear_cycles_per_sec\": {:.1}, \
             \"event_cycles_per_sec\": {:.1}, \
             \"naive_wall_seconds\": {:.4}, \"linear_wall_seconds\": {:.4}, \
             \"event_wall_seconds\": {:.4}, \
             \"speedup\": {:.3}}}{}",
            r.label,
            r.cycles,
            r.naive_cps,
            r.linear_cps,
            r.event_cps,
            r.naive_wall,
            r.linear_wall,
            r.event_wall,
            r.event_cps / r.naive_cps,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");
}
