//! Simulation-speed benchmark: runs the same workloads under the naive
//! stepper and the event-driven engine and reports simulated CPU cycles
//! per wall-clock second, writing `BENCH_simspeed.json`.
//!
//! ```sh
//! cargo run -p crow-bench --release --bin simspeed
//! ```

use std::fmt::Write as _;

use crow_sim::{Engine, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

struct Case {
    app: &'static str,
    mechanism: Mechanism,
}

struct Row {
    label: String,
    naive_cps: f64,
    event_cps: f64,
    naive_wall: f64,
    event_wall: f64,
    cycles: u64,
}

fn measure_once(case: &Case, engine: Engine, max_cycles: u64) -> (f64, f64, u64) {
    let app = AppProfile::by_name(case.app).unwrap();
    let mut cfg = SystemConfig::quick_test(case.mechanism);
    cfg.cpu.target_insts = 200_000;
    cfg.engine = engine;
    let mut sys = System::new(cfg, &[app]);
    let r = sys.run(max_cycles);
    (r.sim_cycles_per_sec, r.wall_seconds, r.cpu_cycles)
}

/// Best of `reps` runs: wall-clock measurements on a shared host are
/// noisy in one direction only (interference slows a run down), so the
/// fastest repetition is the least-perturbed one.
fn measure(case: &Case, engine: Engine, max_cycles: u64, reps: u32) -> (f64, f64, u64) {
    let mut best = (0.0f64, f64::INFINITY, 0u64);
    for _ in 0..reps {
        let r = measure_once(case, engine, max_cycles);
        if r.0 > best.0 {
            best = r;
        }
    }
    best
}

fn main() {
    let cases = [
        Case {
            app: "povray", // low MPKI: long mechanical bubble streams
            mechanism: Mechanism::Baseline,
        },
        Case {
            app: "povray",
            mechanism: Mechanism::crow_cache(8),
        },
        Case {
            app: "mcf", // high MPKI: the engine must not lose ground
            mechanism: Mechanism::Baseline,
        },
        Case {
            app: "mcf",
            mechanism: Mechanism::crow_cache(8),
        },
    ];
    let max_cycles = 50_000_000;

    let mut rows = Vec::new();
    for case in &cases {
        // Warm up the page cache / branch predictors with a short run of
        // each engine before timing.
        measure(case, Engine::Naive, 100_000, 1);
        measure(case, Engine::EventDriven, 100_000, 1);
        let (naive_cps, naive_wall, cycles) = measure(case, Engine::Naive, max_cycles, 3);
        let (event_cps, event_wall, ev_cycles) = measure(case, Engine::EventDriven, max_cycles, 3);
        assert_eq!(cycles, ev_cycles, "engines simulated different spans");
        rows.push(Row {
            label: format!("{}/{}", case.app, case.mechanism.label()),
            naive_cps,
            event_cps,
            naive_wall,
            event_wall,
            cycles,
        });
    }

    println!(
        "{:<24} {:>14} {:>14} {:>8}",
        "case", "naive cyc/s", "event cyc/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:>14.3e} {:>14.3e} {:>7.2}x",
            r.label,
            r.naive_cps,
            r.event_cps,
            r.event_cps / r.naive_cps
        );
    }

    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"cpu_cycles\": {}, \
             \"naive_cycles_per_sec\": {:.1}, \"event_cycles_per_sec\": {:.1}, \
             \"naive_wall_seconds\": {:.4}, \"event_wall_seconds\": {:.4}, \
             \"speedup\": {:.3}}}{}",
            r.label,
            r.cycles,
            r.naive_cps,
            r.event_cps,
            r.naive_wall,
            r.event_wall,
            r.event_cps / r.naive_cps,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");
}
