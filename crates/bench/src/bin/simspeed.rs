//! Simulation-speed benchmark: runs the same workloads under the naive
//! stepper, the event-driven engine with the linear-scan scheduler
//! (the previous generation), the event-driven engine with the indexed
//! scheduler, and — on the multi-channel cases — the sharded parallel
//! engine, reporting simulated CPU cycles per wall-clock second and
//! writing `BENCH_simspeed.json`.
//!
//! ```sh
//! cargo run -p crow-bench --release --bin simspeed
//! ```

use std::fmt::Write as _;

use crow_mem::SchedImpl;
use crow_sim::{Engine, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

struct Case {
    app: &'static str,
    mechanism: Mechanism,
    /// Memory channels (1 = the single-channel quick-test platform).
    channels: u32,
    /// Shard worker threads for the parallel measurement (1 = skip it:
    /// the sharded engine only engages on multi-channel systems).
    threads: u32,
}

struct Row {
    label: String,
    threads: u32,
    naive_cps: f64,
    linear_cps: f64,
    event_cps: f64,
    par_cps: f64,
    naive_wall: f64,
    linear_wall: f64,
    event_wall: f64,
    par_wall: f64,
    cycles: u64,
    /// Effective simulated-cycle throughput of an interval-sampled run:
    /// the cycles the full run simulates divided by the sampled wall.
    sampled_cps: f64,
    sampled_wall: f64,
    /// Sampled-vs-full IPC error, percent.
    sampled_err_pct: f64,
}

/// The serial configurations each case is timed under: the naive
/// cycle-by-cycle stepper, the event-driven engine with the linear-scan
/// scheduler (the previous fast path, kept as the reference), and the
/// event-driven engine with the indexed scheduler (the current default).
/// Multi-channel cases additionally time the event/indexed combination
/// under `threads` shard workers.
const CONFIGS: [(Engine, SchedImpl); 3] = [
    (Engine::Naive, SchedImpl::Indexed),
    (Engine::EventDriven, SchedImpl::Linear),
    (Engine::EventDriven, SchedImpl::Indexed),
];

fn measure_once(
    case: &Case,
    engine: Engine,
    sched_impl: SchedImpl,
    threads: u32,
    max_cycles: u64,
) -> (f64, f64, u64) {
    let app = AppProfile::by_name(case.app).unwrap();
    let mut cfg = SystemConfig::quick_test(case.mechanism);
    cfg.channels = case.channels;
    cfg.cpu.target_insts = 200_000;
    cfg.engine = engine;
    cfg.mc.sched_impl = sched_impl;
    cfg.threads = threads;
    let mut sys = System::new(cfg, &[app]);
    let r = sys.run(max_cycles);
    (r.sim_cycles_per_sec, r.wall_seconds, r.cpu_cycles)
}

/// Best of `reps` runs: wall-clock measurements on a shared host are
/// noisy in one direction only (interference slows a run down), so the
/// fastest repetition is the least-perturbed one.
fn measure(
    case: &Case,
    engine: Engine,
    sched_impl: SchedImpl,
    threads: u32,
    max_cycles: u64,
    reps: u32,
) -> (f64, f64, u64) {
    let mut best = (0.0f64, f64::INFINITY, 0u64);
    for _ in 0..reps {
        let r = measure_once(case, engine, sched_impl, threads, max_cycles);
        if r.0 > best.0 {
            best = r;
        }
    }
    best
}

/// Times the interval-sampled configuration against its own full run at
/// a sampling-friendly span (the default plan measures 10 windows at
/// 2 M instructions/core). Returns `(sampled_cps, sampled_wall,
/// ipc_err_pct)` where `sampled_cps` is the *full* run's simulated
/// cycles over the *sampled* wall — the effective throughput a user
/// gets by sampling instead of running in full.
fn measure_sampled(case: &Case, reps: u32) -> (f64, f64, f64) {
    let app = AppProfile::by_name(case.app).unwrap();
    let run = |sample: Option<crow_sim::sampling::SamplePlan>| {
        let mut best: Option<crow_sim::SimReport> = None;
        for _ in 0..reps {
            let mut cfg = SystemConfig::quick_test(case.mechanism);
            cfg.channels = case.channels;
            cfg.cpu.target_insts = 2_000_000;
            cfg.engine = Engine::EventDriven;
            cfg.mc.sched_impl = SchedImpl::Indexed;
            cfg.sample = sample;
            let mut sys = System::new(cfg, &[app]);
            let r = sys.run(u64::MAX);
            if best
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best = Some(r);
            }
        }
        best.expect("reps >= 1")
    };
    let full = run(None);
    let sampled = run(Some(crow_sim::sampling::SamplePlan::default_profile()));
    let full_ipc: f64 = full.ipc.iter().sum();
    let sampled_ipc: f64 = sampled.ipc.iter().sum();
    let err = if full_ipc > 0.0 {
        (sampled_ipc - full_ipc).abs() / full_ipc * 100.0
    } else {
        0.0
    };
    (
        full.cpu_cycles as f64 / sampled.wall_seconds,
        sampled.wall_seconds,
        err,
    )
}

fn main() {
    let cases = [
        Case {
            app: "povray", // low MPKI: long mechanical bubble streams
            mechanism: Mechanism::Baseline,
            channels: 1,
            threads: 1,
        },
        Case {
            app: "povray",
            mechanism: Mechanism::crow_cache(8),
            channels: 1,
            threads: 1,
        },
        Case {
            app: "mcf", // high MPKI: the engine must not lose ground
            mechanism: Mechanism::Baseline,
            channels: 1,
            threads: 1,
        },
        Case {
            app: "mcf",
            mechanism: Mechanism::crow_cache(8),
            channels: 1,
            threads: 1,
        },
        Case {
            app: "omnetpp", // mcf-like pointer chasing: dense queues
            mechanism: Mechanism::Baseline,
            channels: 1,
            threads: 1,
        },
        Case {
            app: "random", // synthetic random-access stress: worst-case locality
            mechanism: Mechanism::Baseline,
            channels: 1,
            threads: 1,
        },
        Case {
            app: "mcf", // memory-bound on the 4-channel paper platform
            mechanism: Mechanism::Baseline,
            channels: 4,
            threads: 4,
        },
        Case {
            app: "random", // 4-channel stress: every shard's queues churn
            mechanism: Mechanism::crow_cache(8),
            channels: 4,
            threads: 4,
        },
    ];
    let max_cycles = 50_000_000;

    let mut rows = Vec::new();
    for case in &cases {
        // Warm up the page cache / branch predictors with a short run of
        // each configuration before timing.
        for (engine, sched_impl) in CONFIGS {
            measure(case, engine, sched_impl, 1, 100_000, 1);
        }
        let (naive_cps, naive_wall, cycles) =
            measure(case, CONFIGS[0].0, CONFIGS[0].1, 1, max_cycles, 3);
        let (linear_cps, linear_wall, ln_cycles) =
            measure(case, CONFIGS[1].0, CONFIGS[1].1, 1, max_cycles, 3);
        let (event_cps, event_wall, ev_cycles) =
            measure(case, CONFIGS[2].0, CONFIGS[2].1, 1, max_cycles, 3);
        assert_eq!(
            cycles, ln_cycles,
            "configurations simulated different spans"
        );
        assert_eq!(
            cycles, ev_cycles,
            "configurations simulated different spans"
        );
        // The sharded engine, timed on the event/indexed configuration
        // it shares every report bit with (single-channel cases run the
        // identical serial path, so reuse the serial numbers).
        let (par_cps, par_wall) = if case.threads > 1 {
            measure(case, CONFIGS[2].0, CONFIGS[2].1, case.threads, 100_000, 1);
            let (cps, wall, par_cycles) = measure(
                case,
                CONFIGS[2].0,
                CONFIGS[2].1,
                case.threads,
                max_cycles,
                3,
            );
            assert_eq!(cycles, par_cycles, "sharded run simulated a different span");
            (cps, wall)
        } else {
            (event_cps, event_wall)
        };
        let (sampled_cps, sampled_wall, sampled_err_pct) = measure_sampled(case, 2);
        rows.push(Row {
            label: format!(
                "{}/{}/{}ch",
                case.app,
                case.mechanism.label(),
                case.channels
            ),
            threads: case.threads,
            naive_cps,
            linear_cps,
            event_cps,
            par_cps,
            naive_wall,
            linear_wall,
            event_wall,
            par_wall,
            cycles,
            sampled_cps,
            sampled_wall,
            sampled_err_pct,
        });
    }

    println!(
        "{:<28} {:>7} {:>14} {:>14} {:>14} {:>14} {:>8} {:>14} {:>8}",
        "case",
        "threads",
        "naive cyc/s",
        "linear cyc/s",
        "event cyc/s",
        "par cyc/s",
        "speedup",
        "sampled cyc/s",
        "ipc err"
    );
    for r in &rows {
        println!(
            "{:<28} {:>7} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.2}x {:>14.3e} {:>7.2}%",
            r.label,
            r.threads,
            r.naive_cps,
            r.linear_cps,
            r.event_cps,
            r.par_cps,
            r.event_cps / r.naive_cps,
            r.sampled_cps,
            r.sampled_err_pct
        );
    }

    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"case\": \"{}\", \"threads\": {}, \"cpu_cycles\": {}, \
             \"naive_cycles_per_sec\": {:.1}, \"linear_cycles_per_sec\": {:.1}, \
             \"event_cycles_per_sec\": {:.1}, \"par_cycles_per_sec\": {:.1}, \
             \"naive_wall_seconds\": {:.4}, \"linear_wall_seconds\": {:.4}, \
             \"event_wall_seconds\": {:.4}, \"par_wall_seconds\": {:.4}, \
             \"speedup\": {:.3}, \"par_speedup\": {:.3}, \
             \"sampled_cycles_per_sec\": {:.1}, \"sampled_wall_seconds\": {:.4}, \
             \"sampled_ipc_err_pct\": {:.3}}}{}",
            r.label,
            r.threads,
            r.cycles,
            r.naive_cps,
            r.linear_cps,
            r.event_cps,
            r.par_cps,
            r.naive_wall,
            r.linear_wall,
            r.event_wall,
            r.par_wall,
            r.event_cps / r.naive_cps,
            r.par_cps / r.event_cps,
            r.sampled_cps,
            r.sampled_wall,
            r.sampled_err_pct,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str(
        "  ],\n  \"notes\": {\n\
         \x20   \"sampled\": \"sampled columns compare the event/indexed configuration full vs interval-sampled (default 20000:10000:170000 plan) at 2M insts/core; sampled_cycles_per_sec is full-run simulated cycles over sampled wall; the 2% IPC-accuracy contract is asserted by sampling_gate on the 4-channel paper platform — the single-channel quick_test platform timed here drifts slightly further (povray ~3%, CROW-8/random ~7% long-FF restore drift)\",\n\
         \x20   \"expected_par_speedup\": 0.3,\n\
         \x20   \"expected_par_speedup_note\": \"the 4-thread sharded engine regresses to ~0.3x on this single-core-throttled host; a par_speedup near 0.3 is the documented host artifact, not a new regression\"\n\
         \x20 }\n}\n",
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("\nwrote BENCH_simspeed.json");
}
