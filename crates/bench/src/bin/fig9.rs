//! Regenerates paper Fig. 9 (four-core weighted speedup by mix group).
use crow_sim::Scale;
fn main() {
    print!("{}", crow_bench::perf_figs::fig9(Scale::from_env()));
}
