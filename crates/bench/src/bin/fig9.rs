//! Regenerates paper Fig. 9 (four-core weighted speedup by mix group).
use crow_bench::util::scale_from_env_or_exit;
fn main() {
    print!("{}", crow_bench::perf_figs::fig9(scale_from_env_or_exit()));
}
