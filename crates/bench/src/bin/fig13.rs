//! Regenerates paper Fig. 13 (CROW-ref vs chip density).
use crow_bench::util::scale_from_env_or_exit;
fn main() {
    print!(
        "{}",
        crow_bench::refresh_figs::fig13(scale_from_env_or_exit())
    );
}
