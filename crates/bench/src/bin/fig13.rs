//! Regenerates paper Fig. 13 (CROW-ref vs chip density).
use crow_sim::Scale;
fn main() {
    print!("{}", crow_bench::refresh_figs::fig13(Scale::from_env()));
}
