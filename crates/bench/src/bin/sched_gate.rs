//! Deterministic scheduler performance gate for `scripts/check.sh`.
//!
//! Runs the synthetic random-access stress workload (the worst case for
//! scheduler locality) under the event-driven engine with both
//! scheduler implementations and asserts, from *counters* rather than
//! wall-clock time (so the gate is machine-independent and cannot
//! flake):
//!
//! 1. the two implementations produce bit-identical architectural
//!    statistics (controller + command stream);
//! 2. the indexed scheduler examines strictly fewer candidates than the
//!    linear scan;
//! 3. candidates scanned per issued command stay below a fixed bound —
//!    the structural claim of the index (selection cost tracks bank
//!    count, not queue depth), which a regression to linear-in-queue
//!    behaviour would break immediately;
//! 4. the readiness cache actually engages (fast-path skips and idle
//!    wakeup skips are both non-zero).
//!
//! Exits non-zero with a diagnostic on any violation.

use crow_mem::{SchedImpl, SchedStats};
use crow_sim::{Engine, Mechanism, SimReport, System, SystemConfig};
use crow_workloads::AppProfile;

/// Upper bound on candidates examined per issued command for the
/// indexed scheduler on the stress trace. Measured ~11.5 at the time
/// the gate was introduced (the linear scan measures ~64); the slack
/// absorbs benign tuning while still cleanly separating the two.
const MAX_SCANNED_PER_PICK: f64 = 16.0;

fn run(sched_impl: SchedImpl) -> SimReport {
    let app = AppProfile::by_name("random").expect("known app");
    let mut cfg = SystemConfig::quick_test(Mechanism::crow_cache(8));
    cfg.cpu.target_insts = 200_000;
    cfg.engine = Engine::EventDriven;
    cfg.mc.sched_impl = sched_impl;
    cfg.validate_protocol = true;
    let mut sys = System::new(cfg, &[app]);
    sys.run(50_000_000)
}

fn fail(msg: &str) -> ! {
    eprintln!("sched_gate: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let indexed = run(SchedImpl::Indexed);
    let linear = run(SchedImpl::Linear);

    // Equivalence: the index must not change what the controller does.
    if indexed.mc != linear.mc {
        fail(&format!(
            "controller stats diverged\n  indexed: {:?}\n  linear:  {:?}",
            indexed.mc, linear.mc
        ));
    }
    if indexed.commands != linear.commands {
        fail(&format!(
            "command streams diverged\n  indexed: {:?}\n  linear:  {:?}",
            indexed.commands, linear.commands
        ));
    }
    if indexed.violations != 0 || linear.violations != 0 {
        fail(&format!(
            "protocol violations: indexed {} linear {}",
            indexed.violations, linear.violations
        ));
    }

    let si: &SchedStats = &indexed.sched;
    let sl: &SchedStats = &linear.sched;
    if si.picks == 0 || sl.picks == 0 {
        fail(&format!(
            "stress trace issued nothing: indexed {si:?} linear {sl:?}"
        ));
    }
    let spp_i = si.scanned_per_pick();
    let spp_l = sl.scanned_per_pick();
    if spp_i >= spp_l {
        fail(&format!(
            "indexed scan is not cheaper: {spp_i:.2} vs linear {spp_l:.2} scanned/pick"
        ));
    }
    if spp_i > MAX_SCANNED_PER_PICK {
        fail(&format!(
            "indexed scanned/pick {spp_i:.2} exceeds bound {MAX_SCANNED_PER_PICK}"
        ));
    }
    if si.fastpath_skips == 0 {
        fail("readiness cache never engaged (fastpath_skips == 0)");
    }
    if si.wakeup_skips == 0 {
        fail("event engine never skipped occupied-queue cycles (wakeup_skips == 0)");
    }

    println!(
        "sched_gate: OK  indexed {spp_i:.2} scanned/pick (bound {MAX_SCANNED_PER_PICK}), \
         linear {spp_l:.2}; fastpath_skips {}, wakeup_skips {}, picks {}",
        si.fastpath_skips, si.wakeup_skips, si.picks
    );
}
