//! Poison-job gate for process-isolated execution (`scripts/check.sh`).
//!
//! Boots the real `crow-serve` binary with `CROW_SERVE_ISOLATION=process`
//! and throws a poison-job storm at it, asserting the supervision
//! contract end to end:
//!
//! 1. a crash-looping fingerprint burns through its retry ladder, trips
//!    the circuit breaker, and every subsequent duplicate is refused
//!    with a structured `quarantined` error — **zero** re-executions;
//! 2. healthy jobs interleaved with the storm all complete normally;
//! 3. a wedged (infinite-loop) child is deadline-SIGKILLed and surfaces
//!    as a structured `timeout`; a memory bomb breaches the RSS cap and
//!    surfaces as `resource-limit`;
//! 4. after all of it the `health` endpoint reports zero live children,
//!    SIGTERM drains cleanly, and a `/proc` sweep finds no leaked
//!    `--job-runner` child tagged with the server's pid.
//!
//! Exits non-zero with a diagnostic on any violation.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crow_bench::util::ServeClient;
use crow_sim::Json;

const DEADLINE: Duration = Duration::from_secs(120);

fn fail(msg: &str) -> ! {
    eprintln!("supervise_gate: FAIL: {msg}");
    std::process::exit(1);
}

/// Connects with a short retry loop: the socket file appears at the
/// server's bind() but accepts only after listen(), so a fast client
/// can land in between and see ECONNREFUSED.
fn connect_retry(socket: &Path) -> ServeClient {
    let t0 = Instant::now();
    loop {
        match ServeClient::connect(socket, DEADLINE) {
            Ok(c) => return c,
            Err(e) if t0.elapsed() > Duration::from_secs(10) => {
                fail(&format!("cannot connect: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn job_line(id: &str, insts: u64, chaos: Option<&str>) -> String {
    let base = format!(
        "{{\"op\":\"sim\",\"id\":\"{id}\",\"apps\":[\"mcf\"],\"insts\":{insts},\
         \"warmup\":1000,\"channels\":1,\"llc_mib\":1"
    );
    match chaos {
        Some(c) => format!("{base},\"chaos\":\"{c}\"}}"),
        None => format!("{base}}}"),
    }
}

struct Harness {
    serve_bin: PathBuf,
    socket: PathBuf,
    campaign_dir: PathBuf,
}

impl Harness {
    fn spawn_server(&self) -> Child {
        let mut cmd = Command::new(&self.serve_bin);
        cmd.env("CROW_SERVE_ADDR", &self.socket)
            .env("CROW_CAMPAIGN_DIR", &self.campaign_dir)
            .env("CROW_SERVE_WORKERS", "2")
            .env("CROW_SERVE_QUEUE", "16")
            .env("CROW_SERVE_HEARTBEAT_SECS", "0.2")
            .env("CROW_SERVE_JOB_TIMEOUT_SECS", "2")
            .env("CROW_SERVE_RETRIES", "1")
            .env("CROW_SERVE_ISOLATION", "process")
            .env("CROW_SERVE_CHAOS", "1")
            .env("CROW_SERVE_RSS_MB", "96")
            .env("CROW_SERVE_BREAKER_K", "3")
            .env("CROW_SERVE_BREAKER_COOLDOWN_SECS", "60")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let child = cmd
            .spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", self.serve_bin.display())));
        let t0 = Instant::now();
        while !self.socket.exists() {
            if t0.elapsed() > Duration::from_secs(30) {
                fail("server did not create its socket within 30s");
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        child
    }

    fn client(&self) -> ServeClient {
        connect_retry(&self.socket)
    }

    fn health(&self) -> Json {
        self.client()
            .health()
            .unwrap_or_else(|e| fail(&format!("health: {e}")))
    }

    fn sup_counter(&self, key: &str) -> u64 {
        self.health()
            .get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(&format!("health missing counter {key}")))
    }

    /// Runs one job to its terminal event and returns (code, error text)
    /// for errors or ("result", outcome) for successes.
    fn terminal(&self, line: &str, id: &str) -> (String, String) {
        let mut c = self.client();
        c.send(line)
            .unwrap_or_else(|e| fail(&format!("{id} send: {e}")));
        let ev = c
            .recv_until(|ev| {
                let kind = ev.get("event").and_then(Json::as_str);
                (kind == Some("result") || kind == Some("error"))
                    && ev.get("id").and_then(Json::as_str) == Some(id)
            })
            .unwrap_or_else(|e| fail(&format!("{id} terminal: {e}")));
        match ev.get("event").and_then(Json::as_str) {
            Some("result") => (
                "result".into(),
                ev.get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .into(),
            ),
            _ => (
                ev.get("code").and_then(Json::as_str).unwrap_or("").into(),
                ev.get("error").and_then(Json::as_str).unwrap_or("").into(),
            ),
        }
    }

    fn expect_ok(&self, id: &str, insts: u64) {
        let (kind, outcome) = self.terminal(&job_line(id, insts, None), id);
        if kind != "result" {
            fail(&format!(
                "healthy job {id} did not complete: {kind}: {outcome}"
            ));
        }
    }
}

fn signal_child(child: &Child, signal: &str) {
    let status = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -{signal} {}", child.id()))
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot signal server: {e}")));
    if !status.success() {
        fail(&format!("kill -{signal} failed"));
    }
}

fn wait_with_stderr(mut child: Child) -> (std::process::ExitStatus, String) {
    let mut stderr = child.stderr.take().expect("stderr piped");
    let collector = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    let t0 = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let text = collector.join().unwrap_or_default();
                return (status, text);
            }
            Ok(None) => {
                if t0.elapsed() > DEADLINE {
                    let _ = child.kill();
                    fail("server did not exit within the deadline");
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => fail(&format!("wait: {e}")),
        }
    }
}

/// Sweeps `/proc` for a leaked `--job-runner` child carrying `tag`
/// (the server's pid) in its argv. After a drain there must be none.
fn leaked_runners(tag: u32) -> Vec<u32> {
    let needle = format!("--job-runner\0{tag}\0");
    let mut leaked = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return leaked;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(entry.path().join("cmdline")) else {
            continue;
        };
        if String::from_utf8_lossy(&cmdline).contains(&needle) {
            leaked.push(pid);
        }
    }
    leaked
}

fn main() {
    let serve_bin = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("current_exe: {e}")))
        .with_file_name("crow-serve");
    if !serve_bin.exists() {
        fail(&format!(
            "{} not built (build the crow-serve bin first)",
            serve_bin.display()
        ));
    }
    let scratch = std::env::temp_dir().join(format!("crow-supervise-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| fail(&format!("scratch: {e}")));
    let h = Harness {
        serve_bin,
        socket: scratch.join("crow.sock"),
        campaign_dir: scratch.join("campaign"),
    };
    let server = h.spawn_server();
    let server_pid = server.id();

    // --- Phase A: poison storm vs interleaved healthy jobs -------------
    // One crash-looping fingerprint, submitted repeatedly under fresh
    // ids. CROW_SERVE_RETRIES=1 and BREAKER_K=3: the first submission
    // burns 2 attempts (both crash), the second trips the breaker on its
    // first child, and everything after that is quarantined without a
    // single spawn. Healthy jobs (distinct insts => distinct
    // fingerprints) run between every poison submission.
    h.expect_ok("healthy-0", 20_000);
    let (code, err) = h.terminal(&job_line("poison-0", 20_000, Some("crash")), "poison-0");
    if code != "failed" || !err.contains("crash") {
        fail(&format!(
            "poison-0: expected a crash failure, got {code}: {err}"
        ));
    }
    h.expect_ok("healthy-1", 21_000);
    let (code, err) = h.terminal(&job_line("poison-1", 20_000, Some("crash")), "poison-1");
    if code != "failed" || !err.contains("circuit breaker opened") {
        fail(&format!(
            "poison-1: expected the breaker to open, got {code}: {err}"
        ));
    }
    for i in 2u64..5 {
        let id = format!("poison-{i}");
        let spawned_before = h.sup_counter("children_spawned");
        let (code, err) = h.terminal(&job_line(&id, 20_000, Some("crash")), &id);
        if code != "quarantined" || !err.contains("circuit breaker open") {
            fail(&format!("{id}: expected quarantined, got {code}: {err}"));
        }
        if h.sup_counter("children_spawned") != spawned_before {
            fail(&format!("quarantined duplicate {id} was re-executed"));
        }
        h.expect_ok(&format!("healthy-{i}"), 20_000 + i * 1000);
    }
    if h.sup_counter("child_crashes") != 3 {
        fail(&format!(
            "expected exactly 3 child crashes (retry ladder + the one that tripped the breaker), saw {}",
            h.sup_counter("child_crashes")
        ));
    }
    println!(
        "supervise_gate: poison storm OK (breaker open after 3 crashes, \
         3 duplicates quarantined, 5 healthy jobs completed)"
    );

    // --- Phase B: wedge and bomb ---------------------------------------
    let (code, err) = h.terminal(&job_line("stuck", 20_000, Some("wedge")), "stuck");
    if code != "timeout" || !err.contains("deadline") {
        fail(&format!(
            "wedge: expected a deadline kill, got {code}: {err}"
        ));
    }
    if h.sup_counter("children_killed_deadline") == 0 {
        fail("no deadline kill was counted");
    }
    let (code, err) = h.terminal(&job_line("hog", 20_000, Some("bomb")), "hog");
    if code != "resource-limit" || !err.contains("SIGKILL") {
        fail(&format!("bomb: expected an RSS kill, got {code}: {err}"));
    }
    if h.sup_counter("children_killed_rss") == 0 {
        fail("no RSS kill was counted");
    }
    // The slots those kills freed still serve healthy work.
    h.expect_ok("healthy-after-kills", 25_000);
    println!("supervise_gate: wedge deadline-killed, bomb RSS-killed, slots refilled");

    // --- Phase C: no leaks, clean drain --------------------------------
    let health = h.health();
    let live = health
        .get("live_children")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail("health missing live_children"));
    if live != 0 {
        fail(&format!(
            "{live} children still live after all jobs finished"
        ));
    }
    signal_child(&server, "TERM");
    let (status, stderr) = wait_with_stderr(server);
    if !status.success() {
        fail(&format!("SIGTERM drain exited {status}; stderr:\n{stderr}"));
    }
    let summary = stderr
        .lines()
        .find(|l| l.contains("drained"))
        .unwrap_or_else(|| fail(&format!("no drain summary in stderr:\n{stderr}")));
    if !summary.contains("workers_joined 2") || !summary.contains("abandoned 0") {
        fail(&format!("bad drain summary: {summary}"));
    }
    if !summary.contains("quarantined 3") {
        fail(&format!(
            "drain summary lost the quarantine count: {summary}"
        ));
    }
    let leaked = leaked_runners(server_pid);
    if !leaked.is_empty() {
        fail(&format!("leaked --job-runner children: {leaked:?}"));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!("supervise_gate: drain clean, zero leaked children");
    println!("supervise_gate: PASS");
}
