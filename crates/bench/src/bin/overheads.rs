//! Regenerates the Sec. 6 / Sec. 4.2.1 overhead numbers.
fn main() {
    print!("{}", crow_bench::circuit_figs::overheads());
}
