//! Command-line simulator front end: run any workload under any
//! mechanism with the full paper platform (or a customized one) and get
//! a detailed report.
//!
//! ```sh
//! cargo run -p crow-bench --release --bin simulate -- \
//!     --app mcf --app libq --mechanism crow-8 --insts 500000 \
//!     --density 64 --llc-mib 8 --prefetch
//!
//! # Replay recorded trace files (crow_cpu::trace format):
//! cargo run -p crow-bench --release --bin simulate -- \
//!     --trace core0.trace --trace core1.trace --mechanism crow-combined
//! ```

use crow_cpu::trace::{load_trace, LoopedTrace, TraceEntry};
use crow_cpu::TraceSource;
use crow_dram::Command;
use crow_sim::{
    AttackPattern, Campaign, CampaignPolicy, FaultPlan, FaultPolicy, HammerScenario, Mechanism,
    OutcomeKind, SamplePlan, Scale, SimReport, System, SystemConfig,
};
use crow_workloads::AppProfile;

struct Args {
    apps: Vec<String>,
    traces: Vec<String>,
    mechanism: String,
    insts: u64,
    warmup: u64,
    density: u32,
    llc_mib: u64,
    channels: u32,
    seed: u64,
    prefetch: bool,
    per_bank_refresh: bool,
    oracle: bool,
    ddr4: bool,
    validate: bool,
    faults: Option<String>,
    fault_policy: FaultPolicy,
    hammer: Option<String>,
    hammer_intensity: u64,
    timeout: Option<f64>,
    retries: Option<u32>,
    resume: bool,
    sample: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--app NAME]... [--trace FILE]... [--mechanism M]\n\
         \x20        [--insts N] [--warmup N] [--density 8|16|32|64]\n\
         \x20        [--llc-mib N] [--channels N] [--seed N]\n\
         \x20        [--prefetch] [--per-bank-refresh] [--oracle] [--ddr4]\n\
         \x20        [--validate] [--faults SPEC] [--fault-policy P]\n\
         \x20        [--hammer PATTERN] [--hammer-intensity N]\n\
         \x20        [--timeout SECS] [--retries N] [--resume]\n\
         \x20        [--sample SPEC]\n\
         \n\
         mechanisms: baseline, crow-N (copy rows), crow-ref, crow-combined,\n\
         \x20           ideal, no-refresh, tldram-N, salp-N, salp-N-o\n\
         apps: see `crow_workloads::AppProfile` (mcf, libq, ... or\n\
         \x20      random/streaming); --trace replays a recorded file instead\n\
         \n\
         --validate attaches the shadow protocol validator to every channel\n\
         --faults SPEC enables fault injection: `stress` or a comma list of\n\
         \x20    vrt=N, hammer=N, burst=N, drop=N (intervals in CPU cycles)\n\
         --fault-policy P is abort, record (default) or degrade\n\
         --hammer PATTERN attaches a RowHammer attack scenario (single,\n\
         \x20    double, many-N, half-double); --hammer-intensity sets the\n\
         \x20    aggressor ACTs per refresh window (default 500000), and\n\
         \x20    CROW_HAMMER_* env overrides refine the scenario (strict\n\
         \x20    parse; see EXPERIMENTS.md)\n\
         \n\
         --timeout/--retries/--resume run the simulation as a supervised\n\
         \x20    campaign job (journaled under results/campaign/simulate.jsonl):\n\
         \x20    a panic, Abort-policy fault, or overrun deadline is retried at\n\
         \x20    a degraded instruction budget, and --resume restores a\n\
         \x20    previously journaled result instead of re-running\n\
         \n\
         --sample SPEC runs statistical interval sampling: alternating\n\
         \x20    functional fast-forward and detailed measured windows.\n\
         \x20    SPEC is `default` or `WINDOW:WARMUP:FF` (instructions per\n\
         \x20    core); per-metric means and 95% confidence intervals land\n\
         \x20    in the report. Overrides CROW_SAMPLE env\n\
         \n\
         env: CROW_THREADS=N runs one shard worker per channel group\n\
         \x20    (bit-identical reports); CROW_CHECKPOINTS=1 caches warmed\n\
         \x20    architectural state under results/checkpoints/"
    );
    std::process::exit(2);
}

fn parse_fault_policy(s: &str) -> FaultPolicy {
    match s.to_ascii_lowercase().as_str() {
        "abort" => FaultPolicy::Abort,
        "record" => FaultPolicy::Record,
        "degrade" => FaultPolicy::Degrade,
        other => {
            eprintln!("unknown fault policy {other}");
            usage();
        }
    }
}

fn parse_fault_plan(spec: &str, seed: u64, policy: FaultPolicy) -> FaultPlan {
    let mut p = if spec.eq_ignore_ascii_case("stress") {
        FaultPlan::stress(seed)
    } else {
        let mut p = FaultPlan::quiet(seed);
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                eprintln!("bad --faults item {part:?} (want key=value)");
                usage();
            };
            let n: u64 = value.parse().unwrap_or_else(|_| {
                eprintln!("bad --faults value in {part:?}");
                usage();
            });
            match key {
                "vrt" => p.vrt_interval = Some(n),
                "hammer" => p.hammer_interval = Some(n),
                "burst" => p.hammer_burst = n as u32,
                "drop" => p.drop_interval = Some(n),
                other => {
                    eprintln!("unknown --faults key {other}");
                    usage();
                }
            }
        }
        p
    };
    p.policy = policy;
    p
}

fn parse_args() -> Args {
    let mut a = Args {
        apps: Vec::new(),
        traces: Vec::new(),
        mechanism: "crow-8".into(),
        insts: 400_000,
        warmup: 50_000,
        density: 8,
        llc_mib: 8,
        channels: 4,
        seed: 0xC0DE,
        prefetch: false,
        per_bank_refresh: false,
        oracle: false,
        ddr4: false,
        validate: false,
        faults: None,
        fault_policy: FaultPolicy::Record,
        hammer: None,
        hammer_intensity: 500_000,
        timeout: None,
        retries: None,
        resume: false,
        sample: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--app" => a.apps.push(val("--app")),
            "--trace" => a.traces.push(val("--trace")),
            "--mechanism" | "-m" => a.mechanism = val("--mechanism"),
            "--insts" => a.insts = val("--insts").parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = val("--warmup").parse().unwrap_or_else(|_| usage()),
            "--density" => a.density = val("--density").parse().unwrap_or_else(|_| usage()),
            "--llc-mib" => a.llc_mib = val("--llc-mib").parse().unwrap_or_else(|_| usage()),
            "--channels" => a.channels = val("--channels").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--prefetch" => a.prefetch = true,
            "--ddr4" => a.ddr4 = true,
            "--per-bank-refresh" => a.per_bank_refresh = true,
            "--oracle" => a.oracle = true,
            "--validate" => a.validate = true,
            "--faults" => a.faults = Some(val("--faults")),
            "--fault-policy" => a.fault_policy = parse_fault_policy(&val("--fault-policy")),
            "--hammer" => a.hammer = Some(val("--hammer")),
            "--hammer-intensity" => {
                a.hammer_intensity = val("--hammer-intensity")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--timeout" => a.timeout = Some(val("--timeout").parse().unwrap_or_else(|_| usage())),
            "--retries" => a.retries = Some(val("--retries").parse().unwrap_or_else(|_| usage())),
            "--resume" => a.resume = true,
            "--sample" => a.sample = Some(val("--sample")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if a.apps.is_empty() && a.traces.is_empty() {
        a.apps.push("mcf".into());
    }
    a
}

fn parse_mechanism(s: &str) -> Mechanism {
    Mechanism::parse(s).unwrap_or_else(|| {
        eprintln!("unknown mechanism {s}");
        usage();
    })
}

/// Runs the configured simulation as a single supervised campaign job:
/// crash-isolated, deadline-enforced, retried at a degraded instruction
/// budget, and journaled under `results/campaign/simulate.jsonl` so
/// `--resume` restores the result instead of re-running. Returns the
/// report and whether it was restored from the journal.
fn run_supervised<F>(
    args: &Args,
    scale: Scale,
    names: Vec<String>,
    cfg: SystemConfig,
    build: F,
) -> (SimReport, bool)
where
    F: Fn(SystemConfig) -> Result<System, crow_sim::CrowError> + Send + Sync + 'static,
{
    let mut policy = CampaignPolicy::new(scale);
    policy.timeout = args
        .timeout
        .filter(|&s| s > 0.0)
        .map(std::time::Duration::from_secs_f64);
    policy.max_retries = args.retries.unwrap_or(1);
    policy.resume = args.resume;
    let mut camp = Campaign::new("simulate", policy).unwrap_or_else(|e| {
        eprintln!("warning: {e}; running unjournaled");
        Campaign::ephemeral("simulate", policy)
    });
    if camp.quarantined() > 0 {
        eprintln!(
            "simulate: quarantined {} malformed journal record(s)",
            camp.quarantined()
        );
    }
    if camp.corrupt() > 0 {
        eprintln!(
            "simulate: set aside {} CRC-failing journal record(s) to the .corrupt sidecar",
            camp.corrupt()
        );
    }
    // Everything that changes the simulated outcome must be in the job
    // fingerprint (the instruction budget rides the scale fingerprint).
    // The hammer segment records the *resolved* scenario, so
    // CROW_HAMMER_* env overrides key distinct journal entries.
    let hammer_fp = match &cfg.hammer {
        Some(sc) => format!(
            "/hammer:{}x{}s{}t{}p{}",
            sc.pattern.label(),
            sc.intensity,
            sc.seed,
            sc.flip.base_threshold,
            sc.flip.flip_p_inv
        ),
        None => String::new(),
    };
    let job_fp = format!(
        "sim/{}/{}/d{}/llc{}/ch{}/s{}{}{}{}{}{}{}/{}/{:?}",
        args.mechanism,
        if args.traces.is_empty() {
            args.apps.join("+")
        } else {
            args.traces.join("+")
        },
        args.density,
        args.llc_mib,
        args.channels,
        args.seed,
        if args.prefetch { "/pref" } else { "" },
        if args.per_bank_refresh { "/pbref" } else { "" },
        if args.oracle { "/oracle" } else { "" },
        if args.ddr4 { "/ddr4" } else { "" },
        if args.validate { "/validate" } else { "" },
        hammer_fp,
        args.faults.as_deref().unwrap_or("-"),
        args.fault_policy,
    );
    let oracle = args.oracle;
    let outcomes = camp.run(vec![(job_fp, cfg)], move |cfg, scale| {
        let mut cfg = cfg.clone();
        cfg.cpu.target_insts = scale.insts;
        cfg.threads = scale.threads;
        cfg.sample = scale.sample;
        let mut sys = build(cfg.clone())?;
        if scale.warmup > 0 {
            if scale.checkpoints {
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let out = crow_sim::warm_via_cache(
                    &mut sys,
                    || build(cfg).expect("a system that built once builds again"),
                    &refs,
                    scale.warmup,
                );
                if let Some(e) = out.error {
                    eprintln!("warning: {e} (ran a cold warmup instead)");
                }
            } else {
                sys.warm(scale.warmup);
            }
        }
        let r = sys.run_checked(u64::MAX)?;
        if oracle {
            sys.assert_data_integrity();
        }
        Ok(r)
    });
    let o = outcomes.into_iter().next().expect("one job in, one out");
    eprintln!(
        "simulate campaign: {} after {} attempt(s)",
        match o.disposition() {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Degraded => "completed at degraded scale",
            OutcomeKind::Panicked => "failed",
            OutcomeKind::TimedOut => "timed out",
            OutcomeKind::Skipped => "restored",
        },
        o.attempts.max(1)
    );
    match o.result {
        Some(r) => {
            if oracle && o.kind != OutcomeKind::Skipped {
                println!("data-integrity oracle: clean");
            }
            (r, o.kind == OutcomeKind::Skipped)
        }
        None => {
            eprintln!(
                "simulate: {}",
                o.error.as_deref().unwrap_or("job produced no result")
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    // `CROW_THREADS`/`CROW_CHECKPOINTS` ride the environment scale; the
    // CLI flags keep owning the per-run knobs (insts, warmup). Malformed
    // env is a diagnostic exit, never a silent default.
    let env_scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // The CLI flag wins over CROW_SAMPLE so a script can pin a plan for
    // one run without editing its environment.
    let sample = match &args.sample {
        Some(spec) => Some(SamplePlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })),
        None => env_scale.sample,
    };
    let scale = Scale {
        insts: args.insts,
        warmup: args.warmup,
        mixes_per_group: 1,
        max_cycles: u64::MAX,
        threads: env_scale.threads,
        checkpoints: env_scale.checkpoints,
        sample,
    };
    let mech = parse_mechanism(&args.mechanism);
    let base = if args.ddr4 {
        SystemConfig::ddr4(mech)
    } else {
        SystemConfig::paper_default(mech).with_density(args.density)
    };
    let mut cfg = base.with_llc_bytes(args.llc_mib << 20);
    cfg.channels = args.channels;
    cfg.seed = args.seed;
    cfg.cpu.target_insts = args.insts;
    cfg.threads = scale.threads;
    cfg.sample = scale.sample;
    cfg.mc.per_bank_refresh = args.per_bank_refresh;
    cfg.oracle = args.oracle;
    if args.prefetch {
        cfg = cfg.with_prefetcher();
    }
    if args.validate {
        cfg.validate_protocol = true;
    }
    if let Some(spec) = &args.faults {
        cfg.fault_plan = Some(parse_fault_plan(spec, args.seed, args.fault_policy));
    }
    if args.hammer.is_none() && args.hammer_intensity != 500_000 {
        eprintln!("--hammer-intensity needs --hammer");
        usage();
    }
    if let Some(spec) = &args.hammer {
        let pattern = AttackPattern::parse(spec).unwrap_or_else(|| {
            eprintln!("unknown attack pattern {spec}");
            usage();
        });
        if args.hammer_intensity == 0 {
            eprintln!("--hammer-intensity must be positive");
            usage();
        }
        let mut sc = HammerScenario::new(pattern, args.hammer_intensity);
        if let Err(e) = sc.apply_env() {
            eprintln!("simulate: {e}");
            std::process::exit(2);
        }
        cfg = cfg.with_hammer(sc);
    }
    let hammering = cfg.hammer;
    let validating = cfg.validate_protocol;
    let injecting = cfg.fault_plan.is_some();

    // Resolve inputs once, up front (bad names/files fail fast in both
    // the direct and the supervised path).
    let mut names = Vec::new();
    let apps: Vec<&'static AppProfile> = if args.traces.is_empty() {
        args.apps
            .iter()
            .map(|n| {
                AppProfile::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown app {n}");
                    usage()
                })
            })
            .inspect(|a| names.push(a.name.to_string()))
            .collect()
    } else {
        Vec::new()
    };
    let trace_entries: Vec<Vec<TraceEntry>> = args
        .traces
        .iter()
        .map(|p| {
            let entries = load_trace(std::path::Path::new(p)).unwrap_or_else(|e| {
                eprintln!("cannot load {p}: {e}");
                std::process::exit(1);
            });
            names.push(p.clone());
            entries
        })
        .collect();

    let build = move |cfg: SystemConfig| -> Result<System, crow_sim::CrowError> {
        if trace_entries.is_empty() {
            System::try_new(cfg, &apps)
        } else {
            let traces: Vec<Box<dyn TraceSource>> = trace_entries
                .iter()
                .map(|entries| {
                    LoopedTrace::try_new(entries.clone())
                        .map(|t| Box::new(t) as Box<dyn TraceSource>)
                })
                .collect::<Result<_, _>>()?;
            System::try_with_traces(cfg, traces)
        }
    };

    let supervised = args.timeout.is_some() || args.retries.is_some() || args.resume;
    let start = std::time::Instant::now();
    let (r, restored) = if supervised {
        run_supervised(&args, scale, names.clone(), cfg, build)
    } else {
        let mut sys = build(cfg.clone()).unwrap_or_else(|e| {
            eprintln!("simulate: {e}");
            std::process::exit(1);
        });
        if args.warmup > 0 {
            if scale.checkpoints {
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let out = crow_sim::warm_via_cache(
                    &mut sys,
                    || build(cfg).expect("a system that built once builds again"),
                    &refs,
                    args.warmup,
                );
                if let Some(e) = out.error {
                    eprintln!("warning: {e} (ran a cold warmup instead)");
                }
            } else {
                sys.warm(args.warmup);
            }
        }
        let r = sys.run_checked(u64::MAX).unwrap_or_else(|e| {
            eprintln!("simulate: {e}");
            std::process::exit(1);
        });
        if args.oracle {
            sys.assert_data_integrity();
            println!("data-integrity oracle: clean");
        }
        (r, false)
    };
    if restored {
        println!("[restored from campaign journal; wall-clock figures are from the original run]");
    }
    if validating {
        println!("shadow protocol validator: {} violation(s)", r.violations);
    }
    if injecting {
        let f = &r.faults;
        println!(
            "faults injected: vrt {} | hammer {} ({} victims) | drops {} | suppressed {}",
            f.vrt_injected, f.hammer_injected, f.hammer_victims, f.drops_injected, f.suppressed
        );
    }
    if r.trace_faults > 0 {
        println!(
            "trace faults: {} core(s) parked on a dry trace",
            r.trace_faults
        );
    }
    if let Some(sc) = &hammering {
        let h = &r.hammer;
        println!(
            "hammer ({} @ {} ACTs/tREFW): injected {} | live flips {} ({} rows) | \
             absorbed {} | detections {} | mitigation refreshes {}",
            sc.pattern.label(),
            sc.intensity,
            h.injected,
            h.flips,
            h.flipped_rows,
            h.absorbed,
            h.detections,
            h.mitigation_refreshes,
        );
    }

    println!(
        "== {} | {} | {} insts/core | {} Gbit | {} MiB LLC | {} ch{}{} ==",
        mech.label(),
        if args.ddr4 {
            "DDR4-2400"
        } else {
            "LPDDR4-3200"
        },
        args.insts,
        args.density,
        args.llc_mib,
        args.channels,
        if args.prefetch { " | prefetch" } else { "" },
        if args.per_bank_refresh {
            " | per-bank refresh"
        } else {
            ""
        },
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "core {i} ({name}): IPC {:.3}, MPKI {:.1}",
            r.ipc[i], r.mpki[i]
        );
    }
    if let Some(s) = &r.samples {
        println!(
            "sampling ({} windows of {} insts): IPC {:.3} +/- {:.3} | \
             energy {:.1} uJ +/- {:.1} | row-hit {:.3} +/- {:.3}",
            s.windows,
            s.plan.window_insts,
            s.ipc.mean,
            s.ipc.ci95,
            s.energy_nj.mean / 1e3,
            s.energy_nj.ci95 / 1e3,
            s.row_hit_rate.mean,
            s.row_hit_rate.ci95,
        );
        println!(
            "sampling budget: measured {} | warmed {} | fast-forwarded {} insts/core \
             ({} drain cycles)",
            s.measured_insts, s.warmed_insts, s.skipped_insts, s.drain_cycles,
        );
    }
    // Merge latency percentiles across channels.
    println!(
        "reads {} | writes {} | avg lat {:.0} | p50 <= {} | p99 <= {} | max {} (mem cycles)",
        r.mc.reads,
        r.mc.writes,
        r.mc.avg_read_latency(),
        r.mc.latency_percentile(0.5),
        r.mc.latency_percentile(0.99),
        r.mc.read_latency_max,
    );
    println!(
        "row buffer: hits {} misses {} conflicts {} ({:.1}% hit)",
        r.mc.row_hits,
        r.mc.row_misses,
        r.mc.row_conflicts,
        r.mc.row_hit_rate() * 100.0
    );
    println!(
        "commands: ACT {} ACT-c {} ACT-t {} PRE {} REF {} REFpb {}",
        r.commands.issued(Command::Act),
        r.commands.issued(Command::ActC),
        r.commands.issued(Command::ActT),
        r.commands.issued(Command::Pre),
        r.commands.issued(Command::Ref),
        r.commands.issued(Command::RefPb),
    );
    if r.crow.cache_lookups + r.crow.ref_redirects > 0 {
        println!(
            "CROW: hit rate {:.2} | installs {} | restore-evictions {} | ref redirects {} | hammer remaps {}",
            r.crow_hit_rate(),
            r.crow.cache_installs,
            r.crow.restore_evictions,
            r.crow.ref_redirects,
            r.crow.hammer_remaps,
        );
    }
    let e = &r.energy;
    println!(
        "energy: {:.3} mJ (act {:.0} uJ, rd {:.0} uJ, wr {:.0} uJ, ref {:.0} uJ, bg {:.0} uJ; refresh {:.1}%)",
        r.energy_mj(),
        e.act_nj / 1e3,
        e.rd_nj / 1e3,
        e.wr_nj / 1e3,
        e.ref_nj / 1e3,
        e.background_nj / 1e3,
        e.refresh_fraction() * 100.0,
    );
    println!(
        "simulated {} CPU cycles ({} mem) in {:.2?}{}",
        r.cpu_cycles,
        r.mem_cycles,
        start.elapsed(),
        if r.finished { "" } else { " [DID NOT FINISH]" },
    );
}
