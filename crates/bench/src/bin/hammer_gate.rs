//! Deterministic RowHammer subsystem gate for `scripts/check.sh`.
//!
//! Exercises the attack scenario end to end on the tiny deterministic
//! geometry and asserts the contracts the subsystem is built on:
//!
//! 1. an unmitigated high-intensity double-sided attack injects real
//!    traffic through the controller and produces live bit flips;
//! 2. CROW's §4.3 mitigation at a moderate intensity detects the
//!    aggressors and ends the run with *zero* live flips;
//! 3. both runs are protocol-clean under the shadow validator;
//! 4. the attack is engine-invariant: naive and event-driven steppers
//!    produce bit-identical reports for the flipping run.
//!
//! Exits non-zero with a diagnostic on any violation.

use crow_core::{HammerConfig, RetentionProfile};
use crow_sim::{
    AttackPattern, Engine, FlipParams, HammerScenario, Mechanism, SimReport, System, SystemConfig,
};
use crow_workloads::AppProfile;

/// Same compressed physics as the sim-level scenario tests: threshold
/// jitter spans [96, 160] units, well below what a saturated aggressor
/// pair deposits in 2 M cycles (~310 ACTs/row × w1).
fn flip_params() -> FlipParams {
    FlipParams {
        base_threshold: 128,
        weak_divisor: 4,
        w1: 4,
        w2: 1,
        flip_p_inv: 4,
        profile: RetentionProfile::FixedPerSubarray { n: 0 },
    }
}

/// Saturating rate: backpressure (reject → retry) runs continuously and
/// the achieved ACT rate is the bank's service rate.
const HIGH_INTENSITY: u64 = 4_000_000;

/// Moderate rate: low enough that distance-2 collateral (which CROW
/// cannot remap) stays below the minimum jittered threshold, high
/// enough that the detector still trips within the run.
const MODERATE_INTENSITY: u64 = 400_000;

fn run(mechanism: Mechanism, intensity: u64, engine: Engine) -> SimReport {
    let mut sc = HammerScenario::new(AttackPattern::DoubleSided, intensity);
    sc.flip = flip_params();
    let mut cfg = SystemConfig::quick_test(mechanism).with_hammer(sc);
    cfg.engine = engine;
    cfg.validate_protocol = true;
    let profile = AppProfile::by_name("mcf").expect("known app");
    let mut sys = System::new(cfg, &[profile]);
    sys.run_checked(2_000_000)
        .unwrap_or_else(|e| fail(&format!("{mechanism:?} run failed: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("hammer_gate: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    // 1. Unmitigated high intensity: the attack must corrupt.
    let base = run(Mechanism::Baseline, HIGH_INTENSITY, Engine::EventDriven);
    if base.hammer.injected < 1_000 {
        fail(&format!("injected only {}", base.hammer.injected));
    }
    if base.hammer.flips == 0 {
        fail(&format!(
            "unmitigated attack never flipped: {:?}",
            base.hammer
        ));
    }
    if base.violations != 0 {
        fail(&format!("baseline run had {} violations", base.violations));
    }

    // 2. CROW at moderate intensity: detected and fully suppressed.
    let crow = run(
        Mechanism::RowHammer {
            copy_rows: 8,
            hammer: HammerConfig {
                threshold: 8,
                window_cycles: 102_400_000,
            },
        },
        MODERATE_INTENSITY,
        Engine::EventDriven,
    );
    if crow.hammer.detections == 0 {
        fail(&format!("CROW detector never fired: {:?}", crow.hammer));
    }
    if crow.hammer.flips != 0 {
        fail(&format!(
            "CROW left {} live flips at moderate intensity: {:?}",
            crow.hammer.flips, crow.hammer
        ));
    }
    if crow.violations != 0 {
        fail(&format!("CROW run had {} violations", crow.violations));
    }

    // 3. Engine invariance on the flipping run.
    let naive = run(Mechanism::Baseline, HIGH_INTENSITY, Engine::Naive);
    let normalize = |mut r: SimReport| {
        r.wall_seconds = 0.0;
        r.sim_cycles_per_sec = 0.0;
        r.sched = Default::default();
        r
    };
    let (a, b) = (normalize(base.clone()), normalize(naive));
    if format!("{a:?}") != format!("{b:?}") {
        fail("naive and event-driven engines diverged under attack");
    }

    println!(
        "hammer_gate: OK  unmitigated flips {} (injected {}), CROW flips 0 \
         (detections {}, absorbed {}), engines bit-identical",
        base.hammer.flips, base.hammer.injected, crow.hammer.detections, crow.hammer.absorbed
    );
}
