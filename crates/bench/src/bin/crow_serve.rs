//! `crow-serve`: the hardened batch-simulation service.
//!
//! Speaks the JSONL protocol of `crow_sim::server` over a Unix socket
//! (`--socket PATH` or `CROW_SERVE_ADDR`) or, with no socket configured,
//! over stdin/stdout. Every knob rides the environment
//! (`CROW_SERVE_QUEUE`, `CROW_SERVE_WORKERS`, `CROW_SERVE_MAX_LINE`,
//! `CROW_SERVE_READ_TIMEOUT_SECS`, `CROW_SERVE_JOB_TIMEOUT_SECS`,
//! `CROW_SERVE_RETRIES`, `CROW_SERVE_HEARTBEAT_SECS`,
//! `CROW_SERVE_ISOLATION`, `CROW_SERVE_RSS_MB`, `CROW_SERVE_BREAKER_K`,
//! `CROW_SERVE_BREAKER_COOLDOWN_SECS`, `CROW_SERVE_CHAOS`,
//! `CROW_CAMPAIGN_DIR`); see EXPERIMENTS.md.
//!
//! With `CROW_SERVE_ISOLATION=process` each job attempt re-execs this
//! binary as `crow-serve --job-runner <parent-pid>`: the child reads one
//! job spec on stdin, simulates, and writes the report on stdout, while
//! the parent enforces deadline and RSS caps with SIGKILL and feeds
//! per-fingerprint circuit breakers (see `crow_sim::supervise`).
//!
//! ```sh
//! CROW_SERVE_ADDR=/tmp/crow.sock cargo run -p crow-bench --release --bin crow-serve &
//! printf '%s\n' '{"op":"sim","id":"j1","apps":["mcf"],"mechanism":"crow-8"}' | nc -U /tmp/crow.sock
//! ```
//!
//! Robustness contract (exercised by `serve_gate` in scripts/check.sh):
//! malformed requests are structured error events, overload sheds,
//! duplicate requests are answered from the campaign journal with zero
//! re-simulated cycles, SIGTERM/SIGINT (and the `shutdown` op) drain
//! gracefully — accepted jobs finish and journal, workers are joined —
//! and a SIGKILLed server resumes from its journal on restart.

use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use crow_sim::server::{DrainSummary, LineRead, LineReader, Reply, ServeConfig, Server};

/// Set by the SIGTERM/SIGINT handler; every loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// Raw `signal(2)` binding — the workspace deliberately carries no libc
// dependency. `extern "C" fn(i32)` handlers match the kernel contract.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn install_signal_handlers() {
    // SAFETY: `on_signal` only stores to an AtomicBool, which is
    // async-signal-safe; the handler type matches the C prototype.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// How often blocked loops wake to poll the shutdown flag.
const TICK: Duration = Duration::from_millis(100);

fn usage() -> ! {
    eprintln!(
        "usage: crow-serve [--socket PATH]\n\
         \n\
         With --socket (or CROW_SERVE_ADDR), serves JSONL requests on a\n\
         Unix socket; otherwise reads requests from stdin and writes\n\
         events to stdout. SIGTERM, SIGINT, the shutdown op, and (in\n\
         stdio mode) EOF all drain gracefully.\n\
         \n\
         crow-serve --job-runner TAG is internal: the sandboxed child\n\
         half of CROW_SERVE_ISOLATION=process.\n\
         \n\
         env: CROW_SERVE_QUEUE, CROW_SERVE_WORKERS, CROW_SERVE_MAX_LINE,\n\
         \x20    CROW_SERVE_READ_TIMEOUT_SECS, CROW_SERVE_JOB_TIMEOUT_SECS,\n\
         \x20    CROW_SERVE_RETRIES, CROW_SERVE_HEARTBEAT_SECS,\n\
         \x20    CROW_SERVE_ISOLATION (thread|process), CROW_SERVE_RSS_MB,\n\
         \x20    CROW_SERVE_BREAKER_K, CROW_SERVE_BREAKER_COOLDOWN_SECS,\n\
         \x20    CROW_SERVE_CHAOS (accept fault-injection jobs),\n\
         \x20    CROW_CAMPAIGN_DIR (journal + result cache location)"
    );
    std::process::exit(2);
}

fn main() {
    // The sandboxed child half of process isolation: handled before
    // anything else (no signal handlers, no server, no socket). The TAG
    // operand is the parent pid — it makes leaked children findable by
    // a /proc cmdline scan and plays no other role.
    if std::env::args().nth(1).as_deref() == Some("--job-runner") {
        crow_sim::supervise::job_runner_main();
    }
    let mut socket: Option<PathBuf> = std::env::var("CROW_SERVE_ADDR").ok().map(PathBuf::from);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--socket needs a value");
                    usage()
                })));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let cfg = ServeConfig::from_env().unwrap_or_else(|e| {
        eprintln!("crow-serve: {e}");
        std::process::exit(2);
    });
    install_signal_handlers();
    let max_line = cfg.max_line_bytes;
    let read_timeout = cfg.read_timeout;
    let server = Arc::new(Server::new(cfg).unwrap_or_else(|e| {
        eprintln!("crow-serve: {e}");
        std::process::exit(1);
    }));

    let summary = match &socket {
        Some(path) => serve_socket(server, path, max_line, read_timeout),
        None => serve_stdio(server, max_line),
    };
    let summary = summary.unwrap_or_else(|e| {
        eprintln!("crow-serve: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &socket {
        let _ = std::fs::remove_file(path);
    }
    eprintln!(
        "crow-serve: drained | workers_joined {} | jobs_run {} | cache_hits {} | shed {} | bad_requests {} | abandoned {} | abandoned_attempts {} | killed_children {} | quarantined {}",
        summary.workers_joined,
        summary.jobs_run,
        summary.cache_hits,
        summary.shed,
        summary.bad_requests,
        summary.abandoned,
        summary.abandoned_attempts,
        summary.killed_children,
        summary.quarantined,
    );
    if summary.abandoned > 0 {
        std::process::exit(1);
    }
}

/// Consumes the only remaining `Arc` and drains. All connection reader
/// threads must be joined first; a live clone is a bug, reported rather
/// than leaked into a non-graceful exit.
fn drain_arc(server: Arc<Server>) -> Result<DrainSummary, String> {
    match Arc::try_unwrap(server) {
        Ok(s) => Ok(s.drain()),
        Err(_) => Err("connection thread still holds the server at drain".into()),
    }
}

// --- socket mode ------------------------------------------------------

/// Binds `path`, reclaiming a stale socket file (bind succeeds after a
/// SIGKILLed predecessor) but refusing to evict a live server.
fn bind_socket(path: &Path) -> Result<UnixListener, String> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(format!(
                    "{}: another server is listening on this socket",
                    path.display()
                ));
            }
            std::fs::remove_file(path)
                .map_err(|e| format!("{}: cannot remove stale socket: {e}", path.display()))?;
            UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))
        }
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn serve_socket(
    server: Arc<Server>,
    path: &Path,
    max_line: usize,
    read_timeout: Duration,
) -> Result<DrainSummary, String> {
    let listener = bind_socket(path)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    eprintln!(
        "crow-serve: listening on {} (workers {}, queue {})",
        path.display(),
        server.config().workers,
        server.config().queue_depth,
    );
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut writers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || server.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let (reader, writer) =
                    spawn_connection(Arc::clone(&server), stream, max_line, read_timeout);
                readers.push(reader);
                writers.push(writer);
                // Joined connections would accumulate forever on a busy
                // server; reap the finished ones opportunistically.
                readers.retain(|h| !h.is_finished());
                writers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(TICK),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    // Drain: stop admissions, let readers notice within one tick, then
    // finish every accepted job and join the workers. Writers flush the
    // last results before their reply channels disconnect.
    server.request_drain();
    for h in readers {
        let _ = h.join();
    }
    let summary = drain_arc(server)?;
    for h in writers {
        let _ = h.join();
    }
    Ok(summary)
}

fn spawn_connection(
    server: Arc<Server>,
    stream: UnixStream,
    max_line: usize,
    read_timeout: Duration,
) -> (JoinHandle<()>, JoinHandle<()>) {
    let (reply, rx) = Reply::pair();
    let write_half = stream.try_clone().ok();
    let writer = std::thread::spawn(move || {
        let Some(mut w) = write_half else { return };
        // A stuck client must not hold the writer forever either.
        let _ = w.set_write_timeout(Some(read_timeout.max(Duration::from_secs(1))));
        while let Ok(line) = rx.recv() {
            if writeln!(w, "{line}").is_err() {
                // Connection gone: keep draining the channel so job
                // results never block on a dead client.
                for _ in rx.iter() {}
                return;
            }
        }
    });
    let reader = std::thread::spawn(move || {
        let mut stream = stream;
        if stream.set_read_timeout(Some(TICK)).is_err() {
            return;
        }
        let mut lr = LineReader::new(max_line, read_timeout);
        loop {
            if SHUTDOWN.load(Ordering::SeqCst) || server.draining() {
                return;
            }
            match lr.poll(&mut stream) {
                Ok(LineRead::Line(line)) => server.handle_line(&line, &reply),
                Ok(LineRead::Idle) => {}
                Ok(LineRead::Eof) => return,
                Ok(LineRead::Stalled) => {
                    reply.error(
                        None,
                        "timeout",
                        &format!(
                            "request line stalled past the {:?} read deadline",
                            read_timeout
                        ),
                    );
                    return;
                }
                Ok(LineRead::TooLong) => {
                    reply.error(
                        None,
                        "too-large",
                        &format!("request line exceeds {max_line} bytes"),
                    );
                }
                Err(_) => return,
            }
        }
    });
    (reader, writer)
}

// --- stdio mode -------------------------------------------------------

fn serve_stdio(server: Arc<Server>, max_line: usize) -> Result<DrainSummary, String> {
    eprintln!(
        "crow-serve: serving stdin/stdout (workers {}, queue {})",
        server.config().workers,
        server.config().queue_depth,
    );
    let (reply, rx) = Reply::pair();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        while let Ok(line) = rx.recv() {
            let mut out = stdout.lock();
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                for _ in rx.iter() {}
                return;
            }
        }
    });
    // Stdin blocks without timeouts, so a dedicated thread reads lines
    // (still through the capped LineReader — stdio is not exempt from
    // the byte cap) and the main loop polls the shutdown flag. The
    // thread is left behind at drain; the process exits right after.
    let (line_tx, line_rx) = mpsc::channel::<LineRead>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut lock = stdin.lock();
        // The deadline never fires on a blocking pipe; the cap does.
        let mut lr = LineReader::new(max_line, Duration::from_secs(3600));
        loop {
            match lr.poll(&mut lock) {
                Ok(LineRead::Idle) => {}
                Ok(ev) => {
                    let eof = ev == LineRead::Eof;
                    if line_tx.send(ev).is_err() || eof {
                        return;
                    }
                }
                Err(_) => {
                    let _ = line_tx.send(LineRead::Eof);
                    return;
                }
            }
        }
    });
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) || server.draining() {
            break;
        }
        match line_rx.recv_timeout(TICK) {
            Ok(LineRead::Line(line)) => server.handle_line(&line, &reply),
            Ok(LineRead::TooLong) => {
                reply.error(
                    None,
                    "too-large",
                    &format!("request line exceeds {max_line} bytes"),
                );
            }
            Ok(LineRead::Eof) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    drop(reply);
    let summary = drain_arc(server)?;
    let _ = writer.join();
    Ok(summary)
}
