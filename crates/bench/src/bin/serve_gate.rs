//! Chaos-soak gate for the simulation service (`scripts/check.sh`).
//!
//! Boots the real `crow-serve` binary on a Unix socket and drives it
//! the way a hostile network would, asserting the robustness contract
//! end to end:
//!
//! 1. concurrent clients — distinct jobs, duplicate jobs, malformed
//!    requests, and an oversized line — all get correct structured
//!    responses, and duplicates collapse onto one simulation;
//! 2. re-requesting a finished job simulates **zero** cycles (the
//!    `cycles_simulated` counter is flat and the reply says `cached`);
//! 3. SIGTERM drains gracefully: exit 0, every worker joined, nothing
//!    abandoned — no orphaned worker threads;
//! 4. SIGKILL mid-job loses nothing journaled: a restarted server
//!    (reclaiming the stale socket) answers the finished jobs
//!    byte-identically with zero re-runs, and only the killed job
//!    re-simulates.
//!
//! Exits non-zero with a diagnostic on any violation.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crow_bench::util::ServeClient;
use crow_sim::Json;

const DEADLINE: Duration = Duration::from_secs(120);

fn fail(msg: &str) -> ! {
    eprintln!("serve_gate: FAIL: {msg}");
    std::process::exit(1);
}

/// Connects with a short retry loop: the socket file appears at the
/// server's bind() but accepts only after listen(), so a fast client
/// can land in between and see ECONNREFUSED.
fn connect_retry(socket: &Path) -> ServeClient {
    let t0 = Instant::now();
    loop {
        match ServeClient::connect(socket, DEADLINE) {
            Ok(c) => return c,
            Err(e) if t0.elapsed() > Duration::from_secs(10) => {
                fail(&format!("cannot connect: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn job_line(id: &str, insts: u64, llc_mib: u64) -> String {
    format!(
        "{{\"op\":\"sim\",\"id\":\"{id}\",\"apps\":[\"mcf\"],\"insts\":{insts},\
         \"warmup\":1000,\"channels\":1,\"llc_mib\":{llc_mib}}}"
    )
}

struct Harness {
    serve_bin: PathBuf,
    socket: PathBuf,
    campaign_dir: PathBuf,
}

impl Harness {
    fn spawn_server(&self) -> Child {
        let mut cmd = Command::new(&self.serve_bin);
        cmd.env("CROW_SERVE_ADDR", &self.socket)
            .env("CROW_CAMPAIGN_DIR", &self.campaign_dir)
            .env("CROW_SERVE_WORKERS", "2")
            .env("CROW_SERVE_QUEUE", "16")
            .env("CROW_SERVE_MAX_LINE", "4096")
            .env("CROW_SERVE_READ_TIMEOUT_SECS", "5")
            .env("CROW_SERVE_HEARTBEAT_SECS", "0.2")
            .env("CROW_SERVE_JOB_TIMEOUT_SECS", "110")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let child = cmd
            .spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", self.serve_bin.display())));
        // The socket appearing is the readiness signal.
        let t0 = Instant::now();
        while !self.socket.exists() {
            if t0.elapsed() > Duration::from_secs(30) {
                fail("server did not create its socket within 30s");
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        child
    }

    fn client(&self) -> ServeClient {
        connect_retry(&self.socket)
    }

    fn stats(&self) -> Json {
        let mut c = self.client();
        c.send("{\"op\":\"stats\"}")
            .unwrap_or_else(|e| fail(&format!("stats send: {e}")));
        c.recv_until(|ev| ev.get("event").and_then(Json::as_str) == Some("stats"))
            .unwrap_or_else(|e| fail(&format!("stats recv: {e}")))
    }

    fn stat(&self, key: &str) -> u64 {
        self.stats()
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(&format!("stats missing {key}")))
    }
}

/// Sends `signal` to `child` (SIGTERM via the external `kill`, since
/// `Child` only exposes SIGKILL).
fn signal_child(child: &Child, signal: &str) {
    let status = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -{signal} {}", child.id()))
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot signal server: {e}")));
    if !status.success() {
        fail(&format!("kill -{signal} failed"));
    }
}

/// Waits for exit (bounded) and returns (status, stderr text).
fn wait_with_stderr(mut child: Child) -> (std::process::ExitStatus, String) {
    // Drain stderr concurrently so a chatty server can't block on the
    // pipe while we block on wait().
    let mut stderr = child.stderr.take().expect("stderr piped");
    let collector = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    let t0 = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let text = collector.join().unwrap_or_default();
                return (status, text);
            }
            Ok(None) => {
                if t0.elapsed() > DEADLINE {
                    let _ = child.kill();
                    fail("server did not exit within the deadline");
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => fail(&format!("wait: {e}")),
        }
    }
}

fn expect_result(ev: &Json, id: &str) -> String {
    if ev.get("event").and_then(Json::as_str) != Some("result") {
        fail(&format!(
            "{id}: expected a result event, got {}",
            ev.render()
        ));
    }
    ev.get("report")
        .unwrap_or_else(|| fail(&format!("{id}: result without report")))
        .render()
}

fn cached_flag(ev: &Json) -> bool {
    ev.get("cached").and_then(Json::as_bool).unwrap_or(false)
}

fn main() {
    let serve_bin = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("current_exe: {e}")))
        .with_file_name("crow-serve");
    if !serve_bin.exists() {
        fail(&format!(
            "{} not built (build the crow-serve bin first)",
            serve_bin.display()
        ));
    }
    let scratch = std::env::temp_dir().join(format!("crow-serve-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| fail(&format!("scratch: {e}")));
    let h = Harness {
        serve_bin,
        socket: scratch.join("crow.sock"),
        campaign_dir: scratch.join("campaign"),
    };

    // --- Phase A: concurrent mixed load against one server ------------
    let server = h.spawn_server();
    let (dup_report, solo_report) = phase_mixed_load(&h);
    println!("serve_gate: mixed load OK (dedup + structured errors + shed-free admission)");

    // Cache check: a repeat of a finished job must simulate 0 cycles.
    let cycles_before = h.stat("cycles_simulated");
    let jobs_before = h.stat("jobs_run");
    let mut c = h.client();
    let ev = c
        .run_job(&job_line("cache-check", 20_000, 1), "cache-check")
        .unwrap_or_else(|e| fail(&format!("cache-check: {e}")));
    if !cached_flag(&ev) {
        fail("repeat request was not served from cache");
    }
    if expect_result(&ev, "cache-check") != dup_report {
        fail("cached reply is not byte-identical to the original");
    }
    if h.stat("cycles_simulated") != cycles_before || h.stat("jobs_run") != jobs_before {
        fail("a cached request re-simulated cycles");
    }
    println!("serve_gate: duplicate request simulated 0 cycles");

    // --- Graceful drain on SIGTERM -------------------------------------
    signal_child(&server, "TERM");
    let (status, stderr) = wait_with_stderr(server);
    if !status.success() {
        fail(&format!("SIGTERM drain exited {status}; stderr:\n{stderr}"));
    }
    let summary = stderr
        .lines()
        .find(|l| l.contains("drained"))
        .unwrap_or_else(|| fail(&format!("no drain summary in stderr:\n{stderr}")));
    if !summary.contains("workers_joined 2") {
        fail(&format!("not every worker joined: {summary}"));
    }
    if !summary.contains("abandoned 0") {
        fail(&format!("drain abandoned queued jobs: {summary}"));
    }
    if h.socket.exists() {
        fail("socket file survived a graceful drain");
    }
    println!("serve_gate: graceful drain OK ({})", summary.trim());

    // --- Phase B: SIGKILL mid-job, restart, resume ---------------------
    let server = h.spawn_server();
    let mut c = h.client();
    // A longer job so the kill lands mid-simulation deterministically:
    // wait for its `started` event, then SIGKILL.
    c.send(&job_line("victim", 400_000, 2))
        .unwrap_or_else(|e| fail(&format!("victim send: {e}")));
    c.recv_until(|ev| {
        ev.get("event").and_then(Json::as_str) == Some("started")
            && ev.get("id").and_then(Json::as_str) == Some("victim")
    })
    .unwrap_or_else(|e| fail(&format!("victim started: {e}")));
    signal_child(&server, "KILL");
    let (status, _) = wait_with_stderr(server);
    if status.success() {
        fail("SIGKILL reported a clean exit");
    }
    if !h.socket.exists() {
        fail("expected a stale socket file after SIGKILL");
    }
    drop(c);

    // Restart over the same journal: the stale socket is reclaimed,
    // finished jobs answer byte-identically with zero re-runs, and only
    // the killed job re-simulates.
    let server = h.spawn_server();
    let mut c = h.client();
    let ev = c
        .run_job(&job_line("resume-dup", 20_000, 1), "resume-dup")
        .unwrap_or_else(|e| fail(&format!("resume-dup: {e}")));
    if !cached_flag(&ev) || expect_result(&ev, "resume-dup") != dup_report {
        fail("restart did not restore the journaled result byte-identically");
    }
    let ev = c
        .run_job(&job_line("resume-solo", 20_000, 2), "resume-solo")
        .unwrap_or_else(|e| fail(&format!("resume-solo: {e}")));
    if !cached_flag(&ev) || expect_result(&ev, "resume-solo") != solo_report {
        fail("restart did not restore the second journaled result");
    }
    if h.stat("jobs_run") != 0 {
        fail("restart re-simulated a journaled job");
    }
    println!("serve_gate: SIGKILL resume OK (0 re-runs for journaled jobs)");
    let ev = c
        .run_job(&job_line("victim-retry", 400_000, 2), "victim-retry")
        .unwrap_or_else(|e| fail(&format!("victim-retry: {e}")));
    if cached_flag(&ev) {
        fail("the killed job must not have a journaled result");
    }
    expect_result(&ev, "victim-retry");
    println!("serve_gate: killed-mid-flight job re-ran cleanly");

    signal_child(&server, "TERM");
    let (status, stderr) = wait_with_stderr(server);
    if !status.success() {
        fail(&format!("final drain exited {status}; stderr:\n{stderr}"));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!("serve_gate: PASS");
}

/// Phase A body: three concurrent clients (distinct jobs, duplicates,
/// hostile input) against the live server. Returns the canonical report
/// bytes of the duplicated job and of a distinct job, for the cache and
/// resume phases.
fn phase_mixed_load(h: &Harness) -> (String, String) {
    let socket = h.socket.clone();
    let hostile = std::thread::spawn(move || hostile_client(&socket));
    let socket = h.socket.clone();
    let dups = std::thread::spawn(move || {
        // Two ids, one fingerprint: must collapse onto one simulation.
        let mut c = connect_retry(&socket);
        let mut d = connect_retry(&socket);
        c.send(&job_line("dup-a", 20_000, 1)).expect("send");
        d.send(&job_line("dup-b", 20_000, 1)).expect("send");
        let terminal = |cl: &mut ServeClient, id: &str| {
            cl.recv_until(|ev| {
                let kind = ev.get("event").and_then(Json::as_str);
                (kind == Some("result") || kind == Some("error"))
                    && ev.get("id").and_then(Json::as_str) == Some(id)
            })
            .expect("terminal event")
        };
        let a = terminal(&mut c, "dup-a");
        let b = terminal(&mut d, "dup-b");
        (expect_result(&a, "dup-a"), expect_result(&b, "dup-b"))
    });
    let mut solo = h.client();
    let ev = solo
        .run_job(&job_line("resume-solo", 20_000, 2), "resume-solo")
        .unwrap_or_else(|e| fail(&format!("resume-solo: {e}")));
    let solo_report = expect_result(&ev, "resume-solo");
    let (a, b) = dups.join().unwrap_or_else(|_| fail("dup client panicked"));
    if a != b {
        fail("duplicate ids saw different result bytes");
    }
    hostile
        .join()
        .unwrap_or_else(|_| fail("hostile client panicked"));
    // 2 distinct fingerprints + 1 shared duplicate = at most 3 runs
    // (the duplicate pair may race to 2 only if dedup failed).
    let runs = h.stat("jobs_run");
    if runs != 2 {
        fail(&format!("expected 2 simulations (dedup), saw {runs}"));
    }
    if h.stat("cache_hits") == 0 {
        fail("expected at least one cache hit from the duplicate pair");
    }
    if h.stat("bad_requests") == 0 {
        fail("hostile client's requests were not counted");
    }
    (a, solo_report)
}

/// Malformed, oversized, and interleaved-garbage requests on one
/// connection; every line must get a structured error and the
/// connection must stay usable.
fn hostile_client(socket: &Path) {
    let mut c = connect_retry(socket);
    let expect_code = |c: &mut ServeClient, code: &str| {
        let ev = c
            .recv_until(|ev| ev.get("event").and_then(Json::as_str) == Some("error"))
            .expect("an error event");
        let got = ev.get("code").and_then(Json::as_str).unwrap_or("");
        assert_eq!(got, code, "wrong error code for {}", ev.render());
    };
    c.send("this is not json").expect("send");
    expect_code(&mut c, "bad-request");
    c.send("{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"op\":\"sim\"}")
        .expect("send");
    expect_code(&mut c, "bad-request");
    c.send("{\"op\":\"sim\",\"id\":\"x\",\"apps\":[\"mcf\"],\"insts\":999999999999}")
        .expect("send");
    expect_code(&mut c, "bad-request");
    // An oversized line (cap is 4096 in the gate environment): rejected
    // with a structured error, connection not dropped.
    let huge = format!(
        "{{\"op\":\"sim\",\"id\":\"big\",\"pad\":\"{}\"}}",
        "x".repeat(8000)
    );
    c.send(&huge).expect("send");
    expect_code(&mut c, "too-large");
    // Still serving on the same connection.
    c.send("{\"op\":\"ping\"}").expect("send");
    c.recv_until(|ev| ev.get("event").and_then(Json::as_str) == Some("pong"))
        .expect("pong after hostility");
}
