//! Regenerates the RowHammer attack-scenario figure (flips and
//! slowdown vs intensity per mitigation and aggressor pattern).
use crow_bench::util::scale_from_env_or_exit;
fn main() {
    print!(
        "{}",
        crow_bench::hammer_figs::hammer(scale_from_env_or_exit())
    );
}
