//! Regenerates paper Fig. 7 (MRA power and decoder area overheads).
fn main() {
    print!("{}", crow_bench::circuit_figs::fig7());
}
