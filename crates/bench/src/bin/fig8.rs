//! Regenerates paper Fig. 8 (single-core CROW-cache speedup + hit rate).
use crow_bench::util::scale_from_env_or_exit;
fn main() {
    print!("{}", crow_bench::perf_figs::fig8(scale_from_env_or_exit()));
}
