//! Regenerates paper Fig. 8 (single-core CROW-cache speedup + hit rate).
use crow_sim::Scale;
fn main() {
    print!("{}", crow_bench::perf_figs::fig8(Scale::from_env()));
}
