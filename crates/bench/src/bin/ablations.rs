//! Runs the ablation studies (partial restoration, scheduler, row
//! policy, CROW-table sharing, address interleaving).
use crow_sim::Scale;

fn main() {
    let scale = Scale::from_env();
    print!("{}", crow_bench::ablations::partial_restore(scale));
    print!("{}", crow_bench::ablations::scheduler(scale));
    print!("{}", crow_bench::ablations::row_policy(scale));
    print!("{}", crow_bench::ablations::table_sharing(scale));
    print!("{}", crow_bench::ablations::refresh_granularity(scale));
    print!("{}", crow_bench::ablations::standards(scale));
    print!("{}", crow_bench::ablations::mapping(scale));
}
