//! Runs the ablation studies (partial restoration, scheduler, row
//! policy, CROW-table sharing, address interleaving).
use crow_bench::util::scale_from_env_or_exit;

fn main() {
    let scale = scale_from_env_or_exit();
    print!("{}", crow_bench::ablations::partial_restore(scale));
    print!("{}", crow_bench::ablations::scheduler(scale));
    print!("{}", crow_bench::ablations::row_policy(scale));
    print!("{}", crow_bench::ablations::table_sharing(scale));
    print!("{}", crow_bench::ablations::refresh_granularity(scale));
    print!("{}", crow_bench::ablations::standards(scale));
    print!("{}", crow_bench::ablations::mapping(scale));
}
