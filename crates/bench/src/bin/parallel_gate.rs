//! Deterministic parallel-engine gate for `scripts/check.sh`.
//!
//! Runs a bench-suite slice — both engines, both scheduler
//! implementations, baseline and CROW mechanisms, single apps and a
//! four-core mix — on the four-channel platform, serial and with four
//! shard worker threads, and asserts the reports are **bit-identical**
//! (wall-clock fields excepted). The sharded engine is an exactness
//! claim, not an approximation: any divergence — architectural stats,
//! command streams, energy, even the scheduler work counters — fails
//! the gate.
//!
//! Exits non-zero with a diagnostic on any violation.

use crow_mem::SchedImpl;
use crow_sim::{Engine, Mechanism, System, SystemConfig};
use crow_workloads::AppProfile;

const THREADS: u32 = 4;

fn run(mechanism: Mechanism, apps: &[&str], engine: Engine, si: SchedImpl, threads: u32) -> String {
    let profiles: Vec<&AppProfile> = apps
        .iter()
        .map(|n| AppProfile::by_name(n).expect("known app"))
        .collect();
    let mut cfg = SystemConfig::quick_test(mechanism);
    cfg.channels = 4;
    cfg.cpu.target_insts = 100_000;
    cfg.engine = engine;
    cfg.mc.sched_impl = si;
    cfg.threads = threads;
    let mut sys = System::new(cfg, &profiles);
    let mut r = sys.run(50_000_000);
    r.wall_seconds = 0.0;
    r.sim_cycles_per_sec = 0.0;
    format!("{r:?}")
}

fn main() {
    let suite: [(Mechanism, &[&str]); 4] = [
        (Mechanism::Baseline, &["mcf"]),
        (Mechanism::crow_cache(8), &["random"]),
        (Mechanism::crow_combined(), &["libq"]),
        (Mechanism::crow_cache(8), &["mcf", "povray", "libq", "gcc"]),
    ];
    let mut cells = 0;
    for (mechanism, apps) in suite {
        for engine in [Engine::Naive, Engine::EventDriven] {
            for si in [SchedImpl::Linear, SchedImpl::Indexed] {
                let serial = run(mechanism, apps, engine, si, 1);
                let sharded = run(mechanism, apps, engine, si, THREADS);
                if serial != sharded {
                    eprintln!(
                        "parallel_gate: FAIL: {engine:?}/{si:?} {mechanism:?} {apps:?}: \
                         {THREADS}-thread report diverged from serial\n  \
                         serial:  {serial}\n  sharded: {sharded}"
                    );
                    std::process::exit(1);
                }
                cells += 1;
            }
        }
    }
    println!("parallel_gate: OK  {cells} suite cells bit-identical at {THREADS} threads vs serial");
}
