//! Regenerates paper Fig. 14 (combined mechanisms vs LLC capacity).
use crow_bench::util::scale_from_env_or_exit;
fn main() {
    print!(
        "{}",
        crow_bench::refresh_figs::fig14(scale_from_env_or_exit())
    );
}
