//! Regenerates paper Fig. 14 (combined mechanisms vs LLC capacity).
use crow_sim::Scale;
fn main() {
    print!("{}", crow_bench::refresh_figs::fig14(Scale::from_env()));
}
